// Extension experiment: cross-device transfer.
//
// The paper's framework re-profiles every new target device (Fig. 10). This
// bench quantifies WHY that is necessary: a predictor trained on device A
// is evaluated on device B, reporting both absolute accuracy (meaningless
// across devices — scales differ) and Kendall rank correlation (what a NAS
// search actually consumes). Ranks transfer partially between similar
// devices (the two GPUs) and poorly across classes, so even rank-only
// search needs per-device data.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "surrogate/mlp_surrogate.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Extension: cross-device predictor transfer");
  args.add_int("train", 4000, "training-set size per device");
  args.add_int("test", 1000, "test-set size per device");
  args.add_int("epochs", 150, "training epochs");
  args.add_int("seed", 55, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const SupernetSpec spec = resnet_spec();
  const auto n_train = static_cast<std::size_t>(args.get_int("train"));
  const auto n_test = static_cast<std::size_t>(args.get_int("test"));
  const int epochs = static_cast<int>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const auto devices = all_device_specs();
  // One predictor per source device, one test set per target device —
  // the SAME test architectures everywhere so ranks are comparable.
  Rng rng(seed);
  BalancedSampler sampler(spec, 5);
  const std::vector<ArchConfig> test_archs = sampler.sample_n(n_test, rng);

  std::vector<std::unique_ptr<MlpSurrogate>> predictors;
  std::vector<std::vector<double>> target_latencies;
  for (const DeviceSpec& dspec : devices) {
    SimulatedDevice device(dspec, seed * 211 + 3);
    const LabeledSet train = generate_dataset(
        spec, device, SamplingStrategy::kBalanced, n_train, seed + 1);
    auto predictor = std::make_unique<MlpSurrogate>(
        make_encoder(EncodingKind::kFcc, spec), paper_train_config(epochs),
        seed + 2);
    predictor->fit(train.archs, train.latencies_ms);
    predictors.push_back(std::move(predictor));

    std::vector<double> truth;
    truth.reserve(test_archs.size());
    for (const ArchConfig& arch : test_archs) {
      truth.push_back(device.true_latency_ms(build_graph(spec, arch)));
    }
    target_latencies.push_back(std::move(truth));
  }

  print_banner(std::cout, "Cross-device rank transfer (Kendall tau of "
                          "FCC predictors, ResNet space)");
  std::vector<std::string> header{"trained on \\ evaluated on"};
  for (const DeviceSpec& d : devices) header.push_back(d.short_name);
  TablePrinter table(header);
  for (std::size_t src = 0; src < devices.size(); ++src) {
    std::vector<std::string> row{devices[src].short_name};
    const std::vector<double> pred = predictors[src]->predict_all(test_archs);
    for (std::size_t dst = 0; dst < devices.size(); ++dst) {
      row.push_back(
          format_double(kendall_tau(pred, target_latencies[dst]), 3));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "Diagonal: near-perfect ranking on the training device. "
               "Off-diagonal: ranks degrade by up to\n~0.07 tau — enough to "
               "scramble Pareto fronts (see fig2_pareto_impact) — so "
               "per-device profiling,\nas the paper does, is required.\n";
  return 0;
}
