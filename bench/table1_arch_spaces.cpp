// Table I reproduction: the three supernet architecture spaces and their
// hyper-parameters, with cardinalities computed from the implemented specs
// (paper values: ResNet 8.38e26, MobileNetV3 8.38e26, DenseNet 1e10), plus
// lowering statistics for a mid-sized member of each space.
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "nets/builder.hpp"

using namespace esm;

namespace {

std::string int_list(const std::vector<int>& xs) {
  std::vector<std::string> parts;
  for (int x : xs) parts.push_back(std::to_string(x));
  return "{" + join(parts, ", ") + "}";
}

std::string double_list(const std::vector<double>& xs) {
  std::vector<std::string> parts;
  for (double x : xs) parts.push_back(format_double(x, 3));
  return "{" + join(parts, ", ") + "}";
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Table I: supernet architectures and hyperparameters");

  TablePrinter table({"Variable", "ResNet", "MobileNetV3", "DenseNet"});
  const SupernetSpec r = resnet_spec();
  const SupernetSpec m = mobilenet_v3_spec();
  const SupernetSpec d = densenet_spec();

  table.add_row({"Stage width list", int_list(r.stage_widths),
                 int_list(m.stage_widths), "N/A (growth rate 32)"});
  table.add_row({"# of units", std::to_string(r.num_units),
                 std::to_string(m.num_units), std::to_string(d.num_units)});
  table.add_row(
      {"# of blocks per unit",
       "{1..." + std::to_string(r.max_blocks_per_unit) + "}",
       "{1..." + std::to_string(m.max_blocks_per_unit) + "}",
       "{1..." + std::to_string(d.max_blocks_per_unit) + "}"});
  table.add_row({"Kernel size options", int_list(r.kernel_options),
                 int_list(m.kernel_options),
                 int_list(d.kernel_options) + " (per unit)"});
  table.add_row({"Width-expansion options", double_list(r.expansion_options),
                 double_list(m.expansion_options), "N/A"});
  table.add_row({"# of architectures (paper)", "8.38e+26", "8.38e+26",
                 "1e+10"});
  table.add_row({"# of architectures (computed)",
                 format_scientific(r.space_cardinality()),
                 format_scientific(m.space_cardinality()),
                 format_scientific(d.space_cardinality())});
  table.print(std::cout);

  print_banner(std::cout, "Lowering check: a mid-sized member of each space");
  TablePrinter stats({"Space", "blocks", "layers", "GFLOPs", "params (M)"});
  for (const SupernetSpec& spec : {r, m, d}) {
    ArchConfig arch;
    arch.kind = spec.kind;
    const int depth = (spec.min_blocks_per_unit + spec.max_blocks_per_unit) / 2;
    for (int u = 0; u < spec.num_units; ++u) {
      UnitConfig unit;
      for (int b = 0; b < depth; ++b) {
        unit.blocks.push_back({spec.kernel_options[1],
                               spec.expansion_options.empty()
                                   ? 1.0
                                   : spec.expansion_options[1]});
      }
      arch.units.push_back(unit);
    }
    const LayerGraph g = build_graph(spec, arch);
    stats.add_row({spec.name, std::to_string(arch.total_blocks()),
                   std::to_string(g.size()),
                   format_double(g.total_flops() / 1e9, 2),
                   format_double(g.total_params() / 1e6, 2)});
  }
  stats.print(std::cout);
  return 0;
}
