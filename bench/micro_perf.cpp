// Micro-benchmarks (google-benchmark): throughput of the hot components —
// architecture sampling, graph lowering, latency analysis, encoders, the
// measurement protocol, and MLP training steps.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "nets/builder.hpp"

using namespace esm;

namespace {

void BM_RandomSample(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  RandomSampler sampler(spec);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_RandomSample);

void BM_BalancedSample(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  BalancedSampler sampler(spec, 5);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_BalancedSample);

void BM_BuildGraph(benchmark::State& state) {
  const SupernetSpec spec =
      state.range(0) == 0 ? resnet_spec()
                          : (state.range(0) == 1 ? mobilenet_v3_spec()
                                                 : densenet_spec());
  RandomSampler sampler(spec);
  Rng rng(2);
  const ArchConfig arch = sampler.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_graph(spec, arch));
  }
}
BENCHMARK(BM_BuildGraph)->Arg(0)->Arg(1)->Arg(2);

void BM_TrueLatency(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  const LatencyModel model(rtx4090_spec());
  RandomSampler sampler(spec);
  Rng rng(3);
  const LayerGraph g = build_graph(spec, sampler.sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.true_latency_ms(g));
  }
}
BENCHMARK(BM_TrueLatency);

void BM_MeasureProtocol(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(rtx4090_spec(), 4);
  RandomSampler sampler(spec);
  Rng rng(5);
  const LayerGraph g = build_graph(spec, sampler.sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.measure_ms(g));
  }
}
BENCHMARK(BM_MeasureProtocol);

void BM_Encode(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  auto encoder = make_encoder(static_cast<EncodingKind>(state.range(0)), spec);
  RandomSampler sampler(spec);
  Rng rng(6);
  const ArchConfig arch = sampler.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->encode(arch));
  }
  state.SetLabel(encoder->name());
}
BENCHMARK(BM_Encode)->DenseRange(0, 4);

void BM_MlpTrainEpoch(benchmark::State& state) {
  // One epoch on 1024 FCC-encoded ResNet samples.
  const SupernetSpec spec = resnet_spec();
  auto encoder = make_encoder(EncodingKind::kFcc, spec);
  RandomSampler sampler(spec);
  Rng rng(7);
  const auto archs = sampler.sample_n(1024, rng);
  const Matrix x = encoder->encode_all(archs);
  std::vector<double> y(archs.size());
  const LatencyModel model(rtx4090_spec());
  for (std::size_t i = 0; i < archs.size(); ++i) {
    y[i] = model.true_latency_ms(build_graph(spec, archs[i]));
  }
  Rng init(8);
  Mlp mlp = Mlp::paper_predictor(encoder->dimension(), init);
  const AdamConfig adam;
  Matrix batch_x(256, x.cols());
  std::vector<double> batch_y(256);
  for (auto _ : state) {
    for (std::size_t off = 0; off + 256 <= archs.size(); off += 256) {
      for (std::size_t i = 0; i < 256; ++i) {
        const auto src = x.row(off + i);
        auto dst = batch_x.row(i);
        for (std::size_t c = 0; c < x.cols(); ++c) dst[c] = src[c];
        batch_y[i] = y[off + i];
      }
      benchmark::DoNotOptimize(
          mlp.train_batch(batch_x, batch_y, adam, 0.0));
    }
  }
}
BENCHMARK(BM_MlpTrainEpoch);

void BM_PredictOne(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(rtx4090_spec(), 9);
  bench::LabeledSet train;
  RandomSampler sampler(spec);
  Rng rng(10);
  const LatencyModel model(rtx4090_spec());
  for (int i = 0; i < 500; ++i) {
    const ArchConfig arch = sampler.sample(rng);
    train.add({arch, model.true_latency_ms(build_graph(spec, arch))});
  }
  MlpSurrogate surrogate(make_encoder(EncodingKind::kFcc, spec),
                         bench::paper_train_config(30), 11);
  surrogate.fit(train.archs, train.latencies_ms);
  const ArchConfig query = sampler.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(surrogate.predict_ms(query));
  }
}
BENCHMARK(BM_PredictOne);

}  // namespace

BENCHMARK_MAIN();
