// Micro-benchmarks (google-benchmark): throughput of the hot components —
// architecture sampling, graph lowering, latency analysis, encoders, the
// measurement protocol, and MLP training steps.
//
// After the google-benchmark suite, a serial-vs-threaded comparison of the
// parallelized hot paths (GEMM row bands, QC measure-batch fan-out) runs
// and writes BENCH_parallel.json next to the binary, asserting along the
// way that the threaded results are bit-identical to the serial ones.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "linalg/matrix.hpp"
#include "nets/builder.hpp"

using namespace esm;

namespace {

void BM_RandomSample(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  RandomSampler sampler(spec);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_RandomSample);

void BM_BalancedSample(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  BalancedSampler sampler(spec, 5);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_BalancedSample);

void BM_BuildGraph(benchmark::State& state) {
  const SupernetSpec spec =
      state.range(0) == 0 ? resnet_spec()
                          : (state.range(0) == 1 ? mobilenet_v3_spec()
                                                 : densenet_spec());
  RandomSampler sampler(spec);
  Rng rng(2);
  const ArchConfig arch = sampler.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_graph(spec, arch));
  }
}
BENCHMARK(BM_BuildGraph)->Arg(0)->Arg(1)->Arg(2);

void BM_TrueLatency(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  const LatencyModel model(rtx4090_spec());
  RandomSampler sampler(spec);
  Rng rng(3);
  const LayerGraph g = build_graph(spec, sampler.sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.true_latency_ms(g));
  }
}
BENCHMARK(BM_TrueLatency);

void BM_MeasureProtocol(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(rtx4090_spec(), 4);
  RandomSampler sampler(spec);
  Rng rng(5);
  const LayerGraph g = build_graph(spec, sampler.sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.measure(g).value);
  }
}
BENCHMARK(BM_MeasureProtocol);

void BM_Encode(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  auto encoder = make_encoder(static_cast<EncodingKind>(state.range(0)), spec);
  RandomSampler sampler(spec);
  Rng rng(6);
  const ArchConfig arch = sampler.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->encode(arch));
  }
  state.SetLabel(encoder->name());
}
BENCHMARK(BM_Encode)->DenseRange(0, 4);

void BM_MlpTrainEpoch(benchmark::State& state) {
  // One epoch on 1024 FCC-encoded ResNet samples.
  const SupernetSpec spec = resnet_spec();
  auto encoder = make_encoder(EncodingKind::kFcc, spec);
  RandomSampler sampler(spec);
  Rng rng(7);
  const auto archs = sampler.sample_n(1024, rng);
  const Matrix x = encoder->encode_all(archs);
  std::vector<double> y(archs.size());
  const LatencyModel model(rtx4090_spec());
  for (std::size_t i = 0; i < archs.size(); ++i) {
    y[i] = model.true_latency_ms(build_graph(spec, archs[i]));
  }
  Rng init(8);
  Mlp mlp = Mlp::paper_predictor(encoder->dimension(), init);
  const AdamConfig adam;
  Matrix batch_x(256, x.cols());
  std::vector<double> batch_y(256);
  for (auto _ : state) {
    for (std::size_t off = 0; off + 256 <= archs.size(); off += 256) {
      for (std::size_t i = 0; i < 256; ++i) {
        const auto src = x.row(off + i);
        auto dst = batch_x.row(i);
        for (std::size_t c = 0; c < x.cols(); ++c) dst[c] = src[c];
        batch_y[i] = y[off + i];
      }
      benchmark::DoNotOptimize(
          mlp.train_batch(batch_x, batch_y, adam, 0.0));
    }
  }
}
BENCHMARK(BM_MlpTrainEpoch);

void BM_PredictOne(benchmark::State& state) {
  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(rtx4090_spec(), 9);
  bench::LabeledSet train;
  RandomSampler sampler(spec);
  Rng rng(10);
  const LatencyModel model(rtx4090_spec());
  for (int i = 0; i < 500; ++i) {
    const ArchConfig arch = sampler.sample(rng);
    train.add({arch, model.true_latency_ms(build_graph(spec, arch))});
  }
  MlpSurrogate surrogate(make_encoder(EncodingKind::kFcc, spec),
                         bench::paper_train_config(30), 11);
  surrogate.fit(train.archs, train.latencies_ms);
  const ArchConfig query = sampler.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(surrogate.predict_ms(query));
  }
}
BENCHMARK(BM_PredictOne);

// ------------------------------------------------------------------------
// Serial vs threaded comparison of the parallel execution layer.

/// Best-of-`reps` wall time of fn(), in nanoseconds.
template <typename Fn>
double time_best_ns(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ns = std::chrono::duration<double, std::nano>(stop - start).count();
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

int threaded_target() {
  const unsigned hw = std::thread::hardware_concurrency();
  // Exercise the pool even on a single-core host (speedup there is ~1x;
  // the JSON records the thread count so readers can tell).
  return hw < 2 ? 2 : static_cast<int>(hw);
}

bench::ParallelBenchRecord bench_gemm(std::size_t n, int threads) {
  Rng rng(17);
  Matrix a(n, n), b(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.uniform();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.uniform();
  Matrix serial_out, threaded_out;
  bench::ParallelBenchRecord rec;
  rec.name = "gemm_" + std::to_string(n) + "x" + std::to_string(n);
  rec.threads = threads;
  set_thread_count(1);
  rec.serial_ns = time_best_ns(3, [&] { gemm(a, b, serial_out); });
  set_thread_count(threads);
  rec.threaded_ns = time_best_ns(3, [&] { gemm(a, b, threaded_out); });
  set_thread_count(1);
  rec.identical = std::memcmp(serial_out.data(), threaded_out.data(),
                              serial_out.size() * sizeof(double)) == 0;
  rec.flops = 2.0 * static_cast<double>(n) * n * n;
  rec.bytes = 3.0 * static_cast<double>(n) * n * sizeof(double);
  return rec;
}

// The serving-shape multiply stack: one batch-64 forward through the
// paper predictor (3 layers, hidden 64) as bare gemm_a_bt calls. Sits
// below the pool crossover, so the threaded run must match serial time
// (the PR-1 dispatch lost up to 40% here by fanning out anyway).
bench::ParallelBenchRecord bench_gemm_mlp_shape(int threads) {
  constexpr std::size_t kBatch = 64, kIn = 36, kHidden = 64;
  Rng rng(17);
  Matrix x(kBatch, kIn), w1(kHidden, kIn), w2(kHidden, kHidden),
      w3(1, kHidden);
  for (Matrix* m : {&x, &w1, &w2, &w3}) {
    for (std::size_t i = 0; i < m->size(); ++i) m->data()[i] = rng.uniform();
  }
  Matrix h1, h2, y;
  auto forward = [&] {
    gemm_a_bt(x, w1, h1);
    gemm_a_bt(h1, w2, h2);
    gemm_a_bt(h2, w3, y);
  };
  bench::ParallelBenchRecord rec;
  rec.name = "gemm_mlp_forward_b64";
  rec.threads = threads;
  set_thread_count(1);
  rec.serial_ns = time_best_ns(200, forward);
  const Matrix serial_y = y;
  set_thread_count(threads);
  rec.threaded_ns = time_best_ns(200, forward);
  set_thread_count(1);
  rec.identical = std::memcmp(serial_y.data(), y.data(),
                              y.size() * sizeof(double)) == 0;
  rec.flops = 2.0 * kBatch * (kIn * kHidden + kHidden * kHidden + kHidden);
  rec.bytes = static_cast<double>(sizeof(double)) *
              (x.size() + w1.size() + w2.size() + w3.size() +
               2 * (h1.size() + h2.size()) + y.size());
  return rec;
}

// End-to-end fused inference: encode -> standardize -> batched forward ->
// inverse scaling over a 1024-arch batch, serial vs pool-threaded row
// encoding. Counts only the MLP multiply flops (encoding is bookkeeping).
bench::ParallelBenchRecord bench_predict_all(int threads) {
  const SupernetSpec spec = resnet_spec();
  bench::LabeledSet train;
  RandomSampler sampler(spec);
  Rng rng(10);
  const LatencyModel model(rtx4090_spec());
  for (int i = 0; i < 500; ++i) {
    const ArchConfig arch = sampler.sample(rng);
    train.add({arch, model.true_latency_ms(build_graph(spec, arch))});
  }
  set_thread_count(1);
  MlpSurrogate surrogate(make_encoder(EncodingKind::kFcc, spec),
                         bench::paper_train_config(30), 11);
  surrogate.fit(train.archs, train.latencies_ms);
  const auto batch = sampler.sample_n(1024, rng);

  bench::ParallelBenchRecord rec;
  rec.name = "predict_all_1024";
  rec.threads = threads;
  std::vector<double> serial_pred, threaded_pred;
  set_thread_count(1);
  rec.serial_ns =
      time_best_ns(20, [&] { serial_pred = surrogate.predict_all(batch); });
  set_thread_count(threads);
  rec.threaded_ns =
      time_best_ns(20, [&] { threaded_pred = surrogate.predict_all(batch); });
  set_thread_count(1);
  rec.identical = serial_pred == threaded_pred;
  const double dim = static_cast<double>(surrogate.encoder().dimension());
  rec.flops = 2.0 * static_cast<double>(batch.size()) *
              (dim * 64.0 + 64.0 * 64.0 + 64.0);
  return rec;
}

bench::ParallelBenchRecord bench_measure_batch(std::size_t batch,
                                               int threads) {
  const SupernetSpec spec = resnet_spec();
  const EsmConfig cfg = bench::dataset_config(spec);
  RandomSampler sampler(spec);
  Rng arch_rng(19);
  const auto archs = sampler.sample_n(batch, arch_rng);

  bench::ParallelBenchRecord rec;
  rec.name = "measure_batch_" + std::to_string(batch);
  rec.threads = threads;
  // A fresh device+generator per timed run keeps every run on the same
  // session stream, so serial and threaded runs measure identical work —
  // and must produce identical latencies.
  auto run_once = [&](int n_threads) {
    set_thread_count(1);  // baseline construction outside the timing
    SimulatedDevice device(rtx4090_spec(), 23);
    DatasetGenerator generator(cfg, device, Rng(29));
    set_thread_count(n_threads);
    std::vector<MeasuredSample> samples;
    const double ns = time_best_ns(
        1, [&] { samples = generator.measure_batch(archs).samples; });
    set_thread_count(1);
    std::vector<double> values;
    values.reserve(samples.size());
    for (const MeasuredSample& s : samples) values.push_back(s.latency_ms);
    return std::pair<double, std::vector<double>>(ns, std::move(values));
  };
  double serial_best = 0.0, threaded_best = 0.0;
  std::vector<double> serial_values, threaded_values;
  for (int rep = 0; rep < 3; ++rep) {
    auto [serial_ns, sv] = run_once(1);
    auto [threaded_ns, tv] = run_once(threads);
    if (rep == 0) {
      serial_values = sv;
      threaded_values = tv;
    }
    if (rep == 0 || serial_ns < serial_best) serial_best = serial_ns;
    if (rep == 0 || threaded_ns < threaded_best) threaded_best = threaded_ns;
  }
  rec.serial_ns = serial_best;
  rec.threaded_ns = threaded_best;
  rec.identical = serial_values == threaded_values;
  return rec;
}

void run_parallel_suite() {
  const int threads = threaded_target();
  bench::ParallelBenchMeta meta;
  meta.backend = gemm_backend();
  meta.simd_width = gemm_simd_width();
  meta.fma = gemm_fma_enabled();
  meta.peak_gflops = gemm_peak_gflops();
  meta.threads = threads;

  std::vector<bench::ParallelBenchRecord> records;
  records.push_back(bench_gemm_mlp_shape(threads));
  for (std::size_t n : {256u, 512u, 1024u}) {
    records.push_back(bench_gemm(n, threads));
  }
  records.push_back(bench_predict_all(threads));
  records.push_back(bench_measure_batch(64, threads));

  std::cout << "\nSerial vs threaded (" << threads << " threads, backend "
            << meta.backend << ", single-core peak " << meta.peak_gflops
            << " GFLOPS):\n";
  for (const auto& r : records) {
    std::cout << "  " << r.name << ": " << r.serial_ns / 1e6 << " ms -> "
              << r.threaded_ns / 1e6 << " ms ("
              << (r.threaded_ns > 0 ? r.serial_ns / r.threaded_ns : 0.0)
              << "x, results " << (r.identical ? "identical" : "DIFFER")
              << ")";
    if (r.flops > 0.0 && r.serial_ns > 0.0) {
      const double gflops = r.flops / r.serial_ns;
      std::cout << " [" << gflops << " GFLOPS serial";
      if (meta.peak_gflops > 0.0) {
        std::cout << ", " << 100.0 * gflops / meta.peak_gflops << "% of peak";
      }
      std::cout << "]";
    }
    std::cout << "\n";
    if (!r.identical) {
      std::cerr << "FATAL: " << r.name
                << " produced thread-count-dependent results\n";
      std::exit(1);
    }
  }
  bench::write_parallel_bench_json("BENCH_parallel.json", records, meta);
  std::cout << "wrote BENCH_parallel.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_parallel_suite();
  return 0;
}
