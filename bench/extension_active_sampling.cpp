// Extension experiment: uncertainty-guided dataset extension (a natural
// future-work extension of the paper's Algorithm 1).
//
// Three extension policies run under the same measurement budget on the
// ResNet space / simulated RTX 4090, starting from the same initial set:
//   random     — Algorithm 1's random branch,
//   balanced   — Algorithm 1's weighted depth-bin branch (w1=4, w2=1),
//   uncertainty— pick the candidates where a deep ensemble disagrees most.
// After every extension round each policy's predictor is evaluated on the
// same held-out test set (overall and worst depth bin).
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "esm/evaluator.hpp"
#include "esm/extension.hpp"
#include "surrogate/ensemble_surrogate.hpp"

using namespace esm;
using namespace esm::bench;

namespace {

struct PolicyState {
  std::string name;
  std::vector<MeasuredSample> train;
  double overall = 0.0;
  double min_bin = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Extension: uncertainty-guided dataset extension");
  args.add_int("n-initial", 300, "initial samples");
  args.add_int("n-step", 100, "samples per extension round");
  args.add_int("rounds", 6, "extension rounds");
  args.add_int("candidates", 2000, "candidate pool per uncertainty round");
  args.add_int("members", 4, "ensemble members");
  args.add_int("epochs", 120, "training epochs");
  args.add_int("seed", 61, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const SupernetSpec spec = resnet_spec();
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const int n_initial = static_cast<int>(args.get_int("n-initial"));
  const int n_step = static_cast<int>(args.get_int("n-step"));
  const int rounds = static_cast<int>(args.get_int("rounds"));
  const auto n_candidates =
      static_cast<std::size_t>(args.get_int("candidates"));
  const auto members = static_cast<std::size_t>(args.get_int("members"));
  const int epochs = static_cast<int>(args.get_int("epochs"));

  EsmConfig cfg = dataset_config(spec);
  cfg.n_step = n_step;

  SimulatedDevice device(rtx4090_spec(), seed * 7 + 5);
  DatasetGenerator generator(cfg, device, Rng(seed));

  // Shared initial set and shared balanced test set.
  Rng rng(seed + 1);
  BalancedSampler init_sampler(spec, cfg.n_bins);
  const auto initial =
      generator.measure_batch(init_sampler.sample_n(
          static_cast<std::size_t>(n_initial), rng)).samples;
  const auto test_set = generator.measure_batch(
      init_sampler.sample_n(600, rng)).samples;

  const BinwiseEvaluator evaluator(spec, cfg.n_bins, cfg.acc_threshold);
  RandomSampler candidate_sampler(spec);

  std::vector<PolicyState> policies{{"random", initial},
                                    {"balanced (Algo 1)", initial},
                                    {"uncertainty (ensemble)", initial}};

  print_banner(std::cout, "Uncertainty-guided extension vs Algorithm 1 "
                          "(ResNet / RTX 4090)");
  TablePrinter table({"round", "policy", "train size", "overall acc",
                      "min-bin acc"});

  for (int round = 0; round <= rounds; ++round) {
    for (PolicyState& policy : policies) {
      // Fit the ensemble on the current training set (the ensemble mean is
      // also the evaluated predictor, so all policies use the same model
      // family).
      std::vector<ArchConfig> archs;
      std::vector<double> lats;
      for (const MeasuredSample& s : policy.train) {
        archs.push_back(s.arch);
        lats.push_back(s.latency_ms);
      }
      EnsembleSurrogate ensemble("fcc", spec,
                                 paper_train_config(epochs), members,
                                 seed + static_cast<std::uint64_t>(round));
      ensemble.fit(archs, lats);
      const EvalReport report = evaluator.evaluate(ensemble, test_set);
      policy.overall = report.overall_accuracy;
      policy.min_bin = report.min_bin_accuracy;
      table.add_row({std::to_string(round), policy.name,
                     std::to_string(policy.train.size()),
                     format_percent(policy.overall, 1),
                     format_percent(policy.min_bin, 1)});

      if (round == rounds) continue;
      // Extend.
      std::vector<ArchConfig> extension;
      if (policy.name == "random") {
        EsmConfig rcfg = cfg;
        rcfg.strategy = SamplingStrategy::kRandom;
        extension = extend_dataset(rcfg, report, rng);
      } else if (policy.name == "balanced (Algo 1)") {
        EsmConfig bcfg = cfg;
        bcfg.strategy = SamplingStrategy::kBalanced;
        extension = extend_dataset(bcfg, report, rng);
      } else {
        // Uncertainty: score a random candidate pool by ensemble spread and
        // keep the n_step most uncertain.
        std::vector<ArchConfig> pool =
            candidate_sampler.sample_n(n_candidates, rng);
        std::vector<std::pair<double, std::size_t>> scored;
        scored.reserve(pool.size());
        for (std::size_t i = 0; i < pool.size(); ++i) {
          scored.emplace_back(
              ensemble.predict_with_uncertainty(pool[i]).stddev_ms, i);
        }
        std::sort(scored.begin(), scored.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
        for (int i = 0; i < n_step && i < static_cast<int>(scored.size());
             ++i) {
          extension.push_back(pool[scored[static_cast<std::size_t>(i)].second]);
        }
      }
      const auto measured = generator.measure_batch(extension).samples;
      policy.train.insert(policy.train.end(), measured.begin(),
                          measured.end());
    }
  }
  table.print(std::cout);
  std::cout << "Uncertainty-guided extension concentrates measurements where "
               "the ensemble disagrees; with\nequal budgets it typically "
               "matches or beats Algorithm 1's bin weighting on the worst "
               "bin.\n";
  return 0;
}
