// Fig. 8 reproduction: predicted-vs-actual scatter comparison of the
// FCC-encoded MLP, the statistical-encoded MLP, and the lookup table, for
// ResNet (top row) and DenseNet (bottom row) on the simulated RTX 4090,
// with 8,000- and 20,000-sample training sets.
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "surrogate/mlp_surrogate.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Fig. 8: encoding-scheme scatter comparison (RTX 4090)");
  args.add_int("train-small", 8000, "small training-set size");
  args.add_int("train-large", 20000, "large training-set size");
  args.add_int("test", 4000, "test-set size");
  args.add_int("epochs", 150, "training epochs");
  args.add_int("seed", 8, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const auto n_small = static_cast<std::size_t>(args.get_int("train-small"));
  const auto n_large = static_cast<std::size_t>(args.get_int("train-large"));
  const auto n_test = static_cast<std::size_t>(args.get_int("test"));
  const int epochs = static_cast<int>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  for (const SupernetSpec& spec : {resnet_spec(), densenet_spec()}) {
    SimulatedDevice device(rtx4090_spec(), seed * 31 + 5);
    const LabeledSet pool = generate_dataset(
        spec, device, SamplingStrategy::kRandom, n_large + n_test, seed);
    LabeledSet test, train_large, train_small;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      MeasuredSample s{pool.archs[i], pool.latencies_ms[i]};
      if (i < n_test) test.add(s);
      else train_large.add(s);
    }
    for (std::size_t i = 0; i < n_small && i < train_large.size(); ++i) {
      train_small.add({train_large.archs[i], train_large.latencies_ms[i]});
    }

    for (const auto& [train, label] :
         {std::pair<const LabeledSet&, const char*>{train_small, "8k"},
          std::pair<const LabeledSet&, const char*>{train_large, "20k"}}) {
      for (EncodingKind kind :
           {EncodingKind::kFcc, EncodingKind::kStatistical}) {
        MlpSurrogate surrogate(make_encoder(kind, spec),
                               paper_train_config(epochs), seed + 2);
        surrogate.fit(train.archs, train.latencies_ms);
        const SurrogateResult r = evaluate_predictor(surrogate, test);
        print_banner(std::cout, spec.name + " / " + surrogate.name() +
                                    " / train " + label + "  (accuracy " +
                                    format_percent(r.accuracy, 1) + ")");
        print_scatter_sample(std::cout, surrogate, test, 8);
      }
    }

    // Lookup table (train-size independent; bias-corrected on the small set).
    LutSurrogate lut(spec, device);
    {
      const SurrogateResult raw = evaluate_predictor(lut, test);
      print_banner(std::cout, spec.name + " / LUT (accuracy " +
                                  format_percent(raw.accuracy, 1) + ")");
      print_scatter_sample(std::cout, lut, test, 8);
    }
    lut.fit_bias_correction(train_small.archs, train_small.latencies_ms);
    {
      const SurrogateResult bc = evaluate_predictor(lut, test);
      print_banner(std::cout, spec.name + " / LUT+BC (accuracy " +
                                  format_percent(bc.accuracy, 1) + ")");
      print_scatter_sample(std::cout, lut, test, 8);
    }
  }
  std::cout << "\nExpected shape (paper): FCC points hug the diagonal; "
               "statistical-encoding points form a\nwide cloud on ResNet; "
               "raw LUT is offset until bias correction re-centres it.\n";
  return 0;
}
