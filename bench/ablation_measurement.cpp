// Ablation C: how much of ESM's dataset quality machinery actually matters?
// On the thermally unstable RTX 3080 Max-Q we compare predictors trained on
//   (1) the full protocol  — 150-run trimmed mean + reference-model QC,
//   (2) no QC              — trimmed mean but bad sessions kept,
//   (3) naive measurement  — plain mean of 10 runs, no QC,
// all evaluated against noise-free ground-truth latencies.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "ml/metrics.hpp"
#include "nets/builder.hpp"
#include "surrogate/mlp_surrogate.hpp"

using namespace esm;
using namespace esm::bench;

namespace {

/// Measures archs without QC under a given protocol; one session per chunk.
LabeledSet measure_without_qc(const SupernetSpec& spec,
                              SimulatedDevice& device,
                              const std::vector<ArchConfig>& archs,
                              double trim_fraction) {
  LabeledSet set;
  std::size_t i = 0;
  for (const ArchConfig& arch : archs) {
    if (i++ % 200 == 0) device.begin_session();
    MeasureOptions options;
    options.keep_trace = true;
    const auto trace = device.measure(build_graph(spec, arch), options).trace;
    set.add({arch, SimulatedDevice::summarize(trace, trim_fraction)});
  }
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Ablation: measurement protocol and QC");
  args.add_int("train", 3000, "training-set size");
  args.add_int("test", 1000, "ground-truth test-set size");
  args.add_int("epochs", 150, "training epochs");
  args.add_int("seed", 29, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const SupernetSpec spec = resnet_spec();
  const DeviceSpec dspec = rtx3080_maxq_spec();
  const auto n_train = static_cast<std::size_t>(args.get_int("train"));
  const auto n_test = static_cast<std::size_t>(args.get_int("test"));
  const int epochs = static_cast<int>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // Shared architecture list so every variant labels the same samples.
  Rng rng(seed);
  BalancedSampler sampler(spec, 5);
  const std::vector<ArchConfig> train_archs = sampler.sample_n(n_train, rng);
  const std::vector<ArchConfig> test_archs = sampler.sample_n(n_test, rng);

  // Ground-truth evaluation labels (noise-free oracle).
  const LatencyModel model(dspec);
  LabeledSet truth;
  for (const ArchConfig& arch : test_archs) {
    truth.add({arch, model.true_latency_ms(build_graph(spec, arch))});
  }

  print_banner(std::cout, "Measurement-protocol ablation (" + dspec.name +
                              ", evaluated against noise-free latency)");
  TablePrinter table({"labeling protocol", "accuracy vs ground truth",
                      "label noise (mean |label/true - 1|)"});

  auto run_variant = [&](const std::string& name, const LabeledSet& train) {
    // Label-noise diagnostic.
    double label_err = 0.0;
    for (std::size_t i = 0; i < train.size(); ++i) {
      const double t =
          model.true_latency_ms(build_graph(spec, train.archs[i]));
      label_err += std::abs(train.latencies_ms[i] / t - 1.0);
    }
    label_err /= static_cast<double>(train.size());

    MlpSurrogate surrogate(make_encoder(EncodingKind::kFcc, spec),
                           paper_train_config(epochs), seed + 7);
    surrogate.fit(train.archs, train.latencies_ms);
    const SurrogateResult r = evaluate_predictor(surrogate, truth);
    table.add_row({name, format_percent(r.accuracy, 1),
                   format_percent(label_err, 2)});
  };

  // (1) Full protocol: QC-controlled sessions.
  {
    SimulatedDevice device(dspec, seed * 41 + 1);
    EsmConfig cfg = dataset_config(spec);
    DatasetGenerator generator(cfg, device, Rng(seed + 1));
    LabeledSet train;
    for (std::size_t off = 0; off < train_archs.size(); off += 500) {
      const std::size_t end = std::min(off + 500, train_archs.size());
      const std::vector<ArchConfig> chunk(train_archs.begin() + static_cast<long>(off),
                                          train_archs.begin() + static_cast<long>(end));
      for (const MeasuredSample& s : generator.measure_batch(chunk).samples) {
        train.add(s);
      }
    }
    run_variant("150-run trimmed mean + reference QC (paper)", train);
  }
  // (2) Trimmed mean, no QC.
  {
    SimulatedDevice device(dspec, seed * 41 + 1);
    run_variant("150-run trimmed mean, no QC",
                measure_without_qc(spec, device, train_archs, 0.2));
  }
  // (3) Naive: plain mean of 10 runs, no QC.
  {
    DeviceSpec naive = dspec;
    SimulatedDevice device(naive, seed * 41 + 1);
    MeasurementProtocol protocol;
    protocol.runs = 10;
    protocol.warmup_runs = 0;
    SimulatedDevice fast(naive, seed * 41 + 1, protocol);
    run_variant("plain mean of 10 runs, no QC",
                measure_without_qc(spec, fast, train_archs, 0.0));
  }

  table.print(std::cout);
  std::cout << "The full protocol yields the cleanest labels and the best "
               "predictor; dropping QC admits\nthrottled sessions, and the "
               "naive 10-run mean also absorbs warm-up and outlier spikes.\n";
  return 0;
}
