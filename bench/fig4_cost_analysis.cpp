// Fig. 4 reproduction: the cost of data acquisition vs predictor training.
//
// (a) The simulated wall-clock time to measure ONE model's latency (150
//     timed runs + warm-up + host overhead per run on the RTX 4090) is
//     compared with the real wall-clock time this machine needs to train
//     the paper's MLP predictor on 8,000+ samples. The paper's point: one
//     latency measurement costs about as much as an entire predictor
//     training run, so datasets are the expensive resource.
// (b) Per-run latency traces for three architectures, showing the
//     fluctuation (warm-up, jitter, outliers) that forces the 150-run
//     trimmed-mean protocol.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "nets/builder.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Fig. 4: measurement cost vs training cost");
  args.add_int("models", 20, "models to measure for the cost average");
  args.add_int("train", 8000, "training-set size for the timing run");
  args.add_int("epochs", 150, "training epochs");
  args.add_string("fault-profile", "none",
                  "also show acquisition cost under this fault profile "
                  "(preset or key=value pairs)");
  args.add_string("journal", "",
                  "campaign journal for the fault-profile acquisition run: "
                  "batches are journaled and a re-run resumes from it "
                  "(output stays byte-identical); empty = off");
  if (!args.parse(argc, argv)) return 0;

  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(rtx4090_spec(), 11);
  Rng rng(12);
  RandomSampler sampler(spec);

  // --- (a) measurement cost per model ---------------------------------
  const int n_models = static_cast<int>(args.get_int("models"));
  device.reset_measurement_cost();
  for (int i = 0; i < n_models; ++i) {
    device.begin_session();
    (void)device.measure(build_graph(spec, sampler.sample(rng)));
  }
  const double per_model_s =
      device.measurement_cost_seconds() / static_cast<double>(n_models);

  // Training cost: fit the paper MLP on `train` samples (labels from the
  // deterministic model — label values do not affect training time).
  const auto n_train = static_cast<std::size_t>(args.get_int("train"));
  LabeledSet train;
  const LatencyModel model(rtx4090_spec());
  for (std::size_t i = 0; i < n_train; ++i) {
    const ArchConfig arch = sampler.sample(rng);
    train.add({arch, model.true_latency_ms(build_graph(spec, arch))});
  }
  LabeledSet probe;
  for (std::size_t i = 0; i < 10; ++i) {
    probe.add({train.archs[i], train.latencies_ms[i]});
  }
  const SurrogateResult fit = run_mlp_experiment(
      EncodingKind::kFcc, spec, train, probe, 1,
      static_cast<int>(args.get_int("epochs")));

  print_banner(std::cout, "Fig. 4a: latency-measurement vs training time");
  TablePrinter costs({"operation", "wall-clock seconds"});
  costs.add_row({"measure ONE model (150 runs + warm-up, simulated RTX 4090)",
                 format_double(per_model_s, 2)});
  costs.add_row({"train MLP predictor on " + std::to_string(n_train) +
                     " samples (this machine)",
                 format_double(fit.train_seconds, 2)});
  costs.add_row({"measure 8000 models (extrapolated)",
                 format_double(per_model_s * 8000.0, 0)});
  costs.print(std::cout);
  std::cout << "Paper's point: one measurement ~ one full predictor "
               "training -> data acquisition dominates,\nmotivating the "
               "train-evaluate-extend loop with early exit.\n";

  // Optional: the same acquisition under an unreliable device. Retries and
  // backoff are charged in simulated seconds, so the per-sample cost rises
  // visibly. Printed only for a nonzero profile, keeping the default run
  // byte-identical to the fault-free bench.
  const FaultProfile fault_profile =
      parse_fault_profile(args.get_string("fault-profile"));
  if (fault_profile.any()) {
    SimulatedDevice faulty(rtx4090_spec(), 11);
    EsmConfig fault_cfg = dataset_config(spec);
    fault_cfg.faults = fault_profile;
    fault_cfg.journal.path = args.get_string("journal");
    fault_cfg.journal.resume = fault_cfg.journal.enabled();
    Rng gen_rng(12);
    DatasetGenerator generator(fault_cfg, faulty, gen_rng.split());
    RandomSampler fault_sampler(spec);
    Rng arch_rng(13);
    const BatchResult batch = generator.measure_batch(
        fault_sampler.sample_n(static_cast<std::size_t>(n_models), arch_rng));
    const double per_sample =
        batch.report.measured == 0
            ? 0.0
            : batch.report.cost_seconds /
                  static_cast<double>(batch.report.measured);
    print_banner(std::cout, "Fig. 4a addendum: acquisition cost under "
                            "faults (profile: " +
                                args.get_string("fault-profile") + ")");
    TablePrinter fault_costs({"metric", "value"});
    fault_costs.add_row({"samples measured / requested",
                         std::to_string(batch.report.measured) + " / " +
                             std::to_string(batch.report.requested)});
    fault_costs.add_row({"retries / timeouts / read errors",
                         std::to_string(batch.report.retries) + " / " +
                             std::to_string(batch.report.timeouts) + " / " +
                             std::to_string(batch.report.read_errors)});
    fault_costs.add_row({"per-sample cost, fault-free (simulated s)",
                         format_double(per_model_s, 2)});
    fault_costs.add_row({"per-sample cost with retries (simulated s)",
                         format_double(per_sample, 2)});
    fault_costs.add_row({"  of which backoff (simulated s, whole batch)",
                         format_double(batch.report.backoff_seconds, 2)});
    fault_costs.print(std::cout);
  }

  // --- (b) per-run fluctuation ----------------------------------------
  print_banner(std::cout, "Fig. 4b: latency across inferences (every 10th "
                          "of 150 runs)");
  TablePrinter trace_table({"run#", "config A (ms)", "config B (ms)",
                            "config C (ms)"});
  std::vector<std::vector<double>> traces;
  std::vector<double> trimmed;
  for (int c = 0; c < 3; ++c) {
    device.begin_session();
    const LayerGraph g = build_graph(spec, sampler.sample(rng));
    MeasureOptions trace_options;
    trace_options.keep_trace = true;
    traces.push_back(device.measure(g, trace_options).trace);
    trimmed.push_back(SimulatedDevice::summarize(traces.back(), 0.2));
  }
  for (std::size_t run = 0; run < traces[0].size(); run += 10) {
    trace_table.add_row({std::to_string(run),
                         format_double(traces[0][run], 3),
                         format_double(traces[1][run], 3),
                         format_double(traces[2][run], 3)});
  }
  trace_table.print(std::cout);
  TablePrinter protocol({"config", "raw mean (ms)", "trimmed mean (ms)",
                         "raw CV"});
  const char* names[] = {"A", "B", "C"};
  for (int c = 0; c < 3; ++c) {
    protocol.add_row(
        {names[c], format_double(mean(traces[static_cast<std::size_t>(c)]), 3),
         format_double(trimmed[static_cast<std::size_t>(c)], 3),
         format_percent(coefficient_of_variation(
                            traces[static_cast<std::size_t>(c)]),
                        1)});
  }
  protocol.print(std::cout);
  return 0;
}
