// Fig. 3 reproduction (motivational case study): does more training data fix
// the statistical (summary) encoding?
//
// For the ResNet and DenseNet spaces, 24,000 random samples are measured on
// the simulated RTX 4090; an MLP with the SoTA statistical encoding is
// trained on 8,000 and on 20,000 samples and tested on 4,000. The paper's
// finding: the extra 12,000 samples do NOT meaningfully improve accuracy
// (the encoding's overlapping representations are the bottleneck), and the
// smaller DenseNet space scores much higher than ResNet.
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "surrogate/mlp_surrogate.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Fig. 3: statistical-encoding accuracy vs training-set size");
  args.add_int("train-small", 8000, "small training-set size");
  args.add_int("train-large", 20000, "large training-set size");
  args.add_int("test", 4000, "test-set size");
  args.add_int("epochs", 150, "training epochs");
  args.add_int("seed", 1, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const auto n_small = static_cast<std::size_t>(args.get_int("train-small"));
  const auto n_large = static_cast<std::size_t>(args.get_int("train-large"));
  const auto n_test = static_cast<std::size_t>(args.get_int("test"));
  const int epochs = static_cast<int>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  print_banner(std::cout,
               "Fig. 3: statistical encoding, 8k vs 20k training samples "
               "(simulated RTX 4090)");

  TablePrinter summary({"Space", "train size", "avg accuracy", "RMSE (ms)",
                        "Kendall tau"});
  for (const SupernetSpec& spec : {resnet_spec(), densenet_spec()}) {
    SimulatedDevice device(rtx4090_spec(), seed * 7919 + 1);
    const LabeledSet pool = generate_dataset(
        spec, device, SamplingStrategy::kRandom, n_large + n_test, seed);

    LabeledSet test;
    LabeledSet train_large;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      MeasuredSample s{pool.archs[i], pool.latencies_ms[i]};
      if (i < n_test) test.add(s);
      else train_large.add(s);
    }
    LabeledSet train_small;
    for (std::size_t i = 0; i < n_small && i < train_large.size(); ++i) {
      train_small.add(
          {train_large.archs[i], train_large.latencies_ms[i]});
    }

    const SurrogateResult small = run_mlp_experiment(
        EncodingKind::kStatistical, spec, train_small, test, seed + 1, epochs);
    const SurrogateResult large = run_mlp_experiment(
        EncodingKind::kStatistical, spec, train_large, test, seed + 1, epochs);

    summary.add_row({spec.name, std::to_string(train_small.size()),
                     format_percent(small.accuracy, 1),
                     format_double(small.rmse_ms, 3),
                     format_double(small.kendall, 3)});
    summary.add_row({spec.name, std::to_string(train_large.size()),
                     format_percent(large.accuracy, 1),
                     format_double(large.rmse_ms, 3),
                     format_double(large.kendall, 3)});

    // Scatter excerpts (Fig. 3a-d analogue).
    print_banner(std::cout, spec.name + ": actual vs predicted, trained on " +
                                std::to_string(train_small.size()));
    MlpSurrogate s_small(make_encoder(EncodingKind::kStatistical, spec),
                         paper_train_config(epochs), seed + 1);
    s_small.fit(train_small.archs, train_small.latencies_ms);
    print_scatter_sample(std::cout, s_small, test, 8);
  }

  print_banner(std::cout, "Fig. 3e: average accuracy summary");
  summary.print(std::cout);
  std::cout << "Expected shape (paper): enlarging the training set from 8k "
               "to 20k barely moves accuracy,\nand DenseNet (small space) "
               "scores much higher than ResNet (huge, diverse space).\n";
  return 0;
}
