// Fig. 2 reproduction: the impact of latency-prediction inaccuracy on NAS
// outcomes.
//
// (a) 243 ResNet variants (3^4 per-unit depth choices x 3 width-expansion
//     settings — the closest analogue of the paper's 243 depth variants of
//     the OFA ResNet50 supernet) are placed on the accuracy-vs-latency
//     plane using the simulated RTX 4090 and the synthetic accuracy proxy.
// (b) The true Pareto front is compared against fronts identified under
//     increasingly inaccurate latency predictions: front overlap (Jaccard)
//     and accuracy regret quantify how Pareto-optimal points "move".
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "nas/accuracy_proxy.hpp"
#include "nas/pareto.hpp"
#include "nets/builder.hpp"

using namespace esm;

int main() {
  const SupernetSpec spec = resnet_spec();
  const LatencyModel model(rtx4090_spec());
  const AccuracyProxy proxy(spec);

  // --- enumerate the 243 variants -------------------------------------
  const std::vector<int> depth_options{2, 4, 7};
  const std::vector<double> expansion_options = spec.expansion_options;
  std::vector<ArchConfig> variants;
  std::vector<double> latency, accuracy;
  for (int d0 : depth_options) {
    for (int d1 : depth_options) {
      for (int d2 : depth_options) {
        for (int d3 : depth_options) {
          for (double e : expansion_options) {
            ArchConfig arch;
            arch.kind = spec.kind;
            for (int depth : {d0, d1, d2, d3}) {
              UnitConfig unit;
              for (int b = 0; b < depth; ++b) unit.blocks.push_back({3, e});
              arch.units.push_back(unit);
            }
            variants.push_back(arch);
            latency.push_back(
                model.true_latency_ms(build_graph(spec, arch)));
            accuracy.push_back(proxy.top5_accuracy(arch));
          }
        }
      }
    }
  }

  print_banner(std::cout, "Fig. 2a: top-5 accuracy vs latency, 243 ResNet "
                          "variants (simulated RTX 4090)");
  std::cout << "variants: " << variants.size() << ", latency range ["
            << format_double(*std::min_element(latency.begin(), latency.end()), 2)
            << ", "
            << format_double(*std::max_element(latency.begin(), latency.end()), 2)
            << "] ms\n";

  // Coarse text rendition of the cloud: accuracy stats per latency band.
  {
    TablePrinter cloud({"latency band (ms)", "variants", "top-5 acc range"});
    const double lo = *std::min_element(latency.begin(), latency.end());
    const double hi = *std::max_element(latency.begin(), latency.end());
    const int bands = 6;
    for (int b = 0; b < bands; ++b) {
      const double band_lo = lo + (hi - lo) * b / bands;
      const double band_hi = lo + (hi - lo) * (b + 1) / bands;
      double amin = 1.0, amax = 0.0;
      int count = 0;
      for (std::size_t i = 0; i < latency.size(); ++i) {
        if (latency[i] >= band_lo &&
            (latency[i] < band_hi || b == bands - 1)) {
          amin = std::min(amin, accuracy[i]);
          amax = std::max(amax, accuracy[i]);
          ++count;
        }
      }
      cloud.add_row({format_double(band_lo, 2) + "-" + format_double(band_hi, 2),
                     std::to_string(count),
                     count > 0 ? format_percent(amin, 1) + " - " +
                                     format_percent(amax, 1)
                               : "-"});
    }
    cloud.print(std::cout);
  }

  const std::vector<std::size_t> true_front = pareto_front(latency, accuracy);
  std::cout << "true Pareto front size: " << true_front.size() << "\n";

  // --- Fig. 2b: perturb the latency estimates -------------------------
  print_banner(std::cout, "Fig. 2b: Pareto-front displacement under latency "
                          "prediction error");
  TablePrinter table({"prediction error (rel. std)", "front overlap (Jaccard)",
                      "accuracy regret", "trials"});
  Rng rng(2025);
  for (double noise : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    RunningStats jaccard, regret;
    const int trials = noise == 0.0 ? 1 : 25;
    for (int t = 0; t < trials; ++t) {
      std::vector<double> predicted(latency.size());
      for (std::size_t i = 0; i < latency.size(); ++i) {
        predicted[i] = latency[i] * (1.0 + rng.normal(0.0, noise));
      }
      const auto front = pareto_front(predicted, accuracy);
      jaccard.add(index_jaccard(true_front, front));
      regret.add(pareto_regret(latency, accuracy, true_front, front));
    }
    table.add_row({format_percent(noise, 0), format_double(jaccard.mean(), 3),
                   format_percent(regret.mean(), 2),
                   std::to_string(trials)});
  }
  table.print(std::cout);
  std::cout << "Takeaway: a few percent of latency error already displaces "
               "Pareto-optimal points\n(front overlap drops well below 1), "
               "motivating accurate surrogates.\n";
  return 0;
}
