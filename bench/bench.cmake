# Benchmark harness: one executable per paper table/figure plus ablations
# and a google-benchmark micro suite. Binaries land in build/bench/.

add_library(esm_benchutil STATIC bench/bench_util.cpp)
target_include_directories(esm_benchutil PUBLIC ${CMAKE_SOURCE_DIR}/src ${CMAKE_SOURCE_DIR}/bench)
target_link_libraries(esm_benchutil PUBLIC
  esm_core esm_nas esm_surrogate esm_encoding esm_ml esm_hwsim esm_nets
  esm_nn esm_linalg esm_common)

function(esm_bench name)
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE esm_benchutil esm_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

esm_bench(table1_arch_spaces)
esm_bench(fig2_pareto_impact)
esm_bench(fig3_motivation)
esm_bench(fig4_cost_analysis)
esm_bench(fig6_reference_qc)
esm_bench(fig8_encoding_scatter)
esm_bench(fig9_encoding_accuracy)
esm_bench(fig10_device_sweep)
esm_bench(fig11_sampling_convergence)
esm_bench(ablation_encodings)
esm_bench(ablation_models)
esm_bench(ablation_measurement)

add_executable(micro_perf bench/micro_perf.cpp)
target_link_libraries(micro_perf PRIVATE esm_benchutil esm_warnings benchmark::benchmark)
set_target_properties(micro_perf PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
esm_bench(serve_throughput)
target_link_libraries(serve_throughput PRIVATE esm_serve)

esm_bench(extension_energy)
esm_bench(extension_transfer)
esm_bench(extension_active_sampling)
