#include "bench_util.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "ml/metrics.hpp"

namespace esm::bench {

EsmConfig dataset_config(const SupernetSpec& spec) {
  EsmConfig cfg;
  cfg.spec = spec;
  cfg.n_bins = 5;
  cfg.n_reference_models = 8;
  cfg.qc_variance_limit = 0.03;
  return cfg;
}

LabeledSet generate_dataset(const SupernetSpec& spec, SimulatedDevice& device,
                            SamplingStrategy strategy, std::size_t n,
                            std::uint64_t seed) {
  const EsmConfig cfg = dataset_config(spec);
  Rng rng(seed);
  DatasetGenerator generator(cfg, device, rng.split());
  auto sampler = make_sampler(spec, strategy, cfg.n_bins);
  Rng sample_rng = rng.split();

  LabeledSet set;
  // Measure in batches of 500 — each batch is one QC-controlled session,
  // matching how a long measurement campaign is actually split up.
  constexpr std::size_t kBatch = 500;
  std::size_t remaining = n;
  while (remaining > 0) {
    const std::size_t take = std::min(kBatch, remaining);
    const auto archs = sampler->sample_n(take, sample_rng);
    for (const MeasuredSample& s : generator.measure_batch(archs).samples) {
      set.add(s);
    }
    remaining -= take;
  }
  return set;
}

TrainConfig paper_train_config(int epochs) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 256;
  cfg.adam.learning_rate = 0.01;
  cfg.adam.weight_decay = 1e-4;
  return cfg;
}

SurrogateResult evaluate_predictor(const LatencyPredictor& predictor,
                                   const LabeledSet& test) {
  SurrogateResult result;
  result.name = predictor.name();
  const std::vector<double> pred = predictor.predict_all(test.archs);
  result.accuracy = mean_accuracy(pred, test.latencies_ms);
  result.rmse_ms = rmse(pred, test.latencies_ms);
  result.kendall = kendall_tau(pred, test.latencies_ms);
  return result;
}

SurrogateResult run_mlp_experiment(EncodingKind encoding,
                                   const SupernetSpec& spec,
                                   const LabeledSet& train,
                                   const LabeledSet& test,
                                   std::uint64_t seed, int epochs) {
  MlpSurrogate surrogate(make_encoder(encoding, spec),
                         paper_train_config(epochs), seed);
  const TrainResult fit = surrogate.fit(train.archs, train.latencies_ms);
  SurrogateResult result = evaluate_predictor(surrogate, test);
  result.train_seconds = fit.train_seconds;
  return result;
}

SurrogateResult run_lut_experiment(const SupernetSpec& spec,
                                   SimulatedDevice& device,
                                   const LabeledSet& train,
                                   const LabeledSet& test,
                                   bool bias_correction) {
  LutSurrogate lut(spec, device);
  if (bias_correction) {
    lut.fit_bias_correction(train.archs, train.latencies_ms);
  }
  return evaluate_predictor(lut, test);
}

void print_scatter_sample(std::ostream& os, const LatencyPredictor& predictor,
                          const LabeledSet& test, std::size_t n_points) {
  const std::size_t n = std::min(n_points, test.size());
  TablePrinter table({"actual (ms)", "predicted (ms)", "error"});
  // Spread the excerpt across the latency range: sort by actual latency and
  // take evenly spaced points.
  std::vector<std::size_t> order(test.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return test.latencies_ms[a] < test.latencies_ms[b];
  });
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = order[i * (test.size() - 1) / std::max<std::size_t>(1, n - 1)];
    const double actual = test.latencies_ms[idx];
    const double pred = predictor.predict_ms(test.archs[idx]);
    table.add_row({format_double(actual, 3), format_double(pred, 3),
                   format_percent(std::abs(pred - actual) / actual, 1)});
  }
  table.print(os);
}

void write_parallel_bench_json(
    const std::string& path,
    const std::vector<ParallelBenchRecord>& records,
    const ParallelBenchMeta& meta) {
  std::ofstream out(path);
  ESM_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << "{\n";
  out << "  \"meta\": {\"backend\": \"" << meta.backend
      << "\", \"simd_width\": " << meta.simd_width
      << ", \"fma\": " << (meta.fma ? "true" : "false")
      << ", \"peak_gflops\": " << meta.peak_gflops
      << ", \"threads\": " << meta.threads << "},\n";
  out << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ParallelBenchRecord& r = records[i];
    const double speedup =
        r.threaded_ns > 0.0 ? r.serial_ns / r.threaded_ns : 0.0;
    out << "    {\"name\": \"" << r.name
        << "\", \"serial_ns\": " << r.serial_ns
        << ", \"threaded_ns\": " << r.threaded_ns
        << ", \"threads\": " << r.threads << ", \"speedup\": " << speedup
        << ", \"identical\": " << (r.identical ? "true" : "false");
    if (r.flops > 0.0) {
      // ns -> s cancels the G in GFLOPS: flops / ns == Gflops / s.
      out << ", \"gflops_serial\": " << (r.serial_ns > 0.0 ? r.flops / r.serial_ns : 0.0)
          << ", \"gflops_threaded\": " << (r.threaded_ns > 0.0 ? r.flops / r.threaded_ns : 0.0);
      if (meta.peak_gflops > 0.0 && r.serial_ns > 0.0) {
        out << ", \"fraction_of_peak\": "
            << (r.flops / r.serial_ns) / meta.peak_gflops;
      }
      if (r.bytes > 0.0) {
        out << ", \"arithmetic_intensity\": " << r.flops / r.bytes;
      }
    }
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace esm::bench
