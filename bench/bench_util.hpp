// Shared experiment plumbing for the paper-reproduction bench binaries:
// QC-controlled dataset generation, surrogate training/evaluation, and
// result-table helpers. Every fig*/table* binary builds on these so the
// experimental methodology is identical across figures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "esm/config.hpp"
#include "esm/dataset_gen.hpp"
#include "hwsim/measurement.hpp"
#include "ml/trainer.hpp"
#include "nets/sampler.hpp"
#include "surrogate/lut_surrogate.hpp"
#include "surrogate/mlp_surrogate.hpp"
#include "surrogate/predictor.hpp"

namespace esm::bench {

/// Architecture/latency pairs plus the archs/latency split views the
/// surrogates consume.
struct LabeledSet {
  std::vector<ArchConfig> archs;
  std::vector<double> latencies_ms;

  void add(const MeasuredSample& sample) {
    archs.push_back(sample.arch);
    latencies_ms.push_back(sample.latency_ms);
  }
  std::size_t size() const { return archs.size(); }
};

/// Default experiment configuration for dataset generation (QC settings
/// follow the paper: 150-run protocol, 3 % reference boundary).
EsmConfig dataset_config(const SupernetSpec& spec);

/// Measures `n` architectures drawn by `strategy` under reference-model QC
/// (the paper's dataset-generation pipeline).
LabeledSet generate_dataset(const SupernetSpec& spec, SimulatedDevice& device,
                            SamplingStrategy strategy, std::size_t n,
                            std::uint64_t seed);

/// The paper's default trainer (3x64 MLP, Adam 0.01/1e-4), tunable epochs.
TrainConfig paper_train_config(int epochs = 150);

/// Outcome of one surrogate evaluation.
struct SurrogateResult {
  std::string name;
  double accuracy = 0.0;       ///< mean sample accuracy (100% - MAPE)
  double rmse_ms = 0.0;
  double kendall = 0.0;        ///< rank preservation
  double train_seconds = 0.0;  ///< wall-clock fit time (0 for LUT)
};

/// Trains an MLP surrogate with the given encoding and evaluates it.
SurrogateResult run_mlp_experiment(EncodingKind encoding,
                                   const SupernetSpec& spec,
                                   const LabeledSet& train,
                                   const LabeledSet& test,
                                   std::uint64_t seed, int epochs = 150);

/// Builds a LUT surrogate (optionally bias-corrected on `train`) and
/// evaluates it.
SurrogateResult run_lut_experiment(const SupernetSpec& spec,
                                   SimulatedDevice& device,
                                   const LabeledSet& train,
                                   const LabeledSet& test,
                                   bool bias_correction);

/// Evaluates any predictor against a labeled test set.
SurrogateResult evaluate_predictor(const LatencyPredictor& predictor,
                                   const LabeledSet& test);

/// Prints a short "predicted vs actual" scatter excerpt (text rendition of
/// the paper's scatter plots).
void print_scatter_sample(std::ostream& os, const LatencyPredictor& predictor,
                          const LabeledSet& test, std::size_t n_points);

/// One serial-vs-threaded timing of a hot path, for BENCH_parallel.json.
struct ParallelBenchRecord {
  std::string name;
  double serial_ns = 0.0;    ///< best-of-reps wall time, 1 thread
  double threaded_ns = 0.0;  ///< best-of-reps wall time, `threads` threads
  int threads = 1;
  bool identical = false;    ///< threaded output bit-matched the serial run
  double flops = 0.0;  ///< useful arithmetic ops per run (0: not a FLOP kernel)
  double bytes = 0.0;  ///< compulsory bytes moved per run (0: skip intensity)
};

/// Build/host facts the GFLOPS columns are judged against.
struct ParallelBenchMeta {
  std::string backend;        ///< gemm_backend(): avx512 / avx2 / ...
  std::size_t simd_width = 1; ///< doubles per vector lane group
  bool fma = false;           ///< kernel built with fused multiply-add
  double peak_gflops = 0.0;   ///< measured single-core FP peak (gemm_peak_gflops)
  int threads = 1;
};

/// Writes `{"meta": ..., "records": [...]}` to `path`. Each record carries
/// derived speedup; records with `flops` set also get achieved GFLOPS
/// (serial and threaded), and with `bytes` set the arithmetic intensity
/// (flops/byte, using compulsory traffic, so an upper bound) plus the
/// serial fraction of the measured single-core peak.
void write_parallel_bench_json(const std::string& path,
                               const std::vector<ParallelBenchRecord>& records,
                               const ParallelBenchMeta& meta);

}  // namespace esm::bench
