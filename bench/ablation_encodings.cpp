// Ablation A: all five encoding schemes (including the one-hot and
// per-slot-feature baselines the paper discusses but does not plot) on the
// vector-size / sparsity / accuracy trade-off, for ResNet and DenseNet on
// the simulated RTX 4090. This quantifies the paper's §II-C.4 narrative:
// one-hot is long and sparse, statistical is short but collapses
// information, FCC balances both.
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Ablation: encoding size/sparsity/accuracy trade-off");
  args.add_int("train", 6000, "training-set size");
  args.add_int("test", 1500, "test-set size");
  args.add_int("epochs", 150, "training epochs");
  args.add_int("seed", 21, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const auto n_train = static_cast<std::size_t>(args.get_int("train"));
  const auto n_test = static_cast<std::size_t>(args.get_int("test"));
  const int epochs = static_cast<int>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  for (const SupernetSpec& spec : {resnet_spec(), densenet_spec()}) {
    SimulatedDevice device(rtx4090_spec(), seed * 17 + 3);
    const LabeledSet pool = generate_dataset(
        spec, device, SamplingStrategy::kRandom, n_train + n_test, seed);
    LabeledSet train, test;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      MeasuredSample s{pool.archs[i], pool.latencies_ms[i]};
      if (i < n_test) test.add(s);
      else train.add(s);
    }

    print_banner(std::cout, "Encoding ablation: " + spec.name +
                                " (train " + std::to_string(train.size()) +
                                ", simulated RTX 4090)");
    TablePrinter table({"Encoding", "dim", "avg sparsity", "accuracy",
                        "Kendall tau", "train (s)"});
    for (EncodingKind kind : all_encoding_kinds()) {
      auto encoder = make_encoder(kind, spec);
      double sparsity = 0.0;
      const std::size_t probe = std::min<std::size_t>(test.size(), 200);
      for (std::size_t i = 0; i < probe; ++i) {
        sparsity += encoder->sparsity(test.archs[i]);
      }
      sparsity /= static_cast<double>(probe);

      const SurrogateResult r =
          run_mlp_experiment(kind, spec, train, test, seed + 5, epochs);
      table.add_row({encoder->name(), std::to_string(encoder->dimension()),
                     format_percent(sparsity, 1),
                     format_percent(r.accuracy, 1),
                     format_double(r.kendall, 3),
                     format_double(r.train_seconds, 1)});
    }
    table.print(std::cout);
  }
  std::cout << "Expected shape: FCC reaches the top accuracy with a short, "
               "moderately dense vector; one-hot\nneeds the longest vector; "
               "statistical is shortest but least accurate on ResNet.\n";
  return 0;
}
