// Serving throughput benchmark: drives the online prediction server over
// in-process streams and reports sustained requests/s plus client-observed
// latency percentiles for cold vs warm cache at 1 and 8 client threads,
// plus a two-model routed fleet scenario with per-model warm req/s, plus
// the event-loop front end under 1/8/256/4096 concurrent connections for
// each wire protocol (newline esm1 and binary esm2, both pipelined eight
// requests deep per connection so the offered load matches and only the
// wire format differs). Writes BENCH_serve.json next to the binary.
//
//   ./serve_throughput [--requests N] [--pool N] [--out PATH]
//
// "cold" runs with the prediction cache disabled, so every request goes
// through the batcher and predict_all; "warm" primes the cache with the
// whole request pool first, so the measured phase is answered from the
// sharded LRU. Both phases issue the same request sequence, so the pair
// isolates the cache's contribution. The fleet scenario serves a two-model
// manifest and alternates routed requests between the models, measuring
// what routing and per-model caches cost relative to single-model warm.
// Event-loop scenarios run warm and self-check: any dropped connection,
// request error, or stats identity violation aborts the benchmark with a
// nonzero exit.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "encoding/registry.hpp"
#include "ml/gbdt.hpp"
#include "nets/builder.hpp"
#include "serve/client.hpp"
#include "serve/event_loop.hpp"
#include "serve/fleet.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "surrogate/gbdt_surrogate.hpp"
#include "surrogate/registry.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Trains a small GBDT on ResNet and saves it where the server can load it.
/// `label_scale` makes fleet variants with genuinely different bytes.
std::string build_artifact(const std::string& name, double label_scale) {
  const esm::SupernetSpec spec = esm::resnet_spec();
  esm::SimulatedDevice device(esm::rtx4090_spec(), 7);
  esm::Rng rng(0x5eed);
  esm::BalancedSampler sampler(spec, 4);
  const std::vector<esm::ArchConfig> archs = sampler.sample_n(64, rng);
  std::vector<double> labels;
  labels.reserve(archs.size());
  for (const esm::ArchConfig& arch : archs) {
    labels.push_back(label_scale *
                     device.true_latency_ms(esm::build_graph(spec, arch)));
  }
  esm::GbdtConfig gbdt;
  gbdt.n_estimators = 30;
  esm::GbdtSurrogate surrogate(esm::make_encoder("fcc", spec), gbdt);
  surrogate.fit(esm::SurrogateDataset{archs, labels});
  esm::save_surrogate(surrogate, name);
  return name;
}

/// A two-model manifest routing "edge" and "cloud" at the two artifacts.
std::string build_fleet_manifest(const std::string& artifact_a,
                                 const std::string& artifact_b) {
  esm::serve::FleetManifest manifest;
  manifest.upsert(
      {"edge", esm::serve::file_crc32_hex(artifact_a), artifact_a});
  manifest.upsert(
      {"cloud", esm::serve::file_crc32_hex(artifact_b), artifact_b});
  const std::string path = "serve_bench.esmf";
  esm::serve::write_manifest_atomic(manifest, path);
  return path;
}

/// Deterministic request pool: depth combinations with rotating per-unit
/// kernel/expansion features (same shape tests/serve_test.cpp uses).
std::vector<std::string> arch_pool(std::size_t limit) {
  static const char* kFeatures[] = {"",        ":k5",       ":k7",
                                    ":k3e1",   ":k5e0.667", ":k7e1",
                                    ":k3e0.5", ":k5e1",     ":k7e0.667"};
  std::vector<std::string> pool;
  std::size_t n = 0;
  for (int a = 1; a <= 7 && pool.size() < limit; ++a)
    for (int b = 1; b <= 7 && pool.size() < limit; ++b)
      for (int c = 1; c <= 7 && pool.size() < limit; ++c)
        for (int d = 1; d <= 7 && pool.size() < limit; ++d) {
          const int depths[4] = {a, b, c, d};
          std::string request;
          for (std::size_t u = 0; u < 4; ++u) {
            if (u > 0) request += ',';
            request += std::to_string(depths[u]);
            request += kFeatures[(n + u * 3) % 9];
          }
          ++n;
          pool.push_back(std::move(request));
        }
  return pool;
}

struct PerModelResult {
  std::string model;
  std::size_t requests = 0;
  double req_per_s = 0.0;
};

struct ScenarioResult {
  std::string name;
  std::string proto;  ///< event-loop scenarios only: "esm1" or "esm2"
  int clients = 1;
  bool warm = false;
  std::size_t requests = 0;
  double req_per_s = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::vector<PerModelResult> per_model;  ///< fleet scenarios only
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p / 100.0 *
                               static_cast<double>(sorted_us.size())));
  return sorted_us[index];
}

ScenarioResult run_scenario(const std::string& artifact,
                            const std::vector<std::string>& pool, int clients,
                            bool warm, std::size_t requests_per_client) {
  esm::serve::ServeConfig config;
  config.artifact_path = artifact;
  config.cache_capacity = warm ? 4096 : 0;
  esm::serve::PredictionServer server(config);

  std::vector<esm::serve::ServeClient> sessions;
  sessions.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    esm::serve::StreamPair pair = esm::serve::make_stream_pair();
    server.serve(pair.server);
    sessions.emplace_back(pair.client);
  }
  if (warm) {
    // Prime every pool entry so the measured phase is all cache hits.
    for (const std::string& arch : pool) sessions[0].predict(arch);
  }

  std::vector<std::vector<double>> latencies_us(
      static_cast<std::size_t>(clients));
  const Clock::time_point begin = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& mine = latencies_us[static_cast<std::size_t>(c)];
      mine.reserve(requests_per_client);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const std::string& arch =
            pool[(static_cast<std::size_t>(c) * 7919 + i * 13) % pool.size()];
        const Clock::time_point start = Clock::now();
        sessions[static_cast<std::size_t>(c)].predict(arch);
        mine.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - begin).count();

  std::vector<double> all_us;
  for (const std::vector<double>& per_client : latencies_us) {
    all_us.insert(all_us.end(), per_client.begin(), per_client.end());
  }
  std::sort(all_us.begin(), all_us.end());

  ScenarioResult result;
  result.name = std::string(warm ? "warm" : "cold") + "_" +
                std::to_string(clients) +
                (clients == 1 ? "_client" : "_clients");
  result.clients = clients;
  result.warm = warm;
  result.requests = all_us.size();
  result.req_per_s =
      elapsed_s > 0.0 ? static_cast<double>(all_us.size()) / elapsed_s : 0.0;
  result.p50_us = percentile(all_us, 50);
  result.p95_us = percentile(all_us, 95);
  result.p99_us = percentile(all_us, 99);
  result.p999_us = percentile(all_us, 99.9);
  return result;
}

/// Warm routed two-model workload: every client alternates between the
/// fleet's models request by request, so each batcher round and cache
/// lookup carries mixed routes.
ScenarioResult run_fleet_scenario(const std::string& manifest,
                                  const std::vector<std::string>& pool,
                                  int clients,
                                  std::size_t requests_per_client) {
  esm::serve::ServeConfig config;
  config.artifact_path = manifest;
  config.cache_capacity = 4096;
  esm::serve::PredictionServer server(config);
  static const char* kModels[2] = {"edge", "cloud"};

  std::vector<esm::serve::ServeClient> sessions;
  sessions.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    esm::serve::StreamPair pair = esm::serve::make_stream_pair();
    server.serve(pair.server);
    sessions.emplace_back(pair.client);
  }
  // Prime both per-model caches so the measured phase is all hits.
  for (const char* model : kModels) {
    for (const std::string& arch : pool) sessions[0].predict(model, arch);
  }

  std::vector<std::vector<double>> latencies_us(
      static_cast<std::size_t>(clients));
  std::vector<std::array<std::size_t, 2>> counts(
      static_cast<std::size_t>(clients), {0, 0});
  const Clock::time_point begin = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& mine = latencies_us[static_cast<std::size_t>(c)];
      mine.reserve(requests_per_client);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const std::size_t which = (static_cast<std::size_t>(c) + i) % 2;
        const std::string& arch =
            pool[(static_cast<std::size_t>(c) * 7919 + i * 13) % pool.size()];
        const Clock::time_point start = Clock::now();
        sessions[static_cast<std::size_t>(c)].predict(kModels[which], arch);
        mine.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count());
        ++counts[static_cast<std::size_t>(c)][which];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - begin).count();

  std::vector<double> all_us;
  for (const std::vector<double>& per_client : latencies_us) {
    all_us.insert(all_us.end(), per_client.begin(), per_client.end());
  }
  std::sort(all_us.begin(), all_us.end());

  ScenarioResult result;
  result.name = "fleet_warm_" + std::to_string(clients) + "_clients";
  result.clients = clients;
  result.warm = true;
  result.requests = all_us.size();
  result.req_per_s =
      elapsed_s > 0.0 ? static_cast<double>(all_us.size()) / elapsed_s : 0.0;
  result.p50_us = percentile(all_us, 50);
  result.p95_us = percentile(all_us, 95);
  result.p99_us = percentile(all_us, 99);
  result.p999_us = percentile(all_us, 99.9);
  for (std::size_t m = 0; m < 2; ++m) {
    PerModelResult per;
    per.model = kModels[m];
    for (const auto& per_client : counts) per.requests += per_client[m];
    per.req_per_s = elapsed_s > 0.0
                        ? static_cast<double>(per.requests) / elapsed_s
                        : 0.0;
    result.per_model.push_back(std::move(per));
  }
  return result;
}

/// Event-loop front end under `conns` concurrent loopback connections,
/// all multiplexed on one reactor thread. At most eight driver threads
/// round-robin their share of the connections, keeping eight requests in
/// flight per connection for BOTH protocols (esm1 pipelines on the wire
/// too — its responses just must return in order), so the offered load is
/// identical and the wire format + completion order are the only
/// variables. Warm cache; self-checks drops, errors, and the stats
/// identities before reporting.
ScenarioResult run_event_loop_scenario(const std::string& artifact,
                                       const std::vector<std::string>& pool,
                                       int conns,
                                       std::size_t requests_per_conn,
                                       esm::serve::Protocol proto) {
  namespace serve = esm::serve;
  const bool esm2 = proto == serve::Protocol::esm2;
  const std::size_t window = 8;

  serve::ServeConfig config;
  config.artifact_path = artifact;
  config.cache_capacity = 4096;
  serve::PredictionServer server(config);
  serve::EventLoop loop(server);
  const std::shared_ptr<serve::LoopbackListener> listener =
      serve::make_loopback_listener();
  loop.add_listener(listener);
  std::thread loop_thread([&loop] { loop.run(); });

  {  // Prime every pool entry so the measured phase is all cache hits.
    serve::EsmClient primer(serve::loopback_channel(listener->connect()),
                            proto);
    for (const std::string& arch : pool) primer.predict(arch);
    primer.close();
  }

  const int driver_threads = std::min(8, conns);
  std::vector<std::vector<double>> latencies_us(
      static_cast<std::size_t>(driver_threads));
  std::atomic<std::size_t> request_errors{0};
  const Clock::time_point begin = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(driver_threads));
  for (int t = 0; t < driver_threads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t local =
          static_cast<std::size_t>(conns * (t + 1) / driver_threads -
                                   conns * t / driver_threads);
      std::vector<serve::EsmClient> clients;
      clients.reserve(local);
      for (std::size_t c = 0; c < local; ++c) {
        clients.emplace_back(serve::loopback_channel(listener->connect()),
                             proto);
      }
      std::vector<std::deque<std::pair<std::uint64_t, Clock::time_point>>>
          pending(local);
      std::vector<std::size_t> remaining(local, requests_per_conn);
      std::vector<double>& mine = latencies_us[static_cast<std::size_t>(t)];
      mine.reserve(local * requests_per_conn);
      std::size_t left = local * requests_per_conn;
      std::size_t outstanding = 0;
      std::size_t counter = 0;
      while (left > 0 || outstanding > 0) {
        // Top every connection's window up, then collect one response per
        // connection; the round-robin keeps all of them in flight at once.
        for (std::size_t c = 0; c < local; ++c) {
          while (pending[c].size() < window && remaining[c] > 0) {
            const std::string& arch =
                pool[(counter * 131 + c * 7919 +
                      static_cast<std::size_t>(t)) %
                     pool.size()];
            ++counter;
            pending[c].emplace_back(clients[c].submit("predict", arch),
                                    Clock::now());
            --remaining[c];
            --left;
            ++outstanding;
          }
        }
        for (std::size_t c = 0; c < local; ++c) {
          if (pending[c].empty()) continue;
          const auto [id, start] = pending[c].front();
          pending[c].pop_front();
          if (!clients[c].await(id).ok) ++request_errors;
          mine.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - start)
                  .count());
          --outstanding;
        }
      }
      for (serve::EsmClient& client : clients) client.close();
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - begin).count();

  // Reconcile before tearing anything down, then drain the loop.
  std::map<std::string, std::string> stats;
  {
    serve::EsmClient auditor(serve::loopback_channel(listener->connect()),
                             proto);
    stats = auditor.stats();
    auditor.close();
  }
  loop.request_stop();
  loop_thread.join();
  server.request_stop();
  server.wait();

  const serve::EventLoop::Stats loop_stats = loop.stats();
  const auto stat = [&stats](const char* key) {
    return std::stoull(stats.at(key));
  };
  ESM_REQUIRE(loop_stats.dropped == 0,
              "event-loop bench dropped " << loop_stats.dropped
                                          << " connection(s)");
  ESM_REQUIRE(request_errors.load() == 0,
              "event-loop bench saw " << request_errors.load()
                                      << " request error(s)");
  ESM_REQUIRE(stat("errors") == 0 &&
                  stat("requests") ==
                      stat("hits") + stat("misses") + stat("errors") &&
                  stat("archs") == stat("arch_hits") + stat("arch_misses"),
              "event-loop bench stats do not reconcile");

  std::vector<double> all_us;
  for (const std::vector<double>& per_thread : latencies_us) {
    all_us.insert(all_us.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all_us.begin(), all_us.end());

  ScenarioResult result;
  result.name = std::string(esm2 ? "esm2" : "esm1") + "_" +
                std::to_string(conns) +
                (conns == 1 ? "_conn" : "_conns");
  result.proto = esm2 ? "esm2" : "esm1";
  result.clients = conns;
  result.warm = true;
  result.requests = all_us.size();
  result.req_per_s =
      elapsed_s > 0.0 ? static_cast<double>(all_us.size()) / elapsed_s : 0.0;
  result.p50_us = percentile(all_us, 50);
  result.p95_us = percentile(all_us, 95);
  result.p99_us = percentile(all_us, 99);
  result.p999_us = percentile(all_us, 99.9);
  return result;
}

void write_json(const std::string& path,
                const std::vector<ScenarioResult>& results) {
  std::ofstream out(path);
  ESM_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    out << "  {\"name\": \"" << r.name << "\", \"clients\": " << r.clients
        << ", \"warm_cache\": " << (r.warm ? "true" : "false")
        << ", \"requests\": " << r.requests
        << ", \"req_per_s\": " << r.req_per_s << ", \"p50_us\": " << r.p50_us
        << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us
        << ", \"p999_us\": " << r.p999_us;
    if (!r.proto.empty()) out << ", \"proto\": \"" << r.proto << "\"";
    if (!r.per_model.empty()) {
      out << ", \"per_model\": {";
      for (std::size_t m = 0; m < r.per_model.size(); ++m) {
        const PerModelResult& per = r.per_model[m];
        out << (m > 0 ? ", " : "") << "\"" << per.model
            << "\": {\"requests\": " << per.requests
            << ", \"req_per_s\": " << per.req_per_s << "}";
      }
      out << "}";
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  esm::ArgParser args(
      "serve_throughput: requests/s and latency percentiles of the online "
      "prediction server, cold vs warm cache, 1 and 8 client threads");
  args.add_int("requests", 2000, "requests per client thread per scenario");
  args.add_int("pool", 311, "distinct architectures in the request pool");
  args.add_string("out", "BENCH_serve.json", "output JSON path");
  if (!args.parse(argc, argv)) return 0;

  const std::string artifact = build_artifact("serve_bench.esm", 1.0);
  const std::vector<std::string> pool =
      arch_pool(static_cast<std::size_t>(args.get_int("pool")));
  const std::size_t per_client =
      static_cast<std::size_t>(args.get_int("requests"));

  std::vector<ScenarioResult> results;
  for (const bool warm : {false, true}) {
    for (const int clients : {1, 8}) {
      results.push_back(run_scenario(artifact, pool, clients, warm,
                                     per_client));
      const ScenarioResult& r = results.back();
      std::cout << r.name << ": " << r.requests << " requests, "
                << static_cast<long long>(r.req_per_s) << " req/s, p50 "
                << r.p50_us << " us, p95 " << r.p95_us << " us, p99 "
                << r.p99_us << " us\n";
    }
  }

  const std::string manifest = build_fleet_manifest(
      artifact, build_artifact("serve_bench_b.esm", 1.37));
  results.push_back(run_fleet_scenario(manifest, pool, 8, per_client));
  {
    const ScenarioResult& r = results.back();
    std::cout << r.name << ": " << r.requests << " requests, "
              << static_cast<long long>(r.req_per_s) << " req/s, p50 "
              << r.p50_us << " us, p95 " << r.p95_us << " us, p99 "
              << r.p99_us << " us";
    for (const PerModelResult& per : r.per_model) {
      std::cout << ", " << per.model << " "
                << static_cast<long long>(per.req_per_s) << " req/s";
    }
    std::cout << "\n";
  }

  // Event-loop front end: both protocols at each concurrency level, the
  // same ~16k-request workload split across the connections.
  for (const int conns : {1, 8, 256, 4096}) {
    const std::size_t per_conn =
        std::max<std::size_t>(2, 16384 / static_cast<std::size_t>(conns));
    for (const esm::serve::Protocol proto :
         {esm::serve::Protocol::esm1, esm::serve::Protocol::esm2}) {
      results.push_back(
          run_event_loop_scenario(artifact, pool, conns, per_conn, proto));
      const ScenarioResult& r = results.back();
      std::cout << r.name << ": " << r.requests << " requests, "
                << static_cast<long long>(r.req_per_s) << " req/s, p50 "
                << r.p50_us << " us, p99 " << r.p99_us << " us, p999 "
                << r.p999_us << " us\n";
    }
  }

  write_json(args.get_string("out"), results);
  std::cout << "wrote " << args.get_string("out") << "\n";
  return 0;
}
