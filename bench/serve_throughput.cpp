// Serving throughput benchmark: drives the online prediction server over
// in-process streams and reports sustained requests/s plus client-observed
// latency percentiles for cold vs warm cache at 1 and 8 client threads.
// Writes BENCH_serve.json next to the binary.
//
//   ./serve_throughput [--requests N] [--pool N] [--out PATH]
//
// "cold" runs with the prediction cache disabled, so every request goes
// through the batcher and predict_all; "warm" primes the cache with the
// whole request pool first, so the measured phase is answered from the
// sharded LRU. Both phases issue the same request sequence, so the pair
// isolates the cache's contribution.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "encoding/registry.hpp"
#include "ml/gbdt.hpp"
#include "nets/builder.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "surrogate/gbdt_surrogate.hpp"
#include "surrogate/registry.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Trains a small GBDT on ResNet and saves it where the server can load it.
std::string build_artifact() {
  const esm::SupernetSpec spec = esm::resnet_spec();
  esm::SimulatedDevice device(esm::rtx4090_spec(), 7);
  esm::Rng rng(0x5eed);
  esm::BalancedSampler sampler(spec, 4);
  const std::vector<esm::ArchConfig> archs = sampler.sample_n(64, rng);
  std::vector<double> labels;
  labels.reserve(archs.size());
  for (const esm::ArchConfig& arch : archs) {
    labels.push_back(device.true_latency_ms(esm::build_graph(spec, arch)));
  }
  esm::GbdtConfig gbdt;
  gbdt.n_estimators = 30;
  esm::GbdtSurrogate surrogate(esm::make_encoder("fcc", spec), gbdt);
  surrogate.fit(esm::SurrogateDataset{archs, labels});
  const std::string path = "serve_bench.esm";
  esm::save_surrogate(surrogate, path);
  return path;
}

/// Deterministic request pool: depth combinations with rotating per-unit
/// kernel/expansion features (same shape tests/serve_test.cpp uses).
std::vector<std::string> arch_pool(std::size_t limit) {
  static const char* kFeatures[] = {"",        ":k5",       ":k7",
                                    ":k3e1",   ":k5e0.667", ":k7e1",
                                    ":k3e0.5", ":k5e1",     ":k7e0.667"};
  std::vector<std::string> pool;
  std::size_t n = 0;
  for (int a = 1; a <= 7 && pool.size() < limit; ++a)
    for (int b = 1; b <= 7 && pool.size() < limit; ++b)
      for (int c = 1; c <= 7 && pool.size() < limit; ++c)
        for (int d = 1; d <= 7 && pool.size() < limit; ++d) {
          const int depths[4] = {a, b, c, d};
          std::string request;
          for (std::size_t u = 0; u < 4; ++u) {
            if (u > 0) request += ',';
            request += std::to_string(depths[u]);
            request += kFeatures[(n + u * 3) % 9];
          }
          ++n;
          pool.push_back(std::move(request));
        }
  return pool;
}

struct ScenarioResult {
  std::string name;
  int clients = 1;
  bool warm = false;
  std::size_t requests = 0;
  double req_per_s = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p / 100.0 *
                               static_cast<double>(sorted_us.size())));
  return sorted_us[index];
}

ScenarioResult run_scenario(const std::string& artifact,
                            const std::vector<std::string>& pool, int clients,
                            bool warm, std::size_t requests_per_client) {
  esm::serve::ServeConfig config;
  config.artifact_path = artifact;
  config.cache_capacity = warm ? 4096 : 0;
  esm::serve::PredictionServer server(config);

  std::vector<esm::serve::ServeClient> sessions;
  sessions.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    esm::serve::StreamPair pair = esm::serve::make_stream_pair();
    server.serve(pair.server);
    sessions.emplace_back(pair.client);
  }
  if (warm) {
    // Prime every pool entry so the measured phase is all cache hits.
    for (const std::string& arch : pool) sessions[0].predict(arch);
  }

  std::vector<std::vector<double>> latencies_us(
      static_cast<std::size_t>(clients));
  const Clock::time_point begin = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& mine = latencies_us[static_cast<std::size_t>(c)];
      mine.reserve(requests_per_client);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const std::string& arch =
            pool[(static_cast<std::size_t>(c) * 7919 + i * 13) % pool.size()];
        const Clock::time_point start = Clock::now();
        sessions[static_cast<std::size_t>(c)].predict(arch);
        mine.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - begin).count();

  std::vector<double> all_us;
  for (const std::vector<double>& per_client : latencies_us) {
    all_us.insert(all_us.end(), per_client.begin(), per_client.end());
  }
  std::sort(all_us.begin(), all_us.end());

  ScenarioResult result;
  result.name = std::string(warm ? "warm" : "cold") + "_" +
                std::to_string(clients) +
                (clients == 1 ? "_client" : "_clients");
  result.clients = clients;
  result.warm = warm;
  result.requests = all_us.size();
  result.req_per_s =
      elapsed_s > 0.0 ? static_cast<double>(all_us.size()) / elapsed_s : 0.0;
  result.p50_us = percentile(all_us, 50);
  result.p95_us = percentile(all_us, 95);
  result.p99_us = percentile(all_us, 99);
  return result;
}

void write_json(const std::string& path,
                const std::vector<ScenarioResult>& results) {
  std::ofstream out(path);
  ESM_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    out << "  {\"name\": \"" << r.name << "\", \"clients\": " << r.clients
        << ", \"warm_cache\": " << (r.warm ? "true" : "false")
        << ", \"requests\": " << r.requests
        << ", \"req_per_s\": " << r.req_per_s << ", \"p50_us\": " << r.p50_us
        << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  esm::ArgParser args(
      "serve_throughput: requests/s and latency percentiles of the online "
      "prediction server, cold vs warm cache, 1 and 8 client threads");
  args.add_int("requests", 2000, "requests per client thread per scenario");
  args.add_int("pool", 311, "distinct architectures in the request pool");
  args.add_string("out", "BENCH_serve.json", "output JSON path");
  if (!args.parse(argc, argv)) return 0;

  const std::string artifact = build_artifact();
  const std::vector<std::string> pool =
      arch_pool(static_cast<std::size_t>(args.get_int("pool")));
  const std::size_t per_client =
      static_cast<std::size_t>(args.get_int("requests"));

  std::vector<ScenarioResult> results;
  for (const bool warm : {false, true}) {
    for (const int clients : {1, 8}) {
      results.push_back(run_scenario(artifact, pool, clients, warm,
                                     per_client));
      const ScenarioResult& r = results.back();
      std::cout << r.name << ": " << r.requests << " requests, "
                << static_cast<long long>(r.req_per_s) << " req/s, p50 "
                << r.p50_us << " us, p95 " << r.p95_us << " us, p99 "
                << r.p99_us << " us\n";
    }
  }
  write_json(args.get_string("out"), results);
  std::cout << "wrote " << args.get_string("out") << "\n";
  return 0;
}
