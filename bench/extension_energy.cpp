// Extension experiment: the ESM pipeline on the paper's OTHER performance
// characteristic — per-inference energy (§I lists "latency and energy" as
// the targets a surrogate must predict).
//
// The same encoders and MLP are trained on measured energy (a simulated
// power-logger reading with the identical 150-run trimmed-mean protocol)
// instead of latency. Expected shape: the encoding ordering carries over
// (FCC >= FC >= statistical) because energy inherits the same joint
// (kernel, expansion) structure, and the naive "energy = power x predicted
// latency" shortcut is markedly worse than a dedicated energy surrogate —
// average power varies across architectures.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "ml/metrics.hpp"
#include "nets/builder.hpp"
#include "surrogate/mlp_surrogate.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Extension: energy surrogates with the ESM pipeline");
  args.add_int("train", 5000, "training-set size");
  args.add_int("test", 1200, "test-set size");
  args.add_int("epochs", 150, "training epochs");
  args.add_int("seed", 33, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const auto n_train = static_cast<std::size_t>(args.get_int("train"));
  const auto n_test = static_cast<std::size_t>(args.get_int("test"));
  const int epochs = static_cast<int>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const SupernetSpec spec = resnet_spec();
  for (const DeviceSpec& dspec : {rtx4090_spec(), raspberry_pi4_spec()}) {
    SimulatedDevice device(dspec, seed * 101 + 9);
    // Measure energy AND latency for the same architectures.
    Rng rng(seed);
    BalancedSampler sampler(spec, 5);
    LabeledSet energy_train, energy_test, latency_train;
    std::vector<double> test_energy_truth;
    device.begin_session();
    for (std::size_t i = 0; i < n_train + n_test; ++i) {
      if (i % 300 == 0) device.begin_session();
      const ArchConfig arch = sampler.sample(rng);
      const LayerGraph g = build_graph(spec, arch);
      MeasureOptions energy_options;
      energy_options.quantity = MeasureQuantity::kEnergyMj;
      const double energy = device.measure(g, energy_options).value;
      const double latency = device.measure(g).value;
      if (i < n_train) {
        energy_train.add({arch, energy});
        latency_train.add({arch, latency});
      } else {
        energy_test.add({arch, energy});
      }
    }

    print_banner(std::cout, "Energy prediction on " + dspec.name +
                                " (train " + std::to_string(n_train) + ")");
    TablePrinter table({"Predictor", "accuracy", "Kendall tau"});
    for (EncodingKind kind :
         {EncodingKind::kFcc, EncodingKind::kFeatureCount,
          EncodingKind::kStatistical}) {
      const SurrogateResult r = run_mlp_experiment(kind, spec, energy_train,
                                                   energy_test, seed + 2,
                                                   epochs);
      table.add_row({"MLP+" + std::string(encoding_kind_name(kind)) +
                         " (energy-trained)",
                     format_percent(r.accuracy, 1),
                     format_double(r.kendall, 3)});
    }

    // Naive baseline: energy ~ constant-power x latency surrogate.
    {
      MlpSurrogate latency_surrogate(
          make_encoder(EncodingKind::kFcc, spec), paper_train_config(epochs),
          seed + 2);
      latency_surrogate.fit(latency_train.archs, latency_train.latencies_ms);
      // Fit the single power constant on the training set.
      double power_sum = 0.0;
      for (std::size_t i = 0; i < energy_train.size(); ++i) {
        power_sum += energy_train.latencies_ms[i] /
                     latency_train.latencies_ms[i];
      }
      const double mean_power =
          power_sum / static_cast<double>(energy_train.size());
      std::vector<double> pred;
      pred.reserve(energy_test.size());
      for (const ArchConfig& arch : energy_test.archs) {
        pred.push_back(mean_power * latency_surrogate.predict_ms(arch));
      }
      table.add_row({"const-power x latency-FCC (naive)",
                     format_percent(
                         mean_accuracy(pred, energy_test.latencies_ms), 1),
                     format_double(
                         kendall_tau(pred, energy_test.latencies_ms), 3)});
    }
    table.print(std::cout);
  }
  std::cout << "The encoding ordering transfers to energy, and dedicated "
               "energy surrogates beat the\nconstant-power shortcut because "
               "average power varies with the architecture's utilization.\n";
  return 0;
}
