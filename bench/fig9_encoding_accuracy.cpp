// Fig. 9 reproduction: average accuracies for the Fig. 8 cases.
//
// Paper reference values (RTX 4090):
//   ResNet   — FCC 97.6% (8k) / 97.8% (20k); statistical 85.8% / 83.1%;
//              LUT+BC 83.9%.
//   DenseNet — FCC 99%; LUT+BC 97%.
// The reproduction is expected to preserve the ordering and the "more data
// does not rescue the statistical encoding" effect, not the absolute values
// (the substrate is a simulator).
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Fig. 9: average accuracy per encoding scheme (RTX 4090)");
  args.add_int("train-small", 8000, "small training-set size");
  args.add_int("train-large", 20000, "large training-set size");
  args.add_int("test", 4000, "test-set size");
  args.add_int("epochs", 150, "training epochs");
  args.add_int("seed", 9, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const auto n_small = static_cast<std::size_t>(args.get_int("train-small"));
  const auto n_large = static_cast<std::size_t>(args.get_int("train-large"));
  const auto n_test = static_cast<std::size_t>(args.get_int("test"));
  const int epochs = static_cast<int>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  print_banner(std::cout,
               "Fig. 9: average accuracies, FCC vs statistical vs LUT "
               "(simulated RTX 4090)");
  TablePrinter table({"Space", "Model", "train", "accuracy", "Kendall tau",
                      "paper"});

  auto paper_value = [](const std::string& space, const std::string& model,
                        const std::string& train) -> std::string {
    if (space == "ResNet") {
      if (model == "MLP+fcc") return train == "8000" ? "97.6%" : "97.8%";
      if (model == "MLP+statistical") {
        return train == "8000" ? "85.8%" : "83.1%";
      }
      if (model == "LUT+BC") return "83.9%";
      if (model == "LUT") return "(not reported)";
    } else {
      if (model == "MLP+fcc") return "99%";
      if (model == "LUT+BC") return "97%";
    }
    return "-";
  };

  for (const SupernetSpec& spec : {resnet_spec(), densenet_spec()}) {
    SimulatedDevice device(rtx4090_spec(), seed * 131 + 7);
    const LabeledSet pool = generate_dataset(
        spec, device, SamplingStrategy::kRandom, n_large + n_test, seed);
    LabeledSet test, train_large, train_small;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      MeasuredSample s{pool.archs[i], pool.latencies_ms[i]};
      if (i < n_test) test.add(s);
      else train_large.add(s);
    }
    for (std::size_t i = 0; i < n_small && i < train_large.size(); ++i) {
      train_small.add({train_large.archs[i], train_large.latencies_ms[i]});
    }

    for (const auto& [train, label] :
         {std::pair<const LabeledSet&, std::string>{train_small,
                                                    std::to_string(n_small)},
          std::pair<const LabeledSet&, std::string>{train_large,
                                                    std::to_string(n_large)}}) {
      for (EncodingKind kind :
           {EncodingKind::kFcc, EncodingKind::kStatistical}) {
        const SurrogateResult r =
            run_mlp_experiment(kind, spec, train, test, seed + 3, epochs);
        table.add_row({spec.name, r.name, label,
                       format_percent(r.accuracy, 1),
                       format_double(r.kendall, 3),
                       paper_value(spec.name, r.name, label)});
      }
    }

    for (bool bc : {false, true}) {
      const SurrogateResult r =
          run_lut_experiment(spec, device, train_small, test, bc);
      table.add_row({spec.name, r.name, bc ? std::to_string(n_small) : "-",
                     format_percent(r.accuracy, 1),
                     format_double(r.kendall, 3),
                     paper_value(spec.name, r.name, "")});
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: FCC >> statistical on ResNet with no gain "
               "from 20k samples; FCC ~ LUT+BC ~ high on DenseNet;\nraw LUT "
               "worst everywhere.\n";
  return 0;
}
