// Ablation B: surrogate model families — the paper's related work uses
// linear regression, decision trees, and boosted trees as predictors; this
// bench compares every kind registered in the SurrogateRegistry (trained
// through the same TrainableSurrogate interface the ESM loop uses) against
// unregistered baselines on the same dataset (ResNet / simulated RTX 4090).
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/tree.hpp"
#include "surrogate/gcn_surrogate.hpp"
#include "surrogate/registry.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Ablation: surrogate model families on a shared dataset");
  args.add_int("train", 6000, "training-set size");
  args.add_int("test", 1500, "test-set size");
  args.add_int("epochs", 150, "MLP training epochs");
  args.add_int("ensemble-members", 3, "ensemble width");
  args.add_int("seed", 23, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const auto n_train = static_cast<std::size_t>(args.get_int("train"));
  const auto n_test = static_cast<std::size_t>(args.get_int("test"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(rtx4090_spec(), seed * 3 + 1);
  const LabeledSet pool = generate_dataset(
      spec, device, SamplingStrategy::kRandom, n_train + n_test, seed);
  LabeledSet train, test;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    MeasuredSample s{pool.archs[i], pool.latencies_ms[i]};
    if (i < n_test) test.add(s);
    else train.add(s);
  }

  print_banner(std::cout, "Model-family ablation "
                          "(ResNet / simulated RTX 4090, train " +
                              std::to_string(train.size()) + ")");
  TablePrinter table({"Model", "accuracy", "RMSE (ms)", "Kendall tau"});

  auto add_row = [&](const std::string& name,
                     const std::vector<double>& pred) {
    table.add_row({name, format_percent(mean_accuracy(pred, test.latencies_ms), 1),
                   format_double(rmse(pred, test.latencies_ms), 3),
                   format_double(kendall_tau(pred, test.latencies_ms), 3)});
  };

  // Every registered surrogate kind, built and trained exactly the way the
  // ESM loop does it (FCC encoding where the kind encodes).
  SurrogateContext context;
  context.spec = spec;
  context.encoder = "fcc";
  context.train = paper_train_config(static_cast<int>(args.get_int("epochs")));
  context.seed = seed + 6;
  context.device = &device;
  context.ensemble_members =
      static_cast<std::size_t>(args.get_int("ensemble-members"));
  for (const std::string& key : SurrogateRegistry::instance().keys()) {
    const auto surrogate = SurrogateRegistry::instance().create(key, context);
    surrogate->fit(SurrogateDataset{train.archs, train.latencies_ms});
    add_row(surrogate->name() + " [" + key + "]",
            surrogate->predict_all(test.archs));
  }

  // Unregistered baselines on the same shared FCC features.
  auto encoder = make_encoder(EncodingKind::kFcc, spec);
  const Matrix x_train = encoder->encode_all(train.archs);
  const Matrix x_test = encoder->encode_all(test.archs);
  {
    LinearRegression reg;
    reg.fit(x_train, train.latencies_ms);
    add_row("linear regression", reg.predict(x_test));
  }
  {
    DecisionTreeRegressor tree(
        {.max_depth = 14, .min_samples_leaf = 4, .min_samples_split = 8});
    tree.fit(x_train, train.latencies_ms);
    add_row("decision tree (d<=14)", tree.predict(x_test));
  }
  {
    // Graph-encoding baseline (related work [14][19]): operates on the
    // block chain graph directly, no hand-designed encoding.
    GcnSurrogate gcn(spec, {.hidden = 32, .epochs = 40, .seed = seed + 7});
    gcn.fit(train.archs, train.latencies_ms);
    add_row("GCN (2x32, chain graph)", gcn.predict_all(test.archs));
  }
  table.print(std::cout);
  std::cout << "FCC features carry most of the signal — notably, latency is "
               "nearly LINEAR in per-unit\ncombination counts, so even plain "
               "linear regression is competitive; axis-aligned trees\n"
               "fragment the count space and trail.\n";
  return 0;
}
