// Fig. 6 reproduction: reference-model variance plot and the 3 % quality
// boundary.
//
// Many measurement batches are executed on the noisy laptop GPU (RTX 3080
// Max-Q, the paper's most thermally unstable device). In every session the
// reference models are re-measured; their relative deviations from baseline
// are histogrammed against the 3 % boundary. Outliers (bad sessions caught
// by QC) are reported together with the retry statistics.
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Fig. 6: reference-model QC variance plot");
  args.add_int("batches", 40, "measurement batches to run");
  args.add_int("batch-size", 25, "architectures per batch");
  args.add_string("device", "rtx3080maxq", "target device");
  args.add_int("seed", 3, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(device_by_name(args.get_string("device")),
                         static_cast<std::uint64_t>(args.get_int("seed")));
  EsmConfig cfg = dataset_config(spec);
  DatasetGenerator generator(cfg, device,
                             Rng(static_cast<std::uint64_t>(
                                 args.get_int("seed"))));

  BalancedSampler sampler(spec, cfg.n_bins);
  Rng rng(17);
  const int batches = static_cast<int>(args.get_int("batches"));
  const auto batch_size =
      static_cast<std::size_t>(args.get_int("batch-size"));
  for (int b = 0; b < batches; ++b) {
    (void)generator.measure_batch(sampler.sample_n(batch_size, rng));
  }

  // Histogram of reference deviations across all sessions (all attempts'
  // final sessions are recorded in qc_history).
  std::vector<double> deviations;
  int sessions = 0, failed_sessions = 0, retried_batches = 0, outliers = 0;
  for (const QcReport& report : generator.qc_history()) {
    ++sessions;
    if (!report.passed) ++failed_sessions;
    if (report.attempts > 1) ++retried_batches;
    outliers += report.outliers;
    for (double d : report.reference_deviation) deviations.push_back(d);
  }

  print_banner(std::cout, "Fig. 6: reference-model deviation vs the 3% "
                          "boundary (" + device.spec().name + ")");
  TablePrinter hist({"|deviation| bin", "readings", "bar"});
  const std::vector<std::pair<double, double>> bins{
      {0.0, 0.005}, {0.005, 0.01}, {0.01, 0.02}, {0.02, 0.03},
      {0.03, 0.05}, {0.05, 0.10}, {0.10, 1.00}};
  for (const auto& [lo, hi] : bins) {
    int count = 0;
    for (double d : deviations) {
      if (d >= lo && d < hi) ++count;
    }
    std::string bar(static_cast<std::size_t>(
                        60.0 * count / static_cast<double>(deviations.size())),
                    '#');
    const std::string label = format_percent(lo, 1) + " - " +
                              format_percent(hi, 1) +
                              (lo >= 0.03 ? "  [outlier]" : "");
    hist.add_row({label, std::to_string(count), bar});
  }
  hist.print(std::cout);

  const double within = [&] {
    int n = 0;
    for (double d : deviations) {
      if (d <= 0.03) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(deviations.size());
  }();

  TablePrinter summary({"metric", "value"});
  summary.add_row({"reference readings", std::to_string(deviations.size())});
  summary.add_row({"within 3% boundary", format_percent(within, 1)});
  summary.add_row({"outlier readings removed", std::to_string(outliers)});
  summary.add_row({"batches measured", std::to_string(sessions)});
  summary.add_row({"batches re-measured (QC fail)",
                   std::to_string(retried_batches)});
  summary.add_row({"final sessions still failing",
                   std::to_string(failed_sessions)});
  summary.print(std::cout);
  std::cout << "Paper's claim: most reference instances fall within the 3% "
               "boundary; the rest flag bad\nsessions whose data is "
               "re-collected, keeping the dataset clean.\n";
  return 0;
}
