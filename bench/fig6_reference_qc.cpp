// Fig. 6 reproduction: reference-model variance plot and the 3 % quality
// boundary.
//
// Many measurement batches are executed on the noisy laptop GPU (RTX 3080
// Max-Q, the paper's most thermally unstable device). In every session the
// reference models are re-measured; their relative deviations from baseline
// are histogrammed against the 3 % boundary. Outliers (bad sessions caught
// by QC) are reported together with the retry statistics.
#include <iostream>

#include "bench_util.hpp"
#include "common/strings.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Fig. 6: reference-model QC variance plot");
  args.add_int("batches", 40, "measurement batches to run");
  args.add_int("batch-size", 25, "architectures per batch");
  args.add_string("device", "rtx3080maxq", "target device");
  args.add_int("seed", 3, "experiment seed");
  args.add_string("fault-profile", "none",
                  "fault preset (none/flaky/harsh) or key=value pairs");
  args.add_int("retries", 3, "measurement attempts per sample (incl. first)");
  args.add_string("journal", "",
                  "campaign journal path: batches are journaled and an "
                  "interrupted run resumes from it (output stays "
                  "byte-identical); empty = off");
  if (!args.parse(argc, argv)) return 0;

  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(device_by_name(args.get_string("device")),
                         static_cast<std::uint64_t>(args.get_int("seed")));
  EsmConfig cfg = dataset_config(spec);
  cfg.faults = parse_fault_profile(args.get_string("fault-profile"));
  cfg.retry.max_attempts = static_cast<int>(args.get_int("retries"));
  cfg.journal.path = args.get_string("journal");
  cfg.journal.resume = cfg.journal.enabled();
  DatasetGenerator generator(cfg, device,
                             Rng(static_cast<std::uint64_t>(
                                 args.get_int("seed"))));

  BalancedSampler sampler(spec, cfg.n_bins);
  Rng rng(17);
  const int batches = static_cast<int>(args.get_int("batches"));
  const auto batch_size =
      static_cast<std::size_t>(args.get_int("batch-size"));
  DatasetReport totals;
  for (int b = 0; b < batches; ++b) {
    const BatchResult batch =
        generator.measure_batch(sampler.sample_n(batch_size, rng));
    totals.requested += batch.report.requested;
    totals.measured += batch.report.measured;
    totals.quarantined += batch.report.quarantined;
    totals.skipped_quarantined += batch.report.skipped_quarantined;
    totals.sessions += batch.report.sessions;
    totals.retries += batch.report.retries;
    totals.timeouts += batch.report.timeouts;
    totals.device_losses += batch.report.device_losses;
    totals.read_errors += batch.report.read_errors;
    totals.cost_seconds += batch.report.cost_seconds;
    totals.backoff_seconds += batch.report.backoff_seconds;
  }

  // Histogram of reference deviations across all sessions (all attempts'
  // final sessions are recorded in qc_history).
  std::vector<double> deviations;
  int sessions = 0, failed_sessions = 0, retried_batches = 0, outliers = 0;
  for (const QcReport& report : generator.qc_history()) {
    ++sessions;
    if (!report.passed) ++failed_sessions;
    if (report.attempts > 1) ++retried_batches;
    outliers += report.outliers;
    for (double d : report.reference_deviation) deviations.push_back(d);
  }

  print_banner(std::cout, "Fig. 6: reference-model deviation vs the 3% "
                          "boundary (" + device.spec().name + ")");
  TablePrinter hist({"|deviation| bin", "readings", "bar"});
  const std::vector<std::pair<double, double>> bins{
      {0.0, 0.005}, {0.005, 0.01}, {0.01, 0.02}, {0.02, 0.03},
      {0.03, 0.05}, {0.05, 0.10}, {0.10, 1.00}};
  for (const auto& [lo, hi] : bins) {
    int count = 0;
    for (double d : deviations) {
      if (d >= lo && d < hi) ++count;
    }
    std::string bar(static_cast<std::size_t>(
                        60.0 * count / static_cast<double>(deviations.size())),
                    '#');
    const std::string label = format_percent(lo, 1) + " - " +
                              format_percent(hi, 1) +
                              (lo >= 0.03 ? "  [outlier]" : "");
    hist.add_row({label, std::to_string(count), bar});
  }
  hist.print(std::cout);

  const double within = [&] {
    int n = 0;
    for (double d : deviations) {
      if (d <= 0.03) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(deviations.size());
  }();

  TablePrinter summary({"metric", "value"});
  summary.add_row({"reference readings", std::to_string(deviations.size())});
  summary.add_row({"within 3% boundary", format_percent(within, 1)});
  summary.add_row({"outlier readings removed", std::to_string(outliers)});
  summary.add_row({"batches measured", std::to_string(sessions)});
  summary.add_row({"batches re-measured (QC fail)",
                   std::to_string(retried_batches)});
  summary.add_row({"final sessions still failing",
                   std::to_string(failed_sessions)});
  summary.print(std::cout);

  // Fault-tolerance ledger — only interesting (and only printed) when a
  // nonzero fault profile is active; the default run stays byte-identical
  // to the fault-free bench.
  if (cfg.faults.any()) {
    print_banner(std::cout, "Fault tolerance (profile: " +
                                args.get_string("fault-profile") + ")");
    TablePrinter faults({"metric", "value"});
    faults.add_row({"samples requested", std::to_string(totals.requested)});
    faults.add_row({"samples measured", std::to_string(totals.measured)});
    faults.add_row({"device sessions", std::to_string(totals.sessions)});
    faults.add_row({"retries", std::to_string(totals.retries)});
    faults.add_row({"timeouts", std::to_string(totals.timeouts)});
    faults.add_row({"device losses", std::to_string(totals.device_losses)});
    faults.add_row({"read errors", std::to_string(totals.read_errors)});
    faults.add_row({"archs quarantined", std::to_string(totals.quarantined)});
    faults.add_row(
        {"skipped (quarantined)", std::to_string(totals.skipped_quarantined)});
    faults.add_row({"simulated cost (s)",
                    format_double(totals.cost_seconds, 1)});
    faults.add_row({"  of which backoff (s)",
                    format_double(totals.backoff_seconds, 1)});
    faults.print(std::cout);
  }
  std::cout << "Paper's claim: most reference instances fall within the 3% "
               "boundary; the rest flag bad\nsessions whose data is "
               "re-collected, keeping the dataset clean.\n";
  return 0;
}
