// Fig. 11 reproduction: random vs balanced sampling inside the full ESM
// train-evaluate-extend loop (ResNet / simulated RTX 4090, N_I = 300,
// N_Step = 100, bin-wise evaluation).
//
// The paper reports balanced sampling converging after 3 iterations / 500
// samples vs 37 iterations / 4,000 samples for random. To keep the
// comparison statistically meaningful the harness averages several seeds
// and reports the worst-bin accuracy trajectory per measurement budget.
//
// Known deviation (see EXPERIMENTS.md): in this reproduction the balanced
// advantage is clearest at small budgets (the corner depth bins random
// sampling starves); at larger budgets the FCC encoding extrapolates into
// the corners well enough that both strategies become label-noise-limited
// and converge at similar budgets — the paper's ~8x sample gap does not
// reproduce at this simulator's noise floor.
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "esm/framework.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Fig. 11: random vs balanced sampling convergence");
  args.add_int("n-initial", 300, "N_I: initial samples");
  args.add_int("n-step", 100, "N_Step: samples added per extension");
  args.add_double("acc-th", 0.95, "Acc_TH: per-bin accuracy threshold");
  args.add_int("max-iters", 25, "iteration budget per run");
  args.add_int("n-bins", 5, "N_Bins: depth bins for balancing/evaluation");
  args.add_int("seeds", 3, "seeds to average");
  args.add_int("epochs", 150, "training epochs per iteration");
  args.add_int("seed", 11, "base experiment seed");
  args.add_int("threads", 0, "pool threads (0 = ESM_THREADS env)");
  if (!args.parse(argc, argv)) return 0;
  if (args.get_int("threads") > 0) {
    set_thread_count(static_cast<int>(args.get_int("threads")));
  }

  EsmConfig base;
  base.spec = resnet_spec();
  base.surrogate = "mlp";
  base.encoder = "fcc";
  base.n_initial = static_cast<int>(args.get_int("n-initial"));
  base.n_step = static_cast<int>(args.get_int("n-step"));
  base.n_bins = static_cast<int>(args.get_int("n-bins"));
  base.n_test = 100 * base.n_bins;
  base.acc_threshold = args.get_double("acc-th");
  base.max_iterations = static_cast<int>(args.get_int("max-iters"));
  base.train = paper_train_config(static_cast<int>(args.get_int("epochs")));

  const int n_seeds = static_cast<int>(args.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(args.get_int("seed"));

  struct StrategyStats {
    std::string name;
    // Per-iteration min-bin accuracies across seeds.
    std::vector<RunningStats> min_bin;
    std::vector<RunningStats> overall;
    RunningStats samples_to_converge;
    int converged_runs = 0;
  };
  std::vector<StrategyStats> strategies{{.name = "balanced"},
                                        {.name = "random"}};
  strategies[0].min_bin.resize(static_cast<std::size_t>(base.max_iterations));
  strategies[0].overall.resize(static_cast<std::size_t>(base.max_iterations));
  strategies[1].min_bin.resize(static_cast<std::size_t>(base.max_iterations));
  strategies[1].overall.resize(static_cast<std::size_t>(base.max_iterations));

  // Every (seed, strategy) pair is an independent end-to-end ESM run with
  // its own device — the sweep's outermost and best-scaling axis. Fan the
  // runs out over the pool and fold them into the strategy accumulators in
  // run order, so the aggregated tables are identical at any thread count.
  struct RunOutcome {
    std::vector<std::pair<double, double>> per_iter;  // (min_bin, overall)
    bool converged = false;
    std::size_t final_size = 0;
  };
  const std::size_t n_runs = static_cast<std::size_t>(n_seeds) * 2;
  const auto outcomes = parallel_map(n_runs, [&](std::size_t r) {
    const int s = static_cast<int>(r / 2);
    const std::size_t which = r % 2;
    EsmConfig cfg = base;
    cfg.strategy = which == 0 ? SamplingStrategy::kBalanced
                              : SamplingStrategy::kRandom;
    cfg.seed = base_seed + static_cast<std::uint64_t>(s) * 101;
    SimulatedDevice device(rtx4090_spec(), cfg.seed * 53 + 1);
    const EsmResult result = EsmFramework(cfg, device).run();
    RunOutcome outcome;
    outcome.per_iter.reserve(result.iterations.size());
    for (const IterationReport& it : result.iterations) {
      outcome.per_iter.emplace_back(it.eval.min_bin_accuracy,
                                    it.eval.overall_accuracy);
    }
    outcome.converged = result.converged;
    outcome.final_size = result.final_train_set_size;
    return outcome;
  });
  for (std::size_t r = 0; r < outcomes.size(); ++r) {
    StrategyStats& stats = strategies[r % 2];
    for (std::size_t i = 0; i < outcomes[r].per_iter.size(); ++i) {
      stats.min_bin[i].add(outcomes[r].per_iter[i].first);
      stats.overall[i].add(outcomes[r].per_iter[i].second);
    }
    if (outcomes[r].converged) {
      ++stats.converged_runs;
      stats.samples_to_converge.add(
          static_cast<double>(outcomes[r].final_size));
    }
  }

  print_banner(std::cout,
               "Fig. 11: worst-bin accuracy vs measurement budget, mean of " +
                   std::to_string(n_seeds) +
                   " seeds (ResNet / RTX 4090, N_I=300, N_Step=100)");
  TablePrinter trace({"train samples", "balanced: min-bin acc",
                      "random: min-bin acc", "gap"});
  for (int i = 0; i < base.max_iterations; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (strategies[0].min_bin[idx].count() == 0 &&
        strategies[1].min_bin[idx].count() == 0) {
      break;
    }
    const double b = strategies[0].min_bin[idx].mean();
    const double r = strategies[1].min_bin[idx].mean();
    const bool b_alive = strategies[0].min_bin[idx].count() > 0;
    const bool r_alive = strategies[1].min_bin[idx].count() > 0;
    trace.add_row({std::to_string(base.n_initial + i * base.n_step),
                   b_alive ? format_percent(b, 1) : "-",
                   r_alive ? format_percent(r, 1) : "-",
                   b_alive && r_alive
                       ? format_double((b - r) * 100.0, 1) + " pts"
                       : "-"});
  }
  trace.print(std::cout);

  print_banner(std::cout, "Convergence summary (Acc_TH = " +
                              format_percent(base.acc_threshold, 0) + ")");
  TablePrinter summary({"strategy", "runs converged", "mean samples",
                        "paper"});
  for (const StrategyStats& stats : strategies) {
    summary.add_row(
        {stats.name,
         std::to_string(stats.converged_runs) + "/" + std::to_string(n_seeds),
         stats.converged_runs > 0
             ? format_double(stats.samples_to_converge.mean(), 0)
             : "-",
         stats.name == "balanced" ? "3 iters / 500 samples"
                                  : "37 iters / 4000 samples"});
  }
  summary.print(std::cout);
  std::cout << "Reproduced shape: balanced sampling leads on the worst bin "
               "at small budgets (random starves the\ncorner depth bins). "
               "Known deviation: both strategies reach the simulator's "
               "noise ceiling at similar\nbudgets, so the paper's ~8x "
               "samples-to-convergence gap does not reproduce here (see "
               "EXPERIMENTS.md).\n";
  return 0;
}
