// Fig. 10 reproduction: FCC / FC / statistical encodings across the four
// target devices and the three supernets.
//
// Training sizes follow the paper: 8,000 for the RTX 4090, 5,000 for the
// Threadripper CPU and the RTX 3080 Max-Q, 1,200 for the Raspberry Pi 4
// (measurement there is slow). Paper reference averages, ResNet:
//   FCC 97/88/93/99, FC 90/84/82/99, statistical 85/83/71/98
// (order: RTX 4090, Threadripper, RTX 3080 Max-Q, RPi 4); MobileNetV3 and
// DenseNet sit high (94-99%) for all unit-level encodings.
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"

using namespace esm;
using namespace esm::bench;

int main(int argc, char** argv) {
  ArgParser args("Fig. 10: encoding effectiveness across devices");
  args.add_int("test", 1500, "test-set size per (device, space)");
  args.add_int("epochs", 150, "training epochs");
  args.add_int("seed", 10, "experiment seed");
  args.add_int("threads", 0, "pool threads (0 = ESM_THREADS env)");
  args.add_bool("resnet-only", "run only the ResNet space (faster)");
  if (!args.parse(argc, argv)) return 0;

  const auto n_test = static_cast<std::size_t>(args.get_int("test"));
  const int epochs = static_cast<int>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  if (args.get_int("threads") > 0) {
    set_thread_count(static_cast<int>(args.get_int("threads")));
  }

  // Paper training sizes per device.
  auto train_size = [](const DeviceSpec& d) -> std::size_t {
    if (d.short_name == "rtx4090") return 8000;
    if (d.short_name == "rpi4") return 1200;
    return 5000;
  };

  std::vector<SupernetSpec> spaces{resnet_spec()};
  if (!args.get_bool("resnet-only")) {
    spaces.push_back(mobilenet_v3_spec());
    spaces.push_back(densenet_spec());
  }

  for (const SupernetSpec& spec : spaces) {
    print_banner(std::cout, "Fig. 10: " + spec.name +
                                " across devices (FCC vs FC vs statistical)");
    TablePrinter table({"Device", "train", "FCC", "FC", "statistical"});
    // Devices are independent experiments (own device instance, own
    // dataset, own fits) — fan them out over the pool and emit the rows
    // in device order afterwards.
    const std::vector<DeviceSpec> devices = all_device_specs();
    const auto rows = parallel_map(devices.size(), [&](std::size_t d) {
      const DeviceSpec& dspec = devices[d];
      SimulatedDevice device(dspec, seed * 1009 + 13);
      const std::size_t n_train = train_size(dspec);
      const LabeledSet pool =
          generate_dataset(spec, device, SamplingStrategy::kRandom,
                           n_train + n_test, seed + 1);
      LabeledSet train, test;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        MeasuredSample s{pool.archs[i], pool.latencies_ms[i]};
        if (i < n_test) test.add(s);
        else train.add(s);
      }

      std::vector<std::string> row{dspec.name, std::to_string(train.size())};
      for (EncodingKind kind :
           {EncodingKind::kFcc, EncodingKind::kFeatureCount,
            EncodingKind::kStatistical}) {
        const SurrogateResult r =
            run_mlp_experiment(kind, spec, train, test, seed + 4, epochs);
        row.push_back(format_percent(r.accuracy, 1));
      }
      return row;
    });
    for (const auto& row : rows) table.add_row(row);
    table.print(std::cout);
  }
  std::cout << "Expected shape (paper): FCC >= FC >= statistical on most "
               "devices, with the largest gaps on the\nirregular GPUs for "
               "ResNet and near-parity on MobileNetV3 and the Raspberry "
               "Pi.\n";
  return 0;
}
