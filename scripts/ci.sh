#!/usr/bin/env bash
# Tiered CI for the ESM reproduction.
#
#   scripts/ci.sh         fast tier: build + sub-minute `ctest -L fast`
#   scripts/ci.sh full    fast tier, then the remaining (slow) suites, then
#                         a kill -9 resume smoke test of `esm_cli measure
#                         --journal/--resume`, then a loopback smoke test of
#                         the esm_serve server binary, then a scalar-fallback
#                         build (-DESM_SIMD=off) running the linalg + encoding
#                         + parallel + fastpath + serve suites (the portable
#                         GEMM path must stay green and bit-identical), then
#                         an ASan build running the linalg + surrogate + esm +
#                         corruption-matrix suites, then a TSan build running
#                         the linalg + fault + parallel + journal + serve
#                         suites (journal writes sit on the ordered reduction
#                         path of the thread pool; serve exercises sessions,
#                         batcher, and cache concurrently)
#
# Thread-count invariance is covered inside the suites themselves
# (parallel_test pins 1-thread vs 8-thread bit-identity), so CI only needs
# to run them once.
set -euo pipefail
cd "$(dirname "$0")/.."

TIER="${1:-fast}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== build (Release) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$JOBS"

echo "== fast tier (ctest -L fast) =="
ctest --test-dir build -L fast --output-on-failure

if [ "$TIER" = "fast" ]; then
  echo "CI fast tier passed."
  exit 0
fi

echo "== slow tier (remaining suites) =="
ctest --test-dir build -LE fast --output-on-failure

echo "== kill -9 resume smoke test =="
# A journaled campaign killed at an arbitrary point and resumed must write
# the exact same dataset CSV as an uninterrupted run. Whatever the kill
# hits — before the header, mid-record, after completion — resume recovers:
# journaled batches replay, the rest re-measure, bit-identically.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
MEASURE="build/examples/esm_cli measure --device rpi4 --count 48
  --batch-size 4 --fault-profile flaky --threads 8"
$MEASURE --out "$SMOKE_DIR/golden.csv" >/dev/null 2>&1 || true
timeout -s KILL 0.05 $MEASURE --journal "$SMOKE_DIR/campaign.journal" \
  >/dev/null 2>&1 || true
$MEASURE --journal "$SMOKE_DIR/campaign.journal" --resume \
  --out "$SMOKE_DIR/resumed.csv" >/dev/null 2>&1 || true
cmp "$SMOKE_DIR/golden.csv" "$SMOKE_DIR/resumed.csv" \
  || { echo "kill -9 resume smoke test FAILED: dataset differs"; exit 1; }
echo "resumed dataset is byte-identical to the uninterrupted run"

echo "== esm_serve loopback smoke test =="
# Train a tiny artifact, serve it on a kernel-picked loopback port, then
# drive predict/stats/shutdown through the client mode. Checks the whole
# TCP path: bind, accept, framed protocol, drain on shutdown, exit codes.
# (train exit 2 = budget exhausted before Acc_TH; the artifact is saved.)
build/examples/esm_cli train --surrogate gbdt --n-initial 48 --n-step 16 \
  --max-iters 1 --model "$SMOKE_DIR/serve.esm" >/dev/null || [ $? -eq 2 ]
build/examples/esm_serve "$SMOKE_DIR/serve.esm" --port 0 \
  --port-file "$SMOKE_DIR/port" --summary-s 0 >/dev/null 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$SMOKE_DIR/port" ] && break
  sleep 0.1
done
[ -s "$SMOKE_DIR/port" ] || { echo "esm_serve never published its port"; exit 1; }
SERVE_PORT="$(cat "$SMOKE_DIR/port")"
printf 'predict 3,5,2,7\nstats\nshutdown\n' \
  | build/examples/esm_serve --connect "$SERVE_PORT" > "$SMOKE_DIR/serve.out" \
  || { echo "esm_serve client reported an error"; exit 1; }
grep -q "^esm1 ok predict " "$SMOKE_DIR/serve.out" \
  || { echo "loopback predict failed"; cat "$SMOKE_DIR/serve.out"; exit 1; }
grep -q "^esm1 ok stats .*requests=1" "$SMOKE_DIR/serve.out" \
  || { echo "loopback stats failed"; cat "$SMOKE_DIR/serve.out"; exit 1; }
wait "$SERVE_PID" \
  || { echo "esm_serve exited non-zero after shutdown"; exit 1; }
echo "loopback serve smoke test passed"

echo "== scalar tier (ESM_SIMD=off: portable GEMM path) =="
# The vector microkernel and the scalar fallback must agree bit-for-bit;
# run the math-heavy suites against the fallback so it can never rot.
# (fastpath_test replaces operator new, so it runs here and in the plain
# build but stays out of the sanitizer tiers, which bring their own
# allocators.)
cmake -B build-scalar -S . -DCMAKE_BUILD_TYPE=Release \
  -DESM_SIMD=off >/dev/null
cmake --build build-scalar -j "$JOBS" \
  --target linalg_test encoding_test parallel_test fastpath_test serve_test
ctest --test-dir build-scalar --output-on-failure \
  -R '^(linalg_test|encoding_test|parallel_test|fastpath_test|serve_test)$'

echo "== asan tier (linalg + surrogate + esm + corruption suites) =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DESM_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target linalg_test surrogate_test surrogate_registry_test esm_test \
  corruption_test
ctest --test-dir build-asan --output-on-failure \
  -R '^(linalg_test|surrogate_test|surrogate_registry_test|esm_test|corruption_test)$'

echo "== tsan tier (linalg + fault + parallel + journal + serve suites) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DESM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target linalg_test fault_test parallel_test journal_test serve_test
ctest --test-dir build-tsan --output-on-failure \
  -R '^(linalg_test|fault_test|parallel_test|journal_test|serve_test)$'

echo "CI full tier passed."
