#!/usr/bin/env bash
# Tiered CI for the ESM reproduction.
#
#   scripts/ci.sh         fast tier: build + sub-minute `ctest -L fast`
#   scripts/ci.sh full    fast tier, then the remaining (slow) suites, then
#                         an ASan build running the surrogate + esm suites,
#                         then a TSan build running the fault + parallel
#                         suites (fault retries exercise parallel_map)
#
# Thread-count invariance is covered inside the suites themselves
# (parallel_test pins 1-thread vs 8-thread bit-identity), so CI only needs
# to run them once.
set -euo pipefail
cd "$(dirname "$0")/.."

TIER="${1:-fast}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== build (Release) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$JOBS"

echo "== fast tier (ctest -L fast) =="
ctest --test-dir build -L fast --output-on-failure

if [ "$TIER" = "fast" ]; then
  echo "CI fast tier passed."
  exit 0
fi

echo "== slow tier (remaining suites) =="
ctest --test-dir build -LE fast --output-on-failure

echo "== asan tier (surrogate + esm suites) =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DESM_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target surrogate_test surrogate_registry_test esm_test
ctest --test-dir build-asan --output-on-failure \
  -R '^(surrogate_test|surrogate_registry_test|esm_test)$'

echo "== tsan tier (fault + parallel suites) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DESM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target fault_test parallel_test
ctest --test-dir build-tsan --output-on-failure \
  -R '^(fault_test|parallel_test)$'

echo "CI full tier passed."
