#!/usr/bin/env bash
# Tiered CI for the ESM reproduction.
#
#   scripts/ci.sh         fast tier: build + sub-minute `ctest -L fast`
#   scripts/ci.sh full    fast tier, then the remaining (slow) suites, then
#                         a kill -9 resume smoke test of `esm_cli measure
#                         --journal/--resume`, then a loopback smoke test of
#                         the esm_serve server binary (both wire protocols
#                         on one port: newline esm1 and binary esm2, same
#                         prediction bytes), then the event-loop C10K smoke
#                         (10k concurrent connections on one reactor
#                         thread, zero drops, stats reconciled), then a
#                         fleet smoke
#                         test (`esm_cli pipeline` publishing models into a
#                         manifest, kill -9 mid-pipeline converging to
#                         byte-identical artifacts, routed multi-model
#                         serving with atomic reload and clean drain), then
#                         a scalar-fallback build (-DESM_SIMD=off) running
#                         the linalg + encoding + parallel + fastpath +
#                         serve suites (the portable GEMM path must stay
#                         green and bit-identical), then an FMA build
#                         (-DESM_FMA=ON) running the linalg + fastpath
#                         suites (exact-equality pins switch to tight
#                         relative tolerances via gemm_fma_enabled()), then
#                         an ASan build running the linalg + surrogate +
#                         esm + corruption-matrix suites, then a TSan build
#                         running the linalg + fault + parallel + journal +
#                         serve + fleet + frame + event-loop suites
#                         (journal writes sit on the ordered reduction path
#                         of the thread pool; serve exercises sessions,
#                         batcher, routing, and cache concurrently; the
#                         event loop adds the reactor thread against both)
#
# Thread-count invariance is covered inside the suites themselves
# (parallel_test pins 1-thread vs 8-thread bit-identity), so CI only needs
# to run them once.
set -euo pipefail
cd "$(dirname "$0")/.."

TIER="${1:-fast}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== build (Release) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$JOBS"

echo "== fast tier (ctest -L fast) =="
ctest --test-dir build -L fast --output-on-failure

if [ "$TIER" = "fast" ]; then
  echo "CI fast tier passed."
  exit 0
fi

echo "== slow tier (remaining suites) =="
ctest --test-dir build -LE fast --output-on-failure

echo "== kill -9 resume smoke test =="
# A journaled campaign killed at an arbitrary point and resumed must write
# the exact same dataset CSV as an uninterrupted run. Whatever the kill
# hits — before the header, mid-record, after completion — resume recovers:
# journaled batches replay, the rest re-measure, bit-identically.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
MEASURE="build/examples/esm_cli measure --device rpi4 --count 48
  --batch-size 4 --fault-profile flaky --threads 8"
$MEASURE --out "$SMOKE_DIR/golden.csv" >/dev/null 2>&1 || true
timeout -s KILL 0.05 $MEASURE --journal "$SMOKE_DIR/campaign.journal" \
  >/dev/null 2>&1 || true
$MEASURE --journal "$SMOKE_DIR/campaign.journal" --resume \
  --out "$SMOKE_DIR/resumed.csv" >/dev/null 2>&1 || true
cmp "$SMOKE_DIR/golden.csv" "$SMOKE_DIR/resumed.csv" \
  || { echo "kill -9 resume smoke test FAILED: dataset differs"; exit 1; }
echo "resumed dataset is byte-identical to the uninterrupted run"

echo "== esm_serve loopback smoke test =="
# Train a tiny artifact, serve it on a kernel-picked loopback port, then
# drive predict/stats/shutdown through the client mode. Checks the whole
# TCP path: bind, accept, framed protocol, drain on shutdown, exit codes.
# (train exit 2 = budget exhausted before Acc_TH; the artifact is saved.)
build/examples/esm_cli train --surrogate gbdt --n-initial 48 --n-step 16 \
  --max-iters 1 --model "$SMOKE_DIR/serve.esm" >/dev/null || [ $? -eq 2 ]
build/examples/esm_serve "$SMOKE_DIR/serve.esm" --port 0 \
  --port-file "$SMOKE_DIR/port" --summary-s 0 >/dev/null 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$SMOKE_DIR/port" ] && break
  sleep 0.1
done
[ -s "$SMOKE_DIR/port" ] || { echo "esm_serve never published its port"; exit 1; }
SERVE_PORT="$(cat "$SMOKE_DIR/port")"
printf 'predict 3,5,2,7\nstats\nshutdown\n' \
  | build/examples/esm_serve --connect "$SERVE_PORT" > "$SMOKE_DIR/serve.out" \
  || { echo "esm_serve client reported an error"; exit 1; }
grep -q "^esm1 ok predict " "$SMOKE_DIR/serve.out" \
  || { echo "loopback predict failed"; cat "$SMOKE_DIR/serve.out"; exit 1; }
grep -q "^esm1 ok stats .*requests=1" "$SMOKE_DIR/serve.out" \
  || { echo "loopback stats failed"; cat "$SMOKE_DIR/serve.out"; exit 1; }
# The same port speaks the binary esm2 protocol, negotiated per connection
# by the first byte; the esm2 client must see the identical prediction.
printf 'predict 3,5,2,7\nshutdown\n' \
  | build/examples/esm_serve --connect "$SERVE_PORT" --proto esm2 \
  > "$SMOKE_DIR/serve2.out" \
  || { echo "esm_serve esm2 client reported an error"; exit 1; }
grep -q "^esm2 ok predict " "$SMOKE_DIR/serve2.out" \
  || { echo "esm2 loopback predict failed"; cat "$SMOKE_DIR/serve2.out"; exit 1; }
ESM1_VALUE="$(sed -n 's/^esm1 ok predict //p' "$SMOKE_DIR/serve.out")"
grep -qF "esm2 ok predict $ESM1_VALUE" "$SMOKE_DIR/serve2.out" \
  || { echo "esm2 prediction differs from esm1"; cat "$SMOKE_DIR/serve2.out"; exit 1; }
wait "$SERVE_PID" \
  || { echo "esm_serve exited non-zero after shutdown"; exit 1; }
echo "loopback serve smoke test passed (esm1 + esm2)"

echo "== event-loop C10K smoke test =="
# The reactor's headline pin, straight from the suite: 10k concurrent
# fd-less connections on one loop thread, both protocols, zero drops,
# every response bit-identical to offline predict_all, stats reconciling.
build/tests/event_loop_test \
  --gtest_filter='EventLoopTest.TenThousandConcurrentConnectionsZeroDrops' \
  || { echo "event-loop C10K smoke FAILED"; exit 1; }
echo "event-loop C10K smoke test passed"

echo "== fleet pipeline + routed serving smoke test =="
# The full fleet story end to end: pipeline-publish two models into one
# manifest, kill -9 a pipeline mid-run and converge to byte-identical
# published bytes, serve the manifest, route by model name, atomically
# reload to a three-model fleet, and drain cleanly.
FLEET_DIR="$SMOKE_DIR/fleet"
PIPELINE="build/examples/esm_cli pipeline --surrogate gbdt --n-initial 32
  --n-test 16 --acc-th 0.3 --batch-size 8 --manifest-dir $FLEET_DIR"
$PIPELINE --name edge --device rpi4 >/dev/null
$PIPELINE --name cloud --device rtx4090 >/dev/null

# kill -9 mid-pipeline: the rerun resumes from the stage journals (exit 3)
# or restarts from scratch (exit 0) — either way the published manifest and
# artifact must be byte-identical to an uninterrupted run's.
KILL_PIPE="build/examples/esm_cli pipeline --surrogate gbdt --n-initial 48
  --n-test 16 --acc-th 0.3 --batch-size 4 --device rpi4 --name edge"
$KILL_PIPE --manifest-dir "$SMOKE_DIR/fleet_ref" >/dev/null
timeout -s KILL 0.05 $KILL_PIPE --manifest-dir "$SMOKE_DIR/fleet_kill" \
  >/dev/null 2>&1 || true
$KILL_PIPE --manifest-dir "$SMOKE_DIR/fleet_kill" >/dev/null \
  || [ $? -eq 3 ]
cmp "$SMOKE_DIR/fleet_ref/manifest.esmf" "$SMOKE_DIR/fleet_kill/manifest.esmf" \
  || { echo "fleet smoke FAILED: resumed pipeline manifest differs"; exit 1; }
cmp "$SMOKE_DIR/fleet_ref/edge.esm" "$SMOKE_DIR/fleet_kill/edge.esm" \
  || { echo "fleet smoke FAILED: resumed pipeline artifact differs"; exit 1; }
echo "killed pipeline converged to byte-identical published bytes"

build/examples/esm_serve --manifest "$FLEET_DIR/manifest.esmf" --port 0 \
  --port-file "$FLEET_DIR/port" --summary-s 0 >/dev/null 2>&1 &
FLEET_PID=$!
for _ in $(seq 1 100); do
  [ -s "$FLEET_DIR/port" ] && break
  sleep 0.1
done
[ -s "$FLEET_DIR/port" ] || { echo "fleet esm_serve never published its port"; exit 1; }
FLEET_PORT="$(cat "$FLEET_DIR/port")"
printf 'predict edge 3,5,2,7\npredict cloud 3,5,2,7\npredict 3,5,2,7\nmodels\nstats\n' \
  | build/examples/esm_serve --connect "$FLEET_PORT" > "$SMOKE_DIR/fleet1.out" \
  || { echo "fleet client reported an error"; exit 1; }
[ "$(grep -c '^esm1 ok predict ' "$SMOKE_DIR/fleet1.out")" = 3 ] \
  || { echo "fleet routed predicts failed"; cat "$SMOKE_DIR/fleet1.out"; exit 1; }
grep -q "^esm1 ok models edge cloud$" "$SMOKE_DIR/fleet1.out" \
  || { echo "fleet models verb failed"; cat "$SMOKE_DIR/fleet1.out"; exit 1; }
grep -q "model\.edge\.requests=2" "$SMOKE_DIR/fleet1.out" \
  || { echo "fleet per-model stats failed"; cat "$SMOKE_DIR/fleet1.out"; exit 1; }
# Publish a third model, reload the live server onto it, route to it, drain.
$PIPELINE --name tpu --device threadripper >/dev/null
printf 'reload %s\npredict tpu 3,5,2,7\nshutdown\n' "$FLEET_DIR/manifest.esmf" \
  | build/examples/esm_serve --connect "$FLEET_PORT" > "$SMOKE_DIR/fleet2.out" \
  || { echo "fleet reload client reported an error"; exit 1; }
grep -q "^esm1 ok reload models=3 default=edge" "$SMOKE_DIR/fleet2.out" \
  || { echo "fleet reload failed"; cat "$SMOKE_DIR/fleet2.out"; exit 1; }
grep -q "^esm1 ok predict " "$SMOKE_DIR/fleet2.out" \
  || { echo "fleet post-reload predict failed"; cat "$SMOKE_DIR/fleet2.out"; exit 1; }
wait "$FLEET_PID" \
  || { echo "fleet esm_serve exited non-zero after shutdown"; exit 1; }
echo "fleet smoke test passed"

echo "== scalar tier (ESM_SIMD=off: portable GEMM path) =="
# The vector microkernel and the scalar fallback must agree bit-for-bit;
# run the math-heavy suites against the fallback so it can never rot.
# (fastpath_test replaces operator new, so it runs here and in the plain
# build but stays out of the sanitizer tiers, which bring their own
# allocators.)
cmake -B build-scalar -S . -DCMAKE_BUILD_TYPE=Release \
  -DESM_SIMD=off >/dev/null
cmake --build build-scalar -j "$JOBS" \
  --target linalg_test encoding_test parallel_test fastpath_test serve_test
ctest --test-dir build-scalar --output-on-failure \
  -R '^(linalg_test|encoding_test|parallel_test|fastpath_test|serve_test)$'

echo "== fma tier (ESM_FMA=ON: contracted microkernel) =="
# FMA contraction changes mul+add rounding, so the exact-equality pins in
# linalg_test and fastpath_test switch to tight relative tolerances (they
# branch on gemm_fma_enabled()); the suites must still pass end to end.
cmake -B build-fma -S . -DCMAKE_BUILD_TYPE=Release -DESM_FMA=ON >/dev/null
cmake --build build-fma -j "$JOBS" --target linalg_test fastpath_test
ctest --test-dir build-fma --output-on-failure \
  -R '^(linalg_test|fastpath_test)$'

echo "== asan tier (linalg + surrogate + esm + corruption suites) =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DESM_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target linalg_test surrogate_test surrogate_registry_test esm_test \
  corruption_test
ctest --test-dir build-asan --output-on-failure \
  -R '^(linalg_test|surrogate_test|surrogate_registry_test|esm_test|corruption_test)$'

echo "== tsan tier (linalg + fault + parallel + journal + serve + fleet + event loop) =="
# event_loop_test puts the reactor thread, the batcher threads, and the
# client driver threads under TSan at once — including the 10k-connection
# headline test, which is the strongest cross-thread interleaving we have.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DESM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target linalg_test fault_test parallel_test journal_test serve_test \
  fleet_test frame_test event_loop_test
ctest --test-dir build-tsan --output-on-failure \
  -R '^(linalg_test|fault_test|parallel_test|journal_test|serve_test|fleet_test|frame_test|event_loop_test)$'

echo "CI full tier passed."
