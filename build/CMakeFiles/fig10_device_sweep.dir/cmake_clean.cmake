file(REMOVE_RECURSE
  "CMakeFiles/fig10_device_sweep.dir/bench/fig10_device_sweep.cpp.o"
  "CMakeFiles/fig10_device_sweep.dir/bench/fig10_device_sweep.cpp.o.d"
  "bench/fig10_device_sweep"
  "bench/fig10_device_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_device_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
