# Empty dependencies file for fig10_device_sweep.
# This may be replaced when dependencies are built.
