# Empty compiler generated dependencies file for ablation_measurement.
# This may be replaced when dependencies are built.
