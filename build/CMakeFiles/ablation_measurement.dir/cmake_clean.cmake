file(REMOVE_RECURSE
  "CMakeFiles/ablation_measurement.dir/bench/ablation_measurement.cpp.o"
  "CMakeFiles/ablation_measurement.dir/bench/ablation_measurement.cpp.o.d"
  "bench/ablation_measurement"
  "bench/ablation_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
