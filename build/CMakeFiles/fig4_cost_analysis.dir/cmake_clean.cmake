file(REMOVE_RECURSE
  "CMakeFiles/fig4_cost_analysis.dir/bench/fig4_cost_analysis.cpp.o"
  "CMakeFiles/fig4_cost_analysis.dir/bench/fig4_cost_analysis.cpp.o.d"
  "bench/fig4_cost_analysis"
  "bench/fig4_cost_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cost_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
