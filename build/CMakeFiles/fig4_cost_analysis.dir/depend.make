# Empty dependencies file for fig4_cost_analysis.
# This may be replaced when dependencies are built.
