file(REMOVE_RECURSE
  "CMakeFiles/table1_arch_spaces.dir/bench/table1_arch_spaces.cpp.o"
  "CMakeFiles/table1_arch_spaces.dir/bench/table1_arch_spaces.cpp.o.d"
  "bench/table1_arch_spaces"
  "bench/table1_arch_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_arch_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
