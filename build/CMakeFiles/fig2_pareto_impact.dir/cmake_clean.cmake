file(REMOVE_RECURSE
  "CMakeFiles/fig2_pareto_impact.dir/bench/fig2_pareto_impact.cpp.o"
  "CMakeFiles/fig2_pareto_impact.dir/bench/fig2_pareto_impact.cpp.o.d"
  "bench/fig2_pareto_impact"
  "bench/fig2_pareto_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pareto_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
