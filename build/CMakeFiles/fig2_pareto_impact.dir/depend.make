# Empty dependencies file for fig2_pareto_impact.
# This may be replaced when dependencies are built.
