file(REMOVE_RECURSE
  "CMakeFiles/fig11_sampling_convergence.dir/bench/fig11_sampling_convergence.cpp.o"
  "CMakeFiles/fig11_sampling_convergence.dir/bench/fig11_sampling_convergence.cpp.o.d"
  "bench/fig11_sampling_convergence"
  "bench/fig11_sampling_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sampling_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
