# Empty dependencies file for fig11_sampling_convergence.
# This may be replaced when dependencies are built.
