file(REMOVE_RECURSE
  "CMakeFiles/esm_benchutil.dir/bench/bench_util.cpp.o"
  "CMakeFiles/esm_benchutil.dir/bench/bench_util.cpp.o.d"
  "libesm_benchutil.a"
  "libesm_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
