file(REMOVE_RECURSE
  "libesm_benchutil.a"
)
