# Empty compiler generated dependencies file for esm_benchutil.
# This may be replaced when dependencies are built.
