
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cpp" "CMakeFiles/esm_benchutil.dir/bench/bench_util.cpp.o" "gcc" "CMakeFiles/esm_benchutil.dir/bench/bench_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/esm/CMakeFiles/esm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/esm_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/esm_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/esm_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/esm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/esm_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/nets/CMakeFiles/esm_nets.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/esm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/esm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/esm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
