# Empty compiler generated dependencies file for fig6_reference_qc.
# This may be replaced when dependencies are built.
