file(REMOVE_RECURSE
  "CMakeFiles/fig6_reference_qc.dir/bench/fig6_reference_qc.cpp.o"
  "CMakeFiles/fig6_reference_qc.dir/bench/fig6_reference_qc.cpp.o.d"
  "bench/fig6_reference_qc"
  "bench/fig6_reference_qc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_reference_qc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
