file(REMOVE_RECURSE
  "CMakeFiles/fig8_encoding_scatter.dir/bench/fig8_encoding_scatter.cpp.o"
  "CMakeFiles/fig8_encoding_scatter.dir/bench/fig8_encoding_scatter.cpp.o.d"
  "bench/fig8_encoding_scatter"
  "bench/fig8_encoding_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_encoding_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
