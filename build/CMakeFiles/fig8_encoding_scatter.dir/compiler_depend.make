# Empty compiler generated dependencies file for fig8_encoding_scatter.
# This may be replaced when dependencies are built.
