file(REMOVE_RECURSE
  "CMakeFiles/extension_active_sampling.dir/bench/extension_active_sampling.cpp.o"
  "CMakeFiles/extension_active_sampling.dir/bench/extension_active_sampling.cpp.o.d"
  "bench/extension_active_sampling"
  "bench/extension_active_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_active_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
