# Empty dependencies file for extension_active_sampling.
# This may be replaced when dependencies are built.
