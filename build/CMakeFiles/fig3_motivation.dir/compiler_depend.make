# Empty compiler generated dependencies file for fig3_motivation.
# This may be replaced when dependencies are built.
