# Empty dependencies file for extension_transfer.
# This may be replaced when dependencies are built.
