file(REMOVE_RECURSE
  "CMakeFiles/extension_transfer.dir/bench/extension_transfer.cpp.o"
  "CMakeFiles/extension_transfer.dir/bench/extension_transfer.cpp.o.d"
  "bench/extension_transfer"
  "bench/extension_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
