file(REMOVE_RECURSE
  "CMakeFiles/fig9_encoding_accuracy.dir/bench/fig9_encoding_accuracy.cpp.o"
  "CMakeFiles/fig9_encoding_accuracy.dir/bench/fig9_encoding_accuracy.cpp.o.d"
  "bench/fig9_encoding_accuracy"
  "bench/fig9_encoding_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_encoding_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
