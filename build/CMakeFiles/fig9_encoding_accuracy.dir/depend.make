# Empty dependencies file for fig9_encoding_accuracy.
# This may be replaced when dependencies are built.
