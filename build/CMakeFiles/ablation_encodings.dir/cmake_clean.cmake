file(REMOVE_RECURSE
  "CMakeFiles/ablation_encodings.dir/bench/ablation_encodings.cpp.o"
  "CMakeFiles/ablation_encodings.dir/bench/ablation_encodings.cpp.o.d"
  "bench/ablation_encodings"
  "bench/ablation_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
