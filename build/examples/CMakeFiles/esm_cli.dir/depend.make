# Empty dependencies file for esm_cli.
# This may be replaced when dependencies are built.
