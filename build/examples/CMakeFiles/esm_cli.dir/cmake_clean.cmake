file(REMOVE_RECURSE
  "CMakeFiles/esm_cli.dir/esm_cli.cpp.o"
  "CMakeFiles/esm_cli.dir/esm_cli.cpp.o.d"
  "esm_cli"
  "esm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
