# Empty dependencies file for encoding_explorer.
# This may be replaced when dependencies are built.
