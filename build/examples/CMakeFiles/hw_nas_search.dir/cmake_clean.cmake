file(REMOVE_RECURSE
  "CMakeFiles/hw_nas_search.dir/hw_nas_search.cpp.o"
  "CMakeFiles/hw_nas_search.dir/hw_nas_search.cpp.o.d"
  "hw_nas_search"
  "hw_nas_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_nas_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
