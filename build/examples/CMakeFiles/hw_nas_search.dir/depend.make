# Empty dependencies file for hw_nas_search.
# This may be replaced when dependencies are built.
