# Empty dependencies file for esm_test.
# This may be replaced when dependencies are built.
