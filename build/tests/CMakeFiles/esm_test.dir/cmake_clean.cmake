file(REMOVE_RECURSE
  "CMakeFiles/esm_test.dir/esm_test.cpp.o"
  "CMakeFiles/esm_test.dir/esm_test.cpp.o.d"
  "esm_test"
  "esm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
