file(REMOVE_RECURSE
  "CMakeFiles/surrogate_test.dir/surrogate_test.cpp.o"
  "CMakeFiles/surrogate_test.dir/surrogate_test.cpp.o.d"
  "surrogate_test"
  "surrogate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surrogate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
