# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(linalg_test "/root/repo/build/tests/linalg_test")
set_tests_properties(linalg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nets_test "/root/repo/build/tests/nets_test")
set_tests_properties(nets_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hwsim_test "/root/repo/build/tests/hwsim_test")
set_tests_properties(hwsim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ml_test "/root/repo/build/tests/ml_test")
set_tests_properties(ml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(encoding_test "/root/repo/build/tests/encoding_test")
set_tests_properties(encoding_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(surrogate_test "/root/repo/build/tests/surrogate_test")
set_tests_properties(surrogate_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(esm_test "/root/repo/build/tests/esm_test")
set_tests_properties(esm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nas_test "/root/repo/build/tests/nas_test")
set_tests_properties(nas_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;esm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;23;esm_test;/root/repo/tests/CMakeLists.txt;0;")
