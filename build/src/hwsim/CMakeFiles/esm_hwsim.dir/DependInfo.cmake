
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwsim/device.cpp" "src/hwsim/CMakeFiles/esm_hwsim.dir/device.cpp.o" "gcc" "src/hwsim/CMakeFiles/esm_hwsim.dir/device.cpp.o.d"
  "/root/repo/src/hwsim/energy_model.cpp" "src/hwsim/CMakeFiles/esm_hwsim.dir/energy_model.cpp.o" "gcc" "src/hwsim/CMakeFiles/esm_hwsim.dir/energy_model.cpp.o.d"
  "/root/repo/src/hwsim/latency_model.cpp" "src/hwsim/CMakeFiles/esm_hwsim.dir/latency_model.cpp.o" "gcc" "src/hwsim/CMakeFiles/esm_hwsim.dir/latency_model.cpp.o.d"
  "/root/repo/src/hwsim/measurement.cpp" "src/hwsim/CMakeFiles/esm_hwsim.dir/measurement.cpp.o" "gcc" "src/hwsim/CMakeFiles/esm_hwsim.dir/measurement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/esm_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
