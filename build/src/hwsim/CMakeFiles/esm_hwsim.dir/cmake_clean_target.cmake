file(REMOVE_RECURSE
  "libesm_hwsim.a"
)
