# Empty dependencies file for esm_hwsim.
# This may be replaced when dependencies are built.
