file(REMOVE_RECURSE
  "CMakeFiles/esm_hwsim.dir/device.cpp.o"
  "CMakeFiles/esm_hwsim.dir/device.cpp.o.d"
  "CMakeFiles/esm_hwsim.dir/energy_model.cpp.o"
  "CMakeFiles/esm_hwsim.dir/energy_model.cpp.o.d"
  "CMakeFiles/esm_hwsim.dir/latency_model.cpp.o"
  "CMakeFiles/esm_hwsim.dir/latency_model.cpp.o.d"
  "CMakeFiles/esm_hwsim.dir/measurement.cpp.o"
  "CMakeFiles/esm_hwsim.dir/measurement.cpp.o.d"
  "libesm_hwsim.a"
  "libesm_hwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
