file(REMOVE_RECURSE
  "libesm_common.a"
)
