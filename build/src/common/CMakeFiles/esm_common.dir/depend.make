# Empty dependencies file for esm_common.
# This may be replaced when dependencies are built.
