file(REMOVE_RECURSE
  "CMakeFiles/esm_common.dir/archive.cpp.o"
  "CMakeFiles/esm_common.dir/archive.cpp.o.d"
  "CMakeFiles/esm_common.dir/argparse.cpp.o"
  "CMakeFiles/esm_common.dir/argparse.cpp.o.d"
  "CMakeFiles/esm_common.dir/csv.cpp.o"
  "CMakeFiles/esm_common.dir/csv.cpp.o.d"
  "CMakeFiles/esm_common.dir/rng.cpp.o"
  "CMakeFiles/esm_common.dir/rng.cpp.o.d"
  "CMakeFiles/esm_common.dir/stats.cpp.o"
  "CMakeFiles/esm_common.dir/stats.cpp.o.d"
  "CMakeFiles/esm_common.dir/strings.cpp.o"
  "CMakeFiles/esm_common.dir/strings.cpp.o.d"
  "CMakeFiles/esm_common.dir/table.cpp.o"
  "CMakeFiles/esm_common.dir/table.cpp.o.d"
  "libesm_common.a"
  "libesm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
