file(REMOVE_RECURSE
  "libesm_linalg.a"
)
