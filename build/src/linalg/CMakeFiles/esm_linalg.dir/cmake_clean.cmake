file(REMOVE_RECURSE
  "CMakeFiles/esm_linalg.dir/matrix.cpp.o"
  "CMakeFiles/esm_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/esm_linalg.dir/solve.cpp.o"
  "CMakeFiles/esm_linalg.dir/solve.cpp.o.d"
  "CMakeFiles/esm_linalg.dir/standardizer.cpp.o"
  "CMakeFiles/esm_linalg.dir/standardizer.cpp.o.d"
  "libesm_linalg.a"
  "libesm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
