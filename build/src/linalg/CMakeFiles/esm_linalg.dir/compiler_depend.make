# Empty compiler generated dependencies file for esm_linalg.
# This may be replaced when dependencies are built.
