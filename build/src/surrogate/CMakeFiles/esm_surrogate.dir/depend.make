# Empty dependencies file for esm_surrogate.
# This may be replaced when dependencies are built.
