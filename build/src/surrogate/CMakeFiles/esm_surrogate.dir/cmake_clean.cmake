file(REMOVE_RECURSE
  "CMakeFiles/esm_surrogate.dir/ensemble_surrogate.cpp.o"
  "CMakeFiles/esm_surrogate.dir/ensemble_surrogate.cpp.o.d"
  "CMakeFiles/esm_surrogate.dir/flops_proxy.cpp.o"
  "CMakeFiles/esm_surrogate.dir/flops_proxy.cpp.o.d"
  "CMakeFiles/esm_surrogate.dir/gcn_surrogate.cpp.o"
  "CMakeFiles/esm_surrogate.dir/gcn_surrogate.cpp.o.d"
  "CMakeFiles/esm_surrogate.dir/lut_surrogate.cpp.o"
  "CMakeFiles/esm_surrogate.dir/lut_surrogate.cpp.o.d"
  "CMakeFiles/esm_surrogate.dir/mlp_surrogate.cpp.o"
  "CMakeFiles/esm_surrogate.dir/mlp_surrogate.cpp.o.d"
  "CMakeFiles/esm_surrogate.dir/predictor.cpp.o"
  "CMakeFiles/esm_surrogate.dir/predictor.cpp.o.d"
  "libesm_surrogate.a"
  "libesm_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
