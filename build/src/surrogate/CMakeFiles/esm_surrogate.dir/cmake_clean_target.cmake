file(REMOVE_RECURSE
  "libesm_surrogate.a"
)
