
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surrogate/ensemble_surrogate.cpp" "src/surrogate/CMakeFiles/esm_surrogate.dir/ensemble_surrogate.cpp.o" "gcc" "src/surrogate/CMakeFiles/esm_surrogate.dir/ensemble_surrogate.cpp.o.d"
  "/root/repo/src/surrogate/flops_proxy.cpp" "src/surrogate/CMakeFiles/esm_surrogate.dir/flops_proxy.cpp.o" "gcc" "src/surrogate/CMakeFiles/esm_surrogate.dir/flops_proxy.cpp.o.d"
  "/root/repo/src/surrogate/gcn_surrogate.cpp" "src/surrogate/CMakeFiles/esm_surrogate.dir/gcn_surrogate.cpp.o" "gcc" "src/surrogate/CMakeFiles/esm_surrogate.dir/gcn_surrogate.cpp.o.d"
  "/root/repo/src/surrogate/lut_surrogate.cpp" "src/surrogate/CMakeFiles/esm_surrogate.dir/lut_surrogate.cpp.o" "gcc" "src/surrogate/CMakeFiles/esm_surrogate.dir/lut_surrogate.cpp.o.d"
  "/root/repo/src/surrogate/mlp_surrogate.cpp" "src/surrogate/CMakeFiles/esm_surrogate.dir/mlp_surrogate.cpp.o" "gcc" "src/surrogate/CMakeFiles/esm_surrogate.dir/mlp_surrogate.cpp.o.d"
  "/root/repo/src/surrogate/predictor.cpp" "src/surrogate/CMakeFiles/esm_surrogate.dir/predictor.cpp.o" "gcc" "src/surrogate/CMakeFiles/esm_surrogate.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/esm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/esm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/nets/CMakeFiles/esm_nets.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/esm_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/esm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/esm_encoding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
