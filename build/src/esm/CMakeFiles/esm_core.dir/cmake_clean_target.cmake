file(REMOVE_RECURSE
  "libesm_core.a"
)
