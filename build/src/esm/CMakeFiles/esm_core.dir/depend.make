# Empty dependencies file for esm_core.
# This may be replaced when dependencies are built.
