file(REMOVE_RECURSE
  "CMakeFiles/esm_core.dir/config.cpp.o"
  "CMakeFiles/esm_core.dir/config.cpp.o.d"
  "CMakeFiles/esm_core.dir/dataset_gen.cpp.o"
  "CMakeFiles/esm_core.dir/dataset_gen.cpp.o.d"
  "CMakeFiles/esm_core.dir/evaluator.cpp.o"
  "CMakeFiles/esm_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/esm_core.dir/extension.cpp.o"
  "CMakeFiles/esm_core.dir/extension.cpp.o.d"
  "CMakeFiles/esm_core.dir/framework.cpp.o"
  "CMakeFiles/esm_core.dir/framework.cpp.o.d"
  "libesm_core.a"
  "libesm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
