
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/esm/config.cpp" "src/esm/CMakeFiles/esm_core.dir/config.cpp.o" "gcc" "src/esm/CMakeFiles/esm_core.dir/config.cpp.o.d"
  "/root/repo/src/esm/dataset_gen.cpp" "src/esm/CMakeFiles/esm_core.dir/dataset_gen.cpp.o" "gcc" "src/esm/CMakeFiles/esm_core.dir/dataset_gen.cpp.o.d"
  "/root/repo/src/esm/evaluator.cpp" "src/esm/CMakeFiles/esm_core.dir/evaluator.cpp.o" "gcc" "src/esm/CMakeFiles/esm_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/esm/extension.cpp" "src/esm/CMakeFiles/esm_core.dir/extension.cpp.o" "gcc" "src/esm/CMakeFiles/esm_core.dir/extension.cpp.o.d"
  "/root/repo/src/esm/framework.cpp" "src/esm/CMakeFiles/esm_core.dir/framework.cpp.o" "gcc" "src/esm/CMakeFiles/esm_core.dir/framework.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nets/CMakeFiles/esm_nets.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/esm_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/esm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/esm_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/esm_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/esm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/esm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
