file(REMOVE_RECURSE
  "CMakeFiles/esm_nas.dir/accuracy_proxy.cpp.o"
  "CMakeFiles/esm_nas.dir/accuracy_proxy.cpp.o.d"
  "CMakeFiles/esm_nas.dir/pareto.cpp.o"
  "CMakeFiles/esm_nas.dir/pareto.cpp.o.d"
  "CMakeFiles/esm_nas.dir/search.cpp.o"
  "CMakeFiles/esm_nas.dir/search.cpp.o.d"
  "libesm_nas.a"
  "libesm_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
