file(REMOVE_RECURSE
  "libesm_nas.a"
)
