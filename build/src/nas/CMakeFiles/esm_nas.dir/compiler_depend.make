# Empty compiler generated dependencies file for esm_nas.
# This may be replaced when dependencies are built.
