file(REMOVE_RECURSE
  "libesm_nn.a"
)
