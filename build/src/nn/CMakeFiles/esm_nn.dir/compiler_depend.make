# Empty compiler generated dependencies file for esm_nn.
# This may be replaced when dependencies are built.
