file(REMOVE_RECURSE
  "CMakeFiles/esm_nn.dir/graph.cpp.o"
  "CMakeFiles/esm_nn.dir/graph.cpp.o.d"
  "CMakeFiles/esm_nn.dir/layer.cpp.o"
  "CMakeFiles/esm_nn.dir/layer.cpp.o.d"
  "libesm_nn.a"
  "libesm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
