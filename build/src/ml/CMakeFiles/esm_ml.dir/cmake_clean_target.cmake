file(REMOVE_RECURSE
  "libesm_ml.a"
)
