file(REMOVE_RECURSE
  "CMakeFiles/esm_ml.dir/dataset.cpp.o"
  "CMakeFiles/esm_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/esm_ml.dir/gbdt.cpp.o"
  "CMakeFiles/esm_ml.dir/gbdt.cpp.o.d"
  "CMakeFiles/esm_ml.dir/gcn.cpp.o"
  "CMakeFiles/esm_ml.dir/gcn.cpp.o.d"
  "CMakeFiles/esm_ml.dir/linreg.cpp.o"
  "CMakeFiles/esm_ml.dir/linreg.cpp.o.d"
  "CMakeFiles/esm_ml.dir/metrics.cpp.o"
  "CMakeFiles/esm_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/esm_ml.dir/mlp.cpp.o"
  "CMakeFiles/esm_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/esm_ml.dir/trainer.cpp.o"
  "CMakeFiles/esm_ml.dir/trainer.cpp.o.d"
  "CMakeFiles/esm_ml.dir/tree.cpp.o"
  "CMakeFiles/esm_ml.dir/tree.cpp.o.d"
  "libesm_ml.a"
  "libesm_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
