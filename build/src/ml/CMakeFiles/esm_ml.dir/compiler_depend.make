# Empty compiler generated dependencies file for esm_ml.
# This may be replaced when dependencies are built.
