# Empty dependencies file for esm_encoding.
# This may be replaced when dependencies are built.
