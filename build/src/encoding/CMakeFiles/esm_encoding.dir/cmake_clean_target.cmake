file(REMOVE_RECURSE
  "libesm_encoding.a"
)
