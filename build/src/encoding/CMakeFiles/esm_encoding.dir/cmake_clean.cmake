file(REMOVE_RECURSE
  "CMakeFiles/esm_encoding.dir/encoder.cpp.o"
  "CMakeFiles/esm_encoding.dir/encoder.cpp.o.d"
  "CMakeFiles/esm_encoding.dir/encoders.cpp.o"
  "CMakeFiles/esm_encoding.dir/encoders.cpp.o.d"
  "libesm_encoding.a"
  "libesm_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
