# Empty dependencies file for esm_nets.
# This may be replaced when dependencies are built.
