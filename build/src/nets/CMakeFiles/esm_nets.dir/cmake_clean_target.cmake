file(REMOVE_RECURSE
  "libesm_nets.a"
)
