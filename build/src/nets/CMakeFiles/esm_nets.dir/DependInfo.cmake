
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nets/arch.cpp" "src/nets/CMakeFiles/esm_nets.dir/arch.cpp.o" "gcc" "src/nets/CMakeFiles/esm_nets.dir/arch.cpp.o.d"
  "/root/repo/src/nets/build_densenet.cpp" "src/nets/CMakeFiles/esm_nets.dir/build_densenet.cpp.o" "gcc" "src/nets/CMakeFiles/esm_nets.dir/build_densenet.cpp.o.d"
  "/root/repo/src/nets/build_mobilenet.cpp" "src/nets/CMakeFiles/esm_nets.dir/build_mobilenet.cpp.o" "gcc" "src/nets/CMakeFiles/esm_nets.dir/build_mobilenet.cpp.o.d"
  "/root/repo/src/nets/build_resnet.cpp" "src/nets/CMakeFiles/esm_nets.dir/build_resnet.cpp.o" "gcc" "src/nets/CMakeFiles/esm_nets.dir/build_resnet.cpp.o.d"
  "/root/repo/src/nets/builder.cpp" "src/nets/CMakeFiles/esm_nets.dir/builder.cpp.o" "gcc" "src/nets/CMakeFiles/esm_nets.dir/builder.cpp.o.d"
  "/root/repo/src/nets/composition.cpp" "src/nets/CMakeFiles/esm_nets.dir/composition.cpp.o" "gcc" "src/nets/CMakeFiles/esm_nets.dir/composition.cpp.o.d"
  "/root/repo/src/nets/depth_bins.cpp" "src/nets/CMakeFiles/esm_nets.dir/depth_bins.cpp.o" "gcc" "src/nets/CMakeFiles/esm_nets.dir/depth_bins.cpp.o.d"
  "/root/repo/src/nets/sampler.cpp" "src/nets/CMakeFiles/esm_nets.dir/sampler.cpp.o" "gcc" "src/nets/CMakeFiles/esm_nets.dir/sampler.cpp.o.d"
  "/root/repo/src/nets/supernet.cpp" "src/nets/CMakeFiles/esm_nets.dir/supernet.cpp.o" "gcc" "src/nets/CMakeFiles/esm_nets.dir/supernet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/esm_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
