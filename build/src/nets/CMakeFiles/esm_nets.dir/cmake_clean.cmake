file(REMOVE_RECURSE
  "CMakeFiles/esm_nets.dir/arch.cpp.o"
  "CMakeFiles/esm_nets.dir/arch.cpp.o.d"
  "CMakeFiles/esm_nets.dir/build_densenet.cpp.o"
  "CMakeFiles/esm_nets.dir/build_densenet.cpp.o.d"
  "CMakeFiles/esm_nets.dir/build_mobilenet.cpp.o"
  "CMakeFiles/esm_nets.dir/build_mobilenet.cpp.o.d"
  "CMakeFiles/esm_nets.dir/build_resnet.cpp.o"
  "CMakeFiles/esm_nets.dir/build_resnet.cpp.o.d"
  "CMakeFiles/esm_nets.dir/builder.cpp.o"
  "CMakeFiles/esm_nets.dir/builder.cpp.o.d"
  "CMakeFiles/esm_nets.dir/composition.cpp.o"
  "CMakeFiles/esm_nets.dir/composition.cpp.o.d"
  "CMakeFiles/esm_nets.dir/depth_bins.cpp.o"
  "CMakeFiles/esm_nets.dir/depth_bins.cpp.o.d"
  "CMakeFiles/esm_nets.dir/sampler.cpp.o"
  "CMakeFiles/esm_nets.dir/sampler.cpp.o.d"
  "CMakeFiles/esm_nets.dir/supernet.cpp.o"
  "CMakeFiles/esm_nets.dir/supernet.cpp.o.d"
  "libesm_nets.a"
  "libesm_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esm_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
