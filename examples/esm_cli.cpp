// esm_cli — command-line front end for the ESM framework.
//
// Subcommands (first argument):
//   train     build a surrogate with the train-evaluate-extend loop and
//             save it as an artifact (-o/--model PATH). --surrogate and
//             --encoder pick any registered kind ("mlp", "lut", "gbdt",
//             "ensemble" x "onehot", "feature", "stat", "fc", "fcc").
//   predict   load an artifact (positional PATH or --model) and price
//             sampled architectures. The printed predictions are
//             bit-identical to the verification block `train` printed for
//             the same --seed/--count, across processes. With --stdin,
//             read arch requests one per line (the serve-protocol grammar,
//             parsed by the same parse_arch_request()) and emit
//             full-precision CSV instead.
//   eval      load an artifact and score it bin-wise against freshly
//             measured latencies on a simulated device.
//   search    load an artifact and run latency-constrained evolutionary
//             NAS under --budget-ms.
//   measure   run the fault-tolerant measurement pipeline on a device and
//             print the DatasetReport (samples measured, retries,
//             quarantined architectures, simulated cost). Architectures
//             come from --archs FILE (one per line, comma-separated
//             per-unit depths like "3,5,2,7") or are sampled (--count).
//             With --journal PATH every accepted batch is fsync'd to a
//             write-ahead journal; a killed run restarted with --resume
//             replays the journaled batches and measures only the rest,
//             producing a byte-identical --out CSV. Exit codes: 0 all
//             measured, 2 shortfall, 3 resumed-and-complete.
//   pipeline  measure -> train -> gate -> publish in one crash-safe
//             command: journaled measurement campaigns (auto-resumed from
//             <manifest-dir>/.pipeline/), deterministic training, the
//             Acc_TH gate, and an atomic publish of <name>.esm plus the
//             fleet manifest esm_serve serves from. Rerunning after a
//             kill at ANY stage converges to a byte-identical published
//             manifest; a model failing the gate is never published.
//             Exit codes: 0 published, 2 gate failed, 3 resumed-and-
//             published.
//
// Examples:
//   esm_cli train --surrogate gbdt --encoder fcc -o /tmp/m.esm
//   esm_cli predict /tmp/m.esm --count 10
//   esm_cli eval /tmp/m.esm --device rtx4090
//   esm_cli search /tmp/m.esm --budget-ms 3.5
//   esm_cli measure --device rpi4 --count 50 --fault-profile flaky
//           --retries 4 --report-json /tmp/report.json
//   esm_cli measure --device rpi4 --count 64 --batch-size 8
//           --journal /tmp/camp.journal --out /tmp/dataset.csv
//   esm_cli measure --device rpi4 --count 64 --batch-size 8
//           --journal /tmp/camp.journal --out /tmp/dataset.csv --resume
//   esm_cli pipeline --name rpi4 --device rpi4 --surrogate gbdt
//           --manifest-dir /tmp/fleet
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/argparse.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "esm/framework.hpp"
#include "esm/pipeline.hpp"
#include "nas/accuracy_proxy.hpp"
#include "nas/search.hpp"
#include "nets/builder.hpp"
#include "serve/protocol.hpp"
#include "surrogate/registry.hpp"

namespace {

std::string format_full(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Samples `count` architectures with the shared verification stream so
/// `train` and `predict` price the same models in different processes.
std::vector<esm::ArchConfig> verification_archs(const esm::SupernetSpec& spec,
                                                std::uint64_t seed,
                                                std::size_t count) {
  esm::Rng rng(seed ^ 0x7e57a5c5ull);
  esm::RandomSampler sampler(spec);
  return sampler.sample_n(count, rng);
}

/// Prints full-precision predictions for the verification architectures.
void print_predictions(const esm::LatencyPredictor& predictor,
                       const esm::SupernetSpec& spec, std::uint64_t seed,
                       std::size_t count) {
  const std::vector<esm::ArchConfig> archs =
      verification_archs(spec, seed, count);
  const std::vector<double> predicted = predictor.predict_all(archs);
  esm::TablePrinter table(
      {"architecture (depths)", "blocks", "predicted latency (ms)"});
  for (std::size_t i = 0; i < archs.size(); ++i) {
    std::vector<std::string> depths;
    for (int d : archs[i].depths()) depths.push_back(std::to_string(d));
    table.add_row({"[" + esm::join(depths, ",") + "]",
                   std::to_string(archs[i].total_blocks()),
                   format_full(predicted[i])});
  }
  table.print(std::cout);
}

int run_train(const esm::ArgParser& args) {
  const esm::DeviceSpec device_spec =
      esm::device_by_name(args.get_string("device"));
  esm::SimulatedDevice device(device_spec,
                              static_cast<std::uint64_t>(args.get_int("seed")));

  esm::EsmConfig config;
  config.spec = esm::spec_by_name(args.get_string("supernet"));
  config.strategy =
      esm::sampling_strategy_from_name(args.get_string("strategy"));
  config.surrogate = args.get_string("surrogate");
  config.encoder = args.get_string("encoder");
  config.ensemble_members =
      static_cast<std::size_t>(args.get_int("ensemble-members"));
  config.n_initial = static_cast<int>(args.get_int("n-initial"));
  config.n_step = static_cast<int>(args.get_int("n-step"));
  config.n_bins = static_cast<int>(args.get_int("n-bins"));
  config.acc_threshold = args.get_double("acc-th");
  config.max_iterations = static_cast<int>(args.get_int("max-iters"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "Training a '" << config.surrogate << "' surrogate ("
            << config.encoder << " encoding, "
            << esm::sampling_strategy_name(config.strategy)
            << " sampling) for " << config.spec.name << " on "
            << device_spec.name << "...\n";
  const esm::EsmResult result = esm::EsmFramework(config, device).run();
  const esm::IterationReport& last = result.iterations.back();
  std::cout << (result.converged ? "Converged" : "Budget exhausted")
            << " after " << result.iterations.size() << " iteration(s), "
            << result.final_train_set_size << " measured samples.\n"
            << "Overall accuracy "
            << esm::format_percent(last.eval.overall_accuracy)
            << ", worst bin "
            << esm::format_percent(last.eval.min_bin_accuracy) << ".\n";

  // Verification block BEFORE saving: pricing these architectures also
  // fills any lazily profiled state (the LUT memo table), so the artifact
  // reproduces exactly these numbers in a fresh process.
  std::cout << "Verification predictions (reproduce with `esm_cli predict "
            << "--seed " << args.get_int("seed") << " --count "
            << args.get_int("count") << "`):\n";
  print_predictions(*result.predictor, config.spec, config.seed,
                    static_cast<std::size_t>(args.get_int("count")));

  const std::string path = args.get_string("model");
  esm::save_surrogate(*result.predictor, path);
  std::cout << "Saved " << result.predictor->kind() << " artifact to " << path
            << "\n";
  return result.converged ? 0 : 2;
}

/// Batch mode: reads architecture requests one per line from stdin — the
/// same grammar the serve protocol and --archs files use, through the same
/// parse_arch_request() — and emits full-precision CSV on stdout. Blank
/// lines and '#' comments are skipped; a malformed line aborts with its
/// line number (exit 1) before anything is priced.
int run_predict_stdin(const esm::TrainableSurrogate& predictor) {
  const esm::SupernetSpec& spec = predictor.spec();
  std::vector<esm::ArchConfig> archs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(std::cin, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      archs.push_back(esm::serve::parse_arch_request(spec, line));
    } catch (const esm::ConfigError& e) {
      ESM_REQUIRE(false, "stdin:" << line_no << ": " << e.what());
    }
  }
  const std::vector<double> predicted = predictor.predict_all(archs);
  std::cout << "arch,predicted_ms\n";
  for (std::size_t i = 0; i < archs.size(); ++i) {
    std::cout << archs[i].to_string() << ',' << format_full(predicted[i])
              << '\n';
  }
  return 0;
}

int run_predict(const esm::ArgParser& args) {
  const std::unique_ptr<esm::TrainableSurrogate> predictor =
      esm::load_surrogate(args.get_string("model"));
  if (args.get_bool("stdin")) return run_predict_stdin(*predictor);
  const esm::SupernetSpec& spec = predictor->spec();
  std::cout << "Loaded " << predictor->name() << " (kind '"
            << predictor->kind() << "', encoder '" << predictor->encoder_key()
            << "') for the " << spec.name << " space.\n";
  print_predictions(*predictor, spec,
                    static_cast<std::uint64_t>(args.get_int("seed")),
                    static_cast<std::size_t>(args.get_int("count")));
  return 0;
}

int run_eval(const esm::ArgParser& args) {
  const std::unique_ptr<esm::TrainableSurrogate> predictor =
      esm::load_surrogate(args.get_string("model"));
  const esm::SupernetSpec& spec = predictor->spec();
  const esm::DeviceSpec device_spec =
      esm::device_by_name(args.get_string("device"));
  esm::SimulatedDevice device(device_spec,
                              static_cast<std::uint64_t>(args.get_int("seed")));

  // Balanced so every depth bin is represented, like the framework's own
  // held-out set; measured fresh so the score reflects this device.
  esm::EsmConfig config;
  config.spec = spec;
  config.surrogate = predictor->kind();
  config.n_bins = static_cast<int>(args.get_int("n-bins"));
  config.n_test = static_cast<int>(args.get_int("count"));
  config.acc_threshold = args.get_double("acc-th");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.validate();

  esm::Rng rng(config.seed);
  esm::DatasetGenerator generator(config, device, rng.split());
  esm::BalancedSampler sampler(spec, config.n_bins);
  esm::Rng sample_rng = rng.split();
  const std::vector<esm::ArchConfig> archs = sampler.sample_n(
      static_cast<std::size_t>(config.n_test), sample_rng);
  const std::vector<esm::MeasuredSample> test_set =
      generator.measure_batch(archs).samples;

  const esm::BinwiseEvaluator evaluator(spec, config.n_bins,
                                        config.acc_threshold);
  const esm::EvalReport report = evaluator.evaluate(*predictor, test_set);

  std::cout << "Evaluated " << predictor->name() << " on " << test_set.size()
            << " freshly measured " << spec.name << " samples ("
            << device_spec.name << ").\n";
  esm::TablePrinter table({"bin", "blocks", "samples", "accuracy", "pass"});
  for (const esm::BinAccuracy& bin : report.bins) {
    table.add_row({std::to_string(bin.bin), bin.label,
                   std::to_string(bin.count),
                   esm::format_percent(bin.accuracy),
                   bin.below_threshold ? "no" : "yes"});
  }
  table.print(std::cout);
  std::cout << "Overall " << esm::format_percent(report.overall_accuracy)
            << ", worst bin " << esm::format_percent(report.min_bin_accuracy)
            << " (threshold " << esm::format_percent(config.acc_threshold)
            << ").\n";
  return report.min_bin_accuracy >= config.acc_threshold ? 0 : 2;
}

int run_search(const esm::ArgParser& args) {
  const std::unique_ptr<esm::TrainableSurrogate> predictor =
      esm::load_surrogate(args.get_string("model"));
  const esm::SupernetSpec& spec = predictor->spec();
  const double budget = args.get_double("budget-ms");

  esm::SearchConfig search_config;
  search_config.population = 64;
  search_config.generations = 25;
  search_config.parents = 16;
  search_config.latency_limit_ms = budget;
  search_config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  esm::EvolutionarySearch search(spec, search_config);
  const esm::AccuracyProxy proxy(spec);
  const esm::SearchResult found = search.run(*predictor, proxy);

  std::cout << "Searched the " << spec.name << " space under "
            << esm::format_double(budget, 3) << " ms (evaluated "
            << found.evaluations << " candidates through the surrogate).\n";
  if (!found.found_feasible) {
    std::cout << "No feasible architecture found — raise --budget-ms.\n";
    return 2;
  }
  std::cout << "Best architecture (predicted "
            << esm::format_double(found.best.predicted_latency_ms, 3)
            << " ms, proxy top-5 "
            << esm::format_percent(found.best.proxy_accuracy) << "):\n  "
            << found.best.arch.to_string() << "\n";

  // Optional ground-truth check against the simulated device.
  const std::string device_name = args.get_string("device");
  if (!device_name.empty()) {
    esm::SimulatedDevice device(esm::device_by_name(device_name), 1);
    std::cout << "Ground-truth latency on " << device.spec().name << ": "
              << esm::format_double(
                     device.true_latency_ms(
                         esm::build_graph(spec, found.best.arch)),
                     3)
              << " ms\n";
  }
  return 0;
}

/// Loads architectures from a text file: one request per line in the shared
/// serve-protocol grammar (comma-separated per-unit depths like "3,5,2,7",
/// optionally "<depth>:k<kernel>e<expansion>" per unit); blank lines and
/// '#' comments are skipped. Parsing is parse_arch_request() — the same
/// code path the prediction server and `predict --stdin` use.
std::vector<esm::ArchConfig> load_arch_file(const esm::SupernetSpec& spec,
                                            const std::string& path) {
  std::ifstream in(path);
  ESM_REQUIRE(in.good(), "cannot open arch file " << path);
  std::vector<esm::ArchConfig> archs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      archs.push_back(esm::serve::parse_arch_request(spec, line));
    } catch (const esm::ConfigError& e) {
      ESM_REQUIRE(false, path << ":" << line_no << ": " << e.what());
    }
  }
  ESM_REQUIRE(!archs.empty(), "arch file " << path << " holds no architectures");
  return archs;
}

int run_measure(const esm::ArgParser& args) {
  const esm::SupernetSpec spec =
      esm::spec_by_name(args.get_string("supernet"));
  const esm::DeviceSpec device_spec =
      esm::device_by_name(args.get_string("device"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  esm::SimulatedDevice device(device_spec, seed);

  esm::EsmConfig config;
  config.spec = spec;
  config.seed = seed;
  config.faults = esm::parse_fault_profile(args.get_string("fault-profile"));
  config.retry.max_attempts = static_cast<int>(args.get_int("retries"));
  config.threads = static_cast<int>(args.get_int("threads"));
  config.journal.path = args.get_string("journal");
  config.journal.resume = args.get_bool("resume");
  config.validate();

  std::vector<esm::ArchConfig> archs;
  if (!args.get_string("archs").empty()) {
    archs = load_arch_file(spec, args.get_string("archs"));
  } else {
    esm::Rng arch_rng(seed ^ 0x7e57a5c5ull);
    esm::RandomSampler sampler(spec);
    archs = sampler.sample_n(static_cast<std::size_t>(args.get_int("count")),
                             arch_rng);
  }

  const long long batch_arg = args.get_int("batch-size");
  const std::size_t batch_size =
      batch_arg > 0 ? static_cast<std::size_t>(batch_arg) : archs.size();

  std::cout << "Measuring " << archs.size() << " " << spec.name
            << " architecture(s) on " << device_spec.name
            << " (fault profile: " << args.get_string("fault-profile")
            << ", " << config.retry.max_attempts << " attempt(s)).\n";
  esm::Rng rng(seed);
  esm::DatasetGenerator generator(config, device, rng.split());

  // One journal record per measure_batch() call: --batch-size controls the
  // checkpoint granularity. The batch partition is derived from the arch
  // list and flags alone, so a resumed invocation re-issues the identical
  // batches and the journal answers the already-measured prefix.
  std::vector<esm::MeasuredSample> measured;
  esm::DatasetReport report;
  report.qc_passed = true;
  for (std::size_t begin = 0; begin < archs.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, archs.size());
    const std::vector<esm::ArchConfig> chunk(archs.begin() + begin,
                                             archs.begin() + end);
    const esm::BatchResult batch = generator.measure_batch(chunk);
    measured.insert(measured.end(), batch.samples.begin(),
                    batch.samples.end());
    report.requested += batch.report.requested;
    report.measured += batch.report.measured;
    report.quarantined += batch.report.quarantined;
    report.skipped_quarantined += batch.report.skipped_quarantined;
    report.sessions += batch.report.sessions;
    report.retries += batch.report.retries;
    report.timeouts += batch.report.timeouts;
    report.device_losses += batch.report.device_losses;
    report.read_errors += batch.report.read_errors;
    report.qc_passed = report.qc_passed && batch.report.qc_passed;
    report.cost_seconds += batch.report.cost_seconds;
    report.backoff_seconds += batch.report.backoff_seconds;
    report.quarantined_archs.insert(report.quarantined_archs.end(),
                                    batch.report.quarantined_archs.begin(),
                                    batch.report.quarantined_archs.end());
  }
  if (generator.replayed_batches() > 0) {
    std::cerr << "note: " << generator.replayed_batches()
              << " batch(es) answered from journal "
              << config.journal.path << " without re-measuring\n";
  }

  esm::TablePrinter samples({"architecture (depths)", "latency (ms)"});
  for (const esm::MeasuredSample& s : measured) {
    std::vector<std::string> depths;
    for (int d : s.arch.depths()) depths.push_back(std::to_string(d));
    samples.add_row({"[" + esm::join(depths, ",") + "]",
                     esm::format_double(s.latency_ms, 3)});
  }
  samples.print(std::cout);

  esm::TablePrinter table({"dataset report", "value"});
  table.add_row({"requested", std::to_string(report.requested)});
  table.add_row({"measured", std::to_string(report.measured)});
  table.add_row({"quarantined", std::to_string(report.quarantined)});
  table.add_row(
      {"skipped (quarantined)", std::to_string(report.skipped_quarantined)});
  table.add_row({"device sessions", std::to_string(report.sessions)});
  table.add_row({"retries", std::to_string(report.retries)});
  table.add_row({"timeouts", std::to_string(report.timeouts)});
  table.add_row({"device losses", std::to_string(report.device_losses)});
  table.add_row({"read errors", std::to_string(report.read_errors)});
  table.add_row({"QC passed", report.qc_passed ? "yes" : "no"});
  table.add_row(
      {"simulated cost (s)", esm::format_double(report.cost_seconds, 2)});
  table.add_row({"  of which backoff (s)",
                 esm::format_double(report.backoff_seconds, 2)});
  table.print(std::cout);

  // Full-precision dataset CSV: this is the byte-identity artifact the
  // crash/resume guarantee is stated over (same seed + same flags =>
  // identical file, interrupted or not).
  const std::string csv_path = args.get_string("out");
  if (!csv_path.empty()) {
    esm::CsvWriter csv(csv_path, {"arch", "latency_ms"});
    for (const esm::MeasuredSample& s : measured) {
      csv.add_row({s.arch.to_string(), format_full(s.latency_ms)});
    }
    std::cout << "Wrote " << csv.row_count() << " sample(s) to " << csv_path
              << "\n";
  }

  const std::string json_path = args.get_string("report-json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    ESM_REQUIRE(out.good(), "cannot open " << json_path << " for writing");
    out << "{\n"
        << "  \"requested\": " << report.requested << ",\n"
        << "  \"measured\": " << report.measured << ",\n"
        << "  \"quarantined\": " << report.quarantined << ",\n"
        << "  \"skipped_quarantined\": " << report.skipped_quarantined
        << ",\n"
        << "  \"sessions\": " << report.sessions << ",\n"
        << "  \"retries\": " << report.retries << ",\n"
        << "  \"timeouts\": " << report.timeouts << ",\n"
        << "  \"device_losses\": " << report.device_losses << ",\n"
        << "  \"read_errors\": " << report.read_errors << ",\n"
        << "  \"qc_passed\": " << (report.qc_passed ? "true" : "false")
        << ",\n"
        << "  \"cost_seconds\": " << report.cost_seconds << ",\n"
        << "  \"backoff_seconds\": " << report.backoff_seconds << ",\n"
        << "  \"quarantined_archs\": [";
    // Arch keys are whitespace-free and contain no quotes or backslashes
    // (ArchConfig::to_string()), so they embed in JSON strings verbatim.
    for (std::size_t i = 0; i < report.quarantined_archs.size(); ++i) {
      out << (i == 0 ? "" : ", ") << '"' << report.quarantined_archs[i]
          << '"';
    }
    out << "]\n"
        << "}\n";
    std::cout << "Wrote JSON report to " << json_path << "\n";
  }
  // 0: everything measured. 2: the pipeline gave up on at least one arch.
  // 3: everything measured, and at least one batch came from the journal
  // (resumed-complete) — lets scripts tell a resumed finish from a fresh
  // one without parsing output.
  if (report.measured != report.requested) return 2;
  return generator.replayed_batches() > 0 ? 3 : 0;
}

int run_pipeline_cmd(const esm::ArgParser& args) {
  esm::PipelineConfig config;
  config.esm.spec = esm::spec_by_name(args.get_string("supernet"));
  config.esm.strategy =
      esm::sampling_strategy_from_name(args.get_string("strategy"));
  config.esm.surrogate = args.get_string("surrogate");
  config.esm.encoder = args.get_string("encoder");
  config.esm.ensemble_members =
      static_cast<std::size_t>(args.get_int("ensemble-members"));
  config.esm.n_initial = static_cast<int>(args.get_int("n-initial"));
  config.esm.n_test = static_cast<int>(args.get_int("n-test"));
  config.esm.n_bins = static_cast<int>(args.get_int("n-bins"));
  config.esm.acc_threshold = args.get_double("acc-th");
  config.esm.faults =
      esm::parse_fault_profile(args.get_string("fault-profile"));
  config.esm.retry.max_attempts = static_cast<int>(args.get_int("retries"));
  config.esm.threads = static_cast<int>(args.get_int("threads"));
  config.esm.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.device = args.get_string("device");
  config.model_name = args.get_string("name");
  config.manifest_dir = args.get_string("manifest-dir");
  config.batch_size = static_cast<std::size_t>(args.get_int("batch-size"));

  std::cout << "Pipeline: measure -> train '" << config.esm.surrogate
            << "' -> gate (Acc_TH "
            << esm::format_percent(config.esm.acc_threshold)
            << ") -> publish '" << config.model_name << "' into "
            << config.manifest_dir << "\n";
  const esm::PipelineResult result = esm::run_pipeline(config);

  std::cout << "Measured " << result.train_measured << " train / "
            << result.test_measured << " test samples";
  if (result.replayed_batches > 0) {
    std::cout << " (" << result.replayed_batches
              << " batch(es) replayed from journals)";
  }
  std::cout << ".\nOverall accuracy "
            << esm::format_percent(result.eval.overall_accuracy)
            << ", worst bin "
            << esm::format_percent(result.eval.min_bin_accuracy) << ".\n";
  if (!result.gate_passed) {
    std::cout << "Gate FAILED: nothing was published (manifest untouched).\n";
    return 2;
  }
  std::cout << "Published " << result.artifact_path << " [crc32 "
            << result.artifact_crc32 << "] and updated "
            << result.manifest_path << ".\n"
            << "Serve it with: esm_serve " << result.manifest_path << "\n";
  return result.replayed_batches > 0 ? 3 : 0;
}

/// Rewrites `subcommand [args...]` into plain flags the parser accepts:
/// the subcommand selects the action, "-o" is shorthand for "--model", and
/// a bare path positional becomes the --model value.
std::vector<const char*> normalize_args(int argc, char** argv,
                                        std::string& subcommand,
                                        std::vector<std::string>& storage) {
  int start = 1;
  if (argc > 1 && argv[1][0] != '-') {
    subcommand = argv[1];
    start = 2;
  }
  storage.clear();
  bool prev_expects_value = false;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      storage.push_back("--model");
      prev_expects_value = true;
    } else if (!arg.empty() && arg[0] != '-' && !prev_expects_value) {
      // A free-standing token is the artifact path ("predict model.esm").
      storage.push_back("--model=" + arg);
    } else {
      storage.push_back(arg);
      // "--name value" form: the next token belongs to this flag.
      prev_expects_value =
          arg.size() > 2 && arg[0] == '-' && arg.find('=') == std::string::npos;
    }
  }
  std::vector<const char*> out;
  out.push_back(argv[0]);
  for (const std::string& s : storage) out.push_back(s.c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  esm::ArgParser args(
      "esm_cli <train|predict|eval|search|measure|pipeline>: train, query, "
      "score, search, measure, and publish ESM surrogate artifacts.");
  args.add_string("model", "/tmp/esm_model.esm", "surrogate artifact path");
  args.add_string("surrogate", "mlp",
                  "surrogate (train): mlp|lut|gbdt|ensemble");
  args.add_string("encoder", "fcc",
                  "encoder (train): onehot|feature|stat|fc|fcc");
  args.add_int("ensemble-members", 4, "ensemble width (train)");
  args.add_string("supernet", "resnet",
                  "space (train): resnet|mobilenetv3|densenet");
  args.add_string("device", "rtx4090",
                  "device (train/eval/search verification): rtx4090|"
                  "rtx3080maxq|threadripper|rpi4");
  args.add_string("strategy", "balanced", "sampling (train): random|balanced");
  args.add_int("n-initial", 300, "N_I (train)");
  args.add_int("n-step", 100, "N_Step (train)");
  args.add_int("n-bins", 5, "N_Bins (train/eval)");
  args.add_double("acc-th", 0.95, "Acc_TH (train/eval)");
  args.add_int("max-iters", 20, "iteration budget (train)");
  args.add_int("count", 10,
               "architectures to price/measure (train/predict/eval/measure)");
  args.add_double("budget-ms", 3.0, "latency budget (search)");
  args.add_string("archs", "",
                  "arch file (measure): one comma-separated depth list per "
                  "line, e.g. 3,5,2,7");
  args.add_string("fault-profile", "none",
                  "fault profile (measure): none|flaky|harsh or key=value "
                  "pairs");
  args.add_int("retries", 3,
               "measurement attempts per sample incl. the first (measure)");
  args.add_string("report-json", "",
                  "write the DatasetReport as JSON here (measure)");
  args.add_string("journal", "",
                  "write-ahead campaign journal path (measure); every "
                  "accepted batch is fsync'd here before the next starts");
  args.add_bool("resume",
                "resume from --journal (measure): journaled batches are "
                "replayed, only the remainder is measured; exit 3 means "
                "resumed-and-complete");
  args.add_int("batch-size", 0,
               "archs per measurement batch / journal record (measure); "
               "0 = one batch");
  args.add_string("out", "",
                  "write the measured dataset as full-precision CSV here "
                  "(measure)");
  args.add_bool("stdin",
                "predict: read arch requests one per line from stdin (same "
                "grammar as the serve protocol) and emit full-precision "
                "CSV on stdout");
  args.add_int("threads", 0, "worker threads (measure); 0 = hardware");
  args.add_string("name", "default",
                  "model name to publish under (pipeline)");
  args.add_string("manifest-dir", "/tmp/esm_fleet",
                  "directory holding artifacts + the fleet manifest "
                  "(pipeline)");
  args.add_int("n-test", 200, "held-out gate set size (pipeline)");
  args.add_int("seed", 42, "seed");

  std::string subcommand;
  std::vector<std::string> storage;
  const std::vector<const char*> rewritten =
      normalize_args(argc, argv, subcommand, storage);
  if (!args.parse(static_cast<int>(rewritten.size()), rewritten.data())) {
    return 0;
  }

  try {
    if (subcommand == "train") return run_train(args);
    if (subcommand == "predict") return run_predict(args);
    if (subcommand == "eval") return run_eval(args);
    if (subcommand == "search") return run_search(args);
    if (subcommand == "measure") return run_measure(args);
    if (subcommand == "pipeline") return run_pipeline_cmd(args);
    std::fputs(args.usage().c_str(), stdout);
    std::fputs(
        "\nPick one of: train, predict, eval, search, measure, pipeline.\n",
        stdout);
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
