// esm_cli — command-line front end for the ESM framework.
//
// Subcommands (first positional-free flag set selects the action):
//   --build    build a predictor with the train-evaluate-extend loop and
//              save it (--model PATH)
//   --predict  load a saved predictor (--model PATH) and price N randomly
//              sampled architectures
//   --search   load a saved predictor and run latency-constrained
//              evolutionary NAS under --budget-ms
//
// Examples:
//   esm_cli --build --supernet resnet --device rtx4090 --model /tmp/m.txt
//   esm_cli --predict --model /tmp/m.txt --count 10
//   esm_cli --search --model /tmp/m.txt --device rtx4090 --budget-ms 3.5
#include <iostream>

#include "common/argparse.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "esm/framework.hpp"
#include "nas/accuracy_proxy.hpp"
#include "nas/search.hpp"
#include "nets/builder.hpp"

namespace {

int run_build(const esm::ArgParser& args) {
  const esm::DeviceSpec device_spec =
      esm::device_by_name(args.get_string("device"));
  esm::SimulatedDevice device(device_spec,
                              static_cast<std::uint64_t>(args.get_int("seed")));

  esm::EsmConfig config;
  config.spec = esm::spec_by_name(args.get_string("supernet"));
  config.strategy =
      esm::sampling_strategy_from_name(args.get_string("strategy"));
  config.encoding = esm::encoding_kind_from_name(args.get_string("encoding"));
  config.n_initial = static_cast<int>(args.get_int("n-initial"));
  config.n_step = static_cast<int>(args.get_int("n-step"));
  config.n_bins = static_cast<int>(args.get_int("n-bins"));
  config.acc_threshold = args.get_double("acc-th");
  config.max_iterations = static_cast<int>(args.get_int("max-iters"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "Building " << config.spec.name << " predictor ("
            << esm::encoding_kind_name(config.encoding) << " encoding, "
            << esm::sampling_strategy_name(config.strategy)
            << " sampling) on " << device_spec.name << "...\n";
  const esm::EsmResult result = esm::EsmFramework(config, device).run();
  const esm::IterationReport& last = result.iterations.back();
  std::cout << (result.converged ? "Converged" : "Budget exhausted")
            << " after " << result.iterations.size() << " iteration(s), "
            << result.final_train_set_size << " measured samples.\n"
            << "Overall accuracy "
            << esm::format_percent(last.eval.overall_accuracy)
            << ", worst bin "
            << esm::format_percent(last.eval.min_bin_accuracy) << ".\n";

  const std::string path = args.get_string("model");
  result.predictor->save(path);
  std::cout << "Saved predictor to " << path << "\n";
  return result.converged ? 0 : 2;
}

int run_predict(const esm::ArgParser& args) {
  const esm::MlpSurrogate predictor =
      esm::MlpSurrogate::load(args.get_string("model"));
  const esm::SupernetSpec& spec = predictor.encoder().spec();
  std::cout << "Loaded " << predictor.name() << " for the " << spec.name
            << " space.\n";

  esm::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  esm::RandomSampler sampler(spec);
  esm::TablePrinter table({"architecture (depths)", "blocks",
                           "predicted latency (ms)"});
  for (long long i = 0; i < args.get_int("count"); ++i) {
    const esm::ArchConfig arch = sampler.sample(rng);
    std::vector<std::string> depths;
    for (int d : arch.depths()) depths.push_back(std::to_string(d));
    table.add_row({"[" + esm::join(depths, ",") + "]",
                   std::to_string(arch.total_blocks()),
                   esm::format_double(predictor.predict_ms(arch), 3)});
  }
  table.print(std::cout);
  return 0;
}

int run_search(const esm::ArgParser& args) {
  const esm::MlpSurrogate predictor =
      esm::MlpSurrogate::load(args.get_string("model"));
  const esm::SupernetSpec& spec = predictor.encoder().spec();
  const double budget = args.get_double("budget-ms");

  esm::SearchConfig search_config;
  search_config.population = 64;
  search_config.generations = 25;
  search_config.parents = 16;
  search_config.latency_limit_ms = budget;
  search_config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  esm::EvolutionarySearch search(spec, search_config);
  const esm::AccuracyProxy proxy(spec);
  const esm::SearchResult found = search.run(predictor, proxy);

  std::cout << "Searched the " << spec.name << " space under "
            << esm::format_double(budget, 3) << " ms (evaluated "
            << found.evaluations << " candidates through the surrogate).\n";
  if (!found.found_feasible) {
    std::cout << "No feasible architecture found — raise --budget-ms.\n";
    return 2;
  }
  std::cout << "Best architecture (predicted "
            << esm::format_double(found.best.predicted_latency_ms, 3)
            << " ms, proxy top-5 "
            << esm::format_percent(found.best.proxy_accuracy) << "):\n  "
            << found.best.arch.to_string() << "\n";

  // Optional ground-truth check against the simulated device.
  const std::string device_name = args.get_string("device");
  if (!device_name.empty()) {
    esm::SimulatedDevice device(esm::device_by_name(device_name), 1);
    std::cout << "Ground-truth latency on " << device.spec().name << ": "
              << esm::format_double(
                     device.true_latency_ms(
                         esm::build_graph(spec, found.best.arch)),
                     3)
              << " ms\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  esm::ArgParser args("esm_cli: build, query, and search with ESM latency "
                      "predictors.");
  args.add_bool("build", "build a predictor and save it to --model");
  args.add_bool("predict", "load --model and price random architectures");
  args.add_bool("search", "load --model and run NAS under --budget-ms");
  args.add_string("model", "/tmp/esm_model.txt", "predictor archive path");
  args.add_string("supernet", "resnet", "space (build): resnet|mobilenetv3|densenet");
  args.add_string("device", "rtx4090",
                  "device (build/search verification): rtx4090|rtx3080maxq|"
                  "threadripper|rpi4");
  args.add_string("strategy", "balanced", "sampling (build): random|balanced");
  args.add_string("encoding", "fcc",
                  "encoding (build): one-hot|feature|statistical|fc|fcc");
  args.add_int("n-initial", 300, "N_I (build)");
  args.add_int("n-step", 100, "N_Step (build)");
  args.add_int("n-bins", 5, "N_Bins (build)");
  args.add_double("acc-th", 0.95, "Acc_TH (build)");
  args.add_int("max-iters", 20, "iteration budget (build)");
  args.add_int("count", 10, "architectures to price (predict)");
  args.add_double("budget-ms", 3.0, "latency budget (search)");
  args.add_int("seed", 42, "seed");
  if (!args.parse(argc, argv)) return 0;

  try {
    if (args.get_bool("build")) return run_build(args);
    if (args.get_bool("predict")) return run_predict(args);
    if (args.get_bool("search")) return run_search(args);
    std::fputs(args.usage().c_str(), stdout);
    std::fputs("\nPick one of --build, --predict, --search.\n", stdout);
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
