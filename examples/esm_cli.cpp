// esm_cli — command-line front end for the ESM framework.
//
// Subcommands (first argument):
//   train     build a surrogate with the train-evaluate-extend loop and
//             save it as an artifact (-o/--model PATH). --surrogate and
//             --encoder pick any registered kind ("mlp", "lut", "gbdt",
//             "ensemble" x "onehot", "feature", "stat", "fc", "fcc").
//   predict   load an artifact (positional PATH or --model) and price
//             sampled architectures. The printed predictions are
//             bit-identical to the verification block `train` printed for
//             the same --seed/--count, across processes.
//   eval      load an artifact and score it bin-wise against freshly
//             measured latencies on a simulated device.
//   search    load an artifact and run latency-constrained evolutionary
//             NAS under --budget-ms.
//
// Examples:
//   esm_cli train --surrogate gbdt --encoder fcc -o /tmp/m.esm
//   esm_cli predict /tmp/m.esm --count 10
//   esm_cli eval /tmp/m.esm --device rtx4090
//   esm_cli search /tmp/m.esm --budget-ms 3.5
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/argparse.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "esm/framework.hpp"
#include "nas/accuracy_proxy.hpp"
#include "nas/search.hpp"
#include "nets/builder.hpp"
#include "surrogate/registry.hpp"

namespace {

std::string format_full(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Samples `count` architectures with the shared verification stream so
/// `train` and `predict` price the same models in different processes.
std::vector<esm::ArchConfig> verification_archs(const esm::SupernetSpec& spec,
                                                std::uint64_t seed,
                                                std::size_t count) {
  esm::Rng rng(seed ^ 0x7e57a5c5ull);
  esm::RandomSampler sampler(spec);
  return sampler.sample_n(count, rng);
}

/// Prints full-precision predictions for the verification architectures.
void print_predictions(const esm::LatencyPredictor& predictor,
                       const esm::SupernetSpec& spec, std::uint64_t seed,
                       std::size_t count) {
  const std::vector<esm::ArchConfig> archs =
      verification_archs(spec, seed, count);
  const std::vector<double> predicted = predictor.predict_all(archs);
  esm::TablePrinter table(
      {"architecture (depths)", "blocks", "predicted latency (ms)"});
  for (std::size_t i = 0; i < archs.size(); ++i) {
    std::vector<std::string> depths;
    for (int d : archs[i].depths()) depths.push_back(std::to_string(d));
    table.add_row({"[" + esm::join(depths, ",") + "]",
                   std::to_string(archs[i].total_blocks()),
                   format_full(predicted[i])});
  }
  table.print(std::cout);
}

int run_train(const esm::ArgParser& args) {
  const esm::DeviceSpec device_spec =
      esm::device_by_name(args.get_string("device"));
  esm::SimulatedDevice device(device_spec,
                              static_cast<std::uint64_t>(args.get_int("seed")));

  esm::EsmConfig config;
  config.spec = esm::spec_by_name(args.get_string("supernet"));
  config.strategy =
      esm::sampling_strategy_from_name(args.get_string("strategy"));
  config.surrogate = args.get_string("surrogate");
  config.encoder = args.get_string("encoder");
  config.ensemble_members =
      static_cast<std::size_t>(args.get_int("ensemble-members"));
  config.n_initial = static_cast<int>(args.get_int("n-initial"));
  config.n_step = static_cast<int>(args.get_int("n-step"));
  config.n_bins = static_cast<int>(args.get_int("n-bins"));
  config.acc_threshold = args.get_double("acc-th");
  config.max_iterations = static_cast<int>(args.get_int("max-iters"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "Training a '" << config.surrogate << "' surrogate ("
            << config.encoder << " encoding, "
            << esm::sampling_strategy_name(config.strategy)
            << " sampling) for " << config.spec.name << " on "
            << device_spec.name << "...\n";
  const esm::EsmResult result = esm::EsmFramework(config, device).run();
  const esm::IterationReport& last = result.iterations.back();
  std::cout << (result.converged ? "Converged" : "Budget exhausted")
            << " after " << result.iterations.size() << " iteration(s), "
            << result.final_train_set_size << " measured samples.\n"
            << "Overall accuracy "
            << esm::format_percent(last.eval.overall_accuracy)
            << ", worst bin "
            << esm::format_percent(last.eval.min_bin_accuracy) << ".\n";

  // Verification block BEFORE saving: pricing these architectures also
  // fills any lazily profiled state (the LUT memo table), so the artifact
  // reproduces exactly these numbers in a fresh process.
  std::cout << "Verification predictions (reproduce with `esm_cli predict "
            << "--seed " << args.get_int("seed") << " --count "
            << args.get_int("count") << "`):\n";
  print_predictions(*result.predictor, config.spec, config.seed,
                    static_cast<std::size_t>(args.get_int("count")));

  const std::string path = args.get_string("model");
  esm::save_surrogate(*result.predictor, path);
  std::cout << "Saved " << result.predictor->kind() << " artifact to " << path
            << "\n";
  return result.converged ? 0 : 2;
}

int run_predict(const esm::ArgParser& args) {
  const std::unique_ptr<esm::TrainableSurrogate> predictor =
      esm::load_surrogate(args.get_string("model"));
  const esm::SupernetSpec& spec = predictor->spec();
  std::cout << "Loaded " << predictor->name() << " (kind '"
            << predictor->kind() << "', encoder '" << predictor->encoder_key()
            << "') for the " << spec.name << " space.\n";
  print_predictions(*predictor, spec,
                    static_cast<std::uint64_t>(args.get_int("seed")),
                    static_cast<std::size_t>(args.get_int("count")));
  return 0;
}

int run_eval(const esm::ArgParser& args) {
  const std::unique_ptr<esm::TrainableSurrogate> predictor =
      esm::load_surrogate(args.get_string("model"));
  const esm::SupernetSpec& spec = predictor->spec();
  const esm::DeviceSpec device_spec =
      esm::device_by_name(args.get_string("device"));
  esm::SimulatedDevice device(device_spec,
                              static_cast<std::uint64_t>(args.get_int("seed")));

  // Balanced so every depth bin is represented, like the framework's own
  // held-out set; measured fresh so the score reflects this device.
  esm::EsmConfig config;
  config.spec = spec;
  config.surrogate = predictor->kind();
  config.n_bins = static_cast<int>(args.get_int("n-bins"));
  config.n_test = static_cast<int>(args.get_int("count"));
  config.acc_threshold = args.get_double("acc-th");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.validate();

  esm::Rng rng(config.seed);
  esm::DatasetGenerator generator(config, device, rng.split());
  esm::BalancedSampler sampler(spec, config.n_bins);
  esm::Rng sample_rng = rng.split();
  const std::vector<esm::ArchConfig> archs = sampler.sample_n(
      static_cast<std::size_t>(config.n_test), sample_rng);
  const std::vector<esm::MeasuredSample> test_set =
      generator.measure_batch(archs);

  const esm::BinwiseEvaluator evaluator(spec, config.n_bins,
                                        config.acc_threshold);
  const esm::EvalReport report = evaluator.evaluate(*predictor, test_set);

  std::cout << "Evaluated " << predictor->name() << " on " << test_set.size()
            << " freshly measured " << spec.name << " samples ("
            << device_spec.name << ").\n";
  esm::TablePrinter table({"bin", "blocks", "samples", "accuracy", "pass"});
  for (const esm::BinAccuracy& bin : report.bins) {
    table.add_row({std::to_string(bin.bin), bin.label,
                   std::to_string(bin.count),
                   esm::format_percent(bin.accuracy),
                   bin.below_threshold ? "no" : "yes"});
  }
  table.print(std::cout);
  std::cout << "Overall " << esm::format_percent(report.overall_accuracy)
            << ", worst bin " << esm::format_percent(report.min_bin_accuracy)
            << " (threshold " << esm::format_percent(config.acc_threshold)
            << ").\n";
  return report.min_bin_accuracy >= config.acc_threshold ? 0 : 2;
}

int run_search(const esm::ArgParser& args) {
  const std::unique_ptr<esm::TrainableSurrogate> predictor =
      esm::load_surrogate(args.get_string("model"));
  const esm::SupernetSpec& spec = predictor->spec();
  const double budget = args.get_double("budget-ms");

  esm::SearchConfig search_config;
  search_config.population = 64;
  search_config.generations = 25;
  search_config.parents = 16;
  search_config.latency_limit_ms = budget;
  search_config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  esm::EvolutionarySearch search(spec, search_config);
  const esm::AccuracyProxy proxy(spec);
  const esm::SearchResult found = search.run(*predictor, proxy);

  std::cout << "Searched the " << spec.name << " space under "
            << esm::format_double(budget, 3) << " ms (evaluated "
            << found.evaluations << " candidates through the surrogate).\n";
  if (!found.found_feasible) {
    std::cout << "No feasible architecture found — raise --budget-ms.\n";
    return 2;
  }
  std::cout << "Best architecture (predicted "
            << esm::format_double(found.best.predicted_latency_ms, 3)
            << " ms, proxy top-5 "
            << esm::format_percent(found.best.proxy_accuracy) << "):\n  "
            << found.best.arch.to_string() << "\n";

  // Optional ground-truth check against the simulated device.
  const std::string device_name = args.get_string("device");
  if (!device_name.empty()) {
    esm::SimulatedDevice device(esm::device_by_name(device_name), 1);
    std::cout << "Ground-truth latency on " << device.spec().name << ": "
              << esm::format_double(
                     device.true_latency_ms(
                         esm::build_graph(spec, found.best.arch)),
                     3)
              << " ms\n";
  }
  return 0;
}

/// Rewrites `subcommand [args...]` into plain flags the parser accepts:
/// the subcommand selects the action, "-o" is shorthand for "--model", and
/// a bare path positional becomes the --model value.
std::vector<const char*> normalize_args(int argc, char** argv,
                                        std::string& subcommand,
                                        std::vector<std::string>& storage) {
  int start = 1;
  if (argc > 1 && argv[1][0] != '-') {
    subcommand = argv[1];
    start = 2;
  }
  storage.clear();
  bool prev_expects_value = false;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      storage.push_back("--model");
      prev_expects_value = true;
    } else if (!arg.empty() && arg[0] != '-' && !prev_expects_value) {
      // A free-standing token is the artifact path ("predict model.esm").
      storage.push_back("--model=" + arg);
    } else {
      storage.push_back(arg);
      // "--name value" form: the next token belongs to this flag.
      prev_expects_value =
          arg.size() > 2 && arg[0] == '-' && arg.find('=') == std::string::npos;
    }
  }
  std::vector<const char*> out;
  out.push_back(argv[0]);
  for (const std::string& s : storage) out.push_back(s.c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  esm::ArgParser args(
      "esm_cli <train|predict|eval|search>: train, query, score, and search "
      "with ESM surrogate artifacts.");
  args.add_string("model", "/tmp/esm_model.esm", "surrogate artifact path");
  args.add_string("surrogate", "mlp",
                  "surrogate (train): mlp|lut|gbdt|ensemble");
  args.add_string("encoder", "fcc",
                  "encoder (train): onehot|feature|stat|fc|fcc");
  args.add_int("ensemble-members", 4, "ensemble width (train)");
  args.add_string("supernet", "resnet",
                  "space (train): resnet|mobilenetv3|densenet");
  args.add_string("device", "rtx4090",
                  "device (train/eval/search verification): rtx4090|"
                  "rtx3080maxq|threadripper|rpi4");
  args.add_string("strategy", "balanced", "sampling (train): random|balanced");
  args.add_int("n-initial", 300, "N_I (train)");
  args.add_int("n-step", 100, "N_Step (train)");
  args.add_int("n-bins", 5, "N_Bins (train/eval)");
  args.add_double("acc-th", 0.95, "Acc_TH (train/eval)");
  args.add_int("max-iters", 20, "iteration budget (train)");
  args.add_int("count", 10, "architectures to price (train/predict/eval)");
  args.add_double("budget-ms", 3.0, "latency budget (search)");
  args.add_int("seed", 42, "seed");

  std::string subcommand;
  std::vector<std::string> storage;
  const std::vector<const char*> rewritten =
      normalize_args(argc, argv, subcommand, storage);
  if (!args.parse(static_cast<int>(rewritten.size()), rewritten.data())) {
    return 0;
  }

  try {
    if (subcommand == "train") return run_train(args);
    if (subcommand == "predict") return run_predict(args);
    if (subcommand == "eval") return run_eval(args);
    if (subcommand == "search") return run_search(args);
    std::fputs(args.usage().c_str(), stdout);
    std::fputs("\nPick one of: train, predict, eval, search.\n", stdout);
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
