// Inspect every encoding scheme on one sampled architecture: vector length,
// sparsity, and the actual vector contents, side by side (a hands-on tour
// of paper Fig. 7).
//
//   $ ./examples/encoding_explorer [--supernet resnet] [--seed 3]
#include <iostream>

#include "common/argparse.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "encoding/encoder.hpp"
#include "nets/sampler.hpp"

int main(int argc, char** argv) {
  esm::ArgParser args("Explore the five architecture encodings.");
  args.add_string("supernet", "resnet",
                  "architecture space (resnet|mobilenetv3|densenet)");
  args.add_int("seed", 3, "sampling seed");
  if (!args.parse(argc, argv)) return 0;

  const esm::SupernetSpec spec =
      esm::spec_by_name(args.get_string("supernet"));
  esm::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  esm::RandomSampler sampler(spec);
  const esm::ArchConfig arch = sampler.sample(rng);

  std::cout << "Sampled architecture from the " << spec.name << " space ("
            << esm::format_scientific(spec.space_cardinality())
            << " architectures):\n  " << arch.to_string() << "\n  "
            << arch.total_blocks() << " blocks, depths [";
  const auto depths = arch.depths();
  for (std::size_t i = 0; i < depths.size(); ++i) {
    std::cout << (i ? ", " : "") << depths[i];
  }
  std::cout << "]\n";

  esm::print_banner(std::cout, "Encoding comparison (paper Fig. 7)");
  esm::TablePrinter table({"Encoding", "dim", "sparsity", "role"});
  const char* roles[] = {
      "baseline: long, binary, very sparse",
      "baseline: per-slot raw features, zero-padded",
      "SoTA [11]: depths + global mean/std (lossy)",
      "proposed: per-unit counts of feature values",
      "proposed: per-unit counts of feature combinations",
  };
  int role = 0;
  for (esm::EncodingKind kind : esm::all_encoding_kinds()) {
    auto encoder = esm::make_encoder(kind, spec);
    table.add_row({encoder->name(), std::to_string(encoder->dimension()),
                   esm::format_percent(encoder->sparsity(arch), 1),
                   roles[role++]});
  }
  table.print(std::cout);

  for (esm::EncodingKind kind :
       {esm::EncodingKind::kStatistical, esm::EncodingKind::kFeatureCount,
        esm::EncodingKind::kFcc}) {
    auto encoder = esm::make_encoder(kind, spec);
    const std::vector<double> z = encoder->encode(arch);
    std::cout << "\n" << encoder->name() << " vector (" << z.size()
              << " entries):\n  [";
    for (std::size_t i = 0; i < z.size(); ++i) {
      std::cout << (i ? ", " : "") << esm::format_double(z[i], 2);
    }
    std::cout << "]\n";
  }
  std::cout << "\nNote how FCC keeps one counter per (kernel, expansion) "
               "combination per unit — short like the\nstatistical summary "
               "but with the full multiset of block types preserved.\n";
  return 0;
}
