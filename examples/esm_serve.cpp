// esm_serve — loopback-TCP front end for the online prediction server.
//
// Server mode:
//   esm_serve model.esm [--port N] [--port-file PATH] [--cache N]
//             [--max-batch N] [--summary-s SEC] [--threads N]
//   esm_serve --manifest fleet/manifest.esmf [...]
//   Serves a single `.esm` artifact or a whole fleet manifest (`esm_cli
//   pipeline` publishes these); the two are told apart by file content, so
//   the positional form works for both. Binds 127.0.0.1:N (N = 0 lets the
//   kernel pick; the chosen port is printed as "listening on
//   127.0.0.1:<port>" and written to --port-file when given), then serves
//   the newline-delimited protocol of src/serve/protocol.hpp — including
//   model-routed requests like "predict rpi4 3,5,2,7" — to any number of
//   concurrent clients. SIGINT and SIGTERM (and the protocol's `shutdown`
//   verb) drain in-flight requests before exit; a final stats summary goes
//   to stderr.
//
// Client mode:
//   esm_serve --connect PORT [--host H]
//   Reads request lines from stdin, prints each response line to stdout.
//   Exit 0 when every response was ok, 2 when any response was an error,
//   1 on connection failure — which is what scripts/ci.sh's loopback smoke
//   test checks.
//
// Example:
//   esm_cli train --surrogate gbdt -o model.esm
//   esm_serve model.esm --port 0 &
//   printf 'predict 3,5,2,7\nstats\nshutdown\n' | esm_serve --connect <port>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/argparse.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

/// Stream over a connected TCP socket: buffered line reads bounded by
/// `max_line`, full-line writes, and a close() that shuts the socket down
/// so a blocked reader unblocks (the fd itself is closed in the
/// destructor, keeping the fd number stable against reuse races).
class TcpStream final : public esm::serve::Stream {
 public:
  TcpStream(int fd, std::size_t max_line) : fd_(fd), max_line_(max_line) {}
  ~TcpStream() override {
    close();
    ::close(fd_);
  }

  bool read_line(std::string& line) override {
    line.clear();
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
      }
      // A peer that streams more than max_line_ bytes without a newline
      // cannot be resynchronized; drop the connection.
      if (buffer_.size() > max_line_ + 2) return false;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        // Deliver a final unterminated line, if any.
        if (!buffer_.empty()) {
          line.swap(buffer_);
          return true;
        }
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(write_mutex_);
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  void close() override {
    bool expected = false;
    if (shut_.compare_exchange_strong(expected, true)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

 private:
  int fd_;
  std::size_t max_line_;
  std::string buffer_;
  std::mutex write_mutex_;
  std::atomic<bool> shut_{false};
};

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int run_server(const esm::ArgParser& args) {
  const int threads = static_cast<int>(args.get_int("threads"));
  if (threads > 0) esm::set_thread_count(threads);

  esm::serve::ServeConfig config;
  config.artifact_path = args.get_string("model").empty()
                             ? args.get_string("manifest")
                             : args.get_string("model");
  config.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  config.max_batch = static_cast<std::size_t>(args.get_int("max-batch"));
  config.summary_period_s = args.get_double("summary-s");
  esm::serve::PredictionServer server(config);
  const std::shared_ptr<const esm::serve::ModelFleet> fleet = server.fleet();
  if (fleet->from_manifest()) {
    std::cout << "serving a fleet of " << fleet->models().size()
              << " model(s) from " << fleet->source_path() << " [crc32 "
              << fleet->manifest_crc32() << "]\n";
    for (const esm::serve::FleetModel& m : fleet->models()) {
      std::cout << "  " << m.name
                << (m.name == fleet->default_model().name ? " (default)"
                                                          : "")
                << ": " << m.model->kind() << " (" << m.model->spec().name
                << ", encoder " << m.model->encoder_key() << ") from "
                << m.artifact_path << " [crc32 " << m.crc32_hex << "]\n";
    }
  } else {
    const esm::serve::MetricsSnapshot boot = server.metrics();
    std::cout << "serving " << boot.kind << " (" << boot.space
              << ", encoder " << boot.encoder << ") from " << boot.artifact
              << " [crc32 " << boot.artifact_crc32 << "]\n";
  }

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ESM_REQUIRE(listen_fd >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(args.get_int("port")));
  ESM_REQUIRE(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "bind(127.0.0.1:" << args.get_int("port")
                                << "): " << std::strerror(errno));
  ESM_REQUIRE(::listen(listen_fd, 64) == 0,
              "listen(): " << std::strerror(errno));
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  const int port = ntohs(addr.sin_port);
  std::cout << "listening on 127.0.0.1:" << port << std::endl;
  const std::string port_file = args.get_string("port-file");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << port << "\n";
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // Accept loop: poll with a short timeout so SIGINT/SIGTERM and the
  // protocol-level shutdown verb are both noticed promptly.
  while (!g_stop.load() && !server.stopping()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || !(pfd.revents & POLLIN)) continue;
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) continue;
    server.serve(std::make_shared<TcpStream>(
        client_fd, esm::serve::ServeConfig{}.max_line_bytes));
  }
  ::close(listen_fd);

  // Drain: in-flight requests are answered before the threads join.
  server.request_stop();
  server.wait();
  std::fprintf(stderr, "%s\n",
               esm::serve::ServerMetrics::summary_line(server.metrics())
                   .c_str());
  return 0;
}

int run_client(const esm::ArgParser& args) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "error: socket(): " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(args.get_int("connect")));
  if (::inet_pton(AF_INET, args.get_string("host").c_str(), &addr.sin_addr) !=
      1) {
    std::cerr << "error: bad --host\n";
    ::close(fd);
    return 1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::cerr << "error: connect(" << args.get_string("host") << ":"
              << args.get_int("connect") << "): " << std::strerror(errno)
              << "\n";
    ::close(fd);
    return 1;
  }
  auto stream = std::make_shared<TcpStream>(
      fd, esm::serve::ServeConfig{}.max_line_bytes);
  bool any_error = false;
  std::string request;
  while (std::getline(std::cin, request)) {
    if (request.empty()) continue;
    if (!stream->write_line(request)) {
      std::cerr << "error: server closed the connection\n";
      return 1;
    }
    std::string response;
    if (!stream->read_line(response)) {
      std::cerr << "error: no response (server closed)\n";
      return 1;
    }
    std::cout << response << "\n";
    esm::serve::ParsedResponse parsed;
    if (!esm::serve::parse_response(response, parsed) || !parsed.ok) {
      any_error = true;
    }
  }
  return any_error ? 2 : 0;
}

/// Turns a bare positional token into the --model value (mirrors esm_cli).
std::vector<const char*> normalize_args(int argc, char** argv,
                                        std::vector<std::string>& storage) {
  storage.clear();
  bool prev_expects_value = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] != '-' && !prev_expects_value) {
      storage.push_back("--model=" + arg);
    } else {
      storage.push_back(arg);
      prev_expects_value =
          arg.size() > 2 && arg[0] == '-' && arg.find('=') == std::string::npos;
    }
  }
  std::vector<const char*> out;
  out.push_back(argv[0]);
  for (const std::string& s : storage) out.push_back(s.c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  esm::ArgParser args(
      "esm_serve MODEL.esm|MANIFEST.esmf: serve latency predictions over "
      "loopback TCP (newline-delimited protocol: predict, predict_batch, "
      "info, models, stats, reload, shutdown; requests may route by model "
      "name). With --connect PORT, run as a line client instead.");
  args.add_string("model", "", "surrogate artifact or fleet manifest to serve");
  args.add_string("manifest", "",
                  "fleet manifest to serve (same as passing it as MODEL; "
                  "the file content decides)");
  args.add_int("port", 0, "TCP port to bind on 127.0.0.1 (0 = kernel picks)");
  args.add_string("port-file", "",
                  "write the bound port number to this file once listening");
  args.add_int("cache", 4096, "prediction cache capacity (0 disables)");
  args.add_int("max-batch", 64, "max architectures per coalesced dispatch");
  args.add_double("summary-s", 10.0,
                  "seconds between stderr stats summaries (0 disables)");
  args.add_int("threads", 0,
               "prediction threads (0 = ESM_THREADS / serial default)");
  args.add_int("connect", 0, "client mode: connect to this port");
  args.add_string("host", "127.0.0.1", "client mode: host to connect to");

  std::vector<std::string> storage;
  const std::vector<const char*> rewritten =
      normalize_args(argc, argv, storage);
  if (!args.parse(static_cast<int>(rewritten.size()), rewritten.data())) {
    return 0;
  }
  try {
    if (args.get_int("connect") > 0) return run_client(args);
    ESM_REQUIRE(!args.get_string("model").empty() ||
                    !args.get_string("manifest").empty(),
                "server mode needs a MODEL.esm or --manifest path (or use "
                "--connect)");
    return run_server(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
