// esm_serve — event-loop TCP front end for the online prediction server.
//
// Server mode:
//   esm_serve model.esm [--port N] [--port-file PATH] [--cache N]
//             [--max-batch N] [--summary-s SEC] [--threads N]
//             [--idle-timeout-s SEC] [--backend epoll|poll]
//   esm_serve --manifest fleet/manifest.esmf [...]
//   Serves a single `.esm` artifact or a whole fleet manifest (`esm_cli
//   pipeline` publishes these); the two are told apart by file content, so
//   the positional form works for both. Binds 127.0.0.1:N (N = 0 lets the
//   kernel pick; the chosen port is printed as "listening on
//   127.0.0.1:<port>" and written to --port-file when given). All
//   connections are multiplexed on one epoll (or poll) reactor thread —
//   see src/serve/event_loop.hpp — speaking both wire protocols on the
//   same port: the newline-delimited esm1 protocol of
//   src/serve/protocol.hpp and the length-prefixed binary esm2 protocol
//   of src/serve/frame.hpp, told apart by the first byte (0xE5 = esm2).
//   SIGINT and SIGTERM (and the protocol's `shutdown` verb) drain: every
//   request already on the wire is answered before exit; a final stats
//   summary goes to stderr.
//
// Client mode:
//   esm_serve --connect PORT [--host H] [--proto esm1|esm2]
//   Reads request lines from stdin, prints each response to stdout (esm1
//   responses verbatim; esm2 responses as "esm2 ok <verb> <payload>" /
//   "esm2 err <code> <detail>"). Exit 0 when every response was ok, 2
//   when any response was an error, 1 on connection failure — which is
//   what scripts/ci.sh's loopback smoke test checks.
//
// Example:
//   esm_cli train --surrogate gbdt -o model.esm
//   esm_serve model.esm --port 0 &
//   printf 'predict 3,5,2,7\nstats\nshutdown\n' | esm_serve --connect <port>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/argparse.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "serve/client.hpp"
#include "serve/event_loop.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace {

std::atomic<bool> g_stop{false};
std::atomic<esm::serve::EventLoop*> g_loop{nullptr};

// Only async-signal-safe work here: set the flag and poke the loop's
// wake pipe so the stop is noticed immediately (no polling interval —
// the old accept loop's 200 ms poll race is gone).
void handle_signal(int) {
  g_stop.store(true);
  esm::serve::EventLoop* loop = g_loop.load();
  if (loop != nullptr) loop->notify_external();
}

int run_server(const esm::ArgParser& args) {
  const int threads = static_cast<int>(args.get_int("threads"));
  if (threads > 0) esm::set_thread_count(threads);

  esm::serve::ServeConfig config;
  config.artifact_path = args.get_string("model").empty()
                             ? args.get_string("manifest")
                             : args.get_string("model");
  config.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  config.max_batch = static_cast<std::size_t>(args.get_int("max-batch"));
  config.summary_period_s = args.get_double("summary-s");
  esm::serve::PredictionServer server(config);
  const std::shared_ptr<const esm::serve::ModelFleet> fleet = server.fleet();
  if (fleet->from_manifest()) {
    std::cout << "serving a fleet of " << fleet->models().size()
              << " model(s) from " << fleet->source_path() << " [crc32 "
              << fleet->manifest_crc32() << "]\n";
    for (const esm::serve::FleetModel& m : fleet->models()) {
      std::cout << "  " << m.name
                << (m.name == fleet->default_model().name ? " (default)"
                                                          : "")
                << ": " << m.model->kind() << " (" << m.model->spec().name
                << ", encoder " << m.model->encoder_key() << ") from "
                << m.artifact_path << " [crc32 " << m.crc32_hex << "]\n";
    }
  } else {
    const esm::serve::MetricsSnapshot boot = server.metrics();
    std::cout << "serving " << boot.kind << " (" << boot.space
              << ", encoder " << boot.encoder << ") from " << boot.artifact
              << " [crc32 " << boot.artifact_crc32 << "]\n";
  }

  const std::string backend = args.get_string("backend");
  ESM_REQUIRE(backend == "epoll" || backend == "poll",
              "--backend must be epoll or poll, got \"" << backend << "\"");
  esm::serve::EventLoopConfig loop_config;
  loop_config.force_poll = backend == "poll";
  loop_config.idle_timeout_s = args.get_double("idle-timeout-s");
  loop_config.external_stop_check = [] { return g_stop.load(); };
  esm::serve::EventLoop loop(server, loop_config);

  int port = 0;
  loop.add_listener(std::shared_ptr<esm::serve::Listener>(
      esm::serve::make_tcp_listener(static_cast<int>(args.get_int("port")),
                                    &port)));
  std::cout << "listening on 127.0.0.1:" << port << " [" << loop.backend()
            << "]" << std::endl;
  const std::string port_file = args.get_string("port-file");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << port << "\n";
  }

  g_loop.store(&loop);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // Runs the reactor until a signal or the shutdown verb, then drains:
  // run() only returns once every accepted request has been answered.
  loop.run();
  g_loop.store(nullptr);

  server.request_stop();
  server.wait();
  const esm::serve::EventLoop::Stats stats = loop.stats();
  std::fprintf(stderr, "%s\n",
               esm::serve::ServerMetrics::summary_line(server.metrics())
                   .c_str());
  std::fprintf(stderr,
               "event_loop backend=%s accepted=%llu closed=%llu "
               "dropped=%llu requests=%llu\n",
               loop.backend().c_str(),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.closed),
               static_cast<unsigned long long>(stats.dropped),
               static_cast<unsigned long long>(stats.requests));
  return 0;
}

int run_client(const esm::ArgParser& args) {
  const std::string proto = args.get_string("proto");
  if (proto != "esm1" && proto != "esm2") {
    std::cerr << "error: --proto must be esm1 or esm2\n";
    return 1;
  }
  std::shared_ptr<esm::serve::ClientChannel> channel;
  try {
    channel = esm::serve::connect_tcp(args.get_string("host"),
                                      static_cast<int>(args.get_int("connect")));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  esm::serve::EsmClient client(std::move(channel),
                               proto == "esm2"
                                   ? esm::serve::Protocol::esm2
                                   : esm::serve::Protocol::esm1);
  bool any_error = false;
  std::string request;
  while (std::getline(std::cin, request)) {
    if (request.empty()) continue;
    esm::serve::EsmClient::Response response;
    try {
      response = client.call_line(request);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    std::cout << response.raw << "\n";
    if (!response.ok) any_error = true;
  }
  return any_error ? 2 : 0;
}

/// Turns a bare positional token into the --model value (mirrors esm_cli).
std::vector<const char*> normalize_args(int argc, char** argv,
                                        std::vector<std::string>& storage) {
  storage.clear();
  bool prev_expects_value = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] != '-' && !prev_expects_value) {
      storage.push_back("--model=" + arg);
    } else {
      storage.push_back(arg);
      prev_expects_value =
          arg.size() > 2 && arg[0] == '-' && arg.find('=') == std::string::npos;
    }
  }
  std::vector<const char*> out;
  out.push_back(argv[0]);
  for (const std::string& s : storage) out.push_back(s.c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  esm::ArgParser args(
      "esm_serve MODEL.esm|MANIFEST.esmf: serve latency predictions over "
      "loopback TCP from one event-loop thread, speaking both the "
      "newline-delimited esm1 protocol and the binary pipelined esm2 "
      "protocol on the same port (verbs: predict, predict_batch, info, "
      "models, stats, reload, shutdown; requests may route by model "
      "name). With --connect PORT, run as a line client instead.");
  args.add_string("model", "", "surrogate artifact or fleet manifest to serve");
  args.add_string("manifest", "",
                  "fleet manifest to serve (same as passing it as MODEL; "
                  "the file content decides)");
  args.add_int("port", 0, "TCP port to bind on 127.0.0.1 (0 = kernel picks)");
  args.add_string("port-file", "",
                  "write the bound port number to this file once listening");
  args.add_int("cache", 4096, "prediction cache capacity (0 disables)");
  args.add_int("max-batch", 64, "max architectures per coalesced dispatch");
  args.add_double("summary-s", 10.0,
                  "seconds between stderr stats summaries (0 disables)");
  args.add_int("threads", 0,
               "prediction threads (0 = ESM_THREADS / serial default)");
  args.add_double("idle-timeout-s", 0.0,
                  "drop connections idle this long (0 = never)");
  args.add_string("backend", "epoll",
                  "reactor backend: epoll (falls back to poll off Linux) "
                  "or poll");
  args.add_int("connect", 0, "client mode: connect to this port");
  args.add_string("host", "127.0.0.1", "client mode: host to connect to");
  args.add_string("proto", "esm1", "client mode: wire protocol (esm1|esm2)");

  std::vector<std::string> storage;
  const std::vector<const char*> rewritten =
      normalize_args(argc, argv, storage);
  if (!args.parse(static_cast<int>(rewritten.size()), rewritten.data())) {
    return 0;
  }
  try {
    if (args.get_int("connect") > 0) return run_client(args);
    ESM_REQUIRE(!args.get_string("model").empty() ||
                    !args.get_string("manifest").empty(),
                "server mode needs a MODEL.esm or --manifest path (or use "
                "--connect)");
    return run_server(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
