// Quickstart: build an FCC-encoded latency predictor for the ResNet space
// on the (simulated) RTX 4090 with the ESM train-evaluate-extend loop, then
// query it.
//
//   $ ./examples/quickstart [--device rtx4090] [--supernet resnet]
#include <cstdio>
#include <iostream>

#include "common/argparse.hpp"
#include "common/strings.hpp"
#include "esm/framework.hpp"
#include "hwsim/device.hpp"
#include "nets/sampler.hpp"
#include "surrogate/registry.hpp"

int main(int argc, char** argv) {
  esm::ArgParser args(
      "Quickstart: build a latency predictor with the ESM framework.");
  args.add_string("device", "rtx4090",
                  "target device (rtx4090|rtx3080maxq|threadripper|rpi4)");
  args.add_string("supernet", "resnet",
                  "architecture space (resnet|mobilenetv3|densenet)");
  args.add_int("seed", 42, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  // 1. Pick the target device and architecture space.
  const esm::DeviceSpec device_spec =
      esm::device_by_name(args.get_string("device"));
  esm::SimulatedDevice device(device_spec,
                              static_cast<std::uint64_t>(args.get_int("seed")));

  // 2. Configure the framework (paper defaults: balanced sampling, FCC
  //    encoding, bin-wise evaluation).
  esm::EsmConfig config;
  config.spec = esm::spec_by_name(args.get_string("supernet"));
  config.strategy = esm::SamplingStrategy::kBalanced;
  config.surrogate = "mlp";
  config.encoder = "fcc";
  config.n_initial = 300;
  config.n_step = 100;
  config.n_bins = 5;
  config.acc_threshold = 0.95;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // 3. Run the train-evaluate-extend loop.
  esm::EsmFramework framework(config, device);
  esm::EsmResult result = framework.run();

  std::cout << "ESM loop on " << device_spec.name << " / "
            << config.spec.name << ":\n";
  for (const esm::IterationReport& it : result.iterations) {
    std::cout << "  iter " << it.iteration << ": train set "
              << it.train_set_size << ", overall acc "
              << esm::format_percent(it.eval.overall_accuracy)
              << ", min bin acc "
              << esm::format_percent(it.eval.min_bin_accuracy)
              << (it.passed ? "  [converged]" : "") << '\n';
  }
  std::cout << (result.converged ? "Converged" : "Did not converge")
            << " with " << result.final_train_set_size
            << " training samples.\n"
            << "Simulated measurement time: "
            << esm::format_double(result.total_measurement_seconds, 1)
            << " s; predictor training time: "
            << esm::format_double(result.total_train_seconds, 2) << " s\n\n";

  // 4. Persist the predictor and restore it (what a NAS tool would ship).
  const std::string model_path = "/tmp/esm_quickstart_predictor.esm";
  esm::save_surrogate(*result.predictor, model_path);
  const std::unique_ptr<esm::TrainableSurrogate> restored =
      esm::load_surrogate(model_path);
  std::cout << "Predictor saved to and restored from " << model_path
            << ".\n\n";

  // 5. Query the restored predictor on fresh architectures.
  esm::Rng rng(123);
  esm::RandomSampler sampler(config.spec);
  std::cout << "Sample predictions vs. ground truth:\n";
  for (int i = 0; i < 5; ++i) {
    const esm::ArchConfig arch = sampler.sample(rng);
    const double predicted = restored->predict_ms(arch);
    const double actual =
        device.true_latency_ms(esm::build_graph(config.spec, arch));
    std::cout << "  " << arch.total_blocks() << " blocks: predicted "
              << esm::format_double(predicted, 3) << " ms, true "
              << esm::format_double(actual, 3) << " ms\n";
  }
  return 0;
}
