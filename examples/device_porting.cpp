// Porting a latency predictor to a new device on a small measurement budget.
//
// The paper's framework is device-agnostic: the same spaces/encodings are
// re-profiled per target (Fig. 10 used only 1,200 samples on the Raspberry
// Pi 4 because each measurement there is slow). This example builds a
// ResNet predictor for the Pi with balanced sampling and a tight budget,
// reports per-depth-bin accuracy, and contrasts the measurement cost with
// the RTX 4090.
//
//   $ ./examples/device_porting [--budget 1200]
#include <iostream>

#include "common/argparse.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "esm/framework.hpp"
#include "hwsim/device.hpp"

int main(int argc, char** argv) {
  esm::ArgParser args("Port a ResNet latency predictor to the Raspberry Pi 4.");
  args.add_int("budget", 1200, "total training-sample budget");
  args.add_int("seed", 5, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const int budget = static_cast<int>(args.get_int("budget"));

  esm::EsmConfig config;
  config.spec = esm::resnet_spec();
  config.strategy = esm::SamplingStrategy::kBalanced;
  config.surrogate = "mlp";
  config.encoder = "fcc";
  config.n_initial = budget / 2;
  config.n_step = budget / 8;
  config.n_test = 300;
  config.acc_threshold = 0.93;
  config.max_iterations = 4;  // initial + up to 4 extensions ~ the budget
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  for (const char* device_name : {"rpi4", "rtx4090"}) {
    const esm::DeviceSpec spec = esm::device_by_name(device_name);
    esm::SimulatedDevice device(spec, config.seed + 17);
    std::cout << "\n=== Target: " << spec.name << " ("
              << esm::device_class_name(spec.device_class) << ") ===\n";

    esm::EsmFramework framework(config, device);
    const esm::EsmResult result = framework.run();
    const esm::IterationReport& last = result.iterations.back();

    esm::TablePrinter bins({"depth bin", "test samples", "accuracy"});
    for (const esm::BinAccuracy& b : last.eval.bins) {
      bins.add_row({b.label, std::to_string(b.count),
                    esm::format_percent(b.accuracy, 1)});
    }
    bins.print(std::cout);

    esm::TablePrinter summary({"metric", "value"});
    summary.add_row({"training samples",
                     std::to_string(result.final_train_set_size)});
    summary.add_row({"overall accuracy",
                     esm::format_percent(last.eval.overall_accuracy, 1)});
    summary.add_row(
        {"simulated measurement time",
         esm::format_double(result.total_measurement_seconds / 3600.0, 2) +
             " h"});
    summary.add_row({"predictor training time",
                     esm::format_double(result.total_train_seconds, 1) + " s"});
    summary.print(std::cout);
  }
  std::cout << "\nNote how the embedded target turns measurement time into "
               "the dominant cost — exactly why\nthe paper ports predictors "
               "with small, balanced budgets and an early-exit loop.\n";
  return 0;
}
