// Hardware-aware NAS end to end (the workflow of paper Fig. 1):
//
//   1. Build a latency predictor for the MobileNetV3 space on the target
//      device with the ESM framework (balanced sampling + FCC encoding).
//   2. Run a latency-constrained evolutionary search that queries ONLY the
//      predictor (no device measurements inside the search loop).
//   3. Cross-check the returned architectures on the ground-truth simulator
//      — an accurate surrogate keeps the search honest (Fig. 2's lesson).
//
//   $ ./examples/hw_nas_search [--device rtx4090] [--budget-ms 2.0]
#include <iostream>

#include "common/argparse.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "esm/framework.hpp"
#include "nas/accuracy_proxy.hpp"
#include "nas/search.hpp"
#include "nets/builder.hpp"

int main(int argc, char** argv) {
  esm::ArgParser args("Hardware-aware NAS driven by an ESM latency predictor.");
  args.add_string("device", "rtx4090", "target device");
  args.add_double("budget-ms", 0.0,
                  "latency budget (0 = use the median of the test set)");
  args.add_int("seed", 7, "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const esm::DeviceSpec device_spec =
      esm::device_by_name(args.get_string("device"));
  esm::SimulatedDevice device(device_spec,
                              static_cast<std::uint64_t>(args.get_int("seed")));

  // --- 1. build the latency predictor ---------------------------------
  esm::EsmConfig config;
  config.spec = esm::mobilenet_v3_spec();
  config.strategy = esm::SamplingStrategy::kBalanced;
  config.surrogate = "mlp";
  config.encoder = "fcc";
  config.n_initial = 400;
  config.n_step = 100;
  config.acc_threshold = 0.95;
  config.max_iterations = 10;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "Building latency predictor for " << config.spec.name
            << " on " << device_spec.name << "...\n";
  esm::EsmResult esm_result = esm::EsmFramework(config, device).run();
  std::cout << "  " << (esm_result.converged ? "converged" : "stopped")
            << " after " << esm_result.iterations.size()
            << " iterations, " << esm_result.final_train_set_size
            << " measured samples, overall accuracy "
            << esm::format_percent(
                   esm_result.iterations.back().eval.overall_accuracy)
            << "\n\n";

  // --- 2. evolutionary search under the latency budget ----------------
  double budget_ms = args.get_double("budget-ms");
  if (budget_ms <= 0.0) {
    std::vector<double> lats;
    for (const esm::MeasuredSample& s : esm_result.test_set) {
      lats.push_back(s.latency_ms);
    }
    budget_ms = esm::median(lats);
  }
  std::cout << "Searching for the most accurate model under "
            << esm::format_double(budget_ms, 3) << " ms...\n";

  esm::SearchConfig search_config;
  search_config.population = 64;
  search_config.generations = 25;
  search_config.parents = 16;
  search_config.latency_limit_ms = budget_ms;
  search_config.seed = static_cast<std::uint64_t>(args.get_int("seed")) + 1;
  esm::EvolutionarySearch search(config.spec, search_config);
  const esm::AccuracyProxy proxy(config.spec);
  const esm::SearchResult found = search.run(*esm_result.predictor, proxy);

  std::cout << "  evaluated " << found.evaluations
            << " candidates through the surrogate (zero device runs)\n\n";

  // --- 3. verify the top candidates on the ground truth ---------------
  esm::print_banner(std::cout, "Top candidates: surrogate vs ground truth");
  esm::TablePrinter table({"blocks", "proxy top-5", "predicted (ms)",
                           "actual (ms)", "meets budget"});
  std::size_t shown = 0;
  for (const esm::Candidate& c : found.population) {
    if (shown++ >= 5) break;
    const double actual =
        device.true_latency_ms(esm::build_graph(config.spec, c.arch));
    table.add_row({std::to_string(c.arch.total_blocks()),
                   esm::format_percent(c.proxy_accuracy, 1),
                   esm::format_double(c.predicted_latency_ms, 3),
                   esm::format_double(actual, 3),
                   actual <= budget_ms * 1.02 ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nBest architecture: " << found.best.arch.to_string() << "\n";
  return 0;
}
