// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) for artifact and
// journal integrity.
//
// Both durable byte streams of the project — surrogate artifacts
// (common/archive.hpp, trailing footer) and campaign journals
// (esm/journal.hpp, per-record frame) — carry CRC32 checksums so that
// truncated or bit-flipped files are rejected with a precise error instead
// of being misparsed. The checksum is computed over raw bytes, so it is
// stable across platforms and independent of how the payload is tokenized.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace esm {

/// CRC32 of `data`, optionally continuing from a previous value (pass the
/// previous return value as `seed` to checksum a stream incrementally).
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// Renders a CRC32 as fixed-width lowercase hex ("0badc0de").
std::string crc32_hex(std::uint32_t crc);

/// Parses the fixed-width hex form; returns false on malformed input.
bool parse_crc32_hex(std::string_view text, std::uint32_t& out);

}  // namespace esm
