#include "common/fsio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace esm {
namespace {

/// Directory part of `path` ("." when the path has no slash), used to
/// fsync the directory after the rename.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_fd_or_throw(int fd, const std::string& path) {
  ESM_REQUIRE(::fsync(fd) == 0,
              "fsync(" << path << "): " << std::strerror(errno));
}

}  // namespace

std::string read_file(const std::string& path, const std::string& what) {
  std::ifstream in(path, std::ios::binary);
  ESM_REQUIRE(in.good(), "cannot open " << what << ": " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ESM_REQUIRE(!in.bad(), "failed reading " << what << ": " << path);
  return buffer.str();
}

void write_file_atomic(const std::string& path, std::string_view contents) {
  // The temp file lives in the destination directory so the final rename
  // never crosses a filesystem boundary (rename is only atomic within one).
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ESM_REQUIRE(fd >= 0, "cannot create " << temp << ": "
                                        << std::strerror(errno));
  std::size_t written = 0;
  bool ok = true;
  while (ok && written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  if (!ok || ::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    std::remove(temp.c_str());
    ESM_REQUIRE(false, "failed writing " << temp << ": "
                                         << std::strerror(saved));
  }
  ::close(fd);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    std::remove(temp.c_str());
    ESM_REQUIRE(false, "rename(" << temp << ", " << path
                                 << "): " << std::strerror(saved));
  }
  // Durability of the rename itself: fsync the containing directory.
  const std::string dir = dir_of(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    fsync_fd_or_throw(dir_fd, dir);
    ::close(dir_fd);
  }
}

bool path_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void make_dirs(const std::string& path) {
  if (path.empty()) return;
  // Create every prefix component in order; EEXIST (racing creators, or a
  // component that is already a directory) is fine.
  std::size_t from = path.front() == '/' ? 1 : 0;
  for (;;) {
    const std::size_t slash = path.find('/', from);
    const std::string prefix =
        slash == std::string::npos ? path : path.substr(0, slash);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      ESM_REQUIRE(false, "mkdir(" << prefix
                                  << "): " << std::strerror(errno));
    }
    if (slash == std::string::npos) break;
    from = slash + 1;
  }
}

}  // namespace esm
