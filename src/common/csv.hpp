// Minimal CSV writer. Bench binaries optionally dump their series to CSV so
// figures can be re-plotted externally; the writer handles quoting and keeps
// a fixed column schema per file.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace esm {

/// Writes rows to a CSV file with a fixed header schema.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws esm::ConfigError if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  /// Appends one row; must match the header width.
  void add_row(const std::vector<std::string>& row);

  /// Number of data rows written so far.
  std::size_t row_count() const { return rows_written_; }

  /// Quotes a CSV field if it contains separators/quotes/newlines.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_written_ = 0;
};

}  // namespace esm
