// Minimal typed key-value archive for model persistence.
//
// Text format, one entry per line, closed by a checksum footer:
//   esm-archive v2
//   <key> <count> <v0> <v1> ...
//   esm-archive-crc32 <8-hex-digit CRC32>
// Keys are written/read in any order; vectors of doubles, vectors of
// whitespace-free strings, scalars, and single strings are supported. Used
// to save and load trained surrogates (MLP weights, GBDT stages, LUT
// tables, standardizers, encoder/spec identity).
//
// The header line carries the container format version. Readers reject
// duplicate keys and any version newer than the one this build writes,
// each with a distinct esm::ConfigError (a garbled header is reported as
// "not an ESM archive", a newer version as "unsupported format version").
//
// Integrity: the v2 footer is the CRC32 (common/checksum.hpp) of every
// byte before the footer line. A v2 archive with a missing footer is
// reported as truncated, and one whose bytes do not match the footer as a
// checksum mismatch — a single flipped bit anywhere in the file is caught.
// v1 archives (no footer) still load, with checksummed() reporting false
// so callers can note the missing protection. Entry parsing is hardened
// independently of the checksum: declared counts are bounds-checked
// against the line length, truncated vectors and trailing garbage are
// rejected, and every error names the offending key and line.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace esm {

/// Accumulates entries and writes them to a file on save().
class ArchiveWriter {
 public:
  void put_string(const std::string& key, const std::string& value);
  void put_double(const std::string& key, double value);
  void put_int(const std::string& key, long long value);
  void put_doubles(const std::string& key, const std::vector<double>& values);
  /// Every element must be a non-empty whitespace-free token.
  void put_strings(const std::string& key,
                   const std::vector<std::string>& values);

  /// Writes the archive; throws esm::ConfigError on I/O failure.
  void save(const std::string& path) const;

  /// Renders the archive to a string (used by tests).
  std::string to_string() const;

 private:
  // Preserves insertion order for stable output.
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Parses an archive file; typed getters throw esm::ConfigError on missing
/// keys or type mismatches.
class ArchiveReader {
 public:
  /// Loads from a file; throws esm::ConfigError on open/parse failure.
  static ArchiveReader from_file(const std::string& path);

  /// Parses from a string (used by tests).
  static ArchiveReader from_string(const std::string& content);

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key) const;
  double get_double(const std::string& key) const;
  long long get_int(const std::string& key) const;
  std::vector<double> get_doubles(const std::string& key) const;
  std::vector<std::string> get_strings(const std::string& key) const;

  /// True if the archive carried (and passed) a CRC32 footer. False only
  /// for pre-footer v1 archives, which load without integrity protection.
  bool checksummed() const { return checksummed_; }

 private:
  std::map<std::string, std::vector<std::string>> entries_;
  bool checksummed_ = false;
};

}  // namespace esm
