// Durable file I/O primitives for publish-style writes.
//
// Both ends of the fleet pipeline — artifact publication and manifest
// updates — need the same guarantee the campaign journal gives batches:
// a reader (or a process resuming after kill -9) sees either the complete
// old file or the complete new file, never a torn mix. write_file_atomic
// provides that with the classic write-temp → fsync → rename → fsync-dir
// sequence; rename(2) on a POSIX filesystem replaces the destination
// atomically.
#pragma once

#include <string>
#include <string_view>

namespace esm {

/// Reads the whole file into a string; throws esm::ConfigError when the
/// file cannot be opened or read. `what` names the file's role in errors
/// ("artifact", "manifest", ...).
std::string read_file(const std::string& path, const std::string& what);

/// Atomically replaces `path` with `contents`: writes `path`.tmp.<pid> in
/// the same directory, fsyncs it, renames it over `path`, and fsyncs the
/// directory so the rename itself is durable. On any failure the temp file
/// is removed and esm::ConfigError is thrown; `path` is never left torn.
void write_file_atomic(const std::string& path, std::string_view contents);

/// True when `path` exists (any file type).
bool path_exists(const std::string& path);

/// Creates `path` and any missing parent directories (mkdir -p); throws
/// esm::ConfigError when a component cannot be created.
void make_dirs(const std::string& path);

}  // namespace esm
