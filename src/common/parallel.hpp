// Deterministic parallel execution layer: a lazily started, globally shared
// thread pool with chunked `parallel_for` and an ordered `parallel_map`.
//
// Contract: parallelism never changes results. Chunks cover [0, n) in
// disjoint index ranges and write only to their own slots, so any function
// that is deterministic per index yields bit-identical output at every
// thread count — including 1, where everything runs inline on the caller
// with no pool involvement. Stochastic work stays deterministic by giving
// each index its own Rng substream (Rng::split(stream_id)) and reducing in
// index order on the caller.
//
// Sizing: the ESM_THREADS environment variable (1 = fully serial, the
// default; 0 = one thread per hardware core), overridable at runtime with
// set_thread_count() (the EsmConfig::threads knob routes through it).
//
// Nested calls are safe: a parallel_for issued from inside a worker (or
// from inside a chunk the caller is executing) runs inline and serially,
// so parallel code can freely call other parallel code.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace esm {

/// Threads a parallel region would use right now: the set_thread_count()
/// override if one is active, else ESM_THREADS (re-read on every call so
/// tests can change it), else 1. 0 in either source means "all hardware
/// cores". Always >= 1.
int thread_count();

/// Overrides ESM_THREADS for subsequent parallel regions. n = 1 forces
/// fully serial execution; n = 0 clears the override (back to the
/// environment). Workers are (re)started lazily on the next region.
void set_thread_count(int n);

/// True while the calling thread is executing a chunk of a parallel
/// region (worker or participating caller). Used for nested-call safety
/// and exposed for tests/diagnostics.
bool in_parallel_region();

/// Stops and joins all pool workers. The pool restarts lazily on the next
/// parallel region; mainly useful in tests and before fork/exec.
void shutdown_pool();

/// Number of worker threads currently alive in the shared pool (excludes
/// the caller, which always participates). 0 until a region has run with
/// thread_count() > 1.
int pool_workers();

/// Runs fn(begin, end) over disjoint chunks covering [0, n), each at least
/// `grain` indices (the last may be shorter). Serial inline when
/// thread_count() == 1, when n <= grain, or when nested inside another
/// region. The first exception thrown by any chunk is rethrown on the
/// caller after the region completes; remaining unstarted chunks are
/// skipped once an exception is recorded.
void parallel_for(std::size_t grain, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Ordered map: returns {fn(0), fn(1), ..., fn(n-1)} with elements
/// computed in parallel but stored at their own index, so the result is
/// identical at every thread count. T must be default-constructible.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t grain = 1)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using T = decltype(fn(std::size_t{}));
  std::vector<T> out(n);
  parallel_for(grain, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace esm
