// Descriptive statistics used across the library: Welford running moments,
// trimmed means for the latency-measurement protocol, percentiles, and
// coefficient-of-variation helpers used by dataset quality control.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace esm {

/// Single-pass running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  /// Mean of observed values; 0 if empty.
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// Square root of variance().
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation; 0 with fewer than two values.
double stddev(std::span<const double> xs);

/// Population standard deviation (divide by n); 0 for an empty span.
double population_stddev(std::span<const double> xs);

/// Coefficient of variation stddev/mean; 0 if the mean is 0.
double coefficient_of_variation(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile). Requires non-empty input.
double median(std::span<const double> xs);

/// Mean after discarding the lowest and highest `trim_fraction` of the
/// sorted values (each side). trim_fraction in [0, 0.5). This implements the
/// paper's measurement protocol: with trim_fraction = 0.2 the slowest and
/// fastest 20 % of inferences are discarded and the middle 60 % averaged.
double trimmed_mean(std::span<const double> xs, double trim_fraction);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Kendall rank-correlation coefficient (tau-a, O(n^2)); used to evaluate
/// whether a latency predictor preserves architecture rankings.
double kendall_tau(std::span<const double> xs, std::span<const double> ys);

}  // namespace esm
