#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  ESM_CHECK(n > 0, "uniform_u64 requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

int Rng::uniform_int(int lo, int hi) {
  ESM_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(static_cast<long long>(hi) - lo + 1);
  return lo + static_cast<int>(uniform_u64(span));
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ESM_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  ESM_CHECK(total > 0.0, "weighted_index requires a positive total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack: last positive bucket
}

Rng Rng::split() {
  // Use two draws to seed an independent stream.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32));
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Rekey: fold the full parent state and the stream id through splitmix64
  // so sibling substreams are decorrelated. The parent state is only read,
  // never advanced, making substream derivation order-independent.
  std::uint64_t s = stream_id ^ 0x243f6a8885a308d3ull;  // pi fraction bits
  std::uint64_t seed = splitmix64(s);
  for (const std::uint64_t word : state_) {
    s ^= word;
    seed ^= splitmix64(s);
  }
  return Rng(seed);
}

}  // namespace esm
