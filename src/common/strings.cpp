#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace esm {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

std::string format_scientific(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) os << sep;
    os << parts[i];
  }
  return os.str();
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace esm
