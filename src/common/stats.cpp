#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esm {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double population_stddev(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

double percentile(std::span<const double> xs, double p) {
  ESM_REQUIRE(!xs.empty(), "percentile of empty data");
  ESM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double trimmed_mean(std::span<const double> xs, double trim_fraction) {
  ESM_REQUIRE(!xs.empty(), "trimmed_mean of empty data");
  ESM_REQUIRE(trim_fraction >= 0.0 && trim_fraction < 0.5,
              "trim_fraction must be in [0, 0.5)");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto cut = static_cast<std::size_t>(
      std::floor(trim_fraction * static_cast<double>(sorted.size())));
  const std::size_t first = cut;
  const std::size_t last = sorted.size() - cut;  // exclusive
  ESM_CHECK(first < last, "trimming removed all samples");
  double sum = 0.0;
  for (std::size_t i = first; i < last; ++i) sum += sorted[i];
  return sum / static_cast<double>(last - first);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  ESM_REQUIRE(xs.size() == ys.size(), "pearson requires equal-length inputs");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double kendall_tau(std::span<const double> xs, std::span<const double> ys) {
  ESM_REQUIRE(xs.size() == ys.size(),
              "kendall_tau requires equal-length inputs");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  long long concordant = 0;
  long long discordant = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      const double prod = dx * dy;
      if (prod > 0.0) ++concordant;
      else if (prod < 0.0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

}  // namespace esm
