// Minimal command-line flag parser for the bench and example binaries.
// Supports "--name value", "--name=value", and boolean "--flag" forms, with
// typed accessors and defaults, plus automatic --help text.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace esm {

/// Declarative flag parser; declare flags, then parse(argc, argv).
class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Declares a string flag with a default.
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Declares an integer flag with a default.
  void add_int(const std::string& name, long long default_value,
               const std::string& help);

  /// Declares a floating-point flag with a default.
  void add_double(const std::string& name, double default_value,
                  const std::string& help);

  /// Declares a boolean flag (default false; presence sets it true, or
  /// --name=true/false).
  void add_bool(const std::string& name, const std::string& help);

  /// Parses the command line. Returns false (after printing usage) when
  /// --help is requested; throws esm::ConfigError on unknown/ill-typed flags.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Renders the --help text.
  std::string usage() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Flag {
    Kind kind;
    std::string value;  // canonical textual value
    std::string default_value;
    std::string help;
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::string program_name_ = "program";
  std::map<std::string, Flag> flags_;
};

}  // namespace esm
