#include "common/archive.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/error.hpp"

namespace esm {
namespace {

constexpr const char* kMagicPrefix = "esm-archive v";
constexpr const char* kFooterKey = "esm-archive-crc32";
// v2 added the trailing CRC32 footer; v1 (no footer) still loads so that
// artifacts written by earlier builds keep working, just unprotected.
constexpr long long kFormatVersion = 2;
constexpr long long kOldestReadableVersion = 1;

std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool valid_key(const std::string& key) {
  if (key.empty()) return false;
  for (char c : key) {
    if (c == ' ' || c == '\n' || c == '\t' || c == '\r') return false;
  }
  return true;
}

}  // namespace

void ArchiveWriter::put_string(const std::string& key,
                               const std::string& value) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  ESM_REQUIRE(valid_key(value),
              "archive string values must be whitespace-free: '" << value
                                                                 << "'");
  entries_.emplace_back(key, "1 " + value);
}

void ArchiveWriter::put_double(const std::string& key, double value) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  entries_.emplace_back(key, "1 " + format_value(value));
}

void ArchiveWriter::put_int(const std::string& key, long long value) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  entries_.emplace_back(key, "1 " + std::to_string(value));
}

void ArchiveWriter::put_doubles(const std::string& key,
                                const std::vector<double>& values) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  std::ostringstream os;
  os << values.size();
  for (double v : values) os << ' ' << format_value(v);
  entries_.emplace_back(key, os.str());
}

void ArchiveWriter::put_strings(const std::string& key,
                                const std::vector<std::string>& values) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  std::ostringstream os;
  os << values.size();
  for (const std::string& v : values) {
    ESM_REQUIRE(valid_key(v),
                "archive string values must be whitespace-free: '" << v
                                                                   << "'");
    os << ' ' << v;
  }
  entries_.emplace_back(key, os.str());
}

std::string ArchiveWriter::to_string() const {
  std::ostringstream os;
  os << kMagicPrefix << kFormatVersion << '\n';
  for (const auto& [key, payload] : entries_) {
    os << key << ' ' << payload << '\n';
  }
  // The footer checksums every byte above it, so any later truncation or
  // bit flip — header, keys, values, even whitespace — is detected on load.
  std::string content = os.str();
  const std::uint32_t crc = crc32(content);
  content += kFooterKey;
  content += ' ';
  content += crc32_hex(crc);
  content += '\n';
  return content;
}

void ArchiveWriter::save(const std::string& path) const {
  std::ofstream out(path);
  ESM_REQUIRE(out.good(), "cannot open archive for writing: " << path);
  out << to_string();
  ESM_REQUIRE(out.good(), "failed writing archive: " << path);
}

ArchiveReader ArchiveReader::from_string(const std::string& content) {
  std::istringstream in(content);
  std::string header;
  std::getline(in, header);
  if (!header.empty() && header.back() == '\r') header.pop_back();
  ESM_REQUIRE(header.rfind(kMagicPrefix, 0) == 0,
              "not an ESM archive (bad header: '" << header << "')");
  const std::string version_text = header.substr(std::strlen(kMagicPrefix));
  char* end = nullptr;
  const long long version = std::strtoll(version_text.c_str(), &end, 10);
  ESM_REQUIRE(end != nullptr && *end == '\0' && !version_text.empty(),
              "not an ESM archive (bad header: '" << header << "')");
  ESM_REQUIRE(version >= kOldestReadableVersion && version <= kFormatVersion,
              "unsupported archive format version v"
                  << version << " (this build reads v" << kOldestReadableVersion
                  << "..v" << kFormatVersion << ")");

  // v2+ archives end with "esm-archive-crc32 <hex8>" checksumming every byte
  // before it. Locate and verify the footer before parsing entries, so a
  // truncated or bit-flipped file is rejected with a precise error instead
  // of surfacing as a confusing entry-level parse failure.
  std::string body = content;
  ArchiveReader reader;
  if (version >= 2) {
    // Find the start of the last non-empty line.
    std::size_t end_pos = body.size();
    while (end_pos > 0 && (body[end_pos - 1] == '\n' || body[end_pos - 1] == '\r'))
      --end_pos;
    const std::size_t line_start = body.rfind('\n', end_pos == 0 ? 0 : end_pos - 1);
    const std::size_t footer_begin =
        (line_start == std::string::npos) ? 0 : line_start + 1;
    std::string footer = body.substr(footer_begin, end_pos - footer_begin);
    if (!footer.empty() && footer.back() == '\r') footer.pop_back();
    ESM_REQUIRE(footer.rfind(kFooterKey, 0) == 0 &&
                    footer.size() > std::strlen(kFooterKey) &&
                    footer[std::strlen(kFooterKey)] == ' ',
                "truncated archive: v" << version
                                       << " requires a trailing '" << kFooterKey
                                       << "' footer, found none");
    std::uint32_t stored = 0;
    const std::string hex = footer.substr(std::strlen(kFooterKey) + 1);
    ESM_REQUIRE(parse_crc32_hex(hex, stored),
                "truncated archive: malformed checksum footer '" << footer
                                                                 << "'");
    const std::uint32_t actual = crc32(
        std::string_view(body.data(), footer_begin));
    ESM_REQUIRE(actual == stored,
                "archive checksum mismatch: footer says "
                    << hex << " but contents hash to " << crc32_hex(actual)
                    << " (file is corrupt or was modified)");
    body.resize(footer_begin);
    reader.checksummed_ = true;
  }

  std::istringstream entries_in(body);
  std::string skip_header;
  std::getline(entries_in, skip_header);
  std::string line;
  int line_no = 1;
  while (std::getline(entries_in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string key;
    std::size_t count = 0;
    ESM_REQUIRE(static_cast<bool>(tokens >> key >> count),
                "archive parse error at line " << line_no);
    // A hostile count (e.g. from a bit flip in the digits) must not drive a
    // huge reserve(): each value needs at least two bytes ("v "), so the
    // line length bounds the plausible element count.
    ESM_REQUIRE(count <= line.size(),
                "archive entry '" << key << "' declares " << count
                                  << " values but line " << line_no
                                  << " is only " << line.size()
                                  << " bytes long");
    std::vector<std::string> values;
    values.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::string v;
      ESM_REQUIRE(static_cast<bool>(tokens >> v),
                  "archive entry '" << key << "' truncated at line "
                                    << line_no);
      values.push_back(std::move(v));
    }
    std::string trailing;
    ESM_REQUIRE(!(tokens >> trailing),
                "archive entry '" << key << "' has trailing garbage '"
                                  << trailing << "' at line " << line_no);
    ESM_REQUIRE(reader.entries_.emplace(key, std::move(values)).second,
                "duplicate archive key '" << key << "'");
  }
  return reader;
}

ArchiveReader ArchiveReader::from_file(const std::string& path) {
  std::ifstream in(path);
  ESM_REQUIRE(in.good(), "cannot open archive: " << path);
  std::ostringstream content;
  content << in.rdbuf();
  return from_string(content.str());
}

bool ArchiveReader::has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::string ArchiveReader::get_string(const std::string& key) const {
  const auto it = entries_.find(key);
  ESM_REQUIRE(it != entries_.end(), "archive key missing: '" << key << "'");
  ESM_REQUIRE(it->second.size() == 1,
              "archive key '" << key << "' is not a scalar");
  return it->second.front();
}

double ArchiveReader::get_double(const std::string& key) const {
  const std::string raw = get_string(key);
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  ESM_REQUIRE(end != nullptr && *end == '\0',
              "archive key '" << key << "' is not a number: " << raw);
  return v;
}

long long ArchiveReader::get_int(const std::string& key) const {
  const std::string raw = get_string(key);
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  ESM_REQUIRE(end != nullptr && *end == '\0',
              "archive key '" << key << "' is not an integer: " << raw);
  return v;
}

std::vector<std::string> ArchiveReader::get_strings(
    const std::string& key) const {
  const auto it = entries_.find(key);
  ESM_REQUIRE(it != entries_.end(), "archive key missing: '" << key << "'");
  return it->second;
}

std::vector<double> ArchiveReader::get_doubles(const std::string& key) const {
  const auto it = entries_.find(key);
  ESM_REQUIRE(it != entries_.end(), "archive key missing: '" << key << "'");
  std::vector<double> out;
  out.reserve(it->second.size());
  for (const std::string& raw : it->second) {
    char* end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    ESM_REQUIRE(end != nullptr && *end == '\0',
                "archive key '" << key << "' holds a non-number: " << raw);
    out.push_back(v);
  }
  return out;
}

}  // namespace esm
