#include "common/archive.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace esm {
namespace {

constexpr const char* kMagicPrefix = "esm-archive v";
constexpr long long kFormatVersion = 1;

std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool valid_key(const std::string& key) {
  if (key.empty()) return false;
  for (char c : key) {
    if (c == ' ' || c == '\n' || c == '\t' || c == '\r') return false;
  }
  return true;
}

}  // namespace

void ArchiveWriter::put_string(const std::string& key,
                               const std::string& value) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  ESM_REQUIRE(valid_key(value),
              "archive string values must be whitespace-free: '" << value
                                                                 << "'");
  entries_.emplace_back(key, "1 " + value);
}

void ArchiveWriter::put_double(const std::string& key, double value) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  entries_.emplace_back(key, "1 " + format_value(value));
}

void ArchiveWriter::put_int(const std::string& key, long long value) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  entries_.emplace_back(key, "1 " + std::to_string(value));
}

void ArchiveWriter::put_doubles(const std::string& key,
                                const std::vector<double>& values) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  std::ostringstream os;
  os << values.size();
  for (double v : values) os << ' ' << format_value(v);
  entries_.emplace_back(key, os.str());
}

void ArchiveWriter::put_strings(const std::string& key,
                                const std::vector<std::string>& values) {
  ESM_REQUIRE(valid_key(key), "invalid archive key: '" << key << "'");
  std::ostringstream os;
  os << values.size();
  for (const std::string& v : values) {
    ESM_REQUIRE(valid_key(v),
                "archive string values must be whitespace-free: '" << v
                                                                   << "'");
    os << ' ' << v;
  }
  entries_.emplace_back(key, os.str());
}

std::string ArchiveWriter::to_string() const {
  std::ostringstream os;
  os << kMagicPrefix << kFormatVersion << '\n';
  for (const auto& [key, payload] : entries_) {
    os << key << ' ' << payload << '\n';
  }
  return os.str();
}

void ArchiveWriter::save(const std::string& path) const {
  std::ofstream out(path);
  ESM_REQUIRE(out.good(), "cannot open archive for writing: " << path);
  out << to_string();
  ESM_REQUIRE(out.good(), "failed writing archive: " << path);
}

ArchiveReader ArchiveReader::from_string(const std::string& content) {
  std::istringstream in(content);
  std::string header;
  std::getline(in, header);
  if (!header.empty() && header.back() == '\r') header.pop_back();
  ESM_REQUIRE(header.rfind(kMagicPrefix, 0) == 0,
              "not an ESM archive (bad header: '" << header << "')");
  const std::string version_text = header.substr(std::strlen(kMagicPrefix));
  char* end = nullptr;
  const long long version = std::strtoll(version_text.c_str(), &end, 10);
  ESM_REQUIRE(end != nullptr && *end == '\0' && !version_text.empty(),
              "not an ESM archive (bad header: '" << header << "')");
  ESM_REQUIRE(version == kFormatVersion,
              "unsupported archive format version v"
                  << version << " (this build reads v" << kFormatVersion
                  << ")");
  ArchiveReader reader;
  std::string line;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string key;
    std::size_t count = 0;
    ESM_REQUIRE(static_cast<bool>(tokens >> key >> count),
                "archive parse error at line " << line_no);
    std::vector<std::string> values;
    values.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::string v;
      ESM_REQUIRE(static_cast<bool>(tokens >> v),
                  "archive entry '" << key << "' truncated at line "
                                    << line_no);
      values.push_back(std::move(v));
    }
    ESM_REQUIRE(reader.entries_.emplace(key, std::move(values)).second,
                "duplicate archive key '" << key << "'");
  }
  return reader;
}

ArchiveReader ArchiveReader::from_file(const std::string& path) {
  std::ifstream in(path);
  ESM_REQUIRE(in.good(), "cannot open archive: " << path);
  std::ostringstream content;
  content << in.rdbuf();
  return from_string(content.str());
}

bool ArchiveReader::has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::string ArchiveReader::get_string(const std::string& key) const {
  const auto it = entries_.find(key);
  ESM_REQUIRE(it != entries_.end(), "archive key missing: '" << key << "'");
  ESM_REQUIRE(it->second.size() == 1,
              "archive key '" << key << "' is not a scalar");
  return it->second.front();
}

double ArchiveReader::get_double(const std::string& key) const {
  const std::string raw = get_string(key);
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  ESM_REQUIRE(end != nullptr && *end == '\0',
              "archive key '" << key << "' is not a number: " << raw);
  return v;
}

long long ArchiveReader::get_int(const std::string& key) const {
  const std::string raw = get_string(key);
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  ESM_REQUIRE(end != nullptr && *end == '\0',
              "archive key '" << key << "' is not an integer: " << raw);
  return v;
}

std::vector<std::string> ArchiveReader::get_strings(
    const std::string& key) const {
  const auto it = entries_.find(key);
  ESM_REQUIRE(it != entries_.end(), "archive key missing: '" << key << "'");
  return it->second;
}

std::vector<double> ArchiveReader::get_doubles(const std::string& key) const {
  const auto it = entries_.find(key);
  ESM_REQUIRE(it != entries_.end(), "archive key missing: '" << key << "'");
  std::vector<double> out;
  out.reserve(it->second.size());
  for (const std::string& raw : it->second) {
    char* end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    ESM_REQUIRE(end != nullptr && *end == '\0',
                "archive key '" << key << "' holds a non-number: " << raw);
    out.push_back(v);
  }
  return out;
}

}  // namespace esm
