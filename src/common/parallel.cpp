#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace esm {
namespace {

thread_local bool tl_in_region = false;

/// RAII marker for "this thread is executing chunks of a region". Restores
/// the previous value so a nested inline region ending does not clear the
/// flag of the enclosing chunk (which would let a later nested call reach
/// the pool from inside a worker and deadlock).
struct RegionGuard {
  RegionGuard() : prev_(tl_in_region) { tl_in_region = true; }
  ~RegionGuard() { tl_in_region = prev_; }
  bool prev_;
};

std::atomic<int> g_override{0};

int clamp_threads(long n) {
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 1 : static_cast<long>(hw);
  }
  if (n < 1) return 1;
  if (n > 256) return 256;
  return static_cast<int>(n);
}

/// One parallel region: chunks are claimed off an atomic counter by the
/// caller and every worker; the last finisher signals completion.
struct Job {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t grain = 1;
  std::size_t n = 0;
  std::size_t n_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() { stop_workers(); }

  int workers() {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(threads_.size());
  }

  void shutdown() { stop_workers(); }

  void run(std::size_t grain, std::size_t n,
           const std::function<void(std::size_t, std::size_t)>& fn,
           int threads) {
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->grain = grain;
    job->n = n;
    job->n_chunks = (n + grain - 1) / grain;
    job->remaining.store(job->n_chunks, std::memory_order_relaxed);

    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Serialize concurrent top-level regions: one job at a time.
      done_cv_.wait(lock, [&] { return job_ == nullptr; });
      resize_locked(lock, threads - 1);
      job_ = job;
    }
    work_cv_.notify_all();

    execute_chunks(*job);  // the caller is always a participant

    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] {
        return job->remaining.load(std::memory_order_acquire) == 0;
      });
      job_.reset();
    }
    done_cv_.notify_all();  // wake any caller queued on job_ == nullptr

    if (job->failed.load(std::memory_order_acquire)) {
      std::rethrow_exception(job->error);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stop_ ||
                 (job_ != nullptr &&
                  job_->next.load(std::memory_order_relaxed) < job_->n_chunks);
        });
        if (stop_) return;
        job = job_;
      }
      execute_chunks(*job);
    }
  }

  void execute_chunks(Job& job) {
    RegionGuard guard;
    for (;;) {
      const std::size_t chunk =
          job.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.n_chunks) return;
      const std::size_t begin = chunk * job.grain;
      const std::size_t end = std::min(begin + job.grain, job.n);
      if (!job.failed.load(std::memory_order_acquire)) {
        try {
          (*job.fn)(begin, end);
        } catch (...) {
          std::lock_guard<std::mutex> lock(job.error_mutex);
          if (!job.error) job.error = std::current_exception();
          job.failed.store(true, std::memory_order_release);
        }
      }
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  /// Grows/shrinks the worker set; only called while no job is active.
  void resize_locked(std::unique_lock<std::mutex>& lock, int desired) {
    if (desired < 0) desired = 0;
    if (static_cast<int>(threads_.size()) == desired) return;
    // Drain the old crew completely, then hire the new one.
    stop_ = true;
    work_cv_.notify_all();
    lock.unlock();
    for (std::thread& t : threads_) t.join();
    lock.lock();
    threads_.clear();
    stop_ = false;
    threads_.reserve(static_cast<std::size_t>(desired));
    for (int i = 0; i < desired; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers() {
    std::unique_lock<std::mutex> lock(mutex_);
    resize_locked(lock, 0);
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
};

}  // namespace

int thread_count() {
  const int override_n = g_override.load(std::memory_order_relaxed);
  if (override_n > 0) return clamp_threads(override_n);
  // Re-read the environment on every call: cheap, and lets tests (and
  // long-lived embedders) retune without a process restart.
  const char* env = std::getenv("ESM_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || parsed < 0) return 1;  // malformed: stay serial
  return clamp_threads(parsed);
}

void set_thread_count(int n) {
  ESM_REQUIRE(n >= 0, "set_thread_count requires n >= 0");
  g_override.store(n, std::memory_order_relaxed);
}

bool in_parallel_region() { return tl_in_region; }

void shutdown_pool() { Pool::instance().shutdown(); }

int pool_workers() { return Pool::instance().workers(); }

void parallel_for(std::size_t grain, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const int threads = thread_count();
  if (threads <= 1 || n <= grain || tl_in_region) {
    RegionGuard guard;
    fn(0, n);
    return;
  }
  Pool::instance().run(grain, n, fn, threads);
}

}  // namespace esm
