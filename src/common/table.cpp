#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace esm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ESM_REQUIRE(!headers_.empty(), "table requires at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  ESM_REQUIRE(row.size() == headers_.size(),
              "row width " << row.size() << " != header width "
                           << headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << pad_right(row[c], widths[c]) << " | ";
    }
    os << '\n';
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
    if (c + 1 < widths.size()) continue;
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

}  // namespace esm
