#include "common/checksum.hpp"

#include <array>
#include <cstdio>

namespace esm {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string crc32_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

bool parse_crc32_hex(std::string_view text, std::uint32_t& out) {
  if (text.size() != 8) return false;
  std::uint32_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = value;
  return true;
}

}  // namespace esm
