// Small string-formatting helpers shared by table printers, CSV output, and
// log lines in the bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace esm {

/// Formats a double with `precision` digits after the decimal point.
std::string format_double(double value, int precision = 3);

/// Formats a fraction in [0,1] as a percentage string, e.g. 0.976 -> "97.6%".
std::string format_percent(double fraction, int precision = 1);

/// Formats a large count with SI-style grouping, e.g. 8380000 -> "8.38e+06".
std::string format_scientific(double value, int precision = 2);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Left-pads or truncates `s` to exactly `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Right-aligns `s` in a field of `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string s);

}  // namespace esm
