#include "common/csv.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace esm {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : out_(path), columns_(headers.size()) {
  ESM_REQUIRE(out_.good(), "cannot open CSV file for writing: " << path);
  ESM_REQUIRE(columns_ > 0, "CSV requires at least one column");
  std::vector<std::string> escaped;
  escaped.reserve(headers.size());
  for (const auto& h : headers) escaped.push_back(escape(h));
  out_ << join(escaped, ",") << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  ESM_REQUIRE(row.size() == columns_,
              "CSV row width " << row.size() << " != " << columns_);
  std::vector<std::string> escaped;
  escaped.reserve(row.size());
  for (const auto& f : row) escaped.push_back(escape(f));
  out_ << join(escaped, ",") << '\n';
  ++rows_written_;
}

}  // namespace esm
