#include "common/argparse.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace esm {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{Kind::kString, default_value, default_value, help};
}

void ArgParser::add_int(const std::string& name, long long default_value,
                        const std::string& help) {
  const std::string v = std::to_string(default_value);
  flags_[name] = Flag{Kind::kInt, v, v, help};
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Kind::kDouble, os.str(), os.str(), help};
}

void ArgParser::add_bool(const std::string& name, const std::string& help) {
  flags_[name] = Flag{Kind::kBool, "false", "false", help};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    ESM_REQUIRE(starts_with(arg, "--"), "unexpected argument: " << arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    ESM_REQUIRE(it != flags_.end(), "unknown flag --" << arg);
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        value = "true";
      } else {
        ESM_REQUIRE(i + 1 < argc, "flag --" << arg << " expects a value");
        value = argv[++i];
      }
    }
    // Type-check eagerly so errors point at the offending flag.
    if (flag.kind == Kind::kInt) {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      ESM_REQUIRE(end != nullptr && *end == '\0' && !value.empty(),
                  "flag --" << arg << " expects an integer, got '" << value
                            << "'");
    } else if (flag.kind == Kind::kDouble) {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      ESM_REQUIRE(end != nullptr && *end == '\0' && !value.empty(),
                  "flag --" << arg << " expects a number, got '" << value
                            << "'");
    } else if (flag.kind == Kind::kBool) {
      const std::string lower = to_lower(value);
      ESM_REQUIRE(lower == "true" || lower == "false",
                  "flag --" << arg << " expects true/false, got '" << value
                            << "'");
      value = lower;
    }
    flag.value = value;
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name,
                                       Kind kind) const {
  auto it = flags_.find(name);
  ESM_CHECK(it != flags_.end(), "flag --" << name << " was never declared");
  ESM_CHECK(it->second.kind == kind,
            "flag --" << name << " accessed with the wrong type");
  return it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

long long ArgParser::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).value == "true";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nUsage: " << program_name_ << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << pad_right(name, 24) << flag.help
       << " (default: " << flag.default_value << ")\n";
  }
  return os.str();
}

}  // namespace esm
