// Deterministic, seedable random number generation.
//
// Every stochastic component of the library (samplers, the hardware
// measurement model, weight initialization, minibatch shuffling) draws from
// an esm::Rng that is explicitly passed in, so whole experiments replay
// bit-identically from a single seed. The generator is xoshiro256**
// (Blackman & Vigna), seeded through splitmix64.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace esm {

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value. Satisfies UniformRandomBitGenerator.
  std::uint64_t operator()();

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform 64-bit integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal deviate (Box–Muller, cached spare).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of a container.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Derives an independent child generator; the i-th child of a given
  /// parent state is stable across runs.
  Rng split();

  /// Derives the `stream_id`-th substream of the current state WITHOUT
  /// advancing the parent (splitmix64 rekeying). Substreams with distinct
  /// ids are decorrelated, and because the parent is untouched, any set of
  /// substreams can be drawn in any order — the foundation of the
  /// deterministic parallel-measurement contract (see common/parallel.hpp).
  Rng split(std::uint64_t stream_id) const;

 private:
  std::array<std::uint64_t, 4> state_;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace esm
