// Error-handling helpers.
//
// Library code validates user-facing configuration with ESM_REQUIRE (throws
// esm::ConfigError) and internal invariants with ESM_CHECK (throws
// esm::LogicError). Per the project conventions, exceptions signal programmer
// or configuration errors only; expected run-time conditions (e.g. a dataset
// failing quality control) are reported through return values.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace esm {

/// Thrown when user-supplied configuration is invalid.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated (a bug in this library).
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_config_error(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "invalid configuration: " << msg << " [" << expr << " at " << file
     << ':' << line << ']';
  throw ConfigError(os.str());
}

[[noreturn]] inline void throw_logic_error(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: " << msg << " [" << expr << " at "
     << file << ':' << line << ']';
  throw LogicError(os.str());
}
}  // namespace detail

}  // namespace esm

/// Validate user-facing configuration; throws esm::ConfigError on failure.
#define ESM_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream esm_require_os_;                                   \
      esm_require_os_ << msg;                                               \
      ::esm::detail::throw_config_error(#cond, __FILE__, __LINE__,          \
                                        esm_require_os_.str());             \
    }                                                                       \
  } while (false)

/// Validate an internal invariant; throws esm::LogicError on failure.
#define ESM_CHECK(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream esm_check_os_;                                     \
      esm_check_os_ << msg;                                                 \
      ::esm::detail::throw_logic_error(#cond, __FILE__, __LINE__,           \
                                       esm_check_os_.str());                \
    }                                                                       \
  } while (false)
