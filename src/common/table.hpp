// ASCII table printing for the benchmark harnesses. Every bench binary that
// regenerates a paper table/figure emits rows through TablePrinter so the
// reproduction output is easy to compare against the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace esm {

/// Collects rows of strings and prints them as an aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; its size must equal the number of headers.
  void add_row(std::vector<std::string> row);

  /// Renders the table to the stream with a header rule and column padding.
  void print(std::ostream& os) const;

  /// Renders to a string (convenience for tests).
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by the bench binaries, e.g.
/// "==== Fig. 9: Average accuracies (RTX 4090) ====".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace esm
