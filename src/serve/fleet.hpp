// Fleet mode: a registry of named models served by one process.
//
// Production ESM means one server answering for every
// (device x search space x encoding) surrogate, not one model per process.
// The unit of deployment is a *manifest* — a small text file listing named
// models, each with the artifact path and the CRC32 the artifact bytes are
// expected to have — and the unit of serving is a ModelFleet: an immutable
// snapshot holding every manifest entry fully loaded, each model with its
// own generation-keyed cache shard-set.
//
// Manifest format (`manifest.esmf`, text, '#' comments and blank lines ok):
//
//   esm-fleet v1
//   default <name>
//   model <name> <crc32hex> <path>
//
// `default` names the model keyless requests route to and must reference a
// listed entry. Model names match [A-Za-z][A-Za-z0-9_.-]* (a leading letter
// keeps them distinguishable from architecture requests, whose first token
// always starts with a digit or sign; '_'-prefixed names are reserved for
// metrics pseudo-sections like "_unrouted"). Paths are resolved relative to
// the manifest's directory unless absolute, and may contain spaces (the
// path is the rest of the line).
//
// Atomicity contract: ModelFleet::load() verifies and loads *every* entry
// before anything is published to the server — a missing artifact, a CRC
// mismatch, a duplicate name, or an unreadable manifest throws an error
// naming the offending entry, and the caller keeps serving the previous
// fleet untouched (the PR-5 keep-old reload pin, extended to N models).
// Publishing the other way — `esm_cli pipeline` adding a gated model —
// rewrites the manifest via write_file_atomic, so a reader never sees a
// torn manifest.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "surrogate/trainable.hpp"

namespace esm::serve {

/// First line of every manifest; bump on incompatible format changes.
inline constexpr const char* kManifestMagic = "esm-fleet v1";

/// True for tokens usable as model names: [A-Za-z][A-Za-z0-9_.-]*. The
/// leading letter is what keeps routed requests ("predict rpi4 3,5,2,7")
/// unambiguous against keyless ones ("predict 3,5,2,7").
bool valid_model_name(const std::string& name);

/// CRC32 (hex) of a file's bytes — the identity manifests pin artifacts to.
std::string file_crc32_hex(const std::string& path);

/// One `model` line of a manifest.
struct ManifestEntry {
  std::string name;
  std::string crc32_hex;  ///< expected CRC32 of the artifact bytes
  std::string path;       ///< as written (resolved against the manifest dir)
};

/// A parsed manifest. Entry order is preserved (it is the order `models`
/// responses and stats sections list, and upserts keep it stable so a
/// republished manifest stays byte-identical).
struct FleetManifest {
  std::string default_model;
  std::vector<ManifestEntry> entries;

  /// True when `contents` starts with the manifest magic line — how the
  /// server tells a manifest from a bare `.esm` artifact on reload.
  static bool looks_like_manifest(std::string_view contents);

  /// Parses manifest text; `origin` names the file in errors. Throws
  /// esm::ConfigError on bad magic, malformed lines, duplicate or invalid
  /// names, a missing default, or a default naming no entry.
  static FleetManifest parse(const std::string& contents,
                             const std::string& origin);

  /// parse() over the file at `path`.
  static FleetManifest load(const std::string& path);

  /// Renders the canonical text form (round-trips through parse()).
  std::string to_string() const;

  /// Entry index by name, or npos.
  std::size_t find(const std::string& name) const;

  /// Inserts or replaces the entry with `entry.name`, preserving position
  /// for replacements and appending new names. The first model ever added
  /// becomes the default; later upserts leave the default untouched.
  void upsert(const ManifestEntry& entry);

  /// Throws esm::ConfigError if names/default are inconsistent.
  void validate(const std::string& origin) const;
};

/// Writes the manifest atomically (write-temp -> fsync -> rename), so a
/// concurrent or crashed reader sees the old or the new manifest, whole.
void write_manifest_atomic(const FleetManifest& manifest,
                           const std::string& path);

/// One loaded, serving-ready model of a fleet.
struct FleetModel {
  std::string name;
  std::string artifact_path;  ///< resolved path the bytes were read from
  std::string crc32_hex;      ///< actual CRC32 of those bytes (== expected)
  std::uint64_t generation = 0;  ///< unique per loaded instance
  std::shared_ptr<const TrainableSurrogate> model;
  /// Per-model cache shard-set. Keys carry the generation, and the cache
  /// object travels with the model across fleet swaps (an unchanged model
  /// keeps its warm cache through a reload).
  std::shared_ptr<PredictionCache> cache;
};

/// An immutable fleet snapshot: the server swaps a shared_ptr<const
/// ModelFleet> on reload, so sessions and the batcher always see one
/// coherent fleet (requests already routed finish on the fleet they were
/// routed against).
class ModelFleet {
 public:
  /// Loads every entry of the manifest at `manifest_path`, all-or-nothing:
  /// each artifact is read once, its CRC32 checked against the manifest,
  /// and parsed through load_surrogate(); the first failure throws an
  /// esm::ConfigError naming the entry and nothing is returned. `previous`
  /// (may be null) lets entries whose name AND artifact CRC are unchanged
  /// carry over their loaded model, generation, and warm cache; every
  /// other entry gets a fresh generation from `generation_counter`.
  static std::shared_ptr<const ModelFleet> load(
      const std::string& manifest_path, const ModelFleet* previous,
      std::uint64_t& generation_counter, std::size_t cache_capacity,
      std::size_t cache_shards);

  /// A one-model fleet around an already-loaded artifact (single-artifact
  /// serving, the PR-5 mode). The model is named `name` and is the default.
  static std::shared_ptr<const ModelFleet> single(
      const std::string& name, const std::string& artifact_path,
      const std::string& crc32_hex,
      std::shared_ptr<const TrainableSurrogate> model,
      std::uint64_t& generation_counter, std::size_t cache_capacity,
      std::size_t cache_shards);

  /// The model named `name`, or nullptr.
  const FleetModel* find(const std::string& name) const;

  const FleetModel& default_model() const {
    return models_[default_index_];
  }

  /// Models in manifest order.
  const std::vector<FleetModel>& models() const { return models_; }

  /// The manifest (or single artifact) path this fleet was loaded from.
  const std::string& source_path() const { return source_path_; }

  /// CRC32 hex of the manifest bytes ("" for single-artifact fleets, whose
  /// identity is the artifact CRC itself).
  const std::string& manifest_crc32() const { return manifest_crc32_; }

  bool from_manifest() const { return from_manifest_; }

 private:
  ModelFleet() = default;

  std::vector<FleetModel> models_;
  std::size_t default_index_ = 0;
  std::string source_path_;
  std::string manifest_crc32_;
  bool from_manifest_ = false;
};

}  // namespace esm::serve
