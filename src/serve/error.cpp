#include "serve/error.hpp"

namespace esm::serve {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::bad_request:
      return kErrBadRequest;
    case ErrorCode::bad_arch:
      return kErrBadArch;
    case ErrorCode::unknown_verb:
      return kErrUnknownVerb;
    case ErrorCode::oversized:
      return kErrOversized;
    case ErrorCode::reload_failed:
      return kErrReloadFailed;
    case ErrorCode::server_error:
      return kErrServerError;
    case ErrorCode::unknown_model:
      return kErrUnknownModel;
    case ErrorCode::bad_frame:
      return kErrBadFrame;
  }
  // A byte from a newer peer: degrade to the backstop token rather than
  // inventing an unparseable one.
  return kErrServerError;
}

bool parse_error_code(std::string_view text, ErrorCode& out) {
  for (ErrorCode code : kAllErrorCodes) {
    if (text == to_string(code)) {
      out = code;
      return true;
    }
  }
  return false;
}

}  // namespace esm::serve
