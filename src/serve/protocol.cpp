#include "serve/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>

#include "common/error.hpp"

namespace esm::serve {
namespace {

std::string sanitize_one_line(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  std::replace(s.begin(), s.end(), '\r', ' ');
  return s;
}

/// Parses a base-10 integer covering the whole token.
bool parse_int_token(const std::string& token, long& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

/// One direction of the in-process pair: a line queue with blocking pop.
struct Channel {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::string> lines;
  bool closed = false;

  bool pop(std::string& line) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return !lines.empty() || closed; });
    if (lines.empty()) return false;  // closed and drained
    line = std::move(lines.front());
    lines.pop_front();
    return true;
  }

  // Lines pushed after close() are still queued: the reader drains them
  // before seeing end-of-stream, which is what lets a draining server
  // answer every request that was already on the wire.
  bool push(std::string line) {
    std::lock_guard<std::mutex> lock(mutex);
    const bool open = !closed;
    lines.push_back(std::move(line));
    cv.notify_all();
    return open;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex);
    closed = true;
    cv.notify_all();
  }
};

/// One end of the pair: reads from one channel, writes to the other.
class InProcessStream final : public Stream {
 public:
  InProcessStream(std::shared_ptr<Channel> in, std::shared_ptr<Channel> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  bool read_line(std::string& line) override { return in_->pop(line); }
  bool write_line(const std::string& line) override {
    return out_->push(line);
  }
  void close() override {
    in_->close();
    out_->close();
  }

 private:
  std::shared_ptr<Channel> in_;
  std::shared_ptr<Channel> out_;
};

}  // namespace

ParsedRequest split_request(const std::string& line) {
  std::string trimmed = line;
  if (!trimmed.empty() && trimmed.back() == '\r') trimmed.pop_back();
  ParsedRequest request;
  const std::size_t space = trimmed.find(' ');
  if (space == std::string::npos) {
    request.verb = trimmed;
  } else {
    request.verb = trimmed.substr(0, space);
    request.payload = trimmed.substr(space + 1);
  }
  return request;
}

RoutedPayload split_model_key(const std::string& payload) {
  RoutedPayload routed;
  routed.rest = payload;
  if (payload.empty()) return routed;
  const char first = payload.front();
  const bool keyed = (first >= 'A' && first <= 'Z') ||
                     (first >= 'a' && first <= 'z') || first == '_';
  if (!keyed) return routed;
  const std::size_t space = payload.find(' ');
  if (space == std::string::npos) {
    routed.model = payload;
    routed.rest.clear();
  } else {
    routed.model = payload.substr(0, space);
    routed.rest = payload.substr(space + 1);
  }
  return routed;
}

std::string format_ok(const std::string& verb, const std::string& payload) {
  std::string line = std::string(kResponsePrefix) + " ok " + verb;
  if (!payload.empty()) line += " " + payload;
  return line;
}

std::string format_error(const std::string& code, const std::string& detail) {
  return std::string(kResponsePrefix) + " err " + code + " " +
         sanitize_one_line(detail);
}

std::string format_error(ErrorCode code, const std::string& detail) {
  return format_error(std::string(to_string(code)), detail);
}

std::string format_reply_esm1(const Reply& reply) {
  return reply.ok ? format_ok(reply.verb, reply.payload)
                  : format_error(reply.code, reply.payload);
}

bool parse_response(const std::string& line, ParsedResponse& out) {
  std::istringstream tokens(line);
  std::string prefix, status;
  if (!(tokens >> prefix >> status) || prefix != kResponsePrefix) return false;
  if (status != "ok" && status != "err") return false;
  out.ok = status == "ok";
  if (!(tokens >> out.verb_or_code)) return false;
  std::getline(tokens, out.payload);
  if (!out.payload.empty() && out.payload.front() == ' ')
    out.payload.erase(out.payload.begin());
  return true;
}

std::map<std::string, std::string> parse_kv_payload(
    const std::string& payload) {
  std::map<std::string, std::string> kv;
  std::istringstream tokens(payload);
  std::string token;
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

std::string format_latency(double value_ms) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value_ms);
  return buf;
}

ArchConfig parse_arch_request(const SupernetSpec& spec,
                              const std::string& text) {
  ESM_REQUIRE(text.find_first_not_of(" \t") != std::string::npos,
              "empty architecture request");
  const int default_kernel = spec.kernel_options.front();
  const double default_expansion =
      spec.expansion_options.empty() ? 1.0 : spec.expansion_options.front();

  ArchConfig arch;
  arch.kind = spec.kind;
  std::istringstream units(text);
  std::string token;
  while (std::getline(units, token, ',')) {
    // Trim surrounding whitespace so "3, 5, 2, 7" parses.
    const std::size_t first = token.find_first_not_of(" \t");
    const std::size_t last = token.find_last_not_of(" \t");
    ESM_REQUIRE(first != std::string::npos,
                "empty unit token in architecture request '" << text << "'");
    token = token.substr(first, last - first + 1);

    std::string depth_text = token;
    int kernel = default_kernel;
    double expansion = default_expansion;
    const std::size_t colon = token.find(':');
    if (colon != std::string::npos) {
      depth_text = token.substr(0, colon);
      std::string features = token.substr(colon + 1);
      ESM_REQUIRE(!features.empty() && features[0] == 'k',
                  "unit features must start with 'k': '" << token << "'");
      const std::size_t e_pos = features.find('e');
      std::string kernel_text = features.substr(1, e_pos == std::string::npos
                                                       ? std::string::npos
                                                       : e_pos - 1);
      long k = 0;
      ESM_REQUIRE(parse_int_token(kernel_text, k),
                  "'" << kernel_text << "' is not a kernel size in '" << token
                      << "'");
      kernel = static_cast<int>(k);
      if (e_pos != std::string::npos) {
        const std::string expansion_text = features.substr(e_pos + 1);
        char* end = nullptr;
        const double e = std::strtod(expansion_text.c_str(), &end);
        ESM_REQUIRE(end != nullptr && *end == '\0' && !expansion_text.empty(),
                    "'" << expansion_text << "' is not an expansion in '"
                        << token << "'");
        // Snap to the nearest spec option so "0.667" selects 2/3 exactly;
        // spec.validate compares at 1e-9, far tighter than users type.
        double best = e;
        double best_gap = 1e9;
        for (double option : spec.expansion_options) {
          const double gap = std::abs(option - e);
          if (gap < best_gap) {
            best_gap = gap;
            best = option;
          }
        }
        ESM_REQUIRE(spec.expansion_options.empty() || best_gap < 1e-2,
                    "expansion " << e << " is not close to any option of "
                                 << spec.name);
        expansion = best;
      }
    }

    long depth = 0;
    ESM_REQUIRE(parse_int_token(depth_text, depth),
                "'" << depth_text << "' is not a depth");
    ESM_REQUIRE(depth > 0 && depth <= 1000,
                "depth " << depth << " out of range in '" << token << "'");
    UnitConfig unit;
    unit.blocks.assign(static_cast<std::size_t>(depth), {kernel, expansion});
    arch.units.push_back(std::move(unit));
  }
  spec.validate(arch);
  return arch;
}

std::vector<ArchConfig> parse_arch_batch(const SupernetSpec& spec,
                                         const std::string& payload,
                                         std::size_t max_archs) {
  std::vector<ArchConfig> archs;
  std::istringstream elements(payload);
  std::string element;
  std::size_t index = 0;
  while (std::getline(elements, element, ';')) {
    ++index;
    ESM_REQUIRE(archs.size() < max_archs,
                "batch exceeds the " << max_archs << "-architecture limit");
    try {
      archs.push_back(parse_arch_request(spec, element));
    } catch (const ConfigError& e) {
      throw ConfigError("batch element " + std::to_string(index) + ": " +
                        e.what());
    }
  }
  ESM_REQUIRE(!archs.empty(), "empty architecture batch");
  return archs;
}

StreamPair make_stream_pair() {
  auto a = std::make_shared<Channel>();
  auto b = std::make_shared<Channel>();
  StreamPair pair;
  pair.client = std::make_shared<InProcessStream>(a, b);
  pair.server = std::make_shared<InProcessStream>(b, a);
  return pair;
}

ServeClient::ServeClient(std::shared_ptr<Stream> stream)
    : stream_(std::move(stream)) {}

ParsedResponse ServeClient::call(const std::string& request_line) {
  ESM_REQUIRE(stream_->write_line(request_line),
              "server stream closed before request could be sent");
  std::string line;
  ESM_REQUIRE(stream_->read_line(line),
              "server stream ended before a response arrived");
  ParsedResponse response;
  ESM_REQUIRE(parse_response(line, response),
              "unparseable server response: '" << line << "'");
  return response;
}

ParsedResponse ServeClient::expect_ok(const std::string& request_line) {
  ParsedResponse response = call(request_line);
  ESM_REQUIRE(response.ok, "server replied " << response.verb_or_code << ": "
                                             << response.payload);
  return response;
}

double ServeClient::predict(const std::string& arch_spec) {
  const ParsedResponse response = expect_ok("predict " + arch_spec);
  return std::strtod(response.payload.c_str(), nullptr);
}

double ServeClient::predict(const std::string& model,
                            const std::string& arch_spec) {
  const ParsedResponse response =
      expect_ok("predict " + model + " " + arch_spec);
  return std::strtod(response.payload.c_str(), nullptr);
}

std::vector<double> ServeClient::predict_batch(
    const std::vector<std::string>& specs) {
  return predict_batch("", specs);
}

std::vector<double> ServeClient::predict_batch(
    const std::string& model, const std::vector<std::string>& specs) {
  std::string payload;
  if (!model.empty()) payload = model + " ";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i > 0) payload += ';';
    payload += specs[i];
  }
  const ParsedResponse response = expect_ok("predict_batch " + payload);
  std::istringstream tokens(response.payload);
  std::size_t n = 0;
  ESM_REQUIRE(static_cast<bool>(tokens >> n),
              "malformed predict_batch payload '" << response.payload << "'");
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string v;
    ESM_REQUIRE(static_cast<bool>(tokens >> v),
                "predict_batch payload truncated at value " << i);
    values.push_back(std::strtod(v.c_str(), nullptr));
  }
  return values;
}

std::map<std::string, std::string> ServeClient::info() {
  return parse_kv_payload(expect_ok("info").payload);
}

std::map<std::string, std::string> ServeClient::info(
    const std::string& model) {
  return parse_kv_payload(expect_ok("info " + model).payload);
}

std::vector<std::string> ServeClient::models() {
  const ParsedResponse response = expect_ok("models");
  std::vector<std::string> names;
  std::istringstream tokens(response.payload);
  std::string name;
  while (tokens >> name) names.push_back(name);
  return names;
}

std::map<std::string, std::string> ServeClient::stats() {
  return parse_kv_payload(expect_ok("stats").payload);
}

void ServeClient::reload(const std::string& artifact_path) {
  expect_ok("reload " + artifact_path);
}

void ServeClient::shutdown() { expect_ok("shutdown"); }

}  // namespace esm::serve
