// Byte-stream transport behind the event loop: non-blocking connections
// and listeners with one uniform readiness model, implemented twice —
//
//   * TCP (make_tcp_listener / adopt_fd_connection): real sockets with
//     O_NONBLOCK fds. poll_fd() exposes the fd so the event loop registers
//     it with epoll/poll and readiness arrives from the kernel.
//
//   * loopback (make_loopback_listener): fd-less in-process connections
//     over plain byte buffers. poll_fd() is -1; readiness arrives through
//     a notifier callback the event loop installs (it marks the connection
//     ready and wakes the reactor through its self-pipe). Because no fd is
//     consumed per connection, tests drive tens of thousands of concurrent
//     connections deterministically under any ulimit, with the exact same
//     event-loop code paths the TCP transport exercises.
//
// All I/O is non-blocking from the event loop's point of view: read_some
// and write_some never wait, they report would_block and the loop retries
// when the transport signals readiness again.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace esm::serve {

/// Outcome of one non-blocking I/O attempt.
enum class IoResult {
  ok,           ///< made progress (read some bytes / wrote some bytes)
  would_block,  ///< no progress now; retry on the next readiness signal
  closed,       ///< orderly end-of-stream from the peer
  error,        ///< the connection is unusable; drop it
};

/// Invoked (from any thread) when an fd-less endpoint becomes readable or
/// writable again; must be cheap and non-blocking (it wakes the reactor).
using ReadyNotifier = std::function<void()>;

/// One accepted server-side connection. Not thread-safe: the event loop is
/// the only caller of read_some/write_some; close() may race only with the
/// peer, never with the loop.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Appends whatever bytes are available to `out` without blocking.
  /// `ok` guarantees at least one byte was appended.
  virtual IoResult read_some(std::string& out) = 0;

  /// Writes bytes of `data` starting at `*offset`, advancing `*offset` by
  /// what was accepted. `ok` guarantees progress; would_block means the
  /// peer must drain first.
  virtual IoResult write_some(std::string_view data, std::size_t* offset) = 0;

  /// Ends the connection in both directions. Idempotent.
  virtual void close() = 0;

  /// The pollable fd, or -1 for fd-less connections (loopback).
  virtual int poll_fd() const { return -1; }

  /// Installs the readiness callback for fd-less connections; a no-op for
  /// fd-backed ones (the kernel signals readiness through poll_fd()).
  virtual void set_ready_notifier(ReadyNotifier) {}
};

/// A connection acceptor. accept_one() never blocks.
class Listener {
 public:
  virtual ~Listener() = default;

  /// The next pending connection, or nullptr when none is waiting.
  virtual std::shared_ptr<Connection> accept_one() = 0;

  /// Stops accepting: pending and future connect attempts fail. Idempotent.
  virtual void close() = 0;

  /// The pollable listening fd, or -1 for fd-less listeners.
  virtual int poll_fd() const { return -1; }

  /// Readiness callback for fd-less listeners (a connection is pending).
  virtual void set_ready_notifier(ReadyNotifier) {}
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel picks); the chosen
/// port is stored in `*bound_port`. The listening fd and every accepted fd
/// are O_NONBLOCK | FD_CLOEXEC. Throws esm::ConfigError on bind failure.
std::unique_ptr<Listener> make_tcp_listener(int port, int* bound_port);

/// Wraps an already-connected socket fd as a Connection (sets O_NONBLOCK;
/// takes ownership of the fd).
std::shared_ptr<Connection> adopt_fd_connection(int fd);

/// Client end of one loopback connection. Thread-safe; blocking calls are
/// for driver threads in tests and benches, never the event loop.
class LoopbackChannel {
 public:
  virtual ~LoopbackChannel() = default;

  /// Queues `bytes` for the server and wakes the event loop. False once
  /// the server side closed.
  virtual bool send(std::string_view bytes) = 0;

  /// Blocks until response bytes are available or the server side closed,
  /// then moves everything buffered into `out` (append). False on
  /// end-of-stream with nothing buffered.
  virtual bool receive_some(std::string& out) = 0;

  /// Closes the client end; the server reads end-of-stream. Idempotent.
  virtual void close() = 0;
};

/// Fd-less in-process listener. connect() may be called from any thread.
class LoopbackListener : public Listener {
 public:
  /// Opens one connection: the server half becomes accept_one()-able and
  /// the client half is returned. nullptr once the listener closed.
  /// `response_buffer_cap` bounds the server-to-client buffer: a full
  /// buffer makes the server's write_some report would_block until the
  /// client drains, which is how tests exercise backpressure (0 = none).
  virtual std::shared_ptr<LoopbackChannel> connect(
      std::size_t response_buffer_cap = 0) = 0;
};

std::shared_ptr<LoopbackListener> make_loopback_listener();

}  // namespace esm::serve
