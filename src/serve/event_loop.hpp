// Epoll reactor front end for PredictionServer: thousands of concurrent
// connections on one I/O thread, speaking esm1 and esm2 on the same port.
//
// Design:
//   - One thread (the caller of run()) owns every connection. Fd-backed
//     connections (TCP) register their fd with the poller — epoll(7) when
//     available, poll(2) otherwise, selected at runtime — while fd-less
//     connections (the loopback transport) signal readiness through a
//     notifier that marks the connection ready and wakes the reactor via
//     its self-pipe. Both kinds flow through identical parse/flush code.
//   - The first byte of each connection selects its protocol: 0xE5 is the
//     esm2 frame magic (outside ASCII), anything else is an esm1 text
//     line. A connection never switches protocols.
//   - Requests are handed to PredictionServer::handle_request, the same
//     transport-agnostic core the thread-per-session path uses, so both
//     front ends answer bit-identically and share one metrics sink. Cache
//     hits and control verbs complete inline; prediction misses complete
//     from the batcher thread. Completions are queued back to the reactor
//     (self-pipe wake) and written from the loop thread — handlers never
//     block the loop and never touch a connection from another thread.
//   - esm1 responses are released strictly in request order per connection
//     (a per-connection sequence holds completed-out-of-order responses
//     until their turn); esm2 responses are written the moment they
//     complete, matched by request id — that out-of-order completion is
//     what makes pipelining pay.
//   - Backpressure: a connection whose output buffer passes the high
//     watermark stops being read (its socket fills and the client blocks);
//     passing the hard cap drops it. Idle and write-stalled connections
//     are reaped by timeouts. A malformed esm2 frame is answered with one
//     final bad_frame error frame, then the connection closes (there is no
//     way to resynchronize on frame boundaries past a corrupt header).
//   - Drain (the shutdown verb, request_stop(), or the external stop
//     check): listeners close first, each connection gets one final read
//     pass, every complete request already on the wire is answered and
//     flushed, partial trailing bytes are discarded, and run() returns
//     only after every in-flight completion came back — no request that
//     was read is ever dropped, the same contract the session path keeps.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace esm::serve {

struct EventLoopConfig {
  /// Largest declared esm2 payload accepted by the frame parser. Oversized
  /// declarations are a framing error (the connection closes); payloads
  /// within this bound but over ServeConfig::max_line_bytes get the same
  /// structured `oversized` error esm1 answers.
  std::size_t max_frame_payload = 1 << 20;
  /// Output bytes above which a connection stops being read.
  std::size_t out_high_watermark = 1 << 20;
  /// Output bytes above which a connection is dropped outright.
  std::size_t out_hard_cap = 8u << 20;
  /// Seconds a connection may sit idle (nothing in flight, nothing
  /// buffered) before it is dropped. 0 disables.
  double idle_timeout_s = 0.0;
  /// Seconds a connection may leave output unflushed (slow client) before
  /// it is dropped. 0 disables.
  double write_stall_timeout_s = 30.0;
  /// Forces the poll(2) backend even when epoll is available (tests cover
  /// both backends with this).
  bool force_poll = false;
  /// Polled once per tick; returning true begins the drain. Wired to the
  /// signal flag by esm_serve so SIGINT/SIGTERM stop the loop without the
  /// old 200 ms accept-poll race (the signal handler also writes the wake
  /// pipe through notify_external(), so the reaction is immediate).
  std::function<bool()> external_stop_check;
  /// Reactor tick in milliseconds: the poll timeout, which bounds how
  /// stale the timeout sweep and the external stop check can be.
  int tick_ms = 100;
};

class EventLoop {
 public:
  /// The server must outlive the loop and stay un-stopped until run()
  /// returns: draining answers every parsed request through it.
  EventLoop(PredictionServer& server, EventLoopConfig config = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers a listener. Call before run(); the loop polls fd-backed
  /// listeners and installs readiness notifiers on fd-less ones.
  void add_listener(std::shared_ptr<Listener> listener);

  /// Runs the reactor on the calling thread until a drain completes.
  void run();

  /// Begins the drain from any thread (idempotent, async-signal unsafe —
  /// signal handlers should set a flag for external_stop_check and call
  /// notify_external() instead).
  void request_stop();

  /// Wakes the reactor so it re-evaluates external_stop_check now.
  /// Async-signal-safe (one write(2) on the self-pipe).
  void notify_external();

  struct Stats {
    std::uint64_t accepted = 0;  ///< connections ever accepted
    std::uint64_t closed = 0;    ///< orderly closes (EOF, drain)
    std::uint64_t dropped = 0;   ///< forced closes: backpressure, framing
                                 ///< errors, I/O errors, timeouts
    std::uint64_t requests = 0;  ///< requests submitted to the server
    std::uint64_t active = 0;    ///< connections currently open
  };
  Stats stats() const;

  /// "epoll" or "poll" — which backend the reactor selected.
  const std::string& backend() const { return backend_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string backend_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> active_{0};
};

}  // namespace esm::serve
