// Wire protocol for the online prediction server: newline-delimited framed
// requests with versioned one-line responses, a transport abstraction
// (Stream) with an in-process pair for deterministic tests, the shared
// architecture-request parser, and a small typed client.
//
// Request grammar (one line per request, no version prefix):
//   predict [<model>] <arch>  price one architecture
//   predict_batch [<model>] <arch>(;<arch>)*   price several in one request
//   info [<model>]            loaded-model identity
//   models                    list the fleet's model names
//   stats                     live counters + latency percentiles
//   reload <path>             hot-swap the served fleet (manifest or artifact)
//   shutdown                  drain in-flight requests, then stop
//
// <model> is an optional routing key naming a fleet model. The grammar
// disambiguates without quoting: model names start with a letter
// ([A-Za-z][A-Za-z0-9_.-]*) while an <arch>'s first token always starts
// with a digit or sign, so "predict rpi4 3,5,2,7" routes to model "rpi4"
// and "predict 3,5,2,7" routes to the fleet's default model — the PR-5
// keyless protocol stays valid verbatim. A key naming no loaded model
// answers err unknown_model.
//
// <arch> is a comma-separated per-unit depth list ("3,5,2,7"), optionally
// refined per unit with block features: "<depth>:k<kernel>" or
// "<depth>:k<kernel>e<expansion>" (the feature applies to every block of
// that unit; omitted features take the space's first option). This is the
// exact grammar `esm_cli measure --archs` files and `predict --stdin` use —
// parse_arch_request() is the single shared implementation.
//
// Response grammar (one line per request, in request order):
//   esm1 ok <verb> <payload>
//   esm1 err <code> <detail...>
// The "esm1" prefix versions the response framing; clients reject other
// prefixes. Error codes are stable tokens (kErr* below); the detail is
// human-readable free text on the rest of the line.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nets/arch.hpp"
#include "nets/supernet.hpp"
#include "serve/error.hpp"

namespace esm::serve {

/// Response-framing version token; bump on incompatible response changes.
inline constexpr const char* kResponsePrefix = "esm1";

// Error codes live in serve/error.hpp (one ErrorCode space shared by esm1
// and esm2); the kErr* string constants remain available through that
// header for existing callers.

/// Verb + rest-of-line payload of a request ("" when absent). The verb of
/// an empty line is "".
struct ParsedRequest {
  std::string verb;
  std::string payload;
};

/// Splits a raw request line at the first space; trims a trailing '\r'.
ParsedRequest split_request(const std::string& line);

/// A request payload split into its optional routing key and the rest.
struct RoutedPayload {
  std::string model;  ///< "" when the request is keyless
  std::string rest;   ///< the payload with the key (and one space) removed
};

/// Splits the optional leading model key off a predict/predict_batch/info
/// payload: if the first space-separated token starts with a letter it is
/// the routing key, otherwise the whole payload is returned as `rest`.
/// Leading whitespace never turns an arch into a key (" 3,5" stays keyless).
RoutedPayload split_model_key(const std::string& payload);

/// Formats "esm1 ok <verb> <payload>"; a trailing payload space is omitted
/// when the payload is empty.
std::string format_ok(const std::string& verb, const std::string& payload);

/// Formats "esm1 err <code> <detail>". Newlines in the detail are replaced
/// with spaces so the response stays one frame.
std::string format_error(const std::string& code, const std::string& detail);

/// Same, from the shared ErrorCode enum (spells the stable wire token).
std::string format_error(ErrorCode code, const std::string& detail);

/// Structured outcome of one request, before protocol rendering: esm1
/// renders a Reply as a text line (format_reply_esm1), esm2 as a binary
/// frame. Both protocols carry the same verb/payload/code, which is what
/// keeps their answers bit-identical.
struct Reply {
  bool ok = true;
  ErrorCode code = ErrorCode::server_error;  ///< valid when !ok
  std::string verb;       ///< request verb (names the ok response)
  std::string payload;    ///< ok payload text, or the error detail
  bool shutdown = false;  ///< the request was an accepted `shutdown`
};

/// Renders a Reply as its esm1 response line ("esm1 ok ..."/"esm1 err ...").
std::string format_reply_esm1(const Reply& reply);

/// A response split into its three fields.
struct ParsedResponse {
  bool ok = false;
  std::string verb_or_code;  ///< verb for ok, error code for err
  std::string payload;       ///< rest of the line
};

/// Parses a response line; returns false when the line is not a versioned
/// esm1 response.
bool parse_response(const std::string& line, ParsedResponse& out);

/// Parses a "k1=v1 k2=v2 ..." payload (info/stats responses) into a map.
std::map<std::string, std::string> parse_kv_payload(const std::string& payload);

/// Full-precision latency formatting used by responses and CSV output
/// ("%.17g": round-trips a double exactly).
std::string format_latency(double value_ms);

/// Parses one architecture request against `spec` — the shared parser for
/// the server protocol, `esm_cli measure --archs` files, and `esm_cli
/// predict --stdin`. Grammar: comma-separated units, each "<depth>",
/// "<depth>:k<kernel>", or "<depth>:k<kernel>e<expansion>". Expansions are
/// snapped to the nearest spec option within 1e-2 (so "0.667" selects 2/3).
/// Throws esm::ConfigError with the offending token on any violation,
/// including spec validation (unit count, depth range, unknown kernel).
ArchConfig parse_arch_request(const SupernetSpec& spec,
                              const std::string& text);

/// Splits a predict_batch payload on ';' and parses every element; throws
/// esm::ConfigError naming the failing element, on an empty batch, or when
/// the batch exceeds `max_archs`.
std::vector<ArchConfig> parse_arch_batch(const SupernetSpec& spec,
                                         const std::string& payload,
                                         std::size_t max_archs);

/// Blocking line-oriented transport the server core runs on. Implementations
/// must be safe for one reader and one writer thread plus concurrent
/// close().
class Stream {
 public:
  virtual ~Stream() = default;

  /// Blocks for the next line (without its '\n'); false on end-of-stream.
  /// Lines queued before close() are still delivered.
  virtual bool read_line(std::string& line) = 0;

  /// Writes one line (appends '\n'). Returns false when the line can no
  /// longer reach the peer.
  virtual bool write_line(const std::string& line) = 0;

  /// Ends the stream: blocked and future read_line calls return false once
  /// already-queued lines are drained. Idempotent.
  virtual void close() = 0;
};

/// The two ends of an in-process bidirectional stream: what one end writes
/// the other reads, in order. close() on either end closes both directions
/// after queued lines drain — this is the transport tests and benches use
/// to drive the full protocol deterministically without sockets.
struct StreamPair {
  std::shared_ptr<Stream> client;
  std::shared_ptr<Stream> server;
};

StreamPair make_stream_pair();

/// Minimal typed client over any Stream. Not thread-safe; one client per
/// thread.
class ServeClient {
 public:
  explicit ServeClient(std::shared_ptr<Stream> stream);

  /// Sends one raw request line and blocks for its response. Throws
  /// esm::ConfigError if the stream ends or the response is unparseable.
  ParsedResponse call(const std::string& request_line);

  /// predict; throws esm::ConfigError carrying code + detail on err replies.
  /// The keyless form routes to the fleet's default model; the keyed form
  /// routes to the named model.
  double predict(const std::string& arch_spec);
  double predict(const std::string& model, const std::string& arch_spec);

  /// predict_batch over pre-rendered arch specs, keyless or routed.
  std::vector<double> predict_batch(const std::vector<std::string>& specs);
  std::vector<double> predict_batch(const std::string& model,
                                    const std::vector<std::string>& specs);

  std::map<std::string, std::string> info();
  std::map<std::string, std::string> info(const std::string& model);
  std::map<std::string, std::string> stats();

  /// The fleet's model names, in manifest order (the `models` verb).
  std::vector<std::string> models();

  void reload(const std::string& artifact_path);
  void shutdown();

  Stream& stream() { return *stream_; }

 private:
  ParsedResponse expect_ok(const std::string& request_line);

  std::shared_ptr<Stream> stream_;
};

}  // namespace esm::serve
