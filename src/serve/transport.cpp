#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

#include "common/error.hpp"

namespace esm::serve {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int fd_flags = ::fcntl(fd, F_GETFD, 0);
  if (fd_flags >= 0) ::fcntl(fd, F_SETFD, fd_flags | FD_CLOEXEC);
}

/// Connection over a non-blocking socket fd (owned).
class FdConnection final : public Connection {
 public:
  explicit FdConnection(int fd) : fd_(fd) { set_nonblocking(fd_); }

  ~FdConnection() override {
    if (fd_ >= 0) ::close(fd_);
  }

  IoResult read_some(std::string& out) override {
    if (fd_ < 0) return IoResult::closed;
    char chunk[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        out.append(chunk, static_cast<std::size_t>(n));
        return IoResult::ok;
      }
      if (n == 0) return IoResult::closed;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::would_block;
      return IoResult::error;
    }
  }

  IoResult write_some(std::string_view data, std::size_t* offset) override {
    if (fd_ < 0) return IoResult::error;
    if (*offset >= data.size()) return IoResult::ok;
    for (;;) {
      const ssize_t n = ::send(fd_, data.data() + *offset,
                               data.size() - *offset, MSG_NOSIGNAL);
      if (n >= 0) {
        *offset += static_cast<std::size_t>(n);
        return IoResult::ok;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::would_block;
      return IoResult::error;
    }
  }

  void close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  int poll_fd() const override { return fd_; }

 private:
  int fd_;
};

class TcpListener final : public Listener {
 public:
  explicit TcpListener(int fd) : fd_(fd) { set_nonblocking(fd_); }

  ~TcpListener() override { close(); }

  std::shared_ptr<Connection> accept_one() override {
    if (fd_ < 0) return nullptr;
    const int client = ::accept(fd_, nullptr, nullptr);
    // EMFILE/ENFILE and transient errors all land here: the loop simply
    // retries on the next readiness signal instead of dying.
    if (client < 0) return nullptr;
    return std::make_shared<FdConnection>(client);
  }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int poll_fd() const override { return fd_; }

 private:
  int fd_;
};

/// Shared state of one loopback connection: two byte buffers plus the
/// bookkeeping that makes the server half non-blocking and the client half
/// blocking. Everything is guarded by `mutex`; notifiers are copied out
/// and invoked unlocked so the reactor wake path cannot deadlock.
struct LoopbackState {
  std::mutex mutex;
  std::condition_variable client_cv;  ///< wakes a blocked receive_some
  std::string to_server;              ///< client -> server bytes
  std::string to_client;              ///< server -> client bytes
  std::size_t response_cap = 0;       ///< to_client bound; 0 = unbounded
  bool client_closed = false;
  bool server_closed = false;
  ReadyNotifier notify;  ///< event-loop wake for the server half
};

class LoopbackConnection final : public Connection {
 public:
  explicit LoopbackConnection(std::shared_ptr<LoopbackState> state)
      : state_(std::move(state)) {}

  ~LoopbackConnection() override { close(); }

  IoResult read_some(std::string& out) override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->to_server.empty()) {
      return state_->client_closed ? IoResult::closed : IoResult::would_block;
    }
    out.append(state_->to_server);
    state_->to_server.clear();
    return IoResult::ok;
  }

  IoResult write_some(std::string_view data, std::size_t* offset) override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->client_closed) return IoResult::error;
    if (*offset >= data.size()) return IoResult::ok;
    std::size_t room = data.size() - *offset;
    if (state_->response_cap > 0) {
      if (state_->to_client.size() >= state_->response_cap) {
        return IoResult::would_block;
      }
      room = std::min(room,
                      state_->response_cap - state_->to_client.size());
    }
    state_->to_client.append(data.data() + *offset, room);
    *offset += room;
    state_->client_cv.notify_all();
    return IoResult::ok;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->server_closed = true;
    state_->client_cv.notify_all();
  }

  void set_ready_notifier(ReadyNotifier notify) override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->notify = std::move(notify);
  }

 private:
  std::shared_ptr<LoopbackState> state_;
};

class LoopbackChannelImpl final : public LoopbackChannel {
 public:
  explicit LoopbackChannelImpl(std::shared_ptr<LoopbackState> state)
      : state_(std::move(state)) {}

  ~LoopbackChannelImpl() override { close(); }

  bool send(std::string_view bytes) override {
    ReadyNotifier notify;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->server_closed) return false;
      state_->to_server.append(bytes.data(), bytes.size());
      notify = state_->notify;
    }
    if (notify) notify();
    return true;
  }

  bool receive_some(std::string& out) override {
    ReadyNotifier notify;
    bool drained_cap = false;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->client_cv.wait(lock, [this] {
        return !state_->to_client.empty() || state_->server_closed;
      });
      if (state_->to_client.empty()) return false;
      drained_cap = state_->response_cap > 0 &&
                    state_->to_client.size() >= state_->response_cap;
      out.append(state_->to_client);
      state_->to_client.clear();
      notify = state_->notify;
    }
    // Draining a full capped buffer makes the server writable again; the
    // reactor must hear about it to retry the blocked flush.
    if (drained_cap && notify) notify();
    return true;
  }

  void close() override {
    ReadyNotifier notify;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->client_closed) return;
      state_->client_closed = true;
      state_->client_cv.notify_all();
      notify = state_->notify;
    }
    // The server half reads end-of-stream on its next readiness pass.
    if (notify) notify();
  }

 private:
  std::shared_ptr<LoopbackState> state_;
};

class LoopbackListenerImpl final : public LoopbackListener {
 public:
  std::shared_ptr<LoopbackChannel> connect(
      std::size_t response_buffer_cap) override {
    auto state = std::make_shared<LoopbackState>();
    state->response_cap = response_buffer_cap;
    auto server = std::make_shared<LoopbackConnection>(state);
    auto client = std::make_shared<LoopbackChannelImpl>(state);
    ReadyNotifier notify;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return nullptr;
      pending_.push_back(std::move(server));
      notify = notify_;
    }
    if (notify) notify();
    return client;
  }

  std::shared_ptr<Connection> accept_one() override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) return nullptr;
    std::shared_ptr<Connection> conn = std::move(pending_.front());
    pending_.pop_front();
    return conn;
  }

  void close() override {
    std::deque<std::shared_ptr<Connection>> orphaned;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      orphaned.swap(pending_);
    }
    // Never-accepted connections end cleanly: their clients see EOF.
    for (const std::shared_ptr<Connection>& conn : orphaned) conn->close();
  }

  void set_ready_notifier(ReadyNotifier notify) override {
    std::lock_guard<std::mutex> lock(mutex_);
    notify_ = std::move(notify);
  }

 private:
  std::mutex mutex_;
  std::deque<std::shared_ptr<Connection>> pending_;
  bool closed_ = false;
  ReadyNotifier notify_;
};

}  // namespace

std::unique_ptr<Listener> make_tcp_listener(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ESM_REQUIRE(fd >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 256) != 0) {
    const int err = errno;
    ::close(fd);
    ESM_REQUIRE(false, "bind/listen(127.0.0.1:" << port
                                                << "): " << std::strerror(err));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  return std::make_unique<TcpListener>(fd);
}

std::shared_ptr<Connection> adopt_fd_connection(int fd) {
  return std::make_shared<FdConnection>(fd);
}

std::shared_ptr<LoopbackListener> make_loopback_listener() {
  return std::make_shared<LoopbackListenerImpl>();
}

}  // namespace esm::serve
