// EsmClient — one typed client for both serving protocols.
//
// Speaks esm1 (newline text) or esm2 (binary frames, serve/frame.hpp) over
// any blocking byte channel: a TCP socket (connect_tcp) or the in-process
// loopback transport (loopback_channel), so tests, benches, and the
// esm_serve CLI all drive the server through this one implementation.
//
// Two API levels:
//   - Sync verbs (predict, predict_batch, info, models, stats, reload,
//     shutdown): send one request, block for its response, throw
//     esm::ConfigError on structured errors. Same surface as the PR-5
//     ServeClient, protocol-independent.
//   - Pipelining (submit/await): queue many requests without waiting, then
//     collect responses by id. Over esm2 the server completes requests out
//     of order and the id match is native; over esm1 responses arrive in
//     request order and the client re-associates them FIFO — the API is
//     identical, only the concurrency the wire permits differs, which is
//     exactly what bench/serve_throughput.cpp measures.
//
// Not thread-safe: one EsmClient per thread.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/transport.hpp"

namespace esm::serve {

/// Blocking byte channel to a server. Implementations: TCP, loopback.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  /// Writes all of `bytes`; false once the server closed.
  virtual bool send(std::string_view bytes) = 0;

  /// Blocks for at least one response byte, appended to `out`; false on
  /// end-of-stream with nothing buffered.
  virtual bool receive_some(std::string& out) = 0;

  virtual void close() = 0;
};

/// Connects a blocking TCP socket to `host`:`port`. Throws
/// esm::ConfigError when the connection cannot be established.
std::shared_ptr<ClientChannel> connect_tcp(const std::string& host, int port);

/// Adapts a loopback client half (LoopbackListener::connect) to a
/// ClientChannel.
std::shared_ptr<ClientChannel> loopback_channel(
    std::shared_ptr<LoopbackChannel> channel);

enum class Protocol { esm1, esm2 };

class EsmClient {
 public:
  explicit EsmClient(std::shared_ptr<ClientChannel> channel,
                     Protocol protocol = Protocol::esm1);

  Protocol protocol() const { return protocol_; }

  /// One response, protocol-independent.
  struct Response {
    bool ok = false;
    std::string verb_or_code;  ///< verb when ok, error-code token when not
    std::string payload;       ///< ok payload / error detail
    std::string raw;  ///< display form: the esm1 line, or "esm2 ok ..."
  };

  // -- pipelined API -------------------------------------------------------

  /// Queues one request without waiting; returns its id. Throws
  /// esm::ConfigError when the verb is unknown to the protocol or the
  /// connection is gone.
  std::uint64_t submit(const std::string& verb, const std::string& payload);

  /// Blocks until the response for `id` arrived (responses for other
  /// pipelined requests are buffered as they pass by). Throws
  /// esm::ConfigError when the connection ends first.
  Response await(std::uint64_t id);

  // -- sync verbs ----------------------------------------------------------

  /// submit + await of one request.
  Response call(const std::string& verb, const std::string& payload);

  double predict(const std::string& arch_spec);
  double predict(const std::string& model, const std::string& arch_spec);
  std::vector<double> predict_batch(const std::vector<std::string>& specs);
  std::vector<double> predict_batch(const std::string& model,
                                    const std::vector<std::string>& specs);
  std::map<std::string, std::string> info();
  std::map<std::string, std::string> info(const std::string& model);
  std::map<std::string, std::string> stats();
  std::vector<std::string> models();
  void reload(const std::string& artifact_path);
  void shutdown();

  /// Sends a raw "verb payload" line (the CLI's stdin passthrough) and
  /// blocks for its response — works over both protocols (the line is
  /// split and re-framed for esm2).
  Response call_line(const std::string& line);

  void close() { channel_->close(); }

 private:
  Response expect_ok(const std::string& verb, const std::string& payload);

  /// Reads until at least one more response is decoded into completed_.
  void pump();

  std::shared_ptr<ClientChannel> channel_;
  Protocol protocol_;
  std::uint64_t next_id_ = 1;
  std::string in_;  ///< undecoded response bytes
  std::vector<std::uint64_t> fifo_;  ///< esm1: ids awaiting, request order
  std::map<std::uint64_t, Response> completed_;
};

}  // namespace esm::serve
