#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "serve/frame.hpp"
#include "serve/protocol.hpp"

namespace esm::serve {
namespace {

/// Blocking channel over a connected TCP socket (owned fd).
class TcpChannel final : public ClientChannel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) {}

  ~TcpChannel() override { close(); }

  bool send(std::string_view bytes) override {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool receive_some(std::string& out) override {
    char chunk[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        out.append(chunk, static_cast<std::size_t>(n));
        return true;
      }
      if (n == 0) return false;
      if (errno != EINTR) return false;
    }
  }

  void close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

class LoopbackClientChannel final : public ClientChannel {
 public:
  explicit LoopbackClientChannel(std::shared_ptr<LoopbackChannel> channel)
      : channel_(std::move(channel)) {}

  bool send(std::string_view bytes) override { return channel_->send(bytes); }
  bool receive_some(std::string& out) override {
    return channel_->receive_some(out);
  }
  void close() override { channel_->close(); }

 private:
  std::shared_ptr<LoopbackChannel> channel_;
};

}  // namespace

std::shared_ptr<ClientChannel> connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ESM_REQUIRE(fd >= 0, "socket(): " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    ESM_REQUIRE(false, "'" << host << "' is not an IPv4 address");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    ESM_REQUIRE(false,
                "connect(" << host << ":" << port
                           << "): " << std::strerror(err));
  }
  return std::make_shared<TcpChannel>(fd);
}

std::shared_ptr<ClientChannel> loopback_channel(
    std::shared_ptr<LoopbackChannel> channel) {
  return std::make_shared<LoopbackClientChannel>(std::move(channel));
}

EsmClient::EsmClient(std::shared_ptr<ClientChannel> channel, Protocol protocol)
    : channel_(std::move(channel)), protocol_(protocol) {}

std::uint64_t EsmClient::submit(const std::string& verb,
                                const std::string& payload) {
  const std::uint64_t id = next_id_++;
  if (protocol_ == Protocol::esm2) {
    FrameVerb frame_verb;
    ESM_REQUIRE(parse_frame_verb(verb, frame_verb),
                "'" << verb << "' is not an esm2 verb");
    ESM_REQUIRE(channel_->send(encode_request(id, frame_verb, payload)),
                "server closed before the request could be sent");
  } else {
    std::string line = verb;
    if (!payload.empty()) {
      line += ' ';
      line += payload;
    }
    line += '\n';
    ESM_REQUIRE(channel_->send(line),
                "server closed before the request could be sent");
    fifo_.push_back(id);
  }
  return id;
}

void EsmClient::pump() {
  const std::size_t before = completed_.size();
  while (completed_.size() == before) {
    // Decode everything already buffered first.
    if (protocol_ == Protocol::esm2) {
      for (;;) {
        Frame frame;
        std::string error;
        const FrameParse r = parse_frame(in_, frame, error, 64u << 20);
        if (r == FrameParse::need_more) break;
        ESM_REQUIRE(r == FrameParse::ok, "esm2 response: " << error);
        Response response;
        if (frame.verb == kFrameErrorVerb) {
          std::uint8_t code = 0;
          std::string_view detail;
          ESM_REQUIRE(split_error_payload(frame.payload, code, detail),
                      "esm2 error frame with an empty payload");
          ESM_REQUIRE(frame.request_id != 0,
                      "connection-level esm2 error: " << detail);
          response.ok = false;
          response.verb_or_code = to_string(static_cast<ErrorCode>(code));
          response.payload = std::string(detail);
          response.raw = "esm2 err " + response.verb_or_code + " " +
                         response.payload;
        } else {
          ESM_REQUIRE((frame.verb & kFrameResponseBit) != 0,
                      "esm2 frame without the response bit");
          response.ok = true;
          response.verb_or_code = std::string(frame_verb_name(
              static_cast<std::uint8_t>(frame.verb & ~kFrameResponseBit)));
          response.payload = std::move(frame.payload);
          response.raw = "esm2 ok " + response.verb_or_code;
          if (!response.payload.empty()) {
            response.raw += ' ';
            response.raw += response.payload;
          }
        }
        completed_.emplace(frame.request_id, std::move(response));
      }
    } else {
      std::size_t newline;
      while ((newline = in_.find('\n')) != std::string::npos) {
        std::string line = in_.substr(0, newline);
        in_.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        ParsedResponse parsed;
        ESM_REQUIRE(parse_response(line, parsed),
                    "unparseable server response: '" << line << "'");
        ESM_REQUIRE(!fifo_.empty(),
                    "esm1 response with no request outstanding");
        Response response;
        response.ok = parsed.ok;
        response.verb_or_code = std::move(parsed.verb_or_code);
        response.payload = std::move(parsed.payload);
        response.raw = std::move(line);
        completed_.emplace(fifo_.front(), std::move(response));
        fifo_.erase(fifo_.begin());
      }
    }
    if (completed_.size() != before) return;
    ESM_REQUIRE(channel_->receive_some(in_),
                "server stream ended before a response arrived");
  }
}

EsmClient::Response EsmClient::await(std::uint64_t id) {
  for (;;) {
    const auto it = completed_.find(id);
    if (it != completed_.end()) {
      Response response = std::move(it->second);
      completed_.erase(it);
      return response;
    }
    pump();
  }
}

EsmClient::Response EsmClient::call(const std::string& verb,
                                    const std::string& payload) {
  return await(submit(verb, payload));
}

EsmClient::Response EsmClient::call_line(const std::string& line) {
  const ParsedRequest request = split_request(line);
  return call(request.verb, request.payload);
}

EsmClient::Response EsmClient::expect_ok(const std::string& verb,
                                         const std::string& payload) {
  Response response = call(verb, payload);
  ESM_REQUIRE(response.ok, "server replied " << response.verb_or_code << ": "
                                             << response.payload);
  return response;
}

double EsmClient::predict(const std::string& arch_spec) {
  return std::strtod(expect_ok("predict", arch_spec).payload.c_str(), nullptr);
}

double EsmClient::predict(const std::string& model,
                          const std::string& arch_spec) {
  return std::strtod(expect_ok("predict", model + " " + arch_spec)
                         .payload.c_str(),
                     nullptr);
}

std::vector<double> EsmClient::predict_batch(
    const std::vector<std::string>& specs) {
  return predict_batch("", specs);
}

std::vector<double> EsmClient::predict_batch(
    const std::string& model, const std::vector<std::string>& specs) {
  std::string payload;
  if (!model.empty()) payload = model + " ";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i > 0) payload += ';';
    payload += specs[i];
  }
  const Response response = expect_ok("predict_batch", payload);
  std::istringstream tokens(response.payload);
  std::size_t n = 0;
  ESM_REQUIRE(static_cast<bool>(tokens >> n),
              "malformed predict_batch payload '" << response.payload << "'");
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string v;
    ESM_REQUIRE(static_cast<bool>(tokens >> v),
                "predict_batch payload truncated at value " << i);
    values.push_back(std::strtod(v.c_str(), nullptr));
  }
  return values;
}

std::map<std::string, std::string> EsmClient::info() {
  return parse_kv_payload(expect_ok("info", "").payload);
}

std::map<std::string, std::string> EsmClient::info(const std::string& model) {
  return parse_kv_payload(expect_ok("info", model).payload);
}

std::map<std::string, std::string> EsmClient::stats() {
  return parse_kv_payload(expect_ok("stats", "").payload);
}

std::vector<std::string> EsmClient::models() {
  const Response response = expect_ok("models", "");
  std::vector<std::string> names;
  std::istringstream tokens(response.payload);
  std::string name;
  while (tokens >> name) names.push_back(name);
  return names;
}

void EsmClient::reload(const std::string& artifact_path) {
  expect_ok("reload", artifact_path);
}

void EsmClient::shutdown() { expect_ok("shutdown", ""); }

}  // namespace esm::serve
