#include "serve/server.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/fsio.hpp"
#include "surrogate/registry.hpp"

namespace esm::serve {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

Reply ok_reply(std::string verb, std::string payload) {
  Reply reply;
  reply.verb = std::move(verb);
  reply.payload = std::move(payload);
  return reply;
}

Reply error_reply(ErrorCode code, std::string detail) {
  Reply reply;
  reply.ok = false;
  reply.code = code;
  reply.payload = std::move(detail);
  return reply;
}

}  // namespace

PredictionServer::PredictionServer(ServeConfig config)
    : config_(std::move(config)) {
  // Throws before any thread starts when the fleet cannot be loaded, so a
  // failed construction needs no teardown.
  install_source(config_.artifact_path);
  batcher_thread_ = std::thread([this] { batcher_loop(); });
  if (config_.summary_period_s > 0.0) {
    summary_thread_ = std::thread([this] { summary_loop(); });
  }
}

PredictionServer::~PredictionServer() {
  request_stop();
  wait();
}

void PredictionServer::install_source(const std::string& path) {
  // Serialized: concurrent reloads must not interleave their generation
  // assignment or race the carry-over inspection of the previous fleet.
  std::lock_guard<std::mutex> install_lock(install_mutex_);
  std::shared_ptr<const ModelFleet> previous = current_fleet();

  // One read serves both routing and parsing: the content decides whether
  // this is a fleet manifest or a bare artifact, and single-artifact loads
  // parse the same buffer instead of re-reading the file.
  const std::string bytes = read_file(path, "artifact or fleet manifest");
  std::shared_ptr<const ModelFleet> next;
  if (FleetManifest::looks_like_manifest(bytes)) {
    next = ModelFleet::load(path, previous.get(), generation_counter_,
                            config_.cache_capacity, config_.cache_shards);
  } else {
    next = ModelFleet::single("default", path, crc32_hex(crc32(bytes)),
                              load_surrogate(path, bytes),
                              generation_counter_, config_.cache_capacity,
                              config_.cache_shards);
  }
  {
    std::lock_guard<std::mutex> lock(fleet_mutex_);
    fleet_ = next;
  }
  // The stats identity shows the served source; kind/encoder/space are the
  // default model's (the one keyless requests hit).
  const FleetModel& def = next->default_model();
  metrics_.set_artifact(path,
                        next->from_manifest() ? next->manifest_crc32()
                                              : def.crc32_hex,
                        def.model->kind(), def.model->encoder_key(),
                        def.model->spec().name);
}

std::shared_ptr<const ModelFleet> PredictionServer::current_fleet() const {
  std::lock_guard<std::mutex> lock(fleet_mutex_);
  return fleet_;
}

std::shared_ptr<const ModelFleet> PredictionServer::fleet() const {
  return current_fleet();
}

std::shared_ptr<const TrainableSurrogate> PredictionServer::model() const {
  return current_fleet()->default_model().model;
}

void PredictionServer::serve(std::shared_ptr<Stream> stream) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (stopping()) {
    stream->close();
    return;
  }
  session_streams_.push_back(stream);
  session_threads_.emplace_back(
      [this, stream = std::move(stream)] { session_loop(stream); });
}

void PredictionServer::session_loop(std::shared_ptr<Stream> stream) {
  std::string line;
  while (stream->read_line(line)) {
    const Clock::time_point start = Clock::now();
    bool shutdown_requested = false;
    std::string response;
    try {
      response = handle_line(line, shutdown_requested);
    } catch (const std::exception& e) {
      // Backstop: no request, however malformed, may crash a session.
      response = format_error(kErrServerError, e.what());
    }
    stream->write_line(response);
    metrics_.record_latency_us(elapsed_us(start));
    if (shutdown_requested) {
      request_stop();
      break;
    }
  }
  stream->close();
}

std::string PredictionServer::handle_line(const std::string& line,
                                          bool& shutdown_requested) {
  // Blocking adapter over the async core: cache hits and control verbs
  // complete inline, misses resolve from the batcher thread; either way
  // the session thread waits here, exactly as it did pre-event-loop.
  std::promise<Reply> promise;
  std::future<Reply> future = promise.get_future();
  handle_request(split_request(line), line.size(),
                 [&promise](Reply&& reply) {
                   promise.set_value(std::move(reply));
                 });
  const Reply reply = future.get();
  shutdown_requested = reply.shutdown;
  return format_reply_esm1(reply);
}

void PredictionServer::handle_request(const ParsedRequest& request,
                                      std::size_t wire_bytes,
                                      ReplyCallback done) {
  try {
    dispatch_request(request, wire_bytes, done);
  } catch (const std::exception& e) {
    // Backstop: no request, however malformed, may take down its
    // transport. Handlers invoke `done` as their final action, so an
    // exception escaping here means `done` has not fired yet.
    if (done) done(error_reply(ErrorCode::server_error, e.what()));
  }
}

void PredictionServer::dispatch_request(const ParsedRequest& request,
                                        std::size_t wire_bytes,
                                        ReplyCallback& done) {
  const bool is_predict =
      request.verb == "predict" || request.verb == "predict_batch";

  if (wire_bytes > config_.max_line_bytes) {
    is_predict
        ? metrics_.count_predict_error(metrics_.model_section(
              kUnroutedSection))
        : metrics_.count_control_line(true);
    done(error_reply(ErrorCode::oversized,
                     "request of " + std::to_string(wire_bytes) +
                         " bytes exceeds the " +
                         std::to_string(config_.max_line_bytes) +
                         "-byte limit"));
    return;
  }

  if (request.verb == "predict") {
    if (request.payload.empty()) {
      metrics_.count_predict_error(metrics_.model_section(kUnroutedSection));
      done(error_reply(ErrorCode::bad_request,
                       "predict needs an architecture"));
      return;
    }
    handle_predict(request.payload, std::move(done));
    return;
  }
  if (request.verb == "predict_batch") {
    if (request.payload.empty()) {
      metrics_.count_predict_error(metrics_.model_section(kUnroutedSection));
      done(error_reply(ErrorCode::bad_request,
                       "predict_batch needs ';'-separated architectures"));
      return;
    }
    handle_predict_batch(request.payload, std::move(done));
    return;
  }
  if (request.verb == "info") {
    // `info` takes an optional model key; validation happens inside.
    done(handle_info(request.payload));
    return;
  }
  if (request.verb == "models" || request.verb == "stats" ||
      request.verb == "shutdown") {
    if (!request.payload.empty()) {
      metrics_.count_control_line(true);
      done(error_reply(ErrorCode::bad_request,
                       request.verb + " takes no payload"));
      return;
    }
    metrics_.count_control_line(false);
    if (request.verb == "models") {
      done(handle_models());
      return;
    }
    if (request.verb == "stats") {
      done(handle_stats());
      return;
    }
    Reply reply = ok_reply("shutdown", "draining");
    reply.shutdown = true;
    done(std::move(reply));
    return;
  }
  if (request.verb == "reload") {
    if (request.payload.empty()) {
      metrics_.count_control_line(true);
      done(error_reply(ErrorCode::bad_request,
                       "reload needs a manifest or artifact path"));
      return;
    }
    done(handle_reload(request.payload));
    return;
  }
  metrics_.count_control_line(true);
  if (request.verb.empty()) {
    done(error_reply(ErrorCode::bad_request, "empty request line"));
    return;
  }
  done(error_reply(ErrorCode::unknown_verb,
                   "unknown verb '" + request.verb +
                       "' (predict, predict_batch, info, models, stats, "
                       "reload, shutdown)"));
}

void PredictionServer::handle_predict(const std::string& payload,
                                      ReplyCallback done) {
  const RoutedPayload routed = split_model_key(payload);
  const std::shared_ptr<const ModelFleet> fleet = current_fleet();
  const FleetModel* model = routed.model.empty()
                                ? &fleet->default_model()
                                : fleet->find(routed.model);
  if (model == nullptr) {
    metrics_.count_predict_error(metrics_.model_section(kUnroutedSection));
    done(error_reply(ErrorCode::unknown_model,
                     "unknown model '" + routed.model +
                         "' (see the models verb)"));
    return;
  }
  ModelMetrics* section = metrics_.model_section(model->name);
  ArchConfig arch;
  try {
    arch = parse_arch_request(model->model->spec(), routed.rest);
  } catch (const ConfigError& e) {
    metrics_.count_predict_error(section);
    done(error_reply(ErrorCode::bad_arch, e.what()));
    return;
  }
  const std::string key =
      std::to_string(model->generation) + '|' + arch.to_string();
  if (const std::optional<double> hit = model->cache->get(key)) {
    metrics_.count_archs(1, 0, section);
    metrics_.count_predict_line(true, section);
    done(ok_reply("predict", format_latency(*hit)));
    return;
  }
  metrics_.count_archs(0, 1, section);
  enqueue(std::move(arch), std::shared_ptr<const FleetModel>(fleet, model),
          [this, section, key, cache = model->cache,
           done = std::move(done)](double value, std::exception_ptr error) {
            if (error == nullptr) {
              cache->put(key, value);
              metrics_.count_predict_line(false, section);
              done(ok_reply("predict", format_latency(value)));
              return;
            }
            metrics_.count_predict_error(section);
            try {
              std::rethrow_exception(error);
            } catch (const ConfigError& e) {
              done(error_reply(ErrorCode::bad_arch, e.what()));
            } catch (const std::exception& e) {
              done(error_reply(ErrorCode::server_error, e.what()));
            }
          });
}

void PredictionServer::handle_predict_batch(const std::string& payload,
                                            ReplyCallback done) {
  const RoutedPayload routed = split_model_key(payload);
  const std::shared_ptr<const ModelFleet> fleet = current_fleet();
  const FleetModel* model = routed.model.empty()
                                ? &fleet->default_model()
                                : fleet->find(routed.model);
  if (model == nullptr) {
    metrics_.count_predict_error(metrics_.model_section(kUnroutedSection));
    done(error_reply(ErrorCode::unknown_model,
                     "unknown model '" + routed.model +
                         "' (see the models verb)"));
    return;
  }
  ModelMetrics* section = metrics_.model_section(model->name);
  std::vector<ArchConfig> archs;
  try {
    archs = parse_arch_batch(model->model->spec(), routed.rest,
                             config_.max_batch_archs);
  } catch (const ConfigError& e) {
    metrics_.count_predict_error(section);
    done(error_reply(ErrorCode::bad_arch, e.what()));
    return;
  }

  // Join state shared by the per-miss completions. Each completion writes
  // its own slot, so the only cross-thread coordination is the remaining
  // counter (acq_rel: the finalizing thread observes every slot write) and
  // the error mutex.
  struct BatchJoin {
    std::vector<double> values;
    ModelMetrics* section = nullptr;
    std::shared_ptr<PredictionCache> cache;
    ReplyCallback done;
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
  };

  auto join = std::make_shared<BatchJoin>();
  join->values.assign(archs.size(), 0.0);
  join->section = section;
  join->cache = model->cache;
  join->done = std::move(done);

  struct Miss {
    std::size_t index;
    std::string key;
    ArchConfig arch;
  };
  std::vector<Miss> misses;
  std::uint64_t hit_count = 0;
  for (std::size_t i = 0; i < archs.size(); ++i) {
    std::string key =
        std::to_string(model->generation) + '|' + archs[i].to_string();
    if (const std::optional<double> hit = model->cache->get(key)) {
      join->values[i] = *hit;
      ++hit_count;
    } else {
      misses.push_back(Miss{i, std::move(key), std::move(archs[i])});
    }
  }
  metrics_.count_archs(hit_count, misses.size(), section);

  auto finalize = [this](BatchJoin& state) {
    if (state.first_error != nullptr) {
      metrics_.count_predict_error(state.section);
      try {
        std::rethrow_exception(state.first_error);
      } catch (const ConfigError& e) {
        state.done(error_reply(ErrorCode::bad_arch, e.what()));
      } catch (const std::exception& e) {
        state.done(error_reply(ErrorCode::server_error, e.what()));
      }
      return;
    }
    metrics_.count_predict_line(false, state.section);
    std::ostringstream os;
    os << state.values.size();
    for (double v : state.values) os << ' ' << format_latency(v);
    state.done(ok_reply("predict_batch", os.str()));
  };

  if (misses.empty()) {
    metrics_.count_predict_line(true, section);
    std::ostringstream os;
    os << join->values.size();
    for (double v : join->values) os << ' ' << format_latency(v);
    join->done(ok_reply("predict_batch", os.str()));
    return;
  }

  // The counter must reach its full value before any completion can fire,
  // so every miss is enqueued only after `remaining` is set.
  join->remaining.store(misses.size(), std::memory_order_relaxed);
  for (Miss& miss : misses) {
    enqueue(std::move(miss.arch),
            std::shared_ptr<const FleetModel>(fleet, model),
            [join, finalize, index = miss.index, key = std::move(miss.key)](
                double value, std::exception_ptr error) {
              if (error == nullptr) {
                join->values[index] = value;
                join->cache->put(key, value);
              } else {
                std::lock_guard<std::mutex> lock(join->error_mutex);
                if (join->first_error == nullptr) join->first_error = error;
              }
              if (join->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                  1) {
                finalize(*join);
              }
            });
  }
}

Reply PredictionServer::handle_info(const std::string& payload) {
  const std::shared_ptr<const ModelFleet> fleet = current_fleet();
  const FleetModel* model = nullptr;
  if (payload.empty()) {
    model = &fleet->default_model();
  } else {
    model = fleet->find(payload);
    if (model == nullptr) {
      metrics_.count_control_line(true);
      return error_reply(ErrorCode::unknown_model,
                         "unknown model '" + payload +
                             "' (see the models verb)");
    }
  }
  metrics_.count_control_line(false);
  const MetricsSnapshot snap = metrics_.snapshot();
  std::ostringstream os;
  os << "proto=1 model=" << model->name << " kind=" << model->model->kind()
     << " encoder=" << model->model->encoder_key()
     << " space=" << model->model->spec().name
     << " generation=" << model->generation
     << " models=" << fleet->models().size()
     << " default=" << fleet->default_model().name
     << " reloads=" << snap.reloads
     << " cache_capacity=" << config_.cache_capacity
     << " artifact_crc32=" << model->crc32_hex
     << " artifact=" << model->artifact_path;
  if (fleet->from_manifest()) {
    os << " manifest_crc32=" << fleet->manifest_crc32()
       << " manifest=" << fleet->source_path();
  }
  return ok_reply("info", os.str());
}

Reply PredictionServer::handle_models() {
  const std::shared_ptr<const ModelFleet> fleet = current_fleet();
  std::ostringstream os;
  for (std::size_t i = 0; i < fleet->models().size(); ++i) {
    if (i > 0) os << ' ';
    os << fleet->models()[i].name;
  }
  return ok_reply("models", os.str());
}

Reply PredictionServer::handle_stats() {
  const std::shared_ptr<const ModelFleet> fleet = current_fleet();
  std::size_t cache_size = 0;
  for (const FleetModel& model : fleet->models()) {
    cache_size += model.cache->size();
  }
  std::string payload = ServerMetrics::stats_payload(metrics_.snapshot());
  payload += " models=" + std::to_string(fleet->models().size()) +
             " cache_size=" + std::to_string(cache_size) +
             " cache_capacity=" + std::to_string(config_.cache_capacity);
  return ok_reply("stats", payload);
}

Reply PredictionServer::handle_reload(const std::string& path) {
  try {
    install_source(path);
  } catch (const std::exception& e) {
    // The old fleet keeps serving; install_source swaps only after every
    // entry of the new fleet loaded (all-or-nothing).
    metrics_.count_control_line(true);
    return error_reply(ErrorCode::reload_failed, e.what());
  }
  metrics_.count_control_line(false);
  metrics_.count_reload();
  const std::shared_ptr<const ModelFleet> fleet = current_fleet();
  const FleetModel& def = fleet->default_model();
  return ok_reply("reload",
                  "models=" + std::to_string(fleet->models().size()) +
                      " default=" + def.name + " generation=" +
                      std::to_string(def.generation) + " source=" + path);
}

void PredictionServer::enqueue(
    ArchConfig arch, std::shared_ptr<const FleetModel> model,
    std::function<void(double, std::exception_ptr)> done) {
  Pending pending;
  pending.arch = std::move(arch);
  pending.model = std::move(model);
  pending.done = std::move(done);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
}

void PredictionServer::batcher_loop() {
  for (;;) {
    std::vector<Pending> drained;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || batcher_stop_; });
      if (queue_.empty()) return;  // stop requested and queue drained
      // Everything that accumulated while the previous round was in
      // flight coalesces into this round (bounded by max_batch).
      const std::size_t n = std::min(queue_.size(), config_.max_batch);
      drained.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        drained.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // Group by model: each group is one predict_all dispatch against the
    // model instance the requests were routed to. Entries keep their fleet
    // snapshot alive, so a concurrent reload never invalidates a group.
    std::vector<std::pair<const FleetModel*, std::vector<std::size_t>>>
        groups;
    for (std::size_t i = 0; i < drained.size(); ++i) {
      const FleetModel* key = drained[i].model.get();
      bool found = false;
      for (auto& group : groups) {
        if (group.first == key) {
          group.second.push_back(i);
          found = true;
          break;
        }
      }
      if (!found) groups.push_back({key, {i}});
    }
    for (const auto& [model, indices] : groups) {
      std::vector<ArchConfig> archs;
      archs.reserve(indices.size());
      for (std::size_t i : indices) archs.push_back(drained[i].arch);
      metrics_.count_batch(indices.size());
      try {
        const std::vector<double> values = model->model->predict_all(archs);
        for (std::size_t k = 0; k < indices.size(); ++k) {
          drained[indices[k]].done(values[k], nullptr);
        }
      } catch (...) {
        // Per-arch fallback: one failing architecture (e.g. a layer a
        // device-less LUT never profiled) must not poison the coalesced
        // requests of other clients.
        for (std::size_t i : indices) {
          Pending& p = drained[i];
          double value = 0.0;
          std::exception_ptr error;
          try {
            value = model->model->predict_ms(p.arch);
          } catch (...) {
            error = std::current_exception();
          }
          p.done(value, error);
        }
      }
    }
  }
}

void PredictionServer::summary_loop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  const auto period = std::chrono::duration<double>(config_.summary_period_s);
  while (!stop_requested_) {
    stop_cv_.wait_for(lock, period, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    std::fprintf(stderr, "%s\n",
                 ServerMetrics::summary_line(metrics_.snapshot()).c_str());
    lock.lock();
  }
}

bool PredictionServer::stopping() const {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  return stop_requested_;
}

void PredictionServer::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  // Closing unblocks session readers; lines already queued are still
  // delivered and answered before the sessions exit (drain semantics).
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (const std::shared_ptr<Stream>& stream : session_streams_) {
    stream->close();
  }
}

void PredictionServer::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] { return stop_requested_; });
    if (joined_) return;
    if (joining_) {
      stop_cv_.wait(lock, [this] { return joined_; });
      return;
    }
    joining_ = true;
  }
  // Sessions first: they may still be waiting on the batcher for queued
  // predictions, so the batcher must outlive them.
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(session_threads_);
  }
  for (std::thread& t : sessions) t.join();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    batcher_stop_ = true;
  }
  queue_cv_.notify_all();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  if (summary_thread_.joinable()) summary_thread_.join();
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    joined_ = true;
  }
  stop_cv_.notify_all();
}

}  // namespace esm::serve
