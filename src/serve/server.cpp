#include "serve/server.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "surrogate/registry.hpp"

namespace esm::serve {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

}  // namespace

PredictionServer::PredictionServer(ServeConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity, config_.cache_shards) {
  // Throws before any thread starts when the artifact is unreadable, so a
  // failed construction needs no teardown.
  install_artifact(config_.artifact_path);
  batcher_thread_ = std::thread([this] { batcher_loop(); });
  if (config_.summary_period_s > 0.0) {
    summary_thread_ = std::thread([this] { summary_loop(); });
  }
}

PredictionServer::~PredictionServer() {
  request_stop();
  wait();
}

void PredictionServer::install_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ESM_REQUIRE(in.good(), "cannot open artifact: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  // One read serves both integrity identity and parsing: the CRC32 below is
  // the artifact's identity in info/stats, and load_surrogate parses the
  // same buffer instead of re-reading the file.
  std::shared_ptr<const TrainableSurrogate> model =
      load_surrogate(path, bytes);
  const std::string kind = model->kind();
  const std::string encoder = model->encoder_key();
  const std::string space = model->spec().name;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    model_ = std::move(model);
    ++model_generation_;
  }
  // Clearing after the swap: entries written for a superseded generation
  // are unreachable anyway (keys carry the generation), this just frees
  // them eagerly.
  cache_.clear();
  metrics_.set_artifact(path, crc32_hex(crc32(bytes)), kind, encoder, space);
}

PredictionServer::ModelRef PredictionServer::current_model() const {
  std::lock_guard<std::mutex> lock(model_mutex_);
  return ModelRef{model_, model_generation_};
}

std::shared_ptr<const TrainableSurrogate> PredictionServer::model() const {
  return current_model().model;
}

void PredictionServer::serve(std::shared_ptr<Stream> stream) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (stopping()) {
    stream->close();
    return;
  }
  session_streams_.push_back(stream);
  session_threads_.emplace_back(
      [this, stream = std::move(stream)] { session_loop(stream); });
}

void PredictionServer::session_loop(std::shared_ptr<Stream> stream) {
  std::string line;
  while (stream->read_line(line)) {
    const Clock::time_point start = Clock::now();
    bool shutdown_requested = false;
    std::string response;
    try {
      response = handle_line(line, shutdown_requested);
    } catch (const std::exception& e) {
      // Backstop: no request, however malformed, may crash a session.
      response = format_error(kErrServerError, e.what());
    }
    stream->write_line(response);
    metrics_.record_latency_us(elapsed_us(start));
    if (shutdown_requested) {
      request_stop();
      break;
    }
  }
  stream->close();
}

std::string PredictionServer::handle_line(const std::string& line,
                                          bool& shutdown_requested) {
  const ParsedRequest request = split_request(line);
  const bool is_predict =
      request.verb == "predict" || request.verb == "predict_batch";

  if (line.size() > config_.max_line_bytes) {
    is_predict ? metrics_.count_predict_error()
               : metrics_.count_control_line(true);
    return format_error(kErrOversized,
                        "request of " + std::to_string(line.size()) +
                            " bytes exceeds the " +
                            std::to_string(config_.max_line_bytes) +
                            "-byte limit");
  }

  if (request.verb == "predict") {
    if (request.payload.empty()) {
      metrics_.count_predict_error();
      return format_error(kErrBadRequest, "predict needs an architecture");
    }
    return handle_predict(request.payload);
  }
  if (request.verb == "predict_batch") {
    if (request.payload.empty()) {
      metrics_.count_predict_error();
      return format_error(kErrBadRequest,
                          "predict_batch needs ';'-separated architectures");
    }
    return handle_predict_batch(request.payload);
  }
  if (request.verb == "info" || request.verb == "stats" ||
      request.verb == "shutdown") {
    if (!request.payload.empty()) {
      metrics_.count_control_line(true);
      return format_error(kErrBadRequest,
                          request.verb + " takes no payload");
    }
    metrics_.count_control_line(false);
    if (request.verb == "info") return handle_info();
    if (request.verb == "stats") return handle_stats();
    shutdown_requested = true;
    return format_ok("shutdown", "draining");
  }
  if (request.verb == "reload") {
    if (request.payload.empty()) {
      metrics_.count_control_line(true);
      return format_error(kErrBadRequest, "reload needs an artifact path");
    }
    return handle_reload(request.payload);
  }
  metrics_.count_control_line(true);
  if (request.verb.empty()) {
    return format_error(kErrBadRequest, "empty request line");
  }
  return format_error(kErrUnknownVerb,
                      "unknown verb '" + request.verb +
                          "' (predict, predict_batch, info, stats, reload, "
                          "shutdown)");
}

std::string PredictionServer::handle_predict(const std::string& payload) {
  const ModelRef ref = current_model();
  ArchConfig arch;
  try {
    arch = parse_arch_request(ref.model->spec(), payload);
  } catch (const ConfigError& e) {
    metrics_.count_predict_error();
    return format_error(kErrBadArch, e.what());
  }
  const std::string key =
      std::to_string(ref.generation) + '|' + arch.to_string();
  if (const std::optional<double> hit = cache_.get(key)) {
    metrics_.count_archs(1, 0);
    metrics_.count_predict_line(true);
    return format_ok("predict", format_latency(*hit));
  }
  std::future<double> pending = enqueue(std::move(arch));
  metrics_.count_archs(0, 1);
  try {
    const double value = pending.get();
    cache_.put(key, value);
    metrics_.count_predict_line(false);
    return format_ok("predict", format_latency(value));
  } catch (const ConfigError& e) {
    metrics_.count_predict_error();
    return format_error(kErrBadArch, e.what());
  } catch (const std::exception& e) {
    metrics_.count_predict_error();
    return format_error(kErrServerError, e.what());
  }
}

std::string PredictionServer::handle_predict_batch(
    const std::string& payload) {
  const ModelRef ref = current_model();
  std::vector<ArchConfig> archs;
  try {
    archs = parse_arch_batch(ref.model->spec(), payload,
                             config_.max_batch_archs);
  } catch (const ConfigError& e) {
    metrics_.count_predict_error();
    return format_error(kErrBadArch, e.what());
  }

  struct Miss {
    std::size_t index;
    std::string key;
    std::future<double> value;
  };
  std::vector<double> values(archs.size(), 0.0);
  std::vector<Miss> misses;
  std::uint64_t hit_count = 0;
  for (std::size_t i = 0; i < archs.size(); ++i) {
    std::string key =
        std::to_string(ref.generation) + '|' + archs[i].to_string();
    if (const std::optional<double> hit = cache_.get(key)) {
      values[i] = *hit;
      ++hit_count;
    } else {
      misses.push_back(Miss{i, std::move(key), enqueue(archs[i])});
    }
  }
  metrics_.count_archs(hit_count, misses.size());
  try {
    for (Miss& miss : misses) {
      values[miss.index] = miss.value.get();
      cache_.put(miss.key, values[miss.index]);
    }
  } catch (const ConfigError& e) {
    metrics_.count_predict_error();
    return format_error(kErrBadArch, e.what());
  } catch (const std::exception& e) {
    metrics_.count_predict_error();
    return format_error(kErrServerError, e.what());
  }
  metrics_.count_predict_line(misses.empty());

  std::ostringstream os;
  os << values.size();
  for (double v : values) os << ' ' << format_latency(v);
  return format_ok("predict_batch", os.str());
}

std::string PredictionServer::handle_info() {
  const ModelRef ref = current_model();
  const MetricsSnapshot snap = metrics_.snapshot();
  std::ostringstream os;
  os << "proto=1 kind=" << ref.model->kind()
     << " encoder=" << ref.model->encoder_key()
     << " space=" << ref.model->spec().name
     << " generation=" << ref.generation << " reloads=" << snap.reloads
     << " cache_capacity=" << cache_.capacity()
     << " artifact_crc32=" << snap.artifact_crc32
     << " artifact=" << snap.artifact;
  return format_ok("info", os.str());
}

std::string PredictionServer::handle_stats() {
  std::string payload = ServerMetrics::stats_payload(metrics_.snapshot());
  payload += " cache_size=" + std::to_string(cache_.size()) +
             " cache_capacity=" + std::to_string(cache_.capacity());
  return format_ok("stats", payload);
}

std::string PredictionServer::handle_reload(const std::string& path) {
  try {
    install_artifact(path);
  } catch (const std::exception& e) {
    // The old model keeps serving; install_artifact swaps only on success.
    metrics_.count_control_line(true);
    return format_error(kErrReloadFailed, e.what());
  }
  metrics_.count_control_line(false);
  metrics_.count_reload();
  const ModelRef ref = current_model();
  return format_ok("reload", "kind=" + ref.model->kind() +
                                 " generation=" +
                                 std::to_string(ref.generation) +
                                 " artifact=" + path);
}

std::future<double> PredictionServer::enqueue(ArchConfig arch) {
  Pending pending;
  pending.arch = std::move(arch);
  std::future<double> result = pending.result.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return result;
}

void PredictionServer::batcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || batcher_stop_; });
      if (queue_.empty()) return;  // stop requested and queue drained
      // Everything that accumulated while the previous batch was in
      // flight coalesces into this dispatch (bounded by max_batch).
      const std::size_t n = std::min(queue_.size(), config_.max_batch);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // Snapshot per dispatch: a concurrent reload swaps the pointer for the
    // NEXT batch; requests already dispatched finish on this model.
    const ModelRef ref = current_model();
    std::vector<ArchConfig> archs;
    archs.reserve(batch.size());
    for (const Pending& p : batch) archs.push_back(p.arch);
    metrics_.count_batch(batch.size());
    try {
      const std::vector<double> values = ref.model->predict_all(archs);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].result.set_value(values[i]);
      }
    } catch (...) {
      // Per-arch fallback: one failing architecture (e.g. a layer a
      // device-less LUT never profiled) must not poison the coalesced
      // requests of other clients.
      for (Pending& p : batch) {
        try {
          p.result.set_value(ref.model->predict_ms(p.arch));
        } catch (...) {
          p.result.set_exception(std::current_exception());
        }
      }
    }
  }
}

void PredictionServer::summary_loop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  const auto period = std::chrono::duration<double>(config_.summary_period_s);
  while (!stop_requested_) {
    stop_cv_.wait_for(lock, period, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    std::fprintf(stderr, "%s\n",
                 ServerMetrics::summary_line(metrics_.snapshot()).c_str());
    lock.lock();
  }
}

bool PredictionServer::stopping() const {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  return stop_requested_;
}

void PredictionServer::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  // Closing unblocks session readers; lines already queued are still
  // delivered and answered before the sessions exit (drain semantics).
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (const std::shared_ptr<Stream>& stream : session_streams_) {
    stream->close();
  }
}

void PredictionServer::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] { return stop_requested_; });
    if (joined_) return;
    if (joining_) {
      stop_cv_.wait(lock, [this] { return joined_; });
      return;
    }
    joining_ = true;
  }
  // Sessions first: they may still be waiting on the batcher for queued
  // predictions, so the batcher must outlive them.
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(session_threads_);
  }
  for (std::thread& t : sessions) t.join();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    batcher_stop_ = true;
  }
  queue_cv_.notify_all();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  if (summary_thread_.joinable()) summary_thread_.join();
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    joined_ = true;
  }
  stop_cv_.notify_all();
}

}  // namespace esm::serve
