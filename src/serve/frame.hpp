// `esm2` — the length-prefixed binary frame protocol.
//
// esm1 (newline-delimited text) stays the protocol for humans and the CLI;
// esm2 is the opt-in machine protocol for high-throughput clients: fixed
// header with an explicit payload length (no newline scan, the parser
// never touches payload bytes until the whole frame arrived), a CRC32
// guarding the entire frame, and an explicit request id so a client can
// pipeline many requests on one connection and match responses that
// complete out of order.
//
// Both protocols share one port: the server sniffs the first byte of a
// connection — 0xE5 (the esm2 magic, outside ASCII so no esm1 line can
// begin with it) selects esm2, anything else selects esm1. A connection
// never switches protocols after the first byte.
//
// Frame layout (all integers little-endian):
//
//   offset 0   u8   magic0 = 0xE5
//   offset 1   u8   magic1 = 0x32  ('2')
//   offset 2   u8   version = 1
//   offset 3   u8   verb
//   offset 4   u64  request_id (echoed verbatim in the response)
//   offset 12  u32  payload_len
//   offset 16  u32  crc32 over bytes [0,16) ++ payload (IEEE, seed 0)
//   offset 20  payload_len bytes of payload
//
// Request verbs are the esm1 verbs (FrameVerb below); payloads carry the
// exact esm1 payload text (same arch grammar, same optional model key), so
// the two protocols answer bit-identically. Response frames echo the
// request id; an ok response's verb byte is `0x80 | request_verb` and its
// payload is the esm1 ok payload text. An error response's verb byte is
// 0xFF and its payload is one ErrorCode byte followed by the
// human-readable detail text — the same ErrorCode space esm1 spells as
// string tokens (serve/error.hpp).
//
// A malformed frame (bad magic, bad version, CRC mismatch, declared
// length over the cap) is unrecoverable: past a corrupt header there is no
// way to resynchronize on frame boundaries, so the server answers one
// final error frame (request id 0, ErrorCode::bad_frame) and closes the
// connection. Truncated frames simply wait for more bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace esm::serve {

inline constexpr unsigned char kFrameMagic0 = 0xE5;
inline constexpr unsigned char kFrameMagic1 = 0x32;
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;

/// Verb byte of a request frame. Values are wire format — never renumber.
enum class FrameVerb : std::uint8_t {
  predict = 1,
  predict_batch = 2,
  info = 3,
  models = 4,
  stats = 5,
  reload = 6,
  shutdown = 7,
};

/// Set on an ok-response verb byte (0x80 | request verb).
inline constexpr std::uint8_t kFrameResponseBit = 0x80;
/// The whole verb byte of an error response.
inline constexpr std::uint8_t kFrameErrorVerb = 0xFF;

/// esm1 verb text for a request verb byte, or "" for an unknown byte.
std::string_view frame_verb_name(std::uint8_t verb);

/// Request verb byte for esm1 verb text; false when `name` is no verb.
bool parse_frame_verb(std::string_view name, FrameVerb& out);

/// One decoded frame (request or response — the verb byte tells).
struct Frame {
  std::uint64_t request_id = 0;
  std::uint8_t verb = 0;
  std::string payload;
};

/// Encodes one frame (header + CRC + payload) ready to write to the wire.
std::string encode_frame(std::uint64_t request_id, std::uint8_t verb,
                         std::string_view payload);

/// Convenience encoders for the three frame shapes.
std::string encode_request(std::uint64_t request_id, FrameVerb verb,
                           std::string_view payload);
std::string encode_ok_response(std::uint64_t request_id,
                               std::uint8_t request_verb,
                               std::string_view payload);
std::string encode_error_response(std::uint64_t request_id, std::uint8_t code,
                                  std::string_view detail);

/// Splits an error-response payload into its code byte and detail text.
/// False when the payload is empty (no code byte).
bool split_error_payload(std::string_view payload, std::uint8_t& code,
                         std::string_view& detail);

enum class FrameParse {
  need_more,  ///< the buffer holds a prefix of a valid frame; read on
  ok,         ///< one frame decoded and consumed from the buffer
  bad,        ///< unrecoverable framing error; close the connection
};

/// Tries to decode one frame from the head of `buffer`. On `ok` the frame
/// is consumed (erased from the buffer head) so the call can be repeated
/// to drain pipelined frames. On `bad`, `error` describes the violation
/// (bad magic / unsupported version / oversized / CRC mismatch) and the
/// buffer is left untouched. `max_payload` bounds the declared payload
/// length; anything larger is `bad` before a single payload byte is
/// buffered, so a hostile length prefix cannot balloon memory.
FrameParse parse_frame(std::string& buffer, Frame& out, std::string& error,
                       std::size_t max_payload);

}  // namespace esm::serve
