// Long-running prediction server: loads any `.esm` artifact through the
// surrogate registry, admits concurrent client sessions over any Stream
// transport, coalesces pending single predictions into batches dispatched
// through predict_all (and so the shared thread pool), answers repeats from
// a sharded LRU cache, hot-swaps artifacts on `reload` between batches, and
// drains in-flight requests before stopping.
//
// Threading model:
//   - serve(stream) spawns one session thread per client; it reads request
//     lines, resolves cache hits inline, and parks misses on the shared
//     pending queue behind a per-request promise.
//   - one batcher thread drains the pending queue: whatever accumulated
//     while the previous batch was in flight becomes the next predict_all
//     dispatch (capped at ServeConfig::max_batch), so concurrent singles
//     from different clients coalesce automatically with no timer.
//   - `reload` swaps the model shared_ptr under a mutex and clears the
//     cache; the batcher snapshots the pointer per dispatch, so requests
//     already dispatched finish on the old model. Cache keys carry the
//     model generation, so entries written by a superseded generation are
//     never served to requests issued after the swap.
//   - request_stop()/wait() drain: session streams are closed, sessions
//     answer every request already on the wire, the batcher finishes the
//     queue, then every thread is joined. No request that was read is
//     dropped.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "surrogate/trainable.hpp"

namespace esm::serve {

struct ServeConfig {
  std::string artifact_path;            ///< loaded at construction
  std::size_t cache_capacity = 4096;    ///< 0 disables the cache
  std::size_t cache_shards = 8;
  std::size_t max_line_bytes = 64 * 1024;  ///< longer request lines error
  std::size_t max_batch = 64;           ///< archs per predict_all dispatch
  std::size_t max_batch_archs = 1024;   ///< archs per predict_batch request
  double summary_period_s = 0.0;        ///< >0: periodic stderr summary
};

class PredictionServer {
 public:
  /// Loads the artifact (single read: identity CRC32 + parse share the
  /// buffer) and starts the batcher. Throws esm::ConfigError when the
  /// artifact cannot be loaded.
  explicit PredictionServer(ServeConfig config);

  /// Stops and joins everything (equivalent to request_stop() + wait()).
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Admits one client: spawns a session thread that serves `stream` until
  /// the stream ends or the server drains.
  void serve(std::shared_ptr<Stream> stream);

  /// Begins the drain: no new sessions are admitted, session streams are
  /// closed (requests already on the wire still get answers), and wait()
  /// unblocks once everything finished. Idempotent, callable from any
  /// thread including a session thread (the `shutdown` verb routes here).
  void request_stop();

  /// Blocks until a stop was requested and every session, the batcher, and
  /// the summary thread have been joined.
  void wait();

  /// True once a stop was requested (drain begun).
  bool stopping() const;

  MetricsSnapshot metrics() const { return metrics_.snapshot(); }

  /// The currently served model (snapshot; reload may swap it right after).
  std::shared_ptr<const TrainableSurrogate> model() const;

 private:
  struct Pending {
    ArchConfig arch;
    std::promise<double> result;
  };

  /// Model pointer plus its reload generation, snapshotted together.
  struct ModelRef {
    std::shared_ptr<const TrainableSurrogate> model;
    std::uint64_t generation = 0;
  };

  ModelRef current_model() const;

  /// Handles one request line; returns the response line and sets
  /// `shutdown_requested` for the `shutdown` verb.
  std::string handle_line(const std::string& line, bool& shutdown_requested);

  std::string handle_predict(const std::string& payload);
  std::string handle_predict_batch(const std::string& payload);
  std::string handle_info();
  std::string handle_stats();
  std::string handle_reload(const std::string& path);

  /// Queues one architecture for the batcher; the future resolves with the
  /// prediction (or rethrows the per-arch failure).
  std::future<double> enqueue(ArchConfig arch);

  void session_loop(std::shared_ptr<Stream> stream);
  void batcher_loop();
  void summary_loop();

  /// Loads `path` once from disk and installs it as the served model
  /// (construction and reload share this).
  void install_artifact(const std::string& path);

  ServeConfig config_;
  ServerMetrics metrics_;
  PredictionCache cache_;

  mutable std::mutex model_mutex_;
  std::shared_ptr<const TrainableSurrogate> model_;
  std::uint64_t model_generation_ = 0;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool batcher_stop_ = false;

  std::mutex sessions_mutex_;
  std::vector<std::thread> session_threads_;
  std::vector<std::shared_ptr<Stream>> session_streams_;

  mutable std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool joining_ = false;
  bool joined_ = false;

  std::thread batcher_thread_;
  std::thread summary_thread_;
};

}  // namespace esm::serve
