// Long-running prediction server over a fleet of named models: loads a
// fleet manifest (or a single `.esm` artifact, served as a one-model fleet
// named "default"), admits concurrent client sessions over any Stream
// transport, routes each request to a model by its optional key, coalesces
// pending predictions into per-model batches dispatched through
// predict_all (and so the shared thread pool), answers repeats from each
// model's own sharded LRU cache, hot-swaps the whole fleet on `reload`
// between batches, and drains in-flight requests before stopping.
//
// Threading model:
//   - handle_request() is the transport-agnostic core: any front end hands
//     it a split request plus a completion callback. Cache hits, control
//     verbs, and errors complete inline on the calling thread; predictions
//     that miss park on the shared pending queue and complete from the
//     batcher thread. The thread-per-session esm1 path blocks on that
//     callback (handle_line); the epoll event loop (serve/event_loop.hpp)
//     instead posts completions back to its reactor, so thousands of
//     connections share one I/O thread.
//   - serve(stream) spawns one session thread per client; it reads request
//     lines, routes them to a fleet model, resolves cache hits inline, and
//     parks misses on the shared pending queue behind the completion
//     callback.
//   - one batcher thread drains the pending queue: whatever accumulated
//     while the previous dispatch was in flight is grouped by model and
//     each group becomes one predict_all dispatch (the drain is capped at
//     ServeConfig::max_batch), so concurrent singles from different
//     clients coalesce automatically with no timer.
//   - `reload` builds the next fleet completely — every manifest entry
//     read, CRC-checked, and parsed — before swapping one shared_ptr under
//     a mutex; any failure keeps the old fleet serving (all-or-nothing).
//     Queue entries carry their model's shared_ptr, so requests already
//     routed finish on the fleet they were routed against. Each model's
//     cache travels with it: an unchanged entry (same name, same artifact
//     CRC) keeps its warm cache across the swap, while replaced models get
//     a fresh generation and an empty cache.
//   - request_stop()/wait() drain: session streams are closed, sessions
//     answer every request already on the wire, the batcher finishes the
//     queue, then every thread is joined. No request that was read is
//     dropped.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/fleet.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "surrogate/trainable.hpp"

namespace esm::serve {

/// Invoked exactly once with the outcome of one request handled through
/// PredictionServer::handle_request — inline on the calling thread for
/// cache hits, control verbs, and errors, or from the batcher thread for
/// predictions that had to be computed. Must not throw.
using ReplyCallback = std::function<void(Reply&&)>;

struct ServeConfig {
  /// Loaded at construction: a fleet manifest (first line "esm-fleet v1")
  /// or a bare surrogate artifact, distinguished by content.
  std::string artifact_path;
  std::size_t cache_capacity = 4096;    ///< per model; 0 disables caching
  std::size_t cache_shards = 8;
  std::size_t max_line_bytes = 64 * 1024;  ///< longer request lines error
  std::size_t max_batch = 64;           ///< pending drained per dispatch round
  std::size_t max_batch_archs = 1024;   ///< archs per predict_batch request
  double summary_period_s = 0.0;        ///< >0: periodic stderr summary
};

class PredictionServer {
 public:
  /// Loads the fleet (each artifact read once: identity CRC32 + parse
  /// share the buffer) and starts the batcher. Throws esm::ConfigError
  /// when the manifest or any artifact cannot be loaded.
  explicit PredictionServer(ServeConfig config);

  /// Stops and joins everything (equivalent to request_stop() + wait()).
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Admits one client: spawns a session thread that serves `stream` until
  /// the stream ends or the server drains.
  void serve(std::shared_ptr<Stream> stream);

  /// Begins the drain: no new sessions are admitted, session streams are
  /// closed (requests already on the wire still get answers), and wait()
  /// unblocks once everything finished. Idempotent, callable from any
  /// thread including a session thread (the `shutdown` verb routes here).
  void request_stop();

  /// Blocks until a stop was requested and every session, the batcher, and
  /// the summary thread have been joined.
  void wait();

  /// True once a stop was requested (drain begun).
  bool stopping() const;

  MetricsSnapshot metrics() const { return metrics_.snapshot(); }

  /// The configuration the server was constructed with (front ends read
  /// the line/batch limits from here).
  const ServeConfig& config() const { return config_; }

  /// The live metrics sink, for front ends (the event loop) that record
  /// their own service latency and connection counters.
  ServerMetrics& metrics_sink() { return metrics_; }

  /// The currently served fleet (snapshot; reload may swap it right after).
  std::shared_ptr<const ModelFleet> fleet() const;

  /// The current default model's surrogate (single-artifact convenience).
  std::shared_ptr<const TrainableSurrogate> model() const;

  /// Handles one already-split request, transport- and framing-agnostic:
  /// the esm1 session path and the esm2 event loop both route here.
  /// `wire_bytes` is the request's on-the-wire size (line or frame payload
  /// length), used for the oversized check. `done` fires exactly once —
  /// inline for cache hits, control verbs, and errors; from the batcher
  /// thread for predictions that miss — and never throws out of this call:
  /// unexpected handler exceptions become server_error replies.
  void handle_request(const ParsedRequest& request, std::size_t wire_bytes,
                      ReplyCallback done);

  /// Blocking convenience over handle_request: handles one request line
  /// and returns the rendered esm1 response; sets `shutdown_requested` for
  /// the `shutdown` verb. (The thread-per-session transport runs on this.)
  std::string handle_line(const std::string& line, bool& shutdown_requested);

 private:
  /// One prediction waiting for the batcher. `done` is invoked from the
  /// batcher thread with the value, or with the per-arch failure.
  struct Pending {
    ArchConfig arch;
    /// Aliased into the fleet snapshot the request was routed against;
    /// keeps that fleet (and its caches) alive until `done` resolves.
    std::shared_ptr<const FleetModel> model;
    std::function<void(double value, std::exception_ptr error)> done;
  };

  std::shared_ptr<const ModelFleet> current_fleet() const;

  void dispatch_request(const ParsedRequest& request, std::size_t wire_bytes,
                        ReplyCallback& done);

  void handle_predict(const std::string& payload, ReplyCallback done);
  void handle_predict_batch(const std::string& payload, ReplyCallback done);
  Reply handle_info(const std::string& payload);
  Reply handle_models();
  Reply handle_stats();
  Reply handle_reload(const std::string& path);

  /// Queues one architecture for the batcher against `model`; `done` is
  /// invoked from the batcher thread.
  void enqueue(ArchConfig arch, std::shared_ptr<const FleetModel> model,
               std::function<void(double, std::exception_ptr)> done);

  void session_loop(std::shared_ptr<Stream> stream);
  void batcher_loop();
  void summary_loop();

  /// Loads the manifest-or-artifact at `path` into a complete fleet and
  /// swaps it in (construction and reload share this). Serialized so
  /// concurrent reloads cannot interleave generation assignment.
  void install_source(const std::string& path);

  ServeConfig config_;
  ServerMetrics metrics_;

  mutable std::mutex fleet_mutex_;
  std::shared_ptr<const ModelFleet> fleet_;

  /// Monotone over every model instance ever loaded; guarded by
  /// install_mutex_ (only install_source touches it).
  std::mutex install_mutex_;
  std::uint64_t generation_counter_ = 0;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool batcher_stop_ = false;

  std::mutex sessions_mutex_;
  std::vector<std::thread> session_threads_;
  std::vector<std::shared_ptr<Stream>> session_streams_;

  mutable std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool joining_ = false;
  bool joined_ = false;

  std::thread batcher_thread_;
  std::thread summary_thread_;
};

}  // namespace esm::serve
