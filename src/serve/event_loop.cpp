#include "serve/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/error.hpp"
#include "serve/frame.hpp"

namespace esm::serve {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

/// Readiness backend: epoll when the kernel provides it, poll otherwise.
/// Only real fds register here — the TCP sockets, the listeners, and the
/// self-pipe. Fd-less loopback connections never touch the poller.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  virtual ~Poller() = default;
  virtual void add(int fd, bool want_read, bool want_write) = 0;
  virtual void update(int fd, bool want_read, bool want_write) = 0;
  virtual void remove(int fd) = 0;
  virtual void wait(std::vector<Event>& out, int timeout_ms) = 0;
};

class PollPoller final : public Poller {
 public:
  void add(int fd, bool want_read, bool want_write) override {
    update(fd, want_read, want_write);
  }

  void update(int fd, bool want_read, bool want_write) override {
    short events = 0;
    if (want_read) events |= POLLIN;
    if (want_write) events |= POLLOUT;
    interest_[fd] = events;
  }

  void remove(int fd) override { interest_.erase(fd); }

  void wait(std::vector<Event>& out, int timeout_ms) override {
    fds_.clear();
    for (const auto& [fd, events] : interest_) {
      fds_.push_back(pollfd{fd, events, 0});
    }
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      out.push_back(e);
    }
  }

 private:
  std::map<int, short> interest_;
  std::vector<pollfd> fds_;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  explicit EpollPoller(int epfd) : epfd_(epfd) {}
  ~EpollPoller() override { ::close(epfd_); }

  void add(int fd, bool want_read, bool want_write) override {
    epoll_event ev = make_event(fd, want_read, want_write);
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }

  void update(int fd, bool want_read, bool want_write) override {
    epoll_event ev = make_event(fd, want_read, want_write);
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  void wait(std::vector<Event>& out, int timeout_ms) override {
    epoll_event events[256];
    const int n = ::epoll_wait(epfd_, events, 256, timeout_ms);
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      out.push_back(e);
    }
  }

 private:
  static epoll_event make_event(int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    return ev;
  }

  int epfd_;
};
#endif

std::unique_ptr<Poller> make_poller(bool force_poll, std::string* backend) {
#ifdef __linux__
  if (!force_poll) {
    const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd >= 0) {
      *backend = "epoll";
      return std::make_unique<EpollPoller>(epfd);
    }
  }
#endif
  (void)force_poll;
  *backend = "poll";
  return std::make_unique<PollPoller>();
}

enum class Proto { unknown, esm1, esm2 };

/// Why a connection went away — decides the accepted/closed/dropped stats.
enum class CloseKind { graceful, dropped };

struct Conn {
  std::uint64_t id = 0;
  std::shared_ptr<Connection> io;
  int fd = -1;  ///< io->poll_fd() at registration; -1 for loopback
  Proto proto = Proto::unknown;

  std::string in;               ///< unparsed request bytes
  std::deque<std::string> out;  ///< responses waiting for the wire
  std::size_t out_offset = 0;   ///< written bytes of out.front()
  std::size_t out_bytes = 0;    ///< total buffered output

  /// esm1 responses leave in request order: completions out of that order
  /// wait in `held` until every earlier sequence number has been written.
  std::uint64_t next_seq = 0;
  std::uint64_t next_emit = 0;
  std::map<std::uint64_t, std::string> held;

  std::size_t inflight = 0;  ///< requests submitted, completion pending
  bool paused = false;       ///< backpressure: reading suspended
  bool closing = false;      ///< drain: answer what's in flight, then close
  bool read_shut = false;    ///< no further reads (EOF, framing error)
  bool want_write = false;   ///< poller is watching writability
  Clock::time_point last_activity;
  Clock::time_point stall_since;  ///< valid while out is non-empty
};

/// One finished request on its way back to the reactor.
struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;  ///< esm1 ordering slot (unused for esm2)
  std::string bytes;      ///< rendered response, ready for the wire
  bool shutdown = false;
};

}  // namespace

struct EventLoop::Impl {
  EventLoop& owner;
  PredictionServer& server;
  EventLoopConfig config;

  std::unique_ptr<Poller> poller;
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  std::atomic<bool> wake_pending{false};

  std::vector<std::shared_ptr<Listener>> listeners;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::unordered_map<int, std::uint64_t> fd_to_conn;
  std::uint64_t next_conn_id = 1;

  std::mutex pending_mutex;
  std::vector<Completion> pending_completions;
  std::vector<std::uint64_t> pending_ready;  ///< fd-less conns with news
  bool pending_accept = false;               ///< an fd-less listener has one

  std::atomic<bool> stop_requested{false};
  bool draining = false;
  bool drain_swept = false;
  std::size_t outstanding = 0;  ///< completions not yet delivered

  Impl(EventLoop& owner_, PredictionServer& server_, EventLoopConfig config_)
      : owner(owner_), server(server_), config(std::move(config_)) {}

  ~Impl() {
    if (wake_read_fd >= 0) ::close(wake_read_fd);
    if (wake_write_fd >= 0) ::close(wake_write_fd);
  }

  // ---- wake pipe ---------------------------------------------------------

  void init_wake_pipe() {
    int fds[2];
    ESM_REQUIRE(::pipe(fds) == 0, "pipe(): wake pipe");
    for (const int fd : fds) {
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      const int fd_flags = ::fcntl(fd, F_GETFD, 0);
      ::fcntl(fd, F_SETFD, fd_flags | FD_CLOEXEC);
    }
    wake_read_fd = fds[0];
    wake_write_fd = fds[1];
    poller->add(wake_read_fd, true, false);
  }

  /// Coalesced wake: one byte in the pipe no matter how many callers.
  void wake() {
    if (wake_pending.exchange(true, std::memory_order_acq_rel)) return;
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd, &byte, 1);
  }

  void drain_wake_pipe() {
    wake_pending.store(false, std::memory_order_release);
    char buf[256];
    while (::read(wake_read_fd, buf, sizeof(buf)) > 0) {
    }
  }

  // ---- connection lifecycle ----------------------------------------------

  void register_conn(std::shared_ptr<Connection> io) {
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id++;
    conn->io = std::move(io);
    conn->fd = conn->io->poll_fd();
    conn->last_activity = Clock::now();
    owner.accepted_.fetch_add(1, std::memory_order_relaxed);
    owner.active_.fetch_add(1, std::memory_order_relaxed);
    Conn* raw = conn.get();
    if (raw->fd >= 0) {
      poller->add(raw->fd, true, false);
      fd_to_conn[raw->fd] = raw->id;
    } else {
      // Fd-less: readiness arrives through the notifier; pick up anything
      // the client already sent before we were installed.
      const std::uint64_t id = raw->id;
      raw->io->set_ready_notifier([this, id] {
        {
          std::lock_guard<std::mutex> lock(pending_mutex);
          pending_ready.push_back(id);
        }
        wake();
      });
    }
    const std::uint64_t id = raw->id;
    conns.emplace(id, std::move(conn));
    read_conn(*raw);
    // The initial read pass may already have dropped the connection.
    Conn* still = find_conn(id);
    if (still != nullptr) flush_conn(*still);
  }

  void remove_conn(Conn& conn, CloseKind kind) {
    if (conn.fd >= 0) {
      poller->remove(conn.fd);
      fd_to_conn.erase(conn.fd);
    }
    conn.io->close();
    (kind == CloseKind::graceful ? owner.closed_ : owner.dropped_)
        .fetch_add(1, std::memory_order_relaxed);
    owner.active_.fetch_sub(1, std::memory_order_relaxed);
    conns.erase(conn.id);  // invalidates `conn`
  }

  Conn* find_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    return it == conns.end() ? nullptr : it->second.get();
  }

  // ---- reading and parsing -----------------------------------------------

  void read_conn(Conn& conn) {
    if (conn.read_shut || conn.paused || conn.closing) return;
    const std::uint64_t id = conn.id;
    for (;;) {
      const IoResult r = conn.io->read_some(conn.in);
      if (r == IoResult::ok) {
        conn.last_activity = Clock::now();
        parse_input(conn, /*at_eof=*/false);
        // parse_input may have dropped the connection (line-limit abuse).
        if (find_conn(id) == nullptr) return;
        if (conn.read_shut || conn.paused || conn.closing) return;
        continue;
      }
      if (r == IoResult::would_block) return;
      if (r == IoResult::closed) {
        // Orderly EOF: answer everything complete (plus a final
        // unterminated esm1 line, matching the session transport), flush,
        // then close.
        parse_input(conn, /*at_eof=*/true);
        if (find_conn(id) == nullptr) return;
        conn.read_shut = true;
        conn.closing = true;
        return;
      }
      remove_conn(conn, CloseKind::dropped);
      return;
    }
  }

  void parse_input(Conn& conn, bool at_eof) {
    if (conn.proto == Proto::unknown && !conn.in.empty()) {
      conn.proto = static_cast<unsigned char>(conn.in[0]) == kFrameMagic0
                       ? Proto::esm2
                       : Proto::esm1;
    }
    if (conn.proto == Proto::esm2) {
      parse_esm2(conn);
      return;
    }
    std::size_t newline;
    while ((newline = conn.in.find('\n')) != std::string::npos) {
      std::string line = conn.in.substr(0, newline);
      conn.in.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      submit(conn, split_request(line), line.size(), /*verb_byte=*/0);
      if (conn.read_shut) return;
    }
    // A peer that streams past the line limit without a newline cannot be
    // resynchronized (same policy as the session transport): drop.
    if (conn.in.size() > server_max_line() + 2) {
      remove_conn(conn, CloseKind::dropped);
      return;
    }
    if (at_eof && !conn.in.empty()) {
      std::string line;
      line.swap(conn.in);
      submit(conn, split_request(line), line.size(), /*verb_byte=*/0);
    }
  }

  void parse_esm2(Conn& conn) {
    for (;;) {
      Frame frame;
      std::string error;
      const FrameParse r =
          parse_frame(conn.in, frame, error, config.max_frame_payload);
      if (r == FrameParse::need_more) return;
      if (r == FrameParse::bad) {
        // Unrecoverable: one final error frame, then the connection dies.
        queue_bytes(conn,
                    encode_error_response(
                        0, static_cast<std::uint8_t>(ErrorCode::bad_frame),
                        error));
        conn.in.clear();
        conn.read_shut = true;
        conn.closing = true;
        flush_conn(conn);
        return;
      }
      const std::string_view verb_name = frame_verb_name(frame.verb);
      ParsedRequest request;
      request.verb = verb_name.empty()
                         ? "frame_verb_" + std::to_string(frame.verb)
                         : std::string(verb_name);
      request.payload = std::move(frame.payload);
      submit(conn, request, kFrameHeaderBytes + request.payload.size(),
             frame.verb, frame.request_id);
      if (conn.read_shut) return;
    }
  }

  std::size_t server_max_line() const {
    return server.config().max_line_bytes;
  }

  /// Hands one parsed request to the server core. The completion callback
  /// may fire inline (cache hit, control verb) or later from the batcher
  /// thread; either way it renders the response for this connection's
  /// protocol and queues it back to the reactor.
  void submit(Conn& conn, const ParsedRequest& request, std::size_t wire_bytes,
              std::uint8_t verb_byte, std::uint64_t request_id = 0) {
    const std::uint64_t conn_id = conn.id;
    const std::uint64_t seq = conn.next_seq++;
    const Proto proto = conn.proto;
    ++conn.inflight;
    ++outstanding;
    owner.requests_.fetch_add(1, std::memory_order_relaxed);
    const Clock::time_point start = Clock::now();
    server.handle_request(
        request, wire_bytes,
        [this, conn_id, seq, proto, verb_byte, request_id,
         start](Reply&& reply) {
          server.metrics_sink().record_latency_us(elapsed_us(start));
          Completion completion;
          completion.conn_id = conn_id;
          completion.seq = seq;
          completion.shutdown = reply.shutdown;
          if (proto == Proto::esm2) {
            completion.bytes =
                reply.ok ? encode_ok_response(request_id, verb_byte,
                                              reply.payload)
                         : encode_error_response(
                               request_id,
                               static_cast<std::uint8_t>(reply.code),
                               reply.payload);
          } else {
            completion.bytes = format_reply_esm1(reply);
            completion.bytes += '\n';
          }
          {
            std::lock_guard<std::mutex> lock(pending_mutex);
            pending_completions.push_back(std::move(completion));
          }
          wake();
        });
  }

  // ---- writing -----------------------------------------------------------

  void queue_bytes(Conn& conn, std::string bytes) {
    conn.out_bytes += bytes.size();
    if (conn.out.empty()) conn.stall_since = Clock::now();
    conn.out.push_back(std::move(bytes));
  }

  /// Applies one completion: ordered release for esm1, immediate for esm2.
  void apply_completion(Completion& completion) {
    --outstanding;
    Conn* conn = find_conn(completion.conn_id);
    if (conn == nullptr) return;  // connection died while in flight
    if (conn->inflight > 0) --conn->inflight;
    conn->last_activity = Clock::now();
    if (conn->proto == Proto::esm1) {
      if (completion.seq == conn->next_emit) {
        queue_bytes(*conn, std::move(completion.bytes));
        ++conn->next_emit;
        auto held = conn->held.find(conn->next_emit);
        while (held != conn->held.end()) {
          queue_bytes(*conn, std::move(held->second));
          conn->held.erase(held);
          held = conn->held.find(++conn->next_emit);
        }
      } else {
        conn->held.emplace(completion.seq, std::move(completion.bytes));
      }
    } else {
      queue_bytes(*conn, std::move(completion.bytes));
    }
    if (completion.shutdown) begin_drain();
  }

  void flush_conn(Conn& conn) {
    while (!conn.out.empty()) {
      const IoResult r = conn.io->write_some(conn.out.front(),
                                             &conn.out_offset);
      if (r == IoResult::ok) {
        if (conn.out_offset >= conn.out.front().size()) {
          conn.out_bytes -= conn.out.front().size();
          conn.out.pop_front();
          conn.out_offset = 0;
          conn.stall_since = Clock::now();
        }
        continue;
      }
      if (r == IoResult::would_block) {
        if (conn.fd >= 0 && !conn.want_write) {
          conn.want_write = true;
          poller->update(conn.fd, !conn.paused && !conn.read_shut, true);
        }
        break;
      }
      remove_conn(conn, CloseKind::dropped);
      return;
    }
    if (conn.out.empty() && conn.want_write) {
      conn.want_write = false;
      poller->update(conn.fd, !conn.paused && !conn.read_shut, false);
    }

    // Backpressure transitions around the watermarks.
    if (!conn.paused && conn.out_bytes > config.out_high_watermark) {
      conn.paused = true;
      if (conn.fd >= 0) poller->update(conn.fd, false, conn.want_write);
    } else if (conn.paused &&
               conn.out_bytes <= config.out_high_watermark / 2) {
      conn.paused = false;
      if (conn.fd >= 0) {
        poller->update(conn.fd, !conn.read_shut, conn.want_write);
      }
      const std::uint64_t id = conn.id;
      read_conn(conn);
      if (find_conn(id) == nullptr) return;  // the read dropped it
    }

    if (conn.out_bytes > config.out_hard_cap) {
      remove_conn(conn, CloseKind::dropped);
      return;
    }
    if (conn.closing && conn.inflight == 0 && conn.out.empty() &&
        conn.held.empty()) {
      remove_conn(conn, CloseKind::graceful);
    }
  }

  // ---- accept ------------------------------------------------------------

  void accept_from(Listener& listener) {
    if (draining) return;
    while (std::shared_ptr<Connection> io = listener.accept_one()) {
      register_conn(std::move(io));
    }
  }

  // ---- drain -------------------------------------------------------------

  void begin_drain() { draining = true; }

  /// One-time drain sweep: stop accepting, give every connection a final
  /// read pass (complete requests already on the wire get answers), then
  /// discard partial trailing bytes and mark everything closing.
  void sweep_drain() {
    drain_swept = true;
    for (const std::shared_ptr<Listener>& listener : listeners) {
      if (listener->poll_fd() >= 0) poller->remove(listener->poll_fd());
      listener->close();
    }
    std::vector<std::uint64_t> ids;
    ids.reserve(conns.size());
    for (const auto& [id, conn] : conns) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      Conn* conn = find_conn(id);
      if (conn == nullptr) continue;
      if (!conn->read_shut && !conn->closing) {
        conn->paused = false;
        read_conn(*conn);
        conn = find_conn(id);
        if (conn == nullptr) continue;
      }
      conn->in.clear();
      conn->read_shut = true;
      conn->closing = true;
      flush_conn(*conn);
    }
  }

  // ---- timeouts ----------------------------------------------------------

  void sweep_timeouts() {
    if (config.idle_timeout_s <= 0.0 && config.write_stall_timeout_s <= 0.0) {
      return;
    }
    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> doomed;
    for (const auto& [id, conn] : conns) {
      const double idle_s =
          std::chrono::duration<double>(now - conn->last_activity).count();
      if (config.idle_timeout_s > 0.0 && conn->inflight == 0 &&
          conn->out.empty() && !conn->closing &&
          idle_s > config.idle_timeout_s) {
        doomed.push_back(id);
        continue;
      }
      if (config.write_stall_timeout_s > 0.0 && !conn->out.empty()) {
        const double stall_s =
            std::chrono::duration<double>(now - conn->stall_since).count();
        if (stall_s > config.write_stall_timeout_s) doomed.push_back(id);
      }
    }
    for (const std::uint64_t id : doomed) {
      Conn* conn = find_conn(id);
      if (conn != nullptr) remove_conn(*conn, CloseKind::dropped);
    }
  }

  // ---- main loop ---------------------------------------------------------

  void run() {
    std::vector<Poller::Event> events;
    std::vector<Completion> completions;
    std::vector<std::uint64_t> ready;
    for (;;) {
      // Work queued by other threads skips the poll sleep entirely.
      bool have_pending;
      {
        std::lock_guard<std::mutex> lock(pending_mutex);
        have_pending = !pending_completions.empty() ||
                       !pending_ready.empty() || pending_accept;
      }
      events.clear();
      poller->wait(events, have_pending ? 0 : config.tick_ms);
      drain_wake_pipe();

      // Fd events: listeners accept, connections read/flush.
      for (const Poller::Event& event : events) {
        if (event.fd == wake_read_fd) continue;
        bool was_listener = false;
        for (const std::shared_ptr<Listener>& listener : listeners) {
          if (listener->poll_fd() == event.fd) {
            accept_from(*listener);
            was_listener = true;
            break;
          }
        }
        if (was_listener) continue;
        const auto it = fd_to_conn.find(event.fd);
        if (it == fd_to_conn.end()) continue;
        Conn* conn = find_conn(it->second);
        if (conn == nullptr) continue;
        const std::uint64_t id = conn->id;
        if (event.readable || event.hangup) {
          read_conn(*conn);
          conn = find_conn(id);
          if (conn == nullptr) continue;
        }
        if (event.writable || event.readable || event.hangup) {
          flush_conn(*conn);
        }
      }

      // Fd-less work signalled through the wake pipe.
      completions.clear();
      ready.clear();
      bool check_accept = false;
      {
        std::lock_guard<std::mutex> lock(pending_mutex);
        completions.swap(pending_completions);
        ready.swap(pending_ready);
        check_accept = pending_accept;
        pending_accept = false;
      }
      if (check_accept) {
        for (const std::shared_ptr<Listener>& listener : listeners) {
          if (listener->poll_fd() < 0) accept_from(*listener);
        }
      }
      for (const std::uint64_t id : ready) {
        Conn* conn = find_conn(id);
        if (conn == nullptr) continue;
        read_conn(*conn);
        conn = find_conn(id);
        if (conn != nullptr) flush_conn(*conn);
      }
      for (Completion& completion : completions) {
        apply_completion(completion);
        Conn* conn = find_conn(completion.conn_id);
        if (conn != nullptr) flush_conn(*conn);
      }

      sweep_timeouts();

      if (stop_requested.load(std::memory_order_acquire) ||
          (config.external_stop_check && config.external_stop_check())) {
        begin_drain();
      }
      if (draining && !drain_swept) sweep_drain();
      if (draining && conns.empty() && outstanding == 0) return;
    }
  }
};

EventLoop::EventLoop(PredictionServer& server, EventLoopConfig config)
    : impl_(std::make_unique<Impl>(*this, server, std::move(config))) {
  impl_->poller = make_poller(impl_->config.force_poll, &backend_);
  impl_->init_wake_pipe();
}

EventLoop::~EventLoop() = default;

void EventLoop::add_listener(std::shared_ptr<Listener> listener) {
  if (listener->poll_fd() >= 0) {
    impl_->poller->add(listener->poll_fd(), true, false);
  } else {
    Impl* impl = impl_.get();
    listener->set_ready_notifier([impl] {
      {
        std::lock_guard<std::mutex> lock(impl->pending_mutex);
        impl->pending_accept = true;
      }
      impl->wake();
    });
  }
  impl_->listeners.push_back(std::move(listener));
}

void EventLoop::run() { impl_->run(); }

void EventLoop::request_stop() {
  impl_->stop_requested.store(true, std::memory_order_release);
  impl_->wake();
}

void EventLoop::notify_external() {
  const char byte = 0;
  [[maybe_unused]] const ssize_t n =
      ::write(impl_->wake_write_fd, &byte, 1);
}

EventLoop::Stats EventLoop::stats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.closed = closed_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.active = active_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace esm::serve
