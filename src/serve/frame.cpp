#include "serve/frame.hpp"

#include <cstring>

#include "common/checksum.hpp"

namespace esm::serve {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

std::string_view frame_verb_name(std::uint8_t verb) {
  switch (static_cast<FrameVerb>(verb)) {
    case FrameVerb::predict:
      return "predict";
    case FrameVerb::predict_batch:
      return "predict_batch";
    case FrameVerb::info:
      return "info";
    case FrameVerb::models:
      return "models";
    case FrameVerb::stats:
      return "stats";
    case FrameVerb::reload:
      return "reload";
    case FrameVerb::shutdown:
      return "shutdown";
  }
  return {};
}

bool parse_frame_verb(std::string_view name, FrameVerb& out) {
  for (std::uint8_t v = 1; v <= static_cast<std::uint8_t>(FrameVerb::shutdown);
       ++v) {
    if (frame_verb_name(v) == name) {
      out = static_cast<FrameVerb>(v);
      return true;
    }
  }
  return false;
}

std::string encode_frame(std::uint64_t request_id, std::uint8_t verb,
                         std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>(kFrameMagic0));
  frame.push_back(static_cast<char>(kFrameMagic1));
  frame.push_back(static_cast<char>(kFrameVersion));
  frame.push_back(static_cast<char>(verb));
  put_u64(frame, request_id);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  // The CRC covers everything before it plus the payload, so a flip in any
  // section — magic, version, verb, id, length, payload — is caught.
  std::uint32_t crc = crc32(std::string_view(frame.data(), frame.size()));
  crc = crc32(payload, crc);
  put_u32(frame, crc);
  frame.append(payload.data(), payload.size());
  return frame;
}

std::string encode_request(std::uint64_t request_id, FrameVerb verb,
                           std::string_view payload) {
  return encode_frame(request_id, static_cast<std::uint8_t>(verb), payload);
}

std::string encode_ok_response(std::uint64_t request_id,
                               std::uint8_t request_verb,
                               std::string_view payload) {
  return encode_frame(request_id,
                      static_cast<std::uint8_t>(kFrameResponseBit |
                                                request_verb),
                      payload);
}

std::string encode_error_response(std::uint64_t request_id, std::uint8_t code,
                                  std::string_view detail) {
  std::string payload;
  payload.reserve(1 + detail.size());
  payload.push_back(static_cast<char>(code));
  payload.append(detail.data(), detail.size());
  return encode_frame(request_id, kFrameErrorVerb, payload);
}

bool split_error_payload(std::string_view payload, std::uint8_t& code,
                         std::string_view& detail) {
  if (payload.empty()) return false;
  code = static_cast<std::uint8_t>(payload[0]);
  detail = payload.substr(1);
  return true;
}

FrameParse parse_frame(std::string& buffer, Frame& out, std::string& error,
                       std::size_t max_payload) {
  if (buffer.empty()) return FrameParse::need_more;
  if (static_cast<unsigned char>(buffer[0]) != kFrameMagic0) {
    error = "bad frame magic";
    return FrameParse::bad;
  }
  if (buffer.size() >= 2 &&
      static_cast<unsigned char>(buffer[1]) != kFrameMagic1) {
    error = "bad frame magic";
    return FrameParse::bad;
  }
  if (buffer.size() >= 3 &&
      static_cast<std::uint8_t>(buffer[2]) != kFrameVersion) {
    error = "unsupported frame version " +
            std::to_string(static_cast<unsigned>(
                static_cast<unsigned char>(buffer[2])));
    return FrameParse::bad;
  }
  if (buffer.size() < kFrameHeaderBytes) return FrameParse::need_more;

  const std::uint32_t payload_len = get_u32(buffer.data() + 12);
  // Reject a hostile length before buffering a single payload byte.
  if (payload_len > max_payload) {
    error = "oversized frame: " + std::to_string(payload_len) +
            "-byte payload exceeds the " + std::to_string(max_payload) +
            "-byte limit";
    return FrameParse::bad;
  }
  const std::size_t total = kFrameHeaderBytes + payload_len;
  if (buffer.size() < total) return FrameParse::need_more;

  const std::uint32_t stated_crc = get_u32(buffer.data() + 16);
  std::uint32_t crc = crc32(std::string_view(buffer.data(), 16));
  crc = crc32(std::string_view(buffer.data() + kFrameHeaderBytes, payload_len),
              crc);
  if (crc != stated_crc) {
    error = "frame CRC mismatch";
    return FrameParse::bad;
  }

  out.verb = static_cast<std::uint8_t>(buffer[3]);
  out.request_id = get_u64(buffer.data() + 4);
  out.payload.assign(buffer.data() + kFrameHeaderBytes, payload_len);
  buffer.erase(0, total);
  return FrameParse::ok;
}

}  // namespace esm::serve
