#include "serve/metrics.hpp"

#include <cmath>
#include <sstream>

#include "common/strings.hpp"

namespace esm::serve {
namespace {

std::size_t bucket_index(double us) {
  if (!(us >= 1.0)) return 0;  // [0, 1) us and any NaN/negative input
  const std::size_t i =
      1 + static_cast<std::size_t>(std::floor(std::log2(us)));
  return std::min(i, LatencyHistogram::kBuckets - 1);
}

double bucket_upper_bound_us(std::size_t index) {
  if (index == 0) return 1.0;
  return std::ldexp(1.0, static_cast<int>(index));  // 2^index
}

}  // namespace

void LatencyHistogram::record_us(double us) {
  buckets_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::percentile_us(double p) const {
  std::array<std::uint64_t, kBuckets> snap{};
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0.0;
  // Rank of the percentile sample, 1-based, clamped into [1, total].
  const double raw_rank = std::ceil(p / 100.0 * static_cast<double>(total));
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::min(std::max(raw_rank, 1.0), static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += snap[i];
    if (cumulative >= rank) return bucket_upper_bound_us(i);
  }
  return bucket_upper_bound_us(kBuckets - 1);
}

ModelCounters ModelMetrics::snapshot() const {
  ModelCounters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.errors = errors_.load(std::memory_order_relaxed);
  c.archs = archs_.load(std::memory_order_relaxed);
  c.arch_hits = arch_hits_.load(std::memory_order_relaxed);
  c.arch_misses = arch_misses_.load(std::memory_order_relaxed);
  return c;
}

ServerMetrics::ServerMetrics() : start_(std::chrono::steady_clock::now()) {
  // Eagerly create the routing-failure section so every predict-line path
  // has a non-null section before the first request arrives.
  model_section(kUnroutedSection);
}

ModelMetrics* ServerMetrics::model_section(const std::string& name) {
  std::lock_guard<std::mutex> lock(sections_mutex_);
  auto& slot = sections_[name];
  if (!slot) slot = std::make_unique<ModelMetrics>();
  return slot.get();
}

void ServerMetrics::count_predict_line(bool all_from_cache,
                                       ModelMetrics* model) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  (all_from_cache ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  model->requests_.fetch_add(1, std::memory_order_relaxed);
  (all_from_cache ? model->hits_ : model->misses_)
      .fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::count_predict_error(ModelMetrics* model) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  errors_.fetch_add(1, std::memory_order_relaxed);
  model->requests_.fetch_add(1, std::memory_order_relaxed);
  model->errors_.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::count_archs(std::uint64_t hits, std::uint64_t misses,
                                ModelMetrics* model) {
  archs_.fetch_add(hits + misses, std::memory_order_relaxed);
  arch_hits_.fetch_add(hits, std::memory_order_relaxed);
  arch_misses_.fetch_add(misses, std::memory_order_relaxed);
  model->archs_.fetch_add(hits + misses, std::memory_order_relaxed);
  model->arch_hits_.fetch_add(hits, std::memory_order_relaxed);
  model->arch_misses_.fetch_add(misses, std::memory_order_relaxed);
}

void ServerMetrics::count_control_line(bool error) {
  control_requests_.fetch_add(1, std::memory_order_relaxed);
  if (error) control_errors_.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::count_batch(std::size_t n) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_archs_.fetch_add(n, std::memory_order_relaxed);
  std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
  while (n > seen &&
         !max_batch_.compare_exchange_weak(seen, n,
                                           std::memory_order_relaxed)) {
  }
}

void ServerMetrics::count_reload() {
  reloads_.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::record_latency_us(double us) { latency_.record_us(us); }

void ServerMetrics::set_artifact(const std::string& path,
                                 const std::string& crc32_hex,
                                 const std::string& kind,
                                 const std::string& encoder,
                                 const std::string& space) {
  std::lock_guard<std::mutex> lock(identity_mutex_);
  artifact_ = path;
  artifact_crc32_ = crc32_hex;
  kind_ = kind;
  encoder_ = encoder;
  space_ = space;
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot snap;
  snap.requests = requests_.load(std::memory_order_relaxed);
  snap.hits = hits_.load(std::memory_order_relaxed);
  snap.misses = misses_.load(std::memory_order_relaxed);
  snap.errors = errors_.load(std::memory_order_relaxed);
  snap.archs = archs_.load(std::memory_order_relaxed);
  snap.arch_hits = arch_hits_.load(std::memory_order_relaxed);
  snap.arch_misses = arch_misses_.load(std::memory_order_relaxed);
  snap.control_requests = control_requests_.load(std::memory_order_relaxed);
  snap.control_errors = control_errors_.load(std::memory_order_relaxed);
  snap.batches = batches_.load(std::memory_order_relaxed);
  snap.batched_archs = batched_archs_.load(std::memory_order_relaxed);
  snap.max_batch = max_batch_.load(std::memory_order_relaxed);
  snap.reloads = reloads_.load(std::memory_order_relaxed);
  snap.p50_us = latency_.percentile_us(50.0);
  snap.p95_us = latency_.percentile_us(95.0);
  snap.p99_us = latency_.percentile_us(99.0);
  snap.uptime_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  {
    std::lock_guard<std::mutex> lock(identity_mutex_);
    snap.artifact = artifact_;
    snap.artifact_crc32 = artifact_crc32_;
    snap.kind = kind_;
    snap.encoder = encoder_;
    snap.space = space_;
  }
  {
    std::lock_guard<std::mutex> lock(sections_mutex_);
    snap.per_model.reserve(sections_.size());
    for (const auto& [name, section] : sections_) {
      snap.per_model.emplace_back(name, section->snapshot());
    }
  }
  return snap;
}

std::string ServerMetrics::stats_payload(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "requests=" << snap.requests << " hits=" << snap.hits
     << " misses=" << snap.misses << " errors=" << snap.errors
     << " archs=" << snap.archs << " arch_hits=" << snap.arch_hits
     << " arch_misses=" << snap.arch_misses
     << " control_requests=" << snap.control_requests
     << " control_errors=" << snap.control_errors
     << " batches=" << snap.batches
     << " batched_archs=" << snap.batched_archs
     << " max_batch=" << snap.max_batch << " reloads=" << snap.reloads
     << " p50_us=" << snap.p50_us << " p95_us=" << snap.p95_us
     << " p99_us=" << snap.p99_us
     << " uptime_s=" << format_double(snap.uptime_s, 3)
     << " kind=" << snap.kind << " artifact_crc32=" << snap.artifact_crc32
     << " artifact=" << snap.artifact;
  for (const auto& [name, c] : snap.per_model) {
    os << " model." << name << ".requests=" << c.requests << " model." << name
       << ".hits=" << c.hits << " model." << name << ".misses=" << c.misses
       << " model." << name << ".errors=" << c.errors << " model." << name
       << ".archs=" << c.archs << " model." << name
       << ".arch_hits=" << c.arch_hits << " model." << name
       << ".arch_misses=" << c.arch_misses;
  }
  return os.str();
}

std::string ServerMetrics::summary_line(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "[esm_serve] up " << format_double(snap.uptime_s, 1) << "s  "
     << snap.requests << " req (" << snap.hits << " hit / " << snap.misses
     << " miss / " << snap.errors << " err)  p50/p95/p99 " << snap.p50_us
     << "/" << snap.p95_us << "/" << snap.p99_us << " us  serving "
     << snap.kind << " from " << snap.artifact << " (reloads "
     << snap.reloads << ")";
  return os.str();
}

}  // namespace esm::serve
