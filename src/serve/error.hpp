// One error-code space for both serving protocols.
//
// Every structured error the server can answer — over the newline `esm1`
// protocol or the binary `esm2` frame protocol — is one of these codes.
// The enum value is the byte `esm2` error frames carry on the wire and
// to_string() is the token `esm1` error lines carry, so the two protocols
// can never drift apart. Both representations are frozen: the numeric
// values and the strings are wire format, covered by an exhaustive
// round-trip test (tests/frame_test.cpp), and PR-5/PR-7 era clients that
// match on the string tokens keep working unchanged.
#pragma once

#include <cstdint>
#include <string_view>

namespace esm::serve {

/// Stable error codes shared by esm1 (string token) and esm2 (wire byte).
/// Values are wire format — never renumber, only append.
enum class ErrorCode : std::uint8_t {
  bad_request = 1,    ///< malformed request line/payload for the verb
  bad_arch = 2,       ///< architecture payload failed to parse/validate
  unknown_verb = 3,   ///< verb is not part of the protocol
  oversized = 4,      ///< request exceeds the configured size limit
  reload_failed = 5,  ///< reload kept the old fleet (load error)
  server_error = 6,   ///< unexpected internal failure (backstop)
  unknown_model = 7,  ///< routing key names no loaded model
  bad_frame = 8,      ///< esm2 only: unparseable frame (magic/CRC/length)
};

/// Every code, for exhaustive iteration in tests.
inline constexpr ErrorCode kAllErrorCodes[] = {
    ErrorCode::bad_request,   ErrorCode::bad_arch,
    ErrorCode::unknown_verb,  ErrorCode::oversized,
    ErrorCode::reload_failed, ErrorCode::server_error,
    ErrorCode::unknown_model, ErrorCode::bad_frame,
};

/// The stable esm1 wire token for `code` ("bad_request", ...). Unknown
/// bytes (a newer server's code) render as "server_error" so old clients
/// still see a valid token.
const char* to_string(ErrorCode code);

/// Parses a wire token back to its code; false when `text` is no known
/// code. Round-trips to_string() exactly for every enumerator.
bool parse_error_code(std::string_view text, ErrorCode& out);

// Legacy string constants, kept so PR-5/PR-7 era callers (and tests)
// compile unchanged. These are the same wire tokens to_string() returns.
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrBadArch = "bad_arch";
inline constexpr const char* kErrUnknownVerb = "unknown_verb";
inline constexpr const char* kErrOversized = "oversized";
inline constexpr const char* kErrReloadFailed = "reload_failed";
inline constexpr const char* kErrServerError = "server_error";
inline constexpr const char* kErrUnknownModel = "unknown_model";
inline constexpr const char* kErrBadFrame = "bad_frame";

}  // namespace esm::serve
