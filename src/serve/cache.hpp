// Sharded LRU prediction cache. Keys are canonical architecture strings
// (ArchConfig::to_string(), optionally generation-prefixed by the server);
// values are the exact predicted doubles, so a cache hit returns the same
// bits the miss path computed. Sharding keeps lock contention bounded when
// many client sessions look up concurrently: each key hashes to one shard
// with its own mutex and LRU list.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace esm::serve {

/// Thread-safe LRU map from canonical arch strings to predicted latencies.
/// A capacity of 0 disables caching entirely (every get misses, put is a
/// no-op). The total capacity is split evenly over the shards (each shard
/// gets at least one slot), so the effective capacity is
/// shards * ceil-ish(capacity / shards) and eviction is per-shard LRU.
class PredictionCache {
 public:
  explicit PredictionCache(std::size_t capacity, std::size_t shards = 8);

  /// Returns the cached value and refreshes its recency; nullopt on miss.
  std::optional<double> get(const std::string& key);

  /// Inserts or refreshes `key`, evicting the shard's least-recently-used
  /// entry when the shard is full.
  void put(const std::string& key, double value);

  /// Drops every entry (used by hot reload: a new model invalidates all
  /// cached predictions).
  void clear();

  /// Current number of cached entries over all shards.
  std::size_t size() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used; pairs of (key, value).
    std::list<std::pair<std::string, double>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, double>>::iterator>
        index;
  };

  Shard& shard_for(const std::string& key);

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace esm::serve
