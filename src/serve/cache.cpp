#include "serve/cache.hpp"

#include <functional>

#include "common/error.hpp"

namespace esm::serve {

PredictionCache::PredictionCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  ESM_REQUIRE(shards > 0, "prediction cache needs at least one shard");
  if (capacity_ == 0) return;  // disabled: no shards, get/put short-circuit
  const std::size_t n = std::min(shards, capacity_);
  per_shard_capacity_ = (capacity_ + n - 1) / n;
  shards_ = std::vector<Shard>(n);
}

PredictionCache::Shard& PredictionCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<double> PredictionCache::get(const std::string& key) {
  if (capacity_ == 0) return std::nullopt;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void PredictionCache::put(const std::string& key, double value) {
  if (capacity_ == 0) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, value);
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
}

void PredictionCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
  }
}

std::size_t PredictionCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace esm::serve
