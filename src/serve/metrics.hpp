// Live serving metrics: lock-free counters, a log-bucketed service-latency
// histogram with p50/p95/p99, uptime, the served-fleet identity, and a
// per-model counter section for every model the fleet has ever served.
// Surfaced through the protocol's `stats` verb and the server's periodic
// stderr summary.
//
// Counter accounting contract (pinned by tests/serve_test.cpp): every
// `predict`/`predict_batch` request line increments `requests` exactly once
// and is classified as exactly one of `hits` (answered entirely from
// cache), `misses` (at least one prediction computed), or `errors`
// (structured error reply) — so requests == hits + misses + errors always.
// Per-architecture accounting runs alongside: archs == arch_hits +
// arch_misses, and every arch miss passes through exactly one dispatched
// batch, so batched_archs == arch_misses. Control verbs (info, stats,
// reload, shutdown, unknown) are tallied separately in control_requests /
// control_errors and never disturb the prediction identity.
//
// Fleet extension of the contract: every prediction-line increment is
// attributed to exactly one per-model section at the same time — the model
// the request routed to, or the reserved "_unrouted" section when routing
// itself failed (unknown model name) — so each fleet-wide total equals the
// sum of that counter over all per-model sections, exactly. Sections are
// never dropped (a model removed by reload keeps its section), otherwise
// the sums would stop reconciling mid-flight.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace esm::serve {

/// Log2-bucketed latency histogram over microseconds: bucket 0 holds
/// [0, 1) us, bucket i >= 1 holds [2^(i-1), 2^i) us. Recording is a single
/// relaxed atomic increment; percentiles are read from a snapshot and
/// report the bucket's upper bound (a deterministic, conservative value).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record_us(double us);
  std::uint64_t count() const;

  /// p in [0, 100]; 0 when nothing was recorded.
  double percentile_us(double p) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Reserved per-model section for requests whose routing failed before a
/// model could be identified (unknown model name).
inline constexpr const char* kUnroutedSection = "_unrouted";

/// Snapshot of one model's prediction counters.
struct ModelCounters {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t errors = 0;
  std::uint64_t archs = 0;
  std::uint64_t arch_hits = 0;
  std::uint64_t arch_misses = 0;
};

/// Live per-model counters. Owned by ServerMetrics for the process
/// lifetime; FleetModel handlers hold a stable pointer so the hot path
/// records without any name lookup.
class ModelMetrics {
 public:
  ModelCounters snapshot() const;

 private:
  friend class ServerMetrics;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> archs_{0};
  std::atomic<std::uint64_t> arch_hits_{0};
  std::atomic<std::uint64_t> arch_misses_{0};
};

/// One coherent read of every counter plus derived fields.
struct MetricsSnapshot {
  std::uint64_t requests = 0;  ///< predict + predict_batch lines
  std::uint64_t hits = 0;      ///< lines answered entirely from cache
  std::uint64_t misses = 0;    ///< lines that computed >= 1 prediction
  std::uint64_t errors = 0;    ///< lines answered with a structured error
  std::uint64_t archs = 0;     ///< individual architectures priced
  std::uint64_t arch_hits = 0;
  std::uint64_t arch_misses = 0;
  std::uint64_t control_requests = 0;  ///< info/stats/reload/shutdown lines
  std::uint64_t control_errors = 0;    ///< unknown verbs, malformed control
  std::uint64_t batches = 0;           ///< predict_all dispatches
  std::uint64_t batched_archs = 0;     ///< archs over all dispatches
  std::uint64_t max_batch = 0;         ///< largest single dispatch
  std::uint64_t reloads = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double uptime_s = 0.0;
  std::string artifact;  ///< path of the served artifact or manifest
  std::string artifact_crc32;
  std::string kind;
  std::string encoder;
  std::string space;
  /// Per-model sections, sorted by name; includes "_unrouted" and models
  /// no longer in the fleet. Summing any counter over sections yields the
  /// matching fleet-wide total exactly.
  std::vector<std::pair<std::string, ModelCounters>> per_model;
};

/// Thread-safe metrics sink owned by the server; sessions and the batcher
/// record into it concurrently.
class ServerMetrics {
 public:
  ServerMetrics();

  /// The per-model section for `name`, created on first use; the returned
  /// pointer stays valid for the metrics object's lifetime. Sections are
  /// never removed, so summed per-model counters always reconcile with the
  /// fleet-wide totals.
  ModelMetrics* model_section(const std::string& name);

  /// Classifies one predict/predict_batch line; exactly one of hit, miss,
  /// or (via count_predict_error) error per line. `model` attributes the
  /// same increment to a per-model section (never null — routing failures
  /// use the "_unrouted" section), keeping totals and section sums equal
  /// by construction.
  void count_predict_line(bool all_from_cache, ModelMetrics* model);
  void count_predict_error(ModelMetrics* model);

  /// Per-architecture accounting inside prediction lines.
  void count_archs(std::uint64_t hits, std::uint64_t misses,
                   ModelMetrics* model);

  /// Classifies one control line (info/stats/reload/shutdown/unknown).
  void count_control_line(bool error);

  /// Records one dispatched predict_all batch of `n` architectures.
  void count_batch(std::size_t n);

  void count_reload();

  /// Records end-to-end service time of one request line.
  void record_latency_us(double us);

  /// Sets the served-artifact identity shown by info/stats.
  void set_artifact(const std::string& path, const std::string& crc32_hex,
                    const std::string& kind, const std::string& encoder,
                    const std::string& space);

  MetricsSnapshot snapshot() const;

  /// Renders a snapshot as the `stats` verb's "k=v ..." payload.
  static std::string stats_payload(const MetricsSnapshot& snap);

  /// One-line human summary for the periodic stderr report.
  static std::string summary_line(const MetricsSnapshot& snap);

 private:
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> archs_{0};
  std::atomic<std::uint64_t> arch_hits_{0};
  std::atomic<std::uint64_t> arch_misses_{0};
  std::atomic<std::uint64_t> control_requests_{0};
  std::atomic<std::uint64_t> control_errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_archs_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> reloads_{0};
  LatencyHistogram latency_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex identity_mutex_;
  std::string artifact_;
  std::string artifact_crc32_;
  std::string kind_;
  std::string encoder_;
  std::string space_;

  /// Name -> live section. unique_ptr keeps section addresses stable while
  /// the map grows; the mutex guards only lookup/insert, never recording.
  mutable std::mutex sections_mutex_;
  std::map<std::string, std::unique_ptr<ModelMetrics>> sections_;
};

}  // namespace esm::serve
