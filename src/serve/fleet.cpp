#include "serve/fleet.hpp"

#include <sstream>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/fsio.hpp"
#include "surrogate/registry.hpp"

namespace esm::serve {
namespace {

bool is_name_start(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9') || c == '_' || c == '.' ||
         c == '-';
}

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

/// Directory part of a path, for resolving relative artifact paths.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string resolve_artifact_path(const std::string& manifest_path,
                                  const std::string& entry_path) {
  if (!entry_path.empty() && entry_path.front() == '/') return entry_path;
  return dir_of(manifest_path) + "/" + entry_path;
}

}  // namespace

bool valid_model_name(const std::string& name) {
  if (name.empty() || !is_name_start(name.front())) return false;
  for (char c : name) {
    if (!is_name_char(c)) return false;
  }
  return true;
}

std::string file_crc32_hex(const std::string& path) {
  return crc32_hex(crc32(read_file(path, "artifact")));
}

bool FleetManifest::looks_like_manifest(std::string_view contents) {
  std::string_view first = contents.substr(0, contents.find('\n'));
  if (!first.empty() && first.back() == '\r') first.remove_suffix(1);
  return first == kManifestMagic;
}

FleetManifest FleetManifest::parse(const std::string& contents,
                                   const std::string& origin) {
  std::istringstream in(contents);
  std::string line;
  ESM_REQUIRE(std::getline(in, line),
              "empty fleet manifest: " << origin);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  ESM_REQUIRE(line == kManifestMagic,
              "not a fleet manifest (expected '" << kManifestMagic
                                                 << "', got '" << line
                                                 << "'): " << origin);
  FleetManifest manifest;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;
    if (keyword == "default") {
      std::string name, extra;
      ESM_REQUIRE(static_cast<bool>(tokens >> name),
                  origin << ":" << line_no << ": 'default' needs a name");
      ESM_REQUIRE(!(tokens >> extra), origin << ":" << line_no
                                             << ": trailing tokens after "
                                                "'default " << name << "'");
      ESM_REQUIRE(manifest.default_model.empty(),
                  origin << ":" << line_no << ": duplicate 'default' line");
      manifest.default_model = name;
      continue;
    }
    ESM_REQUIRE(keyword == "model",
                origin << ":" << line_no << ": unknown keyword '" << keyword
                       << "' (expected 'model' or 'default')");
    ManifestEntry entry;
    ESM_REQUIRE(static_cast<bool>(tokens >> entry.name >> entry.crc32_hex),
                origin << ":" << line_no
                       << ": 'model' needs <name> <crc32> <path>");
    std::getline(tokens, entry.path);
    entry.path = trim(entry.path);
    ESM_REQUIRE(!entry.path.empty(),
                origin << ":" << line_no << ": model '" << entry.name
                       << "' has no artifact path");
    std::uint32_t crc = 0;
    ESM_REQUIRE(parse_crc32_hex(entry.crc32_hex, crc),
                origin << ":" << line_no << ": model '" << entry.name
                       << "' has a malformed crc32 '" << entry.crc32_hex
                       << "' (want 8 hex digits)");
    manifest.entries.push_back(std::move(entry));
  }
  manifest.validate(origin);
  return manifest;
}

FleetManifest FleetManifest::load(const std::string& path) {
  return parse(read_file(path, "fleet manifest"), path);
}

std::string FleetManifest::to_string() const {
  std::ostringstream os;
  os << kManifestMagic << "\n";
  os << "default " << default_model << "\n";
  for (const ManifestEntry& entry : entries) {
    os << "model " << entry.name << " " << entry.crc32_hex << " "
       << entry.path << "\n";
  }
  return os.str();
}

std::size_t FleetManifest::find(const std::string& name) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].name == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

void FleetManifest::upsert(const ManifestEntry& entry) {
  const std::size_t at = find(entry.name);
  if (at == static_cast<std::size_t>(-1)) {
    entries.push_back(entry);
  } else {
    entries[at] = entry;
  }
  if (default_model.empty()) default_model = entry.name;
}

void FleetManifest::validate(const std::string& origin) const {
  ESM_REQUIRE(!entries.empty(),
              "fleet manifest lists no models: " << origin);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ManifestEntry& entry = entries[i];
    ESM_REQUIRE(valid_model_name(entry.name),
                origin << ": invalid model name '" << entry.name
                       << "' (must match [A-Za-z][A-Za-z0-9_.-]*)");
    for (std::size_t j = 0; j < i; ++j) {
      ESM_REQUIRE(entries[j].name != entry.name,
                  origin << ": duplicate model name '" << entry.name << "'");
    }
  }
  ESM_REQUIRE(!default_model.empty(),
              origin << ": manifest has no 'default <name>' line");
  ESM_REQUIRE(find(default_model) != static_cast<std::size_t>(-1),
              origin << ": default model '" << default_model
                     << "' is not a listed entry");
}

void write_manifest_atomic(const FleetManifest& manifest,
                           const std::string& path) {
  manifest.validate(path);
  write_file_atomic(path, manifest.to_string());
}

std::shared_ptr<const ModelFleet> ModelFleet::load(
    const std::string& manifest_path, const ModelFleet* previous,
    std::uint64_t& generation_counter, std::size_t cache_capacity,
    std::size_t cache_shards) {
  const std::string manifest_bytes = read_file(manifest_path,
                                               "fleet manifest");
  const FleetManifest manifest =
      FleetManifest::parse(manifest_bytes, manifest_path);

  // Load every entry before publishing anything: one bad entry aborts the
  // whole swap and the caller keeps the previous fleet (all-or-nothing).
  auto fleet = std::shared_ptr<ModelFleet>(new ModelFleet());
  fleet->source_path_ = manifest_path;
  fleet->manifest_crc32_ = crc32_hex(crc32(manifest_bytes));
  fleet->from_manifest_ = true;
  // Staged generation bumps: nothing is drawn from the real counter until
  // every entry loaded, so a failed reload leaves generations untouched.
  std::uint64_t next_generation = generation_counter;
  for (const ManifestEntry& entry : manifest.entries) {
    const std::string artifact_path =
        resolve_artifact_path(manifest_path, entry.path);
    std::string bytes;
    try {
      bytes = read_file(artifact_path, "artifact");
    } catch (const std::exception& e) {
      throw ConfigError("manifest entry '" + entry.name + "': " + e.what());
    }
    const std::string actual = crc32_hex(crc32(bytes));
    ESM_REQUIRE(actual == entry.crc32_hex,
                "manifest entry '" << entry.name << "': artifact "
                                   << artifact_path << " has crc32 " << actual
                                   << ", manifest expects "
                                   << entry.crc32_hex);

    // An unchanged model (same name, same bytes) carries over its loaded
    // instance, generation, and warm cache across the fleet swap.
    const FleetModel* old =
        previous != nullptr ? previous->find(entry.name) : nullptr;
    if (old != nullptr && old->crc32_hex == actual) {
      FleetModel carried = *old;
      carried.artifact_path = artifact_path;
      fleet->models_.push_back(std::move(carried));
      continue;
    }
    FleetModel loaded;
    loaded.name = entry.name;
    loaded.artifact_path = artifact_path;
    loaded.crc32_hex = actual;
    loaded.generation = ++next_generation;
    try {
      loaded.model = load_surrogate(artifact_path, bytes);
    } catch (const std::exception& e) {
      throw ConfigError("manifest entry '" + entry.name + "': " + e.what());
    }
    loaded.cache =
        std::make_shared<PredictionCache>(cache_capacity, cache_shards);
    fleet->models_.push_back(std::move(loaded));
  }
  generation_counter = next_generation;
  fleet->default_index_ = manifest.find(manifest.default_model);
  return fleet;
}

std::shared_ptr<const ModelFleet> ModelFleet::single(
    const std::string& name, const std::string& artifact_path,
    const std::string& crc32_hex,
    std::shared_ptr<const TrainableSurrogate> model,
    std::uint64_t& generation_counter, std::size_t cache_capacity,
    std::size_t cache_shards) {
  ESM_REQUIRE(valid_model_name(name),
              "invalid model name '" << name << "'");
  auto fleet = std::shared_ptr<ModelFleet>(new ModelFleet());
  fleet->source_path_ = artifact_path;
  fleet->from_manifest_ = false;
  FleetModel loaded;
  loaded.name = name;
  loaded.artifact_path = artifact_path;
  loaded.crc32_hex = crc32_hex;
  loaded.generation = ++generation_counter;
  loaded.model = std::move(model);
  loaded.cache =
      std::make_shared<PredictionCache>(cache_capacity, cache_shards);
  fleet->models_.push_back(std::move(loaded));
  fleet->default_index_ = 0;
  return fleet;
}

const FleetModel* ModelFleet::find(const std::string& name) const {
  for (const FleetModel& model : models_) {
    if (model.name == name) return &model;
  }
  return nullptr;
}

}  // namespace esm::serve
