#include "nn/layer.hpp"

#include "common/error.hpp"

namespace esm {
namespace {
constexpr double kBytesPerElement = 4.0;  // fp32 activations and weights
}

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv2d: return "conv2d";
    case LayerKind::kDepthwiseConv: return "dwconv";
    case LayerKind::kFullyConnected: return "fc";
    case LayerKind::kBatchNorm: return "batchnorm";
    case LayerKind::kRelu: return "relu";
    case LayerKind::kHSwish: return "hswish";
    case LayerKind::kMaxPool: return "maxpool";
    case LayerKind::kAvgPool: return "avgpool";
    case LayerKind::kGlobalAvgPool: return "gap";
    case LayerKind::kAdd: return "add";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kScale: return "scale";
  }
  return "unknown";
}

double Layer::flops() const {
  const double out_elems = static_cast<double>(output.elements());
  const double in_elems = static_cast<double>(input.elements());
  switch (kind) {
    case LayerKind::kConv2d: {
      const double macs_per_out =
          static_cast<double>(input.channels) / groups * kernel * kernel;
      return 2.0 * out_elems * macs_per_out + (has_bias ? out_elems : 0.0);
    }
    case LayerKind::kDepthwiseConv:
      return 2.0 * out_elems * kernel * kernel +
             (has_bias ? out_elems : 0.0);
    case LayerKind::kFullyConnected:
      return 2.0 * in_elems * output.channels +
             (has_bias ? static_cast<double>(output.channels) : 0.0);
    case LayerKind::kBatchNorm:
      return 2.0 * out_elems;  // fused scale + shift
    case LayerKind::kRelu:
      return out_elems;
    case LayerKind::kHSwish:
      return 4.0 * out_elems;  // x * relu6(x + 3) / 6
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
      return out_elems * kernel * kernel;
    case LayerKind::kGlobalAvgPool:
      return in_elems;
    case LayerKind::kAdd:
      return out_elems;
    case LayerKind::kConcat:
      return 0.0;  // pure data movement
    case LayerKind::kScale:
      return out_elems;
  }
  return 0.0;
}

double Layer::params() const {
  switch (kind) {
    case LayerKind::kConv2d: {
      const double weights = static_cast<double>(output.channels) *
                             input.channels / groups * kernel * kernel;
      return weights + (has_bias ? output.channels : 0.0);
    }
    case LayerKind::kDepthwiseConv: {
      const double weights =
          static_cast<double>(output.channels) * kernel * kernel;
      return weights + (has_bias ? output.channels : 0.0);
    }
    case LayerKind::kFullyConnected: {
      const double weights = static_cast<double>(input.elements()) *
                             output.channels;
      return weights + (has_bias ? output.channels : 0.0);
    }
    case LayerKind::kBatchNorm:
      return 2.0 * output.channels;  // gamma + beta
    default:
      return 0.0;
  }
}

double Layer::read_bytes() const {
  const double in_bytes =
      static_cast<double>(input.elements()) * kBytesPerElement;
  const double aux_bytes =
      static_cast<double>(aux_input.elements()) * kBytesPerElement;
  const double weight_bytes = params() * kBytesPerElement;
  return in_bytes + aux_bytes + weight_bytes;
}

double Layer::write_bytes() const {
  return static_cast<double>(output.elements()) * kBytesPerElement;
}

double Layer::arithmetic_intensity() const {
  const double bytes = memory_bytes();
  if (bytes <= 0.0) return 0.0;
  return flops() / bytes;
}

}  // namespace esm
