// Layer-level intermediate representation of a concrete DNN.
//
// Supernet builders (src/nets) lower an architecture configuration into a
// linearized LayerGraph — the sequence of kernels the device would launch.
// The hardware simulator (src/hwsim) consumes this IR to produce latency;
// the lookup-table surrogate profiles it per block. Analysis functions give
// exact FLOP, parameter, and memory-traffic counts per layer, which also
// power the FLOPs-proxy baseline.
#pragma once

#include <cstdint>
#include <string>

namespace esm {

/// Kinds of primitive layers the builders emit.
enum class LayerKind {
  kConv2d,         ///< standard (possibly grouped) 2-D convolution
  kDepthwiseConv,  ///< depthwise 2-D convolution (groups == channels)
  kFullyConnected, ///< dense layer on a flattened tensor
  kBatchNorm,      ///< per-channel scale + shift
  kRelu,           ///< rectified linear activation
  kHSwish,         ///< hard-swish activation (MobileNetV3)
  kMaxPool,        ///< max pooling
  kAvgPool,        ///< average pooling
  kGlobalAvgPool,  ///< global average pooling to 1x1
  kAdd,            ///< element-wise residual addition (two inputs)
  kConcat,         ///< channel concatenation (DenseNet)
  kScale,          ///< per-channel multiplicative gating (SE excite)
};

/// Human-readable layer-kind name ("conv2d", "add", ...).
const char* layer_kind_name(LayerKind kind);

/// Channels x height x width activation shape.
struct TensorShape {
  int channels = 0;
  int height = 0;
  int width = 0;

  std::int64_t elements() const {
    return static_cast<std::int64_t>(channels) * height * width;
  }
  bool operator==(const TensorShape&) const = default;
};

/// One primitive layer in execution order.
///
/// `input` is the primary input shape; `aux_input` is the secondary input for
/// kAdd (same shape) and kConcat (the tensor being appended). Convolution
/// parameters are ignored by non-conv kinds.
struct Layer {
  LayerKind kind = LayerKind::kConv2d;
  std::string name;
  TensorShape input;
  TensorShape aux_input;  ///< second operand for kAdd / kConcat; else zero
  TensorShape output;
  int kernel = 1;  ///< spatial kernel size (square)
  int stride = 1;
  int groups = 1;  ///< conv groups; kDepthwiseConv implies groups == channels
  bool has_bias = false;

  /// Multiply-accumulate-based floating-point operations (1 MAC = 2 FLOPs).
  double flops() const;

  /// Trainable parameter count (weights + bias + BN affine pairs).
  double params() const;

  /// Bytes read from memory in the worst case (activations + weights, fp32).
  double read_bytes() const;

  /// Bytes written to memory (output activations, fp32).
  double write_bytes() const;

  /// read_bytes() + write_bytes().
  double memory_bytes() const { return read_bytes() + write_bytes(); }

  /// FLOPs per byte of memory traffic; 0 for pure data-movement layers.
  double arithmetic_intensity() const;
};

}  // namespace esm
