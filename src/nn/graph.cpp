#include "nn/graph.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace esm {

void LayerGraph::add(Layer layer) {
  ESM_REQUIRE(layer.input.channels > 0 && layer.input.height > 0 &&
                  layer.input.width > 0,
              "layer '" << layer.name << "' has a non-positive input shape");
  ESM_REQUIRE(layer.output.channels > 0 && layer.output.height > 0 &&
                  layer.output.width > 0,
              "layer '" << layer.name << "' has a non-positive output shape");
  ESM_REQUIRE(layer.kernel >= 1 && layer.stride >= 1 && layer.groups >= 1,
              "layer '" << layer.name << "' has invalid conv parameters");
  layers_.push_back(std::move(layer));
}

double LayerGraph::total_flops() const {
  double acc = 0.0;
  for (const Layer& l : layers_) acc += l.flops();
  return acc;
}

double LayerGraph::total_params() const {
  double acc = 0.0;
  for (const Layer& l : layers_) acc += l.params();
  return acc;
}

double LayerGraph::total_memory_bytes() const {
  double acc = 0.0;
  for (const Layer& l : layers_) acc += l.memory_bytes();
  return acc;
}

std::size_t LayerGraph::count_kind(LayerKind kind) const {
  std::size_t n = 0;
  for (const Layer& l : layers_) {
    if (l.kind == kind) ++n;
  }
  return n;
}

std::string LayerGraph::summary() const {
  std::ostringstream os;
  os << "LayerGraph '" << name_ << "' (" << layers_.size() << " layers, "
     << format_scientific(total_flops()) << " FLOPs, "
     << format_scientific(total_params()) << " params)\n";
  for (const Layer& l : layers_) {
    os << "  " << pad_right(l.name, 28) << pad_right(layer_kind_name(l.kind), 10)
       << l.input.channels << 'x' << l.input.height << 'x' << l.input.width
       << " -> " << l.output.channels << 'x' << l.output.height << 'x'
       << l.output.width << "  k=" << l.kernel << " s=" << l.stride
       << "  flops=" << format_scientific(l.flops()) << '\n';
  }
  return os.str();
}

}  // namespace esm
