// Linearized layer graph: the execution trace of one concrete network.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace esm {

/// Execution-ordered sequence of layers with aggregate analysis.
class LayerGraph {
 public:
  LayerGraph() = default;
  explicit LayerGraph(std::string name) : name_(std::move(name)) {}

  /// Appends a layer; validates that its shapes are positive and, for
  /// non-first layers, notes the graph's running output shape is advanced
  /// by the builders, not enforced here (concat/add have two inputs).
  void add(Layer layer);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Layer>& layers() const { return layers_; }
  std::size_t size() const { return layers_.size(); }
  bool empty() const { return layers_.empty(); }
  const Layer& operator[](std::size_t i) const { return layers_[i]; }

  /// Total multiply-accumulate FLOPs over all layers.
  double total_flops() const;

  /// Total trainable parameters.
  double total_params() const;

  /// Total worst-case memory traffic in bytes.
  double total_memory_bytes() const;

  /// Number of layers of a given kind.
  std::size_t count_kind(LayerKind kind) const;

  /// Multi-line human-readable dump (one layer per line).
  std::string summary() const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
};

}  // namespace esm
