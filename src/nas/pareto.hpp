// Pareto-front utilities for latency/accuracy trade-off analysis (paper
// Fig. 2b: how prediction error displaces the identified Pareto points).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace esm {

/// Indices of the Pareto-optimal points when *minimizing* `cost` and
/// *maximizing* `value`, sorted by ascending cost. A point is dominated if
/// another has cost <= and value >= with at least one strict.
std::vector<std::size_t> pareto_front(std::span<const double> cost,
                                      std::span<const double> value);

/// Jaccard similarity between two index sets (|A ∩ B| / |A ∪ B|);
/// 1 when both are empty.
double index_jaccard(const std::vector<std::size_t>& a,
                     const std::vector<std::size_t>& b);

/// Mean value lost by selecting front `selected` instead of the true front:
/// for each point of `truth`, the shortfall of the best selected value at
/// no greater cost, averaged (0 = no regret).
double pareto_regret(std::span<const double> cost,
                     std::span<const double> value,
                     const std::vector<std::size_t>& truth,
                     const std::vector<std::size_t>& selected);

}  // namespace esm
