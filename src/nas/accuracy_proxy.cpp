#include "nas/accuracy_proxy.hpp"

#include <cmath>
#include <functional>

#include "common/rng.hpp"

namespace esm {

AccuracyProxy::AccuracyProxy(SupernetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {}

double AccuracyProxy::top5_accuracy(const ArchConfig& arch) const {
  const LayerGraph graph = build_graph(spec_, arch);
  const double gflops = graph.total_flops() / 1e9;
  const double capacity_term = 1.0 - std::exp(-gflops / knee_gflops_);

  // Deterministic per-architecture residual: hash the canonical string into
  // an RNG and draw one normal deviate. Same architecture -> same residual.
  const std::size_t h = std::hash<std::string>{}(arch.to_string());
  Rng residual_rng(static_cast<std::uint64_t>(h) ^ seed_);
  const double residual = residual_rng.normal(0.0, residual_sd_);

  double acc = floor_ + span_ * capacity_term + residual;
  if (acc < 0.0) acc = 0.0;
  if (acc > 1.0) acc = 1.0;
  return acc;
}

}  // namespace esm
