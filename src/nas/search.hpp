// Hardware-aware architecture search driven by a latency surrogate
// (the exploration phase of OFA-style NAS the paper targets, Fig. 1).
//
// An evolutionary loop maximizes proxy task accuracy subject to a predicted
// latency constraint. The point of the example/bench built on this is that
// the *quality of the surrogate* decides whether the returned architectures
// actually satisfy the constraint on the device — inaccurate predictors
// return constraint-violating or suboptimal models (paper Fig. 2b).
#pragma once

#include <cstdint>
#include <vector>

#include "nas/accuracy_proxy.hpp"
#include "nets/sampler.hpp"
#include "nets/supernet.hpp"
#include "surrogate/predictor.hpp"

namespace esm {

/// Evolutionary-search hyper-parameters.
struct SearchConfig {
  std::size_t population = 64;
  int generations = 40;
  std::size_t parents = 16;        ///< top-k kept each generation
  double mutate_block_prob = 0.15; ///< per-block feature mutation rate
  double mutate_depth_prob = 0.30; ///< per-unit depth +-1 mutation rate
  double latency_limit_ms = 0.0;   ///< constraint (must be set > 0)
  std::uint64_t seed = 1;
};

/// One scored candidate.
struct Candidate {
  ArchConfig arch;
  double predicted_latency_ms = 0.0;
  double proxy_accuracy = 0.0;
};

/// Search outcome: the best feasible candidate plus the final population.
struct SearchResult {
  Candidate best;
  std::vector<Candidate> population;
  bool found_feasible = false;
  std::size_t evaluations = 0;
};

/// Latency-constrained evolutionary search over one space.
class EvolutionarySearch {
 public:
  EvolutionarySearch(SupernetSpec spec, SearchConfig config);

  /// Runs the search; `predictor` screens latency, `proxy` scores accuracy.
  SearchResult run(const LatencyPredictor& predictor,
                   const AccuracyProxy& proxy) const;

  /// Mutates one architecture in place (depth tweaks + feature resamples).
  void mutate(ArchConfig& arch, Rng& rng) const;

  /// Unit-wise uniform crossover of two parents.
  ArchConfig crossover(const ArchConfig& a, const ArchConfig& b,
                       Rng& rng) const;

 private:
  SupernetSpec spec_;
  SearchConfig config_;
};

}  // namespace esm
