#include "nas/pareto.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/error.hpp"

namespace esm {

std::vector<std::size_t> pareto_front(std::span<const double> cost,
                                      std::span<const double> value) {
  ESM_REQUIRE(cost.size() == value.size(), "pareto_front length mismatch");
  std::vector<std::size_t> order(cost.size());
  std::iota(order.begin(), order.end(), 0u);
  // Ascending cost; ties broken by descending value so the best of a tie
  // group comes first.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cost[a] != cost[b]) return cost[a] < cost[b];
    return value[a] > value[b];
  });
  std::vector<std::size_t> front;
  double best_value = -1e300;
  for (std::size_t i : order) {
    if (value[i] > best_value) {
      best_value = value[i];
      front.push_back(i);
    }
  }
  return front;
}

double index_jaccard(const std::vector<std::size_t>& a,
                     const std::vector<std::size_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const std::set<std::size_t> sa(a.begin(), a.end());
  const std::set<std::size_t> sb(b.begin(), b.end());
  std::size_t intersection = 0;
  for (std::size_t x : sa) {
    if (sb.count(x) > 0) ++intersection;
  }
  const std::size_t uni = sa.size() + sb.size() - intersection;
  return uni == 0 ? 1.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

double pareto_regret(std::span<const double> cost,
                     std::span<const double> value,
                     const std::vector<std::size_t>& truth,
                     const std::vector<std::size_t>& selected) {
  if (truth.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t t : truth) {
    // Best selected value achievable at cost no greater than the true
    // point's cost.
    double best = -1e300;
    for (std::size_t s : selected) {
      if (cost[s] <= cost[t] && value[s] > best) best = value[s];
    }
    const double shortfall = best <= -1e299 ? value[t] : value[t] - best;
    total += std::max(0.0, shortfall);
  }
  return total / static_cast<double>(truth.size());
}

}  // namespace esm
