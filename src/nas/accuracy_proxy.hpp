// Synthetic task-accuracy model.
//
// The paper's Fig. 2 plots ImageNet top-5 accuracy of 243 ResNet variants
// against measured latency; we have no ImageNet, so this proxy substitutes a
// capacity model with the properties the experiment needs: accuracy grows
// monotonically with model capacity (FLOPs) with diminishing returns, plus a
// small architecture-specific deterministic residual (two same-FLOPs models
// differ slightly). The residual is derived from a hash of the
// configuration, so the proxy is a pure function — repeated queries agree.
#pragma once

#include <cstdint>

#include "nets/builder.hpp"
#include "nets/supernet.hpp"

namespace esm {

/// Deterministic synthetic top-5 accuracy in (0, 1).
class AccuracyProxy {
 public:
  /// `seed` decorrelates the residual field between experiment instances.
  explicit AccuracyProxy(SupernetSpec spec, std::uint64_t seed = 7);

  /// Synthetic top-5 accuracy of one architecture.
  double top5_accuracy(const ArchConfig& arch) const;

 private:
  SupernetSpec spec_;
  std::uint64_t seed_;
  double floor_ = 0.885;       ///< accuracy of the smallest models
  double span_ = 0.065;        ///< gain at saturation
  double knee_gflops_ = 6.0;   ///< capacity scale of diminishing returns
  double residual_sd_ = 0.0035;///< architecture-specific deviation
};

}  // namespace esm
