#include "nas/search.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esm {

EvolutionarySearch::EvolutionarySearch(SupernetSpec spec, SearchConfig config)
    : spec_(std::move(spec)), config_(config) {
  ESM_REQUIRE(config_.latency_limit_ms > 0.0,
              "search requires a positive latency limit");
  ESM_REQUIRE(config_.population >= 2, "population must be >= 2");
  ESM_REQUIRE(config_.parents >= 1 && config_.parents <= config_.population,
              "parents must be in [1, population]");
  ESM_REQUIRE(config_.generations >= 1, "generations must be >= 1");
}

void EvolutionarySearch::mutate(ArchConfig& arch, Rng& rng) const {
  for (UnitConfig& unit : arch.units) {
    // Depth mutation: grow or shrink by one block within bounds.
    if (rng.bernoulli(config_.mutate_depth_prob)) {
      const bool grow = rng.bernoulli(0.5);
      if (grow && unit.depth() < spec_.max_blocks_per_unit) {
        if (spec_.kernel_per_unit) {
          unit.blocks.push_back(unit.blocks.front());
        } else {
          unit.blocks.push_back(random_block(spec_, rng));
        }
      } else if (!grow && unit.depth() > spec_.min_blocks_per_unit) {
        unit.blocks.pop_back();
      }
    }
    // Feature mutation.
    if (spec_.kernel_per_unit) {
      if (rng.bernoulli(config_.mutate_block_prob)) {
        const int kernel = spec_.kernel_options[static_cast<std::size_t>(
            rng.uniform_int(0,
                            static_cast<int>(spec_.kernel_options.size()) - 1))];
        for (BlockConfig& b : unit.blocks) b.kernel = kernel;
      }
    } else {
      for (BlockConfig& b : unit.blocks) {
        if (rng.bernoulli(config_.mutate_block_prob)) {
          b = random_block(spec_, rng);
        }
      }
    }
  }
}

ArchConfig EvolutionarySearch::crossover(const ArchConfig& a,
                                         const ArchConfig& b,
                                         Rng& rng) const {
  ESM_CHECK(a.units.size() == b.units.size(), "crossover parent mismatch");
  ArchConfig child;
  child.kind = a.kind;
  child.units.reserve(a.units.size());
  for (std::size_t u = 0; u < a.units.size(); ++u) {
    child.units.push_back(rng.bernoulli(0.5) ? a.units[u] : b.units[u]);
  }
  return child;
}

SearchResult EvolutionarySearch::run(const LatencyPredictor& predictor,
                                     const AccuracyProxy& proxy) const {
  Rng rng(config_.seed);
  RandomSampler sampler(spec_);

  SearchResult result;
  // Scores population[first..) in one predict_all batch — the MLP-backed
  // surrogates serve it through the fused encode->GEMM fast path, which is
  // bit-identical to per-arch predict_ms, so search results are unchanged.
  auto score_tail = [&](std::vector<Candidate>& pop, std::size_t first) {
    const std::vector<ArchConfig> archs(
        [&] {
          std::vector<ArchConfig> a;
          a.reserve(pop.size() - first);
          for (std::size_t i = first; i < pop.size(); ++i) {
            a.push_back(pop[i].arch);
          }
          return a;
        }());
    const std::vector<double> latencies = predictor.predict_all(archs);
    for (std::size_t i = first; i < pop.size(); ++i) {
      pop[i].predicted_latency_ms = latencies[i - first];
      pop[i].proxy_accuracy = proxy.top5_accuracy(pop[i].arch);
      ++result.evaluations;
    }
  };
  // Fitness: feasible candidates rank by accuracy; infeasible ones rank
  // below every feasible candidate, least-violating first.
  auto fitness = [&](const Candidate& c) {
    if (c.predicted_latency_ms <= config_.latency_limit_ms) {
      return c.proxy_accuracy;
    }
    return -(c.predicted_latency_ms - config_.latency_limit_ms);
  };

  std::vector<Candidate> population;
  population.reserve(config_.population);
  for (std::size_t i = 0; i < config_.population; ++i) {
    Candidate c;
    c.arch = sampler.sample(rng);
    population.push_back(std::move(c));
  }
  score_tail(population, 0);

  for (int gen = 0; gen < config_.generations; ++gen) {
    std::sort(population.begin(), population.end(),
              [&](const Candidate& x, const Candidate& y) {
                return fitness(x) > fitness(y);
              });
    population.resize(std::min(config_.parents, population.size()));
    // Generate the whole offspring cohort first (scoring consumes no
    // randomness, so deferring it leaves the RNG draw order untouched),
    // then score the unscored tail as one batch.
    const std::size_t survivors = population.size();
    while (population.size() < config_.population) {
      const std::size_t i = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(std::min(config_.parents, population.size())) -
                 1));
      const std::size_t j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(std::min(config_.parents, population.size())) -
                 1));
      Candidate c;
      c.arch = crossover(population[i].arch, population[j].arch, rng);
      mutate(c.arch, rng);
      population.push_back(std::move(c));
    }
    score_tail(population, survivors);
  }

  std::sort(population.begin(), population.end(),
            [&](const Candidate& x, const Candidate& y) {
              return fitness(x) > fitness(y);
            });
  result.best = population.front();
  result.found_feasible =
      result.best.predicted_latency_ms <= config_.latency_limit_ms;
  result.population = std::move(population);
  return result;
}

}  // namespace esm
