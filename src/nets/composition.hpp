// Bounded-composition counting and exact uniform sampling.
//
// The balanced sampling strategy (paper §II-C.2) needs architectures whose
// *total* block count lands in a prescribed depth bin. Per-unit depths are a
// composition of the total into num_units parts, each within
// [min_blocks, max_blocks]. CompositionTable counts those compositions with
// a dynamic program and samples one uniformly at random, which — because
// every block's feature choices are independent of depth — yields an exact
// uniform sample over all architectures with that total depth.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace esm {

/// DP table over compositions of an integer into bounded parts.
class CompositionTable {
 public:
  /// Compositions of totals into `parts` parts, each in [lo, hi].
  /// Requires parts >= 1 and 1 <= lo <= hi.
  CompositionTable(int parts, int lo, int hi);

  int parts() const { return parts_; }
  int lo() const { return lo_; }
  int hi() const { return hi_; }
  int min_total() const { return parts_ * lo_; }
  int max_total() const { return parts_ * hi_; }

  /// Number of compositions of `total`; 0 outside [min_total, max_total].
  std::uint64_t count(int total) const;

  /// Samples a composition of `total` uniformly at random.
  /// Requires count(total) > 0.
  std::vector<int> sample(int total, Rng& rng) const;

  /// Total number of (depth-vector) choices across all totals, i.e.
  /// (hi - lo + 1)^parts.
  std::uint64_t total_count() const;

 private:
  int parts_;
  int lo_;
  int hi_;
  // counts_[p][t] = compositions of t into p parts; t indexed from 0.
  std::vector<std::vector<std::uint64_t>> counts_;
};

}  // namespace esm
