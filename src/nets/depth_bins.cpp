#include "nets/depth_bins.hpp"

#include <string>

#include "common/error.hpp"

namespace esm {

DepthBins::DepthBins(int min_total, int max_total, int n_bins)
    : min_total_(min_total), max_total_(max_total) {
  ESM_REQUIRE(min_total <= max_total, "depth bin range is empty");
  const int span = max_total - min_total + 1;
  ESM_REQUIRE(n_bins >= 1 && n_bins <= span,
              "n_bins " << n_bins << " must be in [1, " << span << "]");
  const int base = span / n_bins;
  const int extra = span % n_bins;
  int lo = min_total;
  for (int i = 0; i < n_bins; ++i) {
    const int width = base + (i < extra ? 1 : 0);
    bounds_.emplace_back(lo, lo + width - 1);
    lo += width;
  }
  ESM_CHECK(bounds_.back().second == max_total, "bins do not tile the range");
}

DepthBins::DepthBins(const SupernetSpec& spec, int n_bins)
    : DepthBins(spec.min_total_blocks(), spec.max_total_blocks(), n_bins) {}

std::pair<int, int> DepthBins::bounds(int i) const {
  ESM_REQUIRE(i >= 0 && i < size(), "bin index " << i << " out of range");
  return bounds_[static_cast<std::size_t>(i)];
}

int DepthBins::bin_of(int total) const {
  ESM_REQUIRE(total >= min_total_ && total <= max_total_,
              "total " << total << " outside [" << min_total_ << ", "
                       << max_total_ << "]");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (total <= bounds_[i].second) return static_cast<int>(i);
  }
  ESM_CHECK(false, "bin_of fell through");
  return -1;
}

std::vector<int> DepthBins::totals_in(int i) const {
  const auto [lo, hi] = bounds(i);
  std::vector<int> totals;
  totals.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (int t = lo; t <= hi; ++t) totals.push_back(t);
  return totals;
}

std::string DepthBins::label(int i) const {
  const auto [lo, hi] = bounds(i);
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

}  // namespace esm
