// Architecture configurations: one point of a layer/block-wise OFA-style
// search space built on a fixed macro-architecture (paper §II-C, Fig. 7a).
//
// A configuration is a list of units; each unit holds a list of blocks; each
// block carries the searchable per-block features (kernel size and
// width-expansion ratio). For DenseNet spaces the kernel is chosen per unit
// and replicated to every block of that unit, and the expansion ratio is
// unused (fixed at 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esm {

/// Which supernet family a configuration belongs to.
enum class SupernetKind {
  kResNet,
  kMobileNetV3,
  kDenseNet,
};

/// Human-readable supernet name ("ResNet", ...).
const char* supernet_kind_name(SupernetKind kind);

/// Searchable per-block features.
struct BlockConfig {
  int kernel = 3;           ///< spatial kernel size of the block's main conv
  double expansion = 1.0;   ///< width-expansion ratio (1.0 when unused)

  bool operator==(const BlockConfig&) const = default;
};

/// One unit (stage): a stack of blocks sharing the stage width.
struct UnitConfig {
  std::vector<BlockConfig> blocks;

  int depth() const { return static_cast<int>(blocks.size()); }
  bool operator==(const UnitConfig&) const = default;
};

/// A complete architecture configuration.
struct ArchConfig {
  SupernetKind kind = SupernetKind::kResNet;
  std::vector<UnitConfig> units;

  /// Total number of blocks over all units (the paper's depth dimension
  /// along which datasets are binned).
  int total_blocks() const;

  /// Per-unit depths, e.g. [3, 5, 1, 7].
  std::vector<int> depths() const;

  /// Compact string, e.g. "ResNet[d=3:k5e0.67,...|...]", stable across runs
  /// (used as a hash key by profilers and tests).
  std::string to_string() const;

  bool operator==(const ArchConfig&) const = default;
};

/// Strict weak ordering for use in ordered containers (by string key).
struct ArchConfigLess {
  bool operator()(const ArchConfig& a, const ArchConfig& b) const {
    return a.to_string() < b.to_string();
  }
};

}  // namespace esm
