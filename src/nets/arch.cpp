#include "nets/arch.hpp"

#include <cstdio>
#include <sstream>

namespace esm {

const char* supernet_kind_name(SupernetKind kind) {
  switch (kind) {
    case SupernetKind::kResNet: return "ResNet";
    case SupernetKind::kMobileNetV3: return "MobileNetV3";
    case SupernetKind::kDenseNet: return "DenseNet";
  }
  return "unknown";
}

int ArchConfig::total_blocks() const {
  int total = 0;
  for (const UnitConfig& u : units) total += u.depth();
  return total;
}

std::vector<int> ArchConfig::depths() const {
  std::vector<int> d;
  d.reserve(units.size());
  for (const UnitConfig& u : units) d.push_back(u.depth());
  return d;
}

std::string ArchConfig::to_string() const {
  std::ostringstream os;
  os << supernet_kind_name(kind) << '[';
  for (std::size_t ui = 0; ui < units.size(); ++ui) {
    if (ui > 0) os << '|';
    const UnitConfig& u = units[ui];
    os << "d=" << u.depth() << ':';
    for (std::size_t bi = 0; bi < u.blocks.size(); ++bi) {
      if (bi > 0) os << ',';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "k%de%.3f", u.blocks[bi].kernel,
                    u.blocks[bi].expansion);
      os << buf;
    }
  }
  os << ']';
  return os.str();
}

}  // namespace esm
