// Shared lowering helpers for the supernet builders (internal header).
#pragma once

#include <cmath>
#include <string>

#include "nn/graph.hpp"

namespace esm::detail {

/// Output spatial size of a same-padded, strided op.
inline int strided_dim(int in, int stride) { return (in + stride - 1) / stride; }

/// Sentinel for add_conv_bn's `activation` parameter meaning "no activation
/// after the batch norm" (any non-activation kind works; this reads better).
inline constexpr LayerKind kNoActivation = LayerKind::kBatchNorm;

/// Appends conv + batch-norm (+ optional activation) with same padding.
inline TensorShape add_conv_bn(LayerGraph& g, const std::string& name,
                               TensorShape in, int out_channels, int kernel,
                               int stride, LayerKind activation,
                               bool depthwise = false) {
  TensorShape out{out_channels, strided_dim(in.height, stride),
                  strided_dim(in.width, stride)};
  Layer conv;
  conv.kind = depthwise ? LayerKind::kDepthwiseConv : LayerKind::kConv2d;
  conv.name = name + (depthwise ? "_dwconv" : "_conv");
  conv.input = in;
  conv.output = out;
  conv.kernel = kernel;
  conv.stride = stride;
  conv.groups = depthwise ? in.channels : 1;
  g.add(conv);

  Layer bn;
  bn.kind = LayerKind::kBatchNorm;
  bn.name = name + "_bn";
  bn.input = out;
  bn.output = out;
  g.add(bn);

  if (activation == LayerKind::kRelu || activation == LayerKind::kHSwish) {
    Layer act;
    act.kind = activation;
    act.name = name + (activation == LayerKind::kRelu ? "_relu" : "_hswish");
    act.input = out;
    act.output = out;
    g.add(act);
  }
  return out;
}

/// Appends an element-wise residual addition.
inline void add_residual(LayerGraph& g, const std::string& name,
                         TensorShape shape) {
  Layer add;
  add.kind = LayerKind::kAdd;
  add.name = name + "_add";
  add.input = shape;
  add.aux_input = shape;
  add.output = shape;
  g.add(add);
}

/// Appends the global-average-pool + fully-connected classification head.
inline void add_head(LayerGraph& g, TensorShape in, int num_classes) {
  Layer gap;
  gap.kind = LayerKind::kGlobalAvgPool;
  gap.name = "head_gap";
  gap.input = in;
  gap.output = {in.channels, 1, 1};
  g.add(gap);

  Layer fc;
  fc.kind = LayerKind::kFullyConnected;
  fc.name = "head_fc";
  fc.input = {in.channels, 1, 1};
  fc.output = {num_classes, 1, 1};
  fc.has_bias = true;
  g.add(fc);
}

/// Rounds a fractional channel count, clamped to at least 1.
inline int scaled_channels(double base, double ratio) {
  return std::max(1, static_cast<int>(std::lround(base * ratio)));
}

}  // namespace esm::detail
