// Lowering from architecture configurations to layer graphs.
//
// Each builder expands one ArchConfig into the full execution trace of the
// concrete network (stem, every block's primitive layers, transitions, and
// the classification head), with exact activation shapes. The hardware
// simulator and lookup-table profiler both consume these graphs.
#pragma once

#include "nets/arch.hpp"
#include "nets/supernet.hpp"
#include "nn/graph.hpp"

namespace esm {

/// Lowers a ResNet-space configuration (bottleneck residual blocks).
LayerGraph build_resnet(const SupernetSpec& spec, const ArchConfig& arch);

/// Lowers a MobileNetV3-space configuration (inverted residual blocks with
/// squeeze-and-excitation and hard-swish).
LayerGraph build_mobilenet_v3(const SupernetSpec& spec,
                              const ArchConfig& arch);

/// Lowers a DenseNet-space configuration (dense blocks with channel
/// concatenation and compressive transitions).
LayerGraph build_densenet(const SupernetSpec& spec, const ArchConfig& arch);

/// Validates `arch` against `spec` and dispatches to the right builder.
LayerGraph build_graph(const SupernetSpec& spec, const ArchConfig& arch);

}  // namespace esm
