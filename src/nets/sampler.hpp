// Architecture samplers (paper §II-C.1 and §II-C.2).
//
// RandomSampler draws each unit's depth uniformly and each block's features
// uniformly — the paper's "random" strategy, whose total depth concentrates
// Gaussian-like around the middle of the range by the central limit theorem.
//
// BalancedSampler counters that bias: it divides the total-depth range into
// N_Bins equal bins and round-robins across them, drawing, within a bin, a
// total uniformly, then an exact-uniform bounded composition of per-unit
// depths (CompositionTable), then uniform block features. It also exposes
// sample_in_bin() for the weighted dataset-extension step (Algo 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nets/composition.hpp"
#include "nets/depth_bins.hpp"
#include "nets/supernet.hpp"

namespace esm {

/// Sampling strategy selector mirroring the paper's user input.
enum class SamplingStrategy { kRandom, kBalanced };

/// Parses "random" / "balanced" (case-insensitive).
SamplingStrategy sampling_strategy_from_name(const std::string& name);
const char* sampling_strategy_name(SamplingStrategy s);

/// Draws uniform block features permitted by `spec` (kernel + expansion).
BlockConfig random_block(const SupernetSpec& spec, Rng& rng);

/// Fills a unit of the given depth with uniform block features, honouring
/// per-unit kernel sharing for DenseNet-style spaces.
UnitConfig random_unit(const SupernetSpec& spec, int depth, Rng& rng);

/// Abstract architecture sampler.
class ArchSampler {
 public:
  virtual ~ArchSampler() = default;

  /// Draws one architecture from the space.
  virtual ArchConfig sample(Rng& rng) = 0;

  /// Draws n architectures.
  std::vector<ArchConfig> sample_n(std::size_t n, Rng& rng);

  virtual SamplingStrategy strategy() const = 0;
  virtual const SupernetSpec& spec() const = 0;
};

/// Uniform per-unit-depth, uniform per-block-feature sampler.
class RandomSampler final : public ArchSampler {
 public:
  explicit RandomSampler(SupernetSpec spec);

  ArchConfig sample(Rng& rng) override;
  SamplingStrategy strategy() const override {
    return SamplingStrategy::kRandom;
  }
  const SupernetSpec& spec() const override { return spec_; }

 private:
  SupernetSpec spec_;
};

/// Depth-balanced sampler with exact-uniform conditional sampling.
class BalancedSampler final : public ArchSampler {
 public:
  /// Requires 1 <= n_bins <= number of distinct totals.
  BalancedSampler(SupernetSpec spec, int n_bins);

  /// Round-robins across bins, so any window of n_bins consecutive calls
  /// covers every bin exactly once.
  ArchConfig sample(Rng& rng) override;

  /// Draws an architecture whose total depth lies in bin `bin_index`.
  ArchConfig sample_in_bin(int bin_index, Rng& rng);

  /// Draws an architecture with an exact total block count.
  ArchConfig sample_with_total(int total, Rng& rng);

  SamplingStrategy strategy() const override {
    return SamplingStrategy::kBalanced;
  }
  const SupernetSpec& spec() const override { return spec_; }
  const DepthBins& bins() const { return bins_; }

 private:
  SupernetSpec spec_;
  DepthBins bins_;
  CompositionTable compositions_;
  int next_bin_ = 0;
};

/// Factory mirroring the paper's "sampling strategy" user input.
std::unique_ptr<ArchSampler> make_sampler(const SupernetSpec& spec,
                                          SamplingStrategy strategy,
                                          int n_bins);

}  // namespace esm
