// Supernet space specifications (paper Table I).
//
// A SupernetSpec describes one layer/block-wise search space over a fixed
// macro-architecture: the number of units, the per-unit depth range, the
// per-block feature options (kernel size, width-expansion ratio), the fixed
// stage widths, and the lowering parameters (input resolution, stem width,
// DenseNet growth rate). Factory functions reproduce the paper's three
// spaces exactly, including their cardinalities (8.38e26, 8.38e26, 1e10).
#pragma once

#include <string>
#include <vector>

#include "common/archive.hpp"
#include "nets/arch.hpp"

namespace esm {

/// Full description of one architecture search space.
struct SupernetSpec {
  SupernetKind kind = SupernetKind::kResNet;
  std::string name;

  int num_units = 0;
  int min_blocks_per_unit = 1;
  int max_blocks_per_unit = 1;
  std::vector<int> kernel_options;
  std::vector<double> expansion_options;  ///< empty when the space has none
  /// If true (DenseNet) one kernel is chosen per unit and applied to every
  /// block of that unit; otherwise kernels vary per block.
  bool kernel_per_unit = false;

  /// Fixed output width of each unit (Table I "Stage Width List"); for
  /// DenseNet this is unused (widths grow with depth) and left empty.
  std::vector<int> stage_widths;

  // --- lowering parameters (fixed macro-architecture details) ---
  int input_resolution = 224;
  int input_channels = 3;
  int stem_width = 64;
  int growth_rate = 32;    ///< DenseNet growth rate k
  int num_classes = 1000;

  /// Minimum / maximum total block count over all units.
  int min_total_blocks() const { return num_units * min_blocks_per_unit; }
  int max_total_blocks() const { return num_units * max_blocks_per_unit; }

  /// Number of distinct block-feature combinations (|kernels| x |expansions|,
  /// or |kernels| when the space has no expansion dimension).
  int combinations_per_block() const;

  /// Exact cardinality of the search space as a double (values reach 1e26).
  double space_cardinality() const;

  /// Throws esm::ConfigError if `arch` does not belong to this space.
  void validate(const ArchConfig& arch) const;

  /// True if `arch` belongs to this space (non-throwing form).
  bool contains(const ArchConfig& arch) const;

  /// Persists every field of the spec.
  void save(ArchiveWriter& archive, const std::string& prefix) const;

  /// Restores a spec saved with save().
  static SupernetSpec load(const ArchiveReader& archive,
                           const std::string& prefix);
};

/// The paper's ResNet space: 4 units, 1-7 blocks, kernels {3,5,7},
/// expansions {1/2, 2/3, 1}, widths [256, 512, 1024, 2048].
SupernetSpec resnet_spec();

/// The paper's MobileNetV3 space: 4 units, 1-7 blocks, kernels {3,5,7},
/// expansions {1/2, 2/3, 1}, widths [16, 32, 64, 128].
SupernetSpec mobilenet_v3_spec();

/// The paper's DenseNet space: 5 units, 1-20 blocks, per-unit kernels
/// {1,3,5,7,9}, no expansion dimension.
SupernetSpec densenet_spec();

/// Spec factory by kind.
SupernetSpec spec_for(SupernetKind kind);

/// Spec factory by lower-case name ("resnet", "mobilenetv3", "densenet").
SupernetSpec spec_by_name(const std::string& name);

}  // namespace esm
