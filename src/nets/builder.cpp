#include "nets/builder.hpp"

#include "common/error.hpp"

namespace esm {

LayerGraph build_graph(const SupernetSpec& spec, const ArchConfig& arch) {
  spec.validate(arch);
  switch (spec.kind) {
    case SupernetKind::kResNet: return build_resnet(spec, arch);
    case SupernetKind::kMobileNetV3: return build_mobilenet_v3(spec, arch);
    case SupernetKind::kDenseNet: return build_densenet(spec, arch);
  }
  throw ConfigError("unknown supernet kind in build_graph");
}

}  // namespace esm
