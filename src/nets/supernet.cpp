#include "nets/supernet.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace esm {

int SupernetSpec::combinations_per_block() const {
  const int kernels = static_cast<int>(kernel_options.size());
  const int expansions =
      expansion_options.empty() ? 1 : static_cast<int>(expansion_options.size());
  return kernels * expansions;
}

double SupernetSpec::space_cardinality() const {
  // Per unit: sum over depth d of (choices per block-stack of depth d).
  //  - per-block features: combos^d
  //  - per-unit kernel (DenseNet): |kernels| choices regardless of depth.
  double per_unit = 0.0;
  for (int d = min_blocks_per_unit; d <= max_blocks_per_unit; ++d) {
    if (kernel_per_unit) {
      per_unit += static_cast<double>(kernel_options.size());
    } else {
      per_unit += std::pow(static_cast<double>(combinations_per_block()), d);
    }
  }
  return std::pow(per_unit, num_units);
}

void SupernetSpec::validate(const ArchConfig& arch) const {
  ESM_REQUIRE(arch.kind == kind,
              "architecture kind " << supernet_kind_name(arch.kind)
                                   << " does not match space "
                                   << supernet_kind_name(kind));
  ESM_REQUIRE(static_cast<int>(arch.units.size()) == num_units,
              "architecture has " << arch.units.size() << " units, space "
                                  << name << " expects " << num_units);
  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const UnitConfig& u = arch.units[ui];
    ESM_REQUIRE(u.depth() >= min_blocks_per_unit &&
                    u.depth() <= max_blocks_per_unit,
                "unit " << ui << " depth " << u.depth() << " outside ["
                        << min_blocks_per_unit << ", " << max_blocks_per_unit
                        << "]");
    for (std::size_t bi = 0; bi < u.blocks.size(); ++bi) {
      const BlockConfig& b = u.blocks[bi];
      ESM_REQUIRE(std::find(kernel_options.begin(), kernel_options.end(),
                            b.kernel) != kernel_options.end(),
                  "unit " << ui << " block " << bi << " kernel " << b.kernel
                          << " not an option");
      if (!expansion_options.empty()) {
        const bool known = std::any_of(
            expansion_options.begin(), expansion_options.end(),
            [&](double e) { return std::abs(e - b.expansion) < 1e-9; });
        ESM_REQUIRE(known, "unit " << ui << " block " << bi << " expansion "
                                   << b.expansion << " not an option");
      }
      if (kernel_per_unit && bi > 0) {
        ESM_REQUIRE(b.kernel == u.blocks.front().kernel,
                    "space " << name
                             << " requires one kernel per unit; unit " << ui
                             << " mixes kernels");
      }
    }
  }
}

bool SupernetSpec::contains(const ArchConfig& arch) const {
  try {
    validate(arch);
    return true;
  } catch (const ConfigError&) {
    return false;
  }
}

void SupernetSpec::save(ArchiveWriter& archive,
                        const std::string& prefix) const {
  archive.put_string(prefix + ".kind", supernet_kind_name(kind));
  archive.put_string(prefix + ".name", name);
  archive.put_int(prefix + ".num_units", num_units);
  archive.put_int(prefix + ".min_blocks", min_blocks_per_unit);
  archive.put_int(prefix + ".max_blocks", max_blocks_per_unit);
  std::vector<double> kernels(kernel_options.begin(), kernel_options.end());
  archive.put_doubles(prefix + ".kernels", kernels);
  archive.put_doubles(prefix + ".expansions", expansion_options);
  archive.put_int(prefix + ".kernel_per_unit", kernel_per_unit ? 1 : 0);
  std::vector<double> widths(stage_widths.begin(), stage_widths.end());
  archive.put_doubles(prefix + ".stage_widths", widths);
  archive.put_int(prefix + ".input_resolution", input_resolution);
  archive.put_int(prefix + ".input_channels", input_channels);
  archive.put_int(prefix + ".stem_width", stem_width);
  archive.put_int(prefix + ".growth_rate", growth_rate);
  archive.put_int(prefix + ".num_classes", num_classes);
}

SupernetSpec SupernetSpec::load(const ArchiveReader& archive,
                                const std::string& prefix) {
  SupernetSpec spec;
  const std::string kind_name = archive.get_string(prefix + ".kind");
  if (kind_name == "ResNet") spec.kind = SupernetKind::kResNet;
  else if (kind_name == "MobileNetV3") spec.kind = SupernetKind::kMobileNetV3;
  else if (kind_name == "DenseNet") spec.kind = SupernetKind::kDenseNet;
  else throw ConfigError("archived spec has unknown kind: " + kind_name);
  spec.name = archive.get_string(prefix + ".name");
  spec.num_units = static_cast<int>(archive.get_int(prefix + ".num_units"));
  spec.min_blocks_per_unit =
      static_cast<int>(archive.get_int(prefix + ".min_blocks"));
  spec.max_blocks_per_unit =
      static_cast<int>(archive.get_int(prefix + ".max_blocks"));
  spec.kernel_options.clear();
  for (double k : archive.get_doubles(prefix + ".kernels")) {
    spec.kernel_options.push_back(static_cast<int>(k));
  }
  spec.expansion_options = archive.get_doubles(prefix + ".expansions");
  spec.kernel_per_unit = archive.get_int(prefix + ".kernel_per_unit") != 0;
  spec.stage_widths.clear();
  for (double w : archive.get_doubles(prefix + ".stage_widths")) {
    spec.stage_widths.push_back(static_cast<int>(w));
  }
  spec.input_resolution =
      static_cast<int>(archive.get_int(prefix + ".input_resolution"));
  spec.input_channels =
      static_cast<int>(archive.get_int(prefix + ".input_channels"));
  spec.stem_width = static_cast<int>(archive.get_int(prefix + ".stem_width"));
  spec.growth_rate =
      static_cast<int>(archive.get_int(prefix + ".growth_rate"));
  spec.num_classes =
      static_cast<int>(archive.get_int(prefix + ".num_classes"));
  return spec;
}

SupernetSpec resnet_spec() {
  SupernetSpec s;
  s.kind = SupernetKind::kResNet;
  s.name = "ResNet";
  s.num_units = 4;
  s.min_blocks_per_unit = 1;
  s.max_blocks_per_unit = 7;
  s.kernel_options = {3, 5, 7};
  s.expansion_options = {0.5, 2.0 / 3.0, 1.0};
  s.kernel_per_unit = false;
  s.stage_widths = {256, 512, 1024, 2048};
  s.input_resolution = 224;
  s.stem_width = 64;
  return s;
}

SupernetSpec mobilenet_v3_spec() {
  SupernetSpec s;
  s.kind = SupernetKind::kMobileNetV3;
  s.name = "MobileNetV3";
  s.num_units = 4;
  s.min_blocks_per_unit = 1;
  s.max_blocks_per_unit = 7;
  s.kernel_options = {3, 5, 7};
  s.expansion_options = {0.5, 2.0 / 3.0, 1.0};
  s.kernel_per_unit = false;
  s.stage_widths = {16, 32, 64, 128};
  s.input_resolution = 224;
  s.stem_width = 16;
  return s;
}

SupernetSpec densenet_spec() {
  SupernetSpec s;
  s.kind = SupernetKind::kDenseNet;
  s.name = "DenseNet";
  s.num_units = 5;
  s.min_blocks_per_unit = 1;
  s.max_blocks_per_unit = 20;
  s.kernel_options = {1, 3, 5, 7, 9};
  s.expansion_options = {};  // no width-expansion dimension
  s.kernel_per_unit = true;
  s.stage_widths = {};  // widths grow with depth via the growth rate
  s.input_resolution = 224;
  s.stem_width = 64;
  s.growth_rate = 32;
  return s;
}

SupernetSpec spec_for(SupernetKind kind) {
  switch (kind) {
    case SupernetKind::kResNet: return resnet_spec();
    case SupernetKind::kMobileNetV3: return mobilenet_v3_spec();
    case SupernetKind::kDenseNet: return densenet_spec();
  }
  throw ConfigError("unknown supernet kind");
}

SupernetSpec spec_by_name(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "resnet") return resnet_spec();
  if (lower == "mobilenetv3" || lower == "mobilenet") {
    return mobilenet_v3_spec();
  }
  if (lower == "densenet") return densenet_spec();
  throw ConfigError("unknown supernet name: " + name);
}

}  // namespace esm
