// MobileNetV3-space lowering: 3x3 stem, 4 stages of inverted-residual
// blocks (1x1 expand -> depthwise KxK -> squeeze-and-excitation -> 1x1
// project) with hard-swish activations, GAP + FC head. The searchable
// expansion ratio scales the hidden width off a base expansion of 6; the
// searchable kernel applies to the depthwise conv.
#include <string>

#include "nets/build_detail.hpp"
#include "nets/builder.hpp"

namespace esm {

using detail::add_conv_bn;
using detail::add_head;
using detail::add_residual;
using detail::scaled_channels;

namespace {

constexpr double kBaseExpansion = 6.0;
constexpr int kSeReduction = 4;

/// Appends a squeeze-and-excitation module operating on `shape`.
void add_squeeze_excite(LayerGraph& g, const std::string& name,
                        TensorShape shape) {
  const int squeezed = std::max(1, shape.channels / kSeReduction);

  Layer gap;
  gap.kind = LayerKind::kGlobalAvgPool;
  gap.name = name + "_se_gap";
  gap.input = shape;
  gap.output = {shape.channels, 1, 1};
  g.add(gap);

  Layer fc1;
  fc1.kind = LayerKind::kFullyConnected;
  fc1.name = name + "_se_reduce";
  fc1.input = {shape.channels, 1, 1};
  fc1.output = {squeezed, 1, 1};
  fc1.has_bias = true;
  g.add(fc1);

  Layer relu;
  relu.kind = LayerKind::kRelu;
  relu.name = name + "_se_relu";
  relu.input = fc1.output;
  relu.output = fc1.output;
  g.add(relu);

  Layer fc2;
  fc2.kind = LayerKind::kFullyConnected;
  fc2.name = name + "_se_expand";
  fc2.input = {squeezed, 1, 1};
  fc2.output = {shape.channels, 1, 1};
  fc2.has_bias = true;
  g.add(fc2);

  Layer scale;
  scale.kind = LayerKind::kScale;
  scale.name = name + "_se_scale";
  scale.input = shape;
  scale.aux_input = {shape.channels, 1, 1};
  scale.output = shape;
  g.add(scale);
}

/// Appends one inverted-residual block; returns its output shape.
TensorShape add_inverted_residual(LayerGraph& g, const std::string& name,
                                  TensorShape in, int out_channels,
                                  const BlockConfig& block, int stride) {
  const int hidden =
      scaled_channels(out_channels * kBaseExpansion, block.expansion);
  TensorShape x = add_conv_bn(g, name + "_expand", in, hidden, 1, 1,
                              LayerKind::kHSwish);
  x = add_conv_bn(g, name + "_depthwise", x, hidden, block.kernel, stride,
                  LayerKind::kHSwish, /*depthwise=*/true);
  add_squeeze_excite(g, name, x);
  x = add_conv_bn(g, name + "_project", x, out_channels, 1, 1,
                  detail::kNoActivation);
  if (stride == 1 && in.channels == out_channels) {
    add_residual(g, name, x);
  }
  return x;
}

}  // namespace

LayerGraph build_mobilenet_v3(const SupernetSpec& spec,
                              const ArchConfig& arch) {
  LayerGraph g(arch.to_string());

  TensorShape x{spec.input_channels, spec.input_resolution,
                spec.input_resolution};
  x = add_conv_bn(g, "stem", x, spec.stem_width, 3, 2, LayerKind::kHSwish);

  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const UnitConfig& unit = arch.units[ui];
    const int width = spec.stage_widths[ui];
    for (std::size_t bi = 0; bi < unit.blocks.size(); ++bi) {
      // Every unit downsamples at its first block (112 -> 56/28/14/7).
      const int stride = bi == 0 ? 2 : 1;
      const std::string name =
          "u" + std::to_string(ui) + "_b" + std::to_string(bi);
      x = add_inverted_residual(g, name, x, width, unit.blocks[bi], stride);
    }
  }

  add_head(g, x, spec.num_classes);
  return g;
}

}  // namespace esm
