// DenseNet-space lowering: 7x7 stem + max-pool, 5 dense blocks whose layers
// concatenate their growth-rate output onto the running feature map, with
// 2x-compressing transitions (1x1 conv + 2x2 average pool) between blocks,
// and a BN + GAP + FC head. The searchable per-unit kernel applies to every
// composite layer's spatial conv of that unit (paper Table I footnote).
#include <string>

#include "nets/build_detail.hpp"
#include "nets/builder.hpp"

namespace esm {

using detail::add_conv_bn;
using detail::add_head;
using detail::strided_dim;

namespace {

constexpr int kBottleneckFactor = 4;  // 1x1 widens to 4 * growth_rate

/// Appends one DenseNet composite layer (BN-ReLU-1x1 -> BN-ReLU-KxK) and the
/// concatenation that appends its output to the running features.
TensorShape add_dense_layer(LayerGraph& g, const std::string& name,
                            TensorShape in, int growth_rate, int kernel) {
  Layer bn;
  bn.kind = LayerKind::kBatchNorm;
  bn.name = name + "_bn0";
  bn.input = in;
  bn.output = in;
  g.add(bn);

  Layer relu;
  relu.kind = LayerKind::kRelu;
  relu.name = name + "_relu0";
  relu.input = in;
  relu.output = in;
  g.add(relu);

  const int bottleneck = kBottleneckFactor * growth_rate;
  TensorShape x = add_conv_bn(g, name + "_bottleneck", in, bottleneck, 1, 1,
                              LayerKind::kRelu);
  x = add_conv_bn(g, name + "_spatial", x, growth_rate, kernel, 1,
                  detail::kNoActivation);

  Layer concat;
  concat.kind = LayerKind::kConcat;
  concat.name = name + "_concat";
  concat.input = x;         // the freshly produced growth_rate channels
  concat.aux_input = in;    // the running feature map being extended
  concat.output = {in.channels + growth_rate, in.height, in.width};
  g.add(concat);
  return concat.output;
}

/// Appends a compressive transition (1x1 conv halving channels + avg pool).
TensorShape add_transition(LayerGraph& g, const std::string& name,
                           TensorShape in) {
  const int compressed = std::max(1, in.channels / 2);
  TensorShape x = add_conv_bn(g, name + "_compress", in, compressed, 1, 1,
                              LayerKind::kRelu);
  Layer pool;
  pool.kind = LayerKind::kAvgPool;
  pool.name = name + "_pool";
  pool.input = x;
  pool.kernel = 2;
  pool.stride = 2;
  pool.output = {x.channels, strided_dim(x.height, 2),
                 strided_dim(x.width, 2)};
  g.add(pool);
  return pool.output;
}

}  // namespace

LayerGraph build_densenet(const SupernetSpec& spec, const ArchConfig& arch) {
  LayerGraph g(arch.to_string());

  TensorShape x{spec.input_channels, spec.input_resolution,
                spec.input_resolution};
  x = add_conv_bn(g, "stem", x, spec.stem_width, 7, 2, LayerKind::kRelu);

  Layer pool;
  pool.kind = LayerKind::kMaxPool;
  pool.name = "stem_pool";
  pool.input = x;
  pool.kernel = 3;
  pool.stride = 2;
  pool.output = {x.channels, strided_dim(x.height, 2),
                 strided_dim(x.width, 2)};
  g.add(pool);
  x = pool.output;

  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const UnitConfig& unit = arch.units[ui];
    const int kernel = unit.blocks.front().kernel;  // one kernel per unit
    for (std::size_t bi = 0; bi < unit.blocks.size(); ++bi) {
      const std::string name =
          "u" + std::to_string(ui) + "_l" + std::to_string(bi);
      x = add_dense_layer(g, name, x, spec.growth_rate, kernel);
    }
    if (ui + 1 < arch.units.size()) {
      x = add_transition(g, "t" + std::to_string(ui), x);
    }
  }

  Layer bn;
  bn.kind = LayerKind::kBatchNorm;
  bn.name = "head_bn";
  bn.input = x;
  bn.output = x;
  g.add(bn);
  Layer relu;
  relu.kind = LayerKind::kRelu;
  relu.name = "head_relu";
  relu.input = x;
  relu.output = x;
  g.add(relu);

  add_head(g, x, spec.num_classes);
  return g;
}

}  // namespace esm
