#include "nets/sampler.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace esm {

SamplingStrategy sampling_strategy_from_name(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "random") return SamplingStrategy::kRandom;
  if (lower == "balanced") return SamplingStrategy::kBalanced;
  throw ConfigError("unknown sampling strategy: " + name);
}

const char* sampling_strategy_name(SamplingStrategy s) {
  switch (s) {
    case SamplingStrategy::kRandom: return "random";
    case SamplingStrategy::kBalanced: return "balanced";
  }
  return "unknown";
}

BlockConfig random_block(const SupernetSpec& spec, Rng& rng) {
  BlockConfig b;
  b.kernel = spec.kernel_options[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(spec.kernel_options.size()) - 1))];
  if (!spec.expansion_options.empty()) {
    b.expansion = spec.expansion_options[static_cast<std::size_t>(
        rng.uniform_int(0,
                        static_cast<int>(spec.expansion_options.size()) - 1))];
  }
  return b;
}

UnitConfig random_unit(const SupernetSpec& spec, int depth, Rng& rng) {
  ESM_REQUIRE(depth >= spec.min_blocks_per_unit &&
                  depth <= spec.max_blocks_per_unit,
              "unit depth " << depth << " outside the space");
  UnitConfig unit;
  unit.blocks.reserve(static_cast<std::size_t>(depth));
  if (spec.kernel_per_unit) {
    // One kernel chosen per unit, replicated to every block (DenseNet).
    const int kernel = spec.kernel_options[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(spec.kernel_options.size()) - 1))];
    for (int i = 0; i < depth; ++i) {
      BlockConfig b;
      b.kernel = kernel;
      b.expansion = 1.0;
      unit.blocks.push_back(b);
    }
  } else {
    for (int i = 0; i < depth; ++i) {
      unit.blocks.push_back(random_block(spec, rng));
    }
  }
  return unit;
}

std::vector<ArchConfig> ArchSampler::sample_n(std::size_t n, Rng& rng) {
  std::vector<ArchConfig> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(rng));
  return out;
}

RandomSampler::RandomSampler(SupernetSpec spec) : spec_(std::move(spec)) {}

ArchConfig RandomSampler::sample(Rng& rng) {
  ArchConfig arch;
  arch.kind = spec_.kind;
  arch.units.reserve(static_cast<std::size_t>(spec_.num_units));
  for (int u = 0; u < spec_.num_units; ++u) {
    const int depth =
        rng.uniform_int(spec_.min_blocks_per_unit, spec_.max_blocks_per_unit);
    arch.units.push_back(random_unit(spec_, depth, rng));
  }
  return arch;
}

BalancedSampler::BalancedSampler(SupernetSpec spec, int n_bins)
    : spec_(std::move(spec)),
      bins_(spec_, n_bins),
      compositions_(spec_.num_units, spec_.min_blocks_per_unit,
                    spec_.max_blocks_per_unit) {}

ArchConfig BalancedSampler::sample(Rng& rng) {
  const int bin = next_bin_;
  next_bin_ = (next_bin_ + 1) % bins_.size();
  return sample_in_bin(bin, rng);
}

ArchConfig BalancedSampler::sample_in_bin(int bin_index, Rng& rng) {
  const auto totals = bins_.totals_in(bin_index);
  const int total = totals[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(totals.size()) - 1))];
  return sample_with_total(total, rng);
}

ArchConfig BalancedSampler::sample_with_total(int total, Rng& rng) {
  const std::vector<int> depths = compositions_.sample(total, rng);
  ArchConfig arch;
  arch.kind = spec_.kind;
  arch.units.reserve(depths.size());
  for (int depth : depths) {
    arch.units.push_back(random_unit(spec_, depth, rng));
  }
  ESM_CHECK(arch.total_blocks() == total, "balanced sample total mismatch");
  return arch;
}

std::unique_ptr<ArchSampler> make_sampler(const SupernetSpec& spec,
                                          SamplingStrategy strategy,
                                          int n_bins) {
  switch (strategy) {
    case SamplingStrategy::kRandom:
      return std::make_unique<RandomSampler>(spec);
    case SamplingStrategy::kBalanced:
      return std::make_unique<BalancedSampler>(spec, n_bins);
  }
  throw ConfigError("unknown sampling strategy");
}

}  // namespace esm
