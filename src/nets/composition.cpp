#include "nets/composition.hpp"

#include "common/error.hpp"

namespace esm {

CompositionTable::CompositionTable(int parts, int lo, int hi)
    : parts_(parts), lo_(lo), hi_(hi) {
  ESM_REQUIRE(parts >= 1, "composition needs at least one part");
  ESM_REQUIRE(lo >= 1 && lo <= hi, "composition bounds require 1 <= lo <= hi");
  const int max_t = parts * hi;
  counts_.assign(static_cast<std::size_t>(parts) + 1,
                 std::vector<std::uint64_t>(static_cast<std::size_t>(max_t) + 1,
                                            0));
  counts_[0][0] = 1;
  for (int p = 1; p <= parts; ++p) {
    for (int t = 0; t <= max_t; ++t) {
      std::uint64_t acc = 0;
      for (int v = lo; v <= hi && v <= t; ++v) {
        acc += counts_[p - 1][t - v];
      }
      counts_[p][t] = acc;
    }
  }
}

std::uint64_t CompositionTable::count(int total) const {
  if (total < 0 || total > max_total()) return 0;
  return counts_[static_cast<std::size_t>(parts_)]
                [static_cast<std::size_t>(total)];
}

std::vector<int> CompositionTable::sample(int total, Rng& rng) const {
  ESM_REQUIRE(count(total) > 0,
              "no compositions of " << total << " into " << parts_
                                    << " parts in [" << lo_ << ", " << hi_
                                    << "]");
  std::vector<int> parts_out;
  parts_out.reserve(static_cast<std::size_t>(parts_));
  int remaining = total;
  for (int p = parts_; p >= 1; --p) {
    // Choose the value of part p proportionally to the number of ways the
    // remaining p-1 parts can complete the total.
    const std::uint64_t ways = counts_[static_cast<std::size_t>(p)]
                                      [static_cast<std::size_t>(remaining)];
    std::uint64_t pick = rng.uniform_u64(ways);
    int chosen = -1;
    for (int v = lo_; v <= hi_ && v <= remaining; ++v) {
      const std::uint64_t sub =
          counts_[static_cast<std::size_t>(p - 1)]
                 [static_cast<std::size_t>(remaining - v)];
      if (pick < sub) {
        chosen = v;
        break;
      }
      pick -= sub;
    }
    ESM_CHECK(chosen >= 0, "composition sampling fell off the table");
    parts_out.push_back(chosen);
    remaining -= chosen;
  }
  ESM_CHECK(remaining == 0, "composition sampling did not consume the total");
  return parts_out;
}

std::uint64_t CompositionTable::total_count() const {
  std::uint64_t acc = 0;
  for (int t = min_total(); t <= max_total(); ++t) acc += count(t);
  return acc;
}

}  // namespace esm
