// ResNet-space lowering: 7x7 stem, 4 bottleneck stages with searchable
// per-block kernel size and mid-width expansion ratio, residual shortcuts
// with 1x1 projections at stage boundaries, GAP + FC head.
#include <string>

#include "nets/build_detail.hpp"
#include "nets/builder.hpp"

namespace esm {

using detail::add_conv_bn;
using detail::add_head;
using detail::add_residual;
using detail::scaled_channels;
using detail::strided_dim;

namespace {

/// Appends one bottleneck block. The searchable expansion ratio scales the
/// bottleneck's middle width (base out/4, as in OFA-ResNet); the searchable
/// kernel applies to the middle spatial conv.
TensorShape add_bottleneck(LayerGraph& g, const std::string& name,
                           TensorShape in, int out_channels,
                           const BlockConfig& block, int stride) {
  const int mid = scaled_channels(out_channels / 4.0, block.expansion);
  TensorShape x = add_conv_bn(g, name + "_reduce", in, mid, 1, 1,
                              LayerKind::kRelu);
  x = add_conv_bn(g, name + "_spatial", x, mid, block.kernel, stride,
                  LayerKind::kRelu);
  x = add_conv_bn(g, name + "_expand", x, out_channels, 1, 1,
                  detail::kNoActivation);
  const bool needs_projection =
      in.channels != out_channels || stride != 1;
  if (needs_projection) {
    // Shortcut projection conv runs on the block input.
    (void)add_conv_bn(g, name + "_proj", in, out_channels, 1, stride,
                      detail::kNoActivation);
  }
  add_residual(g, name, x);
  Layer relu;
  relu.kind = LayerKind::kRelu;
  relu.name = name + "_out_relu";
  relu.input = x;
  relu.output = x;
  g.add(relu);
  return x;
}

}  // namespace

LayerGraph build_resnet(const SupernetSpec& spec, const ArchConfig& arch) {
  LayerGraph g(arch.to_string());

  TensorShape x{spec.input_channels, spec.input_resolution,
                spec.input_resolution};
  x = add_conv_bn(g, "stem", x, spec.stem_width, 7, 2, LayerKind::kRelu);

  Layer pool;
  pool.kind = LayerKind::kMaxPool;
  pool.name = "stem_pool";
  pool.input = x;
  pool.kernel = 3;
  pool.stride = 2;
  pool.output = {x.channels, strided_dim(x.height, 2),
                 strided_dim(x.width, 2)};
  g.add(pool);
  x = pool.output;

  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const UnitConfig& unit = arch.units[ui];
    const int width = spec.stage_widths[ui];
    for (std::size_t bi = 0; bi < unit.blocks.size(); ++bi) {
      // Downsampling happens at the first block of every unit but the first.
      const int stride = (bi == 0 && ui > 0) ? 2 : 1;
      const std::string name =
          "u" + std::to_string(ui) + "_b" + std::to_string(bi);
      x = add_bottleneck(g, name, x, width, unit.blocks[bi], stride);
    }
  }

  add_head(g, x, spec.num_classes);
  return g;
}

}  // namespace esm
