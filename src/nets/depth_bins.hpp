// Equal-spaced depth bins over a space's total-block range (paper input
// N_Bins). Shared by the balanced sampler, the bin-wise evaluator, and the
// dataset-extension algorithm.
#pragma once

#include <utility>
#include <vector>

#include "nets/supernet.hpp"

namespace esm {

/// Partition of the inclusive integer range [min_total, max_total] into
/// n_bins contiguous bins of (near-)equal width. When the range does not
/// divide evenly, the leftover totals are spread one-per-bin from the left,
/// so bin widths differ by at most one.
class DepthBins {
 public:
  /// Requires 1 <= n_bins <= (max_total - min_total + 1).
  DepthBins(int min_total, int max_total, int n_bins);

  /// Convenience: bins over the total-block range of a space.
  DepthBins(const SupernetSpec& spec, int n_bins);

  int size() const { return static_cast<int>(bounds_.size()); }
  int min_total() const { return min_total_; }
  int max_total() const { return max_total_; }

  /// Inclusive [lo, hi] total-block bounds of bin i.
  std::pair<int, int> bounds(int i) const;

  /// Index of the bin containing `total`. Requires total in range.
  int bin_of(int total) const;

  /// All totals covered by bin i, in ascending order.
  std::vector<int> totals_in(int i) const;

  /// Short label "4-9" for tables.
  std::string label(int i) const;

 private:
  int min_total_;
  int max_total_;
  std::vector<std::pair<int, int>> bounds_;
};

}  // namespace esm
