#include "linalg/solve.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esm {

std::optional<Matrix> cholesky(const Matrix& a) {
  ESM_REQUIRE(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix lower(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= lower(i, k) * lower(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) return std::nullopt;
        lower(i, j) = std::sqrt(sum);
      } else {
        lower(i, j) = sum / lower(j, j);
      }
    }
  }
  return lower;
}

std::vector<double> cholesky_solve(const Matrix& lower,
                                   std::span<const double> b) {
  const std::size_t n = lower.rows();
  ESM_CHECK(lower.cols() == n && b.size() == n, "cholesky_solve shape");
  // Forward substitution: L z = b.
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= lower(i, k) * z[k];
    z[i] = sum / lower(i, i);
  }
  // Backward substitution: L^T x = z.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= lower(k, ii) * x[k];
    x[ii] = sum / lower(ii, ii);
  }
  return x;
}

std::vector<double> ridge_least_squares(const Matrix& x,
                                        std::span<const double> y,
                                        double lambda) {
  ESM_REQUIRE(x.rows() == y.size(),
              "ridge_least_squares: X rows " << x.rows() << " != y size "
                                             << y.size());
  ESM_REQUIRE(lambda >= 0.0, "ridge lambda must be >= 0");
  Matrix gram;
  gemm_at_b(x, x, gram);
  for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;

  // X^T y.
  std::vector<double> rhs(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double yi = y[r];
    const auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) rhs[c] += row[c] * yi;
  }

  auto factor = cholesky(gram);
  if (!factor) {
    // Singular normal equations (e.g. collinear or constant features):
    // add progressively stronger Tikhonov jitter until the factorization
    // succeeds. This keeps degenerate encodings usable as baselines.
    double jitter = 1e-8;
    for (int attempt = 0; attempt < 12 && !factor; ++attempt, jitter *= 10) {
      Matrix regularized = gram;
      for (std::size_t i = 0; i < regularized.rows(); ++i) {
        regularized(i, i) += jitter;
      }
      factor = cholesky(regularized);
    }
    ESM_CHECK(factor.has_value(),
              "normal equations unsolvable even with jitter");
  }
  return cholesky_solve(*factor, rhs);
}

}  // namespace esm
