// Linear solvers: Cholesky factorization for symmetric positive-definite
// systems and ridge-regularized least squares via the normal equations.
// These back the LinearRegression model and the lookup-table bias-correction
// step of the surrogate library.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace esm {

/// In-place lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix. Returns std::nullopt if the matrix is not (numerically) SPD.
std::optional<Matrix> cholesky(const Matrix& a);

/// Solves L * L^T * x = b given the lower Cholesky factor L.
std::vector<double> cholesky_solve(const Matrix& lower,
                                   std::span<const double> b);

/// Solves the ridge least-squares problem
///   min_w ||X w - y||^2 + lambda ||w||^2
/// via the normal equations (X^T X + lambda I) w = X^T y.
/// Requires X.rows() == y.size(); lambda >= 0. With lambda == 0 the system
/// must be non-singular; a tiny jitter is added automatically on failure.
std::vector<double> ridge_least_squares(const Matrix& x,
                                        std::span<const double> y,
                                        double lambda);

}  // namespace esm
