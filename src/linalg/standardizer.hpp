// Feature/target standardization (z-scoring). The MLP surrogate standardizes
// its encoded inputs and latency targets during fit and inverts the target
// transform at prediction time; constant columns are left untouched so sparse
// encodings (many all-zero one-hot columns) do not blow up.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace esm {

/// Per-column z-score transform learned from a data matrix.
class Standardizer {
 public:
  /// Learns column means and standard deviations from `data` (rows are
  /// samples). Columns with zero variance get scale 1 so transform() is a
  /// pure shift for them.
  void fit(const Matrix& data);

  /// Applies (x - mean) / std column-wise. Requires fit() first and a
  /// matching column count.
  Matrix transform(const Matrix& data) const;

  /// In-place transform of a single feature vector.
  void transform_row(std::span<double> row) const;

  /// Restores a previously saved transform (deserialization).
  void set_state(std::vector<double> means, std::vector<double> scales);

  bool fitted() const { return !means_.empty(); }
  std::size_t dimension() const { return means_.size(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

/// Scalar z-score transform for regression targets.
class TargetScaler {
 public:
  /// Learns mean/std of the targets; a zero std becomes 1.
  void fit(std::span<const double> targets);

  double transform(double y) const { return (y - mean_) / scale_; }
  double inverse(double z) const { return z * scale_ + mean_; }

  /// Restores a previously saved transform (deserialization).
  void set_state(double mean, double scale);

  double mean() const { return mean_; }
  double scale() const { return scale_; }

 private:
  double mean_ = 0.0;
  double scale_ = 1.0;
};

}  // namespace esm
