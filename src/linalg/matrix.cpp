#include "linalg/matrix.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace esm {

namespace {

// ---------------------------------------------------------------------------
// SIMD backend selection (see DESIGN.md §6g).
//
// One portable microkernel implementation covers every backend: the vector
// type is a GCC/Clang generic vector whose width is picked from the ISA the
// file is compiled for (CMake's ESM_SIMD option sets per-file flags on this
// translation unit only). ESM_GEMM_FORCE_SCALAR — or a compiler without the
// vector extension — degrades `vd` to plain double, which compiles the same
// code as the scalar fallback.
#if defined(ESM_GEMM_FORCE_SCALAR) || !(defined(__GNUC__) || defined(__clang__))
constexpr std::size_t kVecLanes = 1;
using vd = double;
constexpr const char* kGemmBackend = "scalar";
#elif defined(__AVX512F__)
constexpr std::size_t kVecLanes = 8;
typedef double vd __attribute__((vector_size(64)));
constexpr const char* kGemmBackend = "avx512";
#elif defined(__AVX__)
constexpr std::size_t kVecLanes = 4;
typedef double vd __attribute__((vector_size(32)));
constexpr const char* kGemmBackend = "avx2";
#else
// 128-bit generic vectors: SSE2 on x86-64, NEON on aarch64, scalar pairs
// anywhere else — all lowered by the compiler, no intrinsics needed.
constexpr std::size_t kVecLanes = 2;
typedef double vd __attribute__((vector_size(16)));
constexpr const char* kGemmBackend = "simd128";
#endif

// Unaligned load/store through memcpy: the canonical strict-aliasing- and
// alignment-safe idiom, compiled to single vector moves.
inline vd load_vd(const double* p) {
  vd v;
  std::memcpy(&v, p, sizeof(vd));
  return v;
}

inline void store_vd(double* p, vd v) { std::memcpy(p, &v, sizeof(vd)); }

// ---------------------------------------------------------------------------
// Blocking parameters.
//
// Register micro-tile: kMicroRows output rows x kMicroVecs vectors of output
// columns, so kMicroRows * kMicroVecs accumulators stay in registers across
// the whole k-block (4 x 2 fits every backend's register file alongside the
// kMicroVecs b-row vectors).
constexpr std::size_t kMicroRows = 4;
constexpr std::size_t kMicroVecs = 2;
constexpr std::size_t kMicroCols = kMicroVecs * kVecLanes;

// k-block: a kBlockK x kMicroCols panel of b (up to 16 KiB) stays in L1
// while an i-sweep of micro-tiles runs over it. Blocking only regroups the
// traversal; each output element still sees ascending k (the partial tile
// sums are carried through the output itself), so values are unchanged.
constexpr std::size_t kBlockK = 256;

// Parallel granularity, retuned for the microkernel (the PR-1 thresholds
// let the pool engage on multiplies that finish in ~100 µs serially, which
// is why BENCH_parallel.json showed threaded GEMM *slower* than serial).
// A band must amortize one pool hand-off, so require ~2M multiply-adds per
// band and ~8M in the whole multiply before engaging the pool at all: at
// the measured crossover the MLP serving shapes (<=1M madds) and 64³-class
// multiplies always take the serial path, while 512³ and up still fan out.
constexpr std::size_t kMinFlopsPerBand = std::size_t{1} << 21;
constexpr std::size_t kMinFlopsForPool = std::size_t{1} << 23;

std::size_t band_grain(std::size_t rows, std::size_t flops_per_row) {
  const std::size_t rows_per_band =
      flops_per_row == 0 ? rows : kMinFlopsPerBand / (flops_per_row + 1) + 1;
  return std::clamp<std::size_t>(rows_per_band, 1,
                                 std::max<std::size_t>(rows, 1));
}

// ---------------------------------------------------------------------------
// The microkernel.
//
// AView generalizes the a-operand access so gemm and gemm_at_b share the
// kernel: the value feeding output row r at reduction index p lives at
// ptr[r * row_stride + p * k_stride]. gemm uses {lda, 1}; gemm_at_b reads a
// transposed in place with {1, lda}; gemm_a_bt pre-transposes b and then
// dispatches exactly like gemm.
struct AView {
  const double* ptr;
  std::size_t row_stride;
  std::size_t k_stride;
};

// One register tile: kRows output rows x kMicroCols output columns, over
// reduction indices [p0, p1). kAccumulate=false is the store-mode first
// k-block: accumulators start at +0.0 and the tile is stored without
// reading c, which both skips a round-trip through memory and makes the
// first block define the output (no zero-fill of `out` needed anywhere).
// Later k-blocks load the partial sums back and continue — the identical
// ascending-k, separate-mul-then-add sequence an element would see in a
// single pass, so blocking never changes rounding.
//
// Note the old kernels skipped a == 0.0 multiplies as a sparsity shortcut.
// Dropping the skip is bitwise-neutral on finite data: a partial sum that
// starts at +0.0 can never become -0.0 (x + (-x) rounds to +0.0), and
// adding ±0.0 to such a sum leaves every bit unchanged.
template <bool kAccumulate, std::size_t kRows>
inline void micro_tile(AView a, const double* b, std::size_t ldb, double* c,
                       std::size_t ldc, std::size_t i, std::size_t j,
                       std::size_t p0, std::size_t p1) {
  vd acc[kRows][kMicroVecs];
  for (std::size_t r = 0; r < kRows; ++r) {
    double* crow = c + (i + r) * ldc + j;
    for (std::size_t v = 0; v < kMicroVecs; ++v) {
      if constexpr (kAccumulate) {
        acc[r][v] = load_vd(crow + v * kVecLanes);
      } else {
        acc[r][v] = vd{};
      }
    }
  }
  const double* arow[kRows];
  for (std::size_t r = 0; r < kRows; ++r) {
    arow[r] = a.ptr + (i + r) * a.row_stride + p0 * a.k_stride;
  }
  const double* brow = b + p0 * ldb + j;
  for (std::size_t p = p0; p < p1; ++p) {
    vd bv[kMicroVecs];
    for (std::size_t v = 0; v < kMicroVecs; ++v) {
      bv[v] = load_vd(brow + v * kVecLanes);
    }
    for (std::size_t r = 0; r < kRows; ++r) {
      const double av = *arow[r];
      arow[r] += a.k_stride;
      for (std::size_t v = 0; v < kMicroVecs; ++v) {
        acc[r][v] += av * bv[v];
      }
    }
    brow += ldb;
  }
  for (std::size_t r = 0; r < kRows; ++r) {
    double* crow = c + (i + r) * ldc + j;
    for (std::size_t v = 0; v < kMicroVecs; ++v) {
      store_vd(crow + v * kVecLanes, acc[r][v]);
    }
  }
}

// Scalar column tail for the trailing n % kMicroCols output columns.
template <bool kAccumulate>
void tail_cols(AView a, const double* b, std::size_t ldb, double* c,
               std::size_t ldc, std::size_t m0, std::size_t m1,
               std::size_t j0, std::size_t n, std::size_t p0,
               std::size_t p1) {
  for (std::size_t i = m0; i < m1; ++i) {
    const double* arow0 = a.ptr + i * a.row_stride + p0 * a.k_stride;
    double* crow = c + i * ldc;
    for (std::size_t j = j0; j < n; ++j) {
      double acc = kAccumulate ? crow[j] : 0.0;
      const double* ap = arow0;
      const double* bp = b + p0 * ldb + j;
      for (std::size_t p = p0; p < p1; ++p) {
        acc += *ap * *bp;
        ap += a.k_stride;
        bp += ldb;
      }
      crow[j] = acc;
    }
  }
}

// One k-block over output rows [m0, m1) and all n columns: j-tiles outer so
// each b panel is swept by every micro-tile row before moving on.
template <bool kAccumulate>
void gemm_block(AView a, const double* b, std::size_t ldb, double* c,
                std::size_t ldc, std::size_t m0, std::size_t m1,
                std::size_t n, std::size_t p0, std::size_t p1) {
  const std::size_t j_end = n - n % kMicroCols;
  for (std::size_t j = 0; j < j_end; j += kMicroCols) {
    std::size_t i = m0;
    for (; i + kMicroRows <= m1; i += kMicroRows) {
      micro_tile<kAccumulate, kMicroRows>(a, b, ldb, c, ldc, i, j, p0, p1);
    }
    switch (m1 - i) {
      case 3: micro_tile<kAccumulate, 3>(a, b, ldb, c, ldc, i, j, p0, p1); break;
      case 2: micro_tile<kAccumulate, 2>(a, b, ldb, c, ldc, i, j, p0, p1); break;
      case 1: micro_tile<kAccumulate, 1>(a, b, ldb, c, ldc, i, j, p0, p1); break;
      default: break;
    }
  }
  if (j_end < n) {
    tail_cols<kAccumulate>(a, b, ldb, c, ldc, m0, m1, j_end, n, p0, p1);
  }
}

// Full multiply of output rows [m0, m1): store-mode first k-block defines
// the output, accumulate-mode blocks fold in the rest.
void gemm_band(AView a, const double* b, std::size_t ldb, double* c,
               std::size_t ldc, std::size_t m0, std::size_t m1,
               std::size_t n, std::size_t k) {
  gemm_block<false>(a, b, ldb, c, ldc, m0, m1, n, 0, std::min(k, kBlockK));
  for (std::size_t p0 = kBlockK; p0 < k; p0 += kBlockK) {
    gemm_block<true>(a, b, ldb, c, ldc, m0, m1, n, p0,
                     std::min(k, p0 + kBlockK));
  }
}

// Shared driver: sizes the output, then either runs the whole multiply on
// the caller (the small-matrix fast path — every MLP serving shape lands
// here) or fans row bands out over the pool.
void gemm_dispatch(AView a, const double* b, std::size_t ldb, Matrix& out,
                   std::size_t m, std::size_t n, std::size_t k) {
  out.reshape(m, n);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    out.fill(0.0);
    return;
  }
  double* c = out.data();
  const std::size_t flops_per_row = n * k;
  if (m * flops_per_row < kMinFlopsForPool) {
    gemm_band(a, b, ldb, c, n, 0, m, n, k);
    return;
  }
  parallel_for(band_grain(m, flops_per_row), m,
               [&](std::size_t r0, std::size_t r1) {
                 gemm_band(a, b, ldb, c, n, r0, r1, n, k);
               });
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  ESM_REQUIRE(!rows.empty(), "from_rows requires at least one row");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ESM_REQUIRE(rows[r].size() == m.cols(), "ragged rows in from_rows");
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // vector::resize reuses capacity on shrink and on regrow-within-capacity,
  // so a warmed matrix cycles through shapes without touching the heap.
  data_.resize(rows * cols);
}

void Matrix::fill(double value) {
  for (double& x : data_) x = value;
}

void Matrix::add_scaled(const Matrix& other, double alpha) {
  ESM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& out) {
  ESM_CHECK(a.cols() == b.rows(), "gemm shape mismatch: " << a.cols()
                                                          << " vs "
                                                          << b.rows());
  ESM_CHECK(&out != &a && &out != &b, "gemm output must not alias an input");
  gemm_dispatch({a.data(), a.cols(), 1}, b.data(), b.cols(), out, a.rows(),
                b.cols(), a.cols());
}

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  ESM_CHECK(a.rows() == b.rows(), "gemm_at_b shape mismatch");
  ESM_CHECK(&out != &a && &out != &b,
            "gemm_at_b output must not alias an input");
  // a is k x m read transposed in place: output row i walks a column of a
  // (k_stride = lda). Cache-hostile for huge m, but a^T*b only feeds
  // gradient shapes (m, n <= batch), where the k-block keeps it resident.
  gemm_dispatch({a.data(), 1, a.cols()}, b.data(), b.cols(), out, a.cols(),
                b.cols(), a.rows());
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  ESM_CHECK(a.cols() == b.cols(), "gemm_a_bt shape mismatch");
  ESM_CHECK(&out != &a && &out != &b,
            "gemm_a_bt output must not alias an input");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  // Transpose b once into a per-thread scratch panel and run the plain
  // kernel: O(n*k) copies buy back the contiguous, vectorizable b-rows the
  // dot-product formulation lacks. This is the MLP inference multiply
  // (x * w^T), so the scratch is wT — batch-independent and reused across
  // calls, which keeps the serving path allocation-free once warm.
  static thread_local Matrix bt_scratch;
  bt_scratch.reshape(k, n);
  for (std::size_t p = 0; p < k; ++p) {
    double* dst = bt_scratch.data() + p * n;
    const double* src = b.data() + p;
    for (std::size_t j = 0; j < n; ++j) {
      dst[j] = src[j * k];
    }
  }
  gemm_dispatch({a.data(), k, 1}, bt_scratch.data(), n, out, m, n, k);
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  ESM_CHECK(a.cols() == x.size(), "matvec shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  parallel_for(band_grain(a.rows(), a.cols()), a.rows(),
               [&](std::size_t r0, std::size_t r1) {
                 for (std::size_t i = r0; i < r1; ++i) {
                   const double* row = a.data() + i * a.cols();
                   double acc = 0.0;
                   for (std::size_t j = 0; j < a.cols(); ++j) {
                     acc += row[j] * x[j];
                   }
                   y[i] = acc;
                 }
               });
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  ESM_CHECK(a.size() == b.size(), "dot length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

const char* gemm_backend() { return kGemmBackend; }

std::size_t gemm_simd_width() { return kVecLanes; }

bool gemm_fma_enabled() {
#if defined(ESM_GEMM_FMA)
  return true;
#else
  return false;
#endif
}

double gemm_peak_gflops(double seconds) {
  // 12 independent mul-then-add chains: enough in-flight operations to
  // saturate two vector FP issue ports at mul+add latency, few enough to
  // stay in registers on every backend. Compiled in this translation unit,
  // so the vector width and contraction rules match the microkernel — with
  // ESM_FMA on, the chains contract to FMAs exactly like the kernel would.
  constexpr std::size_t kChains = 12;
  constexpr std::size_t kReps = 4096;
  vd acc[kChains];
  for (std::size_t ch = 0; ch < kChains; ++ch) {
    acc[ch] = vd{} + (1.0 + 1e-3 * static_cast<double>(ch));
  }
  const vd s = vd{} + 0.999;  // decay keeps the values bounded near 1
  const vd d = vd{} + 1e-3;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  std::size_t iters = 0;
  do {
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      for (std::size_t ch = 0; ch < kChains; ++ch) {
        acc[ch] = acc[ch] * s + d;
      }
    }
    iters += kReps;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < seconds);
  double sink = 0.0;
  for (std::size_t ch = 0; ch < kChains; ++ch) {
    const double* lanes = reinterpret_cast<const double*>(&acc[ch]);
    for (std::size_t l = 0; l < kVecLanes; ++l) sink += lanes[l];
  }
  volatile double guard = sink;
  (void)guard;
  const double flops = 2.0 * static_cast<double>(kVecLanes) *
                       static_cast<double>(kChains) *
                       static_cast<double>(iters);
  return flops / elapsed / 1e9;
}

}  // namespace esm
