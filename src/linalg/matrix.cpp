#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace esm {

namespace {

// Parallel granularity: a band must amortize one pool hand-off (~µs), so
// require at least this many multiply-adds per chunk.
constexpr std::size_t kMinFlopsPerBand = 1u << 15;

// k-tile for gemm/gemm_at_b: keeps a window of B rows hot in cache while a
// row band sweeps over them. Tiling only regroups the traversal; each
// output element still sees ascending k, so values are unchanged.
constexpr std::size_t kBlockK = 64;

std::size_t band_grain(std::size_t rows, std::size_t flops_per_row) {
  const std::size_t rows_per_band =
      flops_per_row == 0 ? rows : kMinFlopsPerBand / (flops_per_row + 1) + 1;
  return std::clamp<std::size_t>(rows_per_band, 1, std::max<std::size_t>(rows, 1));
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  ESM_REQUIRE(!rows.empty(), "from_rows requires at least one row");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ESM_REQUIRE(rows[r].size() == m.cols(), "ragged rows in from_rows");
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) {
  for (double& x : data_) x = value;
}

void Matrix::add_scaled(const Matrix& other, double alpha) {
  ESM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& out) {
  ESM_CHECK(a.cols() == b.rows(), "gemm shape mismatch: " << a.cols()
                                                          << " vs "
                                                          << b.rows());
  out = Matrix(a.rows(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  // Row bands of `out` are independent; within a band the k-tiled i-p-j
  // order keeps the inner loop contiguous and reuses the tile of b rows.
  parallel_for(band_grain(m, k * n), m, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(k, p0 + kBlockK);
      for (std::size_t i = r0; i < r1; ++i) {
        double* out_row = out.data() + i * n;
        const double* a_row = a.data() + i * k;
        for (std::size_t p = p0; p < p1; ++p) {
          const double aik = a_row[p];
          if (aik == 0.0) continue;
          const double* b_row = b.data() + p * n;
          for (std::size_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
        }
      }
    }
  });
}

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  ESM_CHECK(a.rows() == b.rows(), "gemm_at_b shape mismatch");
  out = Matrix(a.cols(), b.cols());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  // Transpose-aware banding: a is read down columns (stride m), so each
  // band walks a k-tile of a/b rows before moving its output rows forward.
  parallel_for(band_grain(m, k * n), m, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(k, p0 + kBlockK);
      for (std::size_t p = p0; p < p1; ++p) {
        const double* a_row = a.data() + p * m;
        const double* b_row = b.data() + p * n;
        for (std::size_t i = r0; i < r1; ++i) {
          const double aip = a_row[i];
          if (aip == 0.0) continue;
          double* out_row = out.data() + i * n;
          for (std::size_t j = 0; j < n; ++j) out_row[j] += aip * b_row[j];
        }
      }
    }
  });
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  ESM_CHECK(a.cols() == b.cols(), "gemm_a_bt shape mismatch");
  out = Matrix(a.rows(), b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  parallel_for(band_grain(m, k * n), m, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* a_row = a.data() + i * k;
      double* out_row = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double* b_row = b.data() + j * k;
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        out_row[j] = acc;
      }
    }
  });
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  ESM_CHECK(a.cols() == x.size(), "matvec shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  parallel_for(band_grain(a.rows(), a.cols()), a.rows(),
               [&](std::size_t r0, std::size_t r1) {
                 for (std::size_t i = r0; i < r1; ++i) {
                   const double* row = a.data() + i * a.cols();
                   double acc = 0.0;
                   for (std::size_t j = 0; j < a.cols(); ++j) {
                     acc += row[j] * x[j];
                   }
                   y[i] = acc;
                 }
               });
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  ESM_CHECK(a.size() == b.size(), "dot length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace esm
