#include "linalg/standardizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esm {

void Standardizer::fit(const Matrix& data) {
  ESM_REQUIRE(data.rows() > 0, "Standardizer::fit requires data");
  const std::size_t n = data.rows(), d = data.cols();
  means_.assign(d, 0.0);
  scales_.assign(d, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    for (std::size_t c = 0; c < d; ++c) means_[c] += row[c];
  }
  for (double& m : means_) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = row[c] - means_[c];
      var[c] += diff * diff;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(n));
    scales_[c] = sd > 1e-12 ? sd : 1.0;
  }
}

void Standardizer::set_state(std::vector<double> means,
                             std::vector<double> scales) {
  ESM_REQUIRE(means.size() == scales.size() && !means.empty(),
              "Standardizer state must have matching non-empty vectors");
  for (double s : scales) {
    ESM_REQUIRE(s > 0.0, "Standardizer scales must be positive");
  }
  means_ = std::move(means);
  scales_ = std::move(scales);
}

Matrix Standardizer::transform(const Matrix& data) const {
  ESM_REQUIRE(fitted(), "Standardizer used before fit()");
  ESM_REQUIRE(data.cols() == dimension(),
              "Standardizer dimension mismatch: " << data.cols() << " vs "
                                                  << dimension());
  Matrix out = data;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    transform_row(row);
  }
  return out;
}

void Standardizer::transform_row(std::span<double> row) const {
  ESM_REQUIRE(fitted(), "Standardizer used before fit()");
  ESM_REQUIRE(row.size() == dimension(), "Standardizer row size mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    row[c] = (row[c] - means_[c]) / scales_[c];
  }
}

void TargetScaler::set_state(double mean, double scale) {
  ESM_REQUIRE(scale > 0.0, "TargetScaler scale must be positive");
  mean_ = mean;
  scale_ = scale;
}

void TargetScaler::fit(std::span<const double> targets) {
  ESM_REQUIRE(!targets.empty(), "TargetScaler::fit requires data");
  double sum = 0.0;
  for (double y : targets) sum += y;
  mean_ = sum / static_cast<double>(targets.size());
  double var = 0.0;
  for (double y : targets) var += (y - mean_) * (y - mean_);
  const double sd = std::sqrt(var / static_cast<double>(targets.size()));
  scale_ = sd > 1e-12 ? sd : 1.0;
}

}  // namespace esm
