// Dense row-major matrix with the handful of operations the ML stack needs:
// GEMM variants (with transpose flags), row/column slices, element-wise maps.
// Deliberately minimal — no expression templates, no allocator games — so
// the numerical code stays easy to audit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace esm {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);

  /// Builds from nested initializer data (used by tests).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of the given order.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Resizes to rows x cols reusing the existing allocation when capacity
  /// allows; element values are unspecified afterwards (stale data may
  /// remain). For hot paths that overwrite the whole matrix (the GEMM
  /// drivers, the fused predict workspace) — use the (rows, cols)
  /// constructor when zero-initialization is needed.
  void reshape(std::size_t rows, std::size_t cols);

  /// Mutable view of row r.
  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  /// Read-only view of row r.
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void fill(double value);

  /// Element-wise in-place map. Takes the callable as a template so hot
  /// paths (activations) inline it instead of paying a type-erased call
  /// per element; pass a std::function explicitly if erasure is needed.
  template <typename F>
  void apply(F&& f) {
    for (double& x : data_) x = f(x);
  }

  /// this += alpha * other. Shapes must match.
  void add_scaled(const Matrix& other, double alpha);

  /// Transposed copy.
  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// The GEMM variants below share one cache-blocked, register-tiled,
// vectorized microkernel (see DESIGN.md §6g). Large outputs are
// parallelized over row bands via esm::parallel_for (common/parallel.hpp);
// small multiplies — the MLP serving shape in particular — stay on the
// caller thread entirely. Each output element accumulates its k-products
// in ascending-k order with separate multiply and add (no FMA contraction
// unless the ESM_FMA build option is on), no matter the SIMD width, tiling,
// or thread count — so results are bit-identical at every ESM_THREADS
// setting, on every backend, and to the historical serial kernels.
// `out` must not alias `a` or `b` (checked); a and b may alias each other.

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n). `out` is resized.
void gemm(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n).
void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n).
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// Name of the compiled-in GEMM backend: "avx512", "avx2", "simd128"
/// (SSE2/NEON-width generic vectors), or "scalar" (ESM_SIMD=off or a
/// compiler without GNU vector extensions).
const char* gemm_backend();

/// SIMD lanes (doubles per vector) of the compiled-in microkernel; 1 for
/// the scalar backend.
std::size_t gemm_simd_width();

/// True when the kernel was built with ESM_FMA=ON (FMA contraction
/// allowed; low-order result bits then differ from the default build).
bool gemm_fma_enabled();

/// Measures the attainable multiply-add peak of this build (same vector
/// width and contraction rules as the microkernel) by timing independent
/// mul+add chains for ~`seconds`. Used by bench/micro_perf.cpp to report
/// fraction-of-peak; not a hot-path function.
double gemm_peak_gflops(double seconds = 0.02);

/// y = A * x for a vector x. Requires x.size() == A.cols().
std::vector<double> matvec(const Matrix& a, std::span<const double> x);

/// Dot product of equal-length spans.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace esm
