#include "ml/gcn.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace esm {

GcnRegressor::GcnRegressor(std::size_t input_dim, GcnConfig config)
    : input_dim_(input_dim), config_(config) {
  ESM_REQUIRE(input_dim_ >= 1, "GCN requires a positive input dim");
  ESM_REQUIRE(config_.hidden >= 1, "GCN requires a positive hidden dim");
  ESM_REQUIRE(config_.epochs >= 1, "GCN requires >= 1 epoch");
  Rng rng(config_.seed);
  auto init = [&rng](std::size_t rows, std::size_t cols) {
    Matrix m(rows, cols);
    const double he_std = std::sqrt(2.0 / static_cast<double>(rows));
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal(0.0, he_std);
    }
    return m;
  };
  w1_ = init(input_dim_, config_.hidden);
  w2_ = init(config_.hidden, config_.hidden);
  head_ = init(config_.hidden, 1);
  w1_state_ = {Matrix(input_dim_, config_.hidden),
               Matrix(input_dim_, config_.hidden)};
  w2_state_ = {Matrix(config_.hidden, config_.hidden),
               Matrix(config_.hidden, config_.hidden)};
  head_state_ = {Matrix(config_.hidden, 1), Matrix(config_.hidden, 1)};
}

std::size_t GcnRegressor::parameter_count() const {
  return w1_.size() + w2_.size() + head_.size() + 1;
}

Matrix GcnRegressor::propagate_chain(const Matrix& h) {
  const std::size_t n = h.rows(), d = h.cols();
  Matrix out(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i == 0 ? 0 : i - 1;
    const std::size_t hi = i + 1 < n ? i + 1 : i;
    const double norm = static_cast<double>(hi - lo + 1);
    auto dst = out.row(i);
    for (std::size_t j = lo; j <= hi; ++j) {
      const auto src = h.row(j);
      for (std::size_t c = 0; c < d; ++c) dst[c] += src[c];
    }
    for (std::size_t c = 0; c < d; ++c) dst[c] /= norm;
  }
  return out;
}

Matrix GcnRegressor::propagate_chain_transpose(const Matrix& grad) {
  // out = P^T grad where P is the row-normalized chain averaging:
  // out[j] += grad[i] / deg(i) for every i with j in N(i) u {i}.
  const std::size_t n = grad.rows(), d = grad.cols();
  Matrix out(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i == 0 ? 0 : i - 1;
    const std::size_t hi = i + 1 < n ? i + 1 : i;
    const double inv = 1.0 / static_cast<double>(hi - lo + 1);
    const auto src = grad.row(i);
    for (std::size_t j = lo; j <= hi; ++j) {
      auto dst = out.row(j);
      for (std::size_t c = 0; c < d; ++c) dst[c] += src[c] * inv;
    }
  }
  return out;
}

void GcnRegressor::adam_step(Matrix& param, const Matrix& grad,
                             AdamState& state, double lr) {
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  const double bias1 = 1.0 - std::pow(kBeta1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(kBeta2, static_cast<double>(step_));
  for (std::size_t i = 0; i < param.size(); ++i) {
    const double g = grad.data()[i] + config_.weight_decay * param.data()[i];
    double& m = state.m.data()[i];
    double& v = state.v.data()[i];
    m = kBeta1 * m + (1.0 - kBeta1) * g;
    v = kBeta2 * v + (1.0 - kBeta2) * g * g;
    param.data()[i] -= lr * (m / bias1) / (std::sqrt(v / bias2) + kEps);
  }
}

double GcnRegressor::train_one(const Matrix& nodes, double target,
                               double lr) {
  const std::size_t n = nodes.rows();
  // Forward.
  const Matrix m0 = propagate_chain(nodes);
  Matrix z1;
  gemm(m0, w1_, z1);
  Matrix h1 = z1;
  h1.apply([](double x) { return x > 0.0 ? x : 0.0; });
  const Matrix m1 = propagate_chain(h1);
  Matrix z2;
  gemm(m1, w2_, z2);
  Matrix h2 = z2;
  h2.apply([](double x) { return x > 0.0 ? x : 0.0; });
  std::vector<double> pooled(config_.hidden, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = h2.row(r);
    for (std::size_t c = 0; c < config_.hidden; ++c) pooled[c] += row[c];
  }
  for (double& v : pooled) v /= static_cast<double>(n);
  double y = head_bias_;
  for (std::size_t c = 0; c < config_.hidden; ++c) {
    y += pooled[c] * head_(c, 0);
  }
  const double diff = y - target;
  const double loss = diff * diff;

  // Backward.
  ++step_;
  const double dy = 2.0 * diff;
  Matrix head_grad(config_.hidden, 1);
  for (std::size_t c = 0; c < config_.hidden; ++c) {
    head_grad(c, 0) = dy * pooled[c];
  }
  // dH2: every row gets dy * head / n, masked by ReLU'.
  Matrix dz2(n, config_.hidden);
  for (std::size_t r = 0; r < n; ++r) {
    auto dst = dz2.row(r);
    for (std::size_t c = 0; c < config_.hidden; ++c) {
      dst[c] = z2(r, c) > 0.0
                   ? dy * head_(c, 0) / static_cast<double>(n)
                   : 0.0;
    }
  }
  Matrix w2_grad;
  gemm_at_b(m1, dz2, w2_grad);
  Matrix dm1;
  gemm_a_bt(dz2, w2_, dm1);
  Matrix dh1 = propagate_chain_transpose(dm1);
  Matrix dz1 = dh1;
  for (std::size_t r = 0; r < n; ++r) {
    auto dst = dz1.row(r);
    for (std::size_t c = 0; c < config_.hidden; ++c) {
      if (z1(r, c) <= 0.0) dst[c] = 0.0;
    }
  }
  Matrix w1_grad;
  gemm_at_b(m0, dz1, w1_grad);

  adam_step(w1_, w1_grad, w1_state_, lr);
  adam_step(w2_, w2_grad, w2_state_, lr);
  adam_step(head_, head_grad, head_state_, lr);
  {
    constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
    const double bias1 = 1.0 - std::pow(kBeta1, static_cast<double>(step_));
    const double bias2 = 1.0 - std::pow(kBeta2, static_cast<double>(step_));
    bias_m_ = kBeta1 * bias_m_ + (1.0 - kBeta1) * dy;
    bias_v_ = kBeta2 * bias_v_ + (1.0 - kBeta2) * dy * dy;
    head_bias_ -= lr * (bias_m_ / bias1) / (std::sqrt(bias_v_ / bias2) + kEps);
  }
  return loss;
}

void GcnRegressor::fit(const std::vector<Matrix>& graphs,
                       const std::vector<double>& targets) {
  ESM_REQUIRE(graphs.size() == targets.size(), "GCN data mismatch");
  ESM_REQUIRE(!graphs.empty(), "GCN requires data");
  for (const Matrix& g : graphs) {
    ESM_REQUIRE(g.cols() == input_dim_ && g.rows() >= 1,
                "GCN graph with wrong feature width");
  }
  Rng rng(config_.seed ^ 0x9e3779b9ull);
  std::vector<std::size_t> order(graphs.size());
  std::iota(order.begin(), order.end(), 0u);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    // Cosine decay to a tenth of the base rate.
    const double progress =
        config_.epochs > 1
            ? static_cast<double>(epoch) / (config_.epochs - 1)
            : 1.0;
    const double lr =
        config_.learning_rate *
        (0.1 + 0.45 * (1.0 + std::cos(3.14159265358979323846 * progress)));
    for (std::size_t i : order) {
      train_one(graphs[i], targets[i], lr);
    }
  }
  fitted_ = true;
}

double GcnRegressor::predict(const Matrix& nodes) const {
  ESM_REQUIRE(fitted_, "GCN used before fit()");
  ESM_REQUIRE(nodes.cols() == input_dim_, "GCN graph feature width mismatch");
  const Matrix m0 = propagate_chain(nodes);
  Matrix z1;
  gemm(m0, w1_, z1);
  z1.apply([](double x) { return x > 0.0 ? x : 0.0; });
  const Matrix m1 = propagate_chain(z1);
  Matrix z2;
  gemm(m1, w2_, z2);
  z2.apply([](double x) { return x > 0.0 ? x : 0.0; });
  double y = head_bias_;
  for (std::size_t c = 0; c < config_.hidden; ++c) {
    double pooled = 0.0;
    for (std::size_t r = 0; r < nodes.rows(); ++r) pooled += z2(r, c);
    y += head_(c, 0) * pooled / static_cast<double>(nodes.rows());
  }
  return y;
}

}  // namespace esm
