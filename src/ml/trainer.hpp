// Minibatch training loop for the MLP predictor: epoch shuffling, cosine or
// constant learning-rate schedule, and wall-clock accounting (the paper's
// Fig. 4a compares predictor training time against latency-measurement time,
// so the trainer reports real elapsed seconds).
#pragma once

#include <cstdint>
#include <span>

#include "linalg/matrix.hpp"
#include "ml/mlp.hpp"

namespace esm {

/// Learning-rate schedule across epochs.
enum class LrSchedule { kConstant, kCosine };

/// Training hyper-parameters (defaults follow the paper's setup).
struct TrainConfig {
  int epochs = 200;
  std::size_t batch_size = 256;
  AdamConfig adam;                      ///< lr 0.01, weight decay 1e-4
  LrSchedule schedule = LrSchedule::kCosine;
  double min_lr_fraction = 0.01;        ///< cosine floor as fraction of lr
  std::uint64_t shuffle_seed = 1;
};

/// Outcome of one fit() call.
struct TrainResult {
  double final_train_mse = 0.0;  ///< mean batch MSE of the last epoch
  int epochs_run = 0;
  double train_seconds = 0.0;    ///< wall-clock time spent in fit()
};

/// Runs the minibatch Adam loop on a scalar-output MLP.
class MlpTrainer {
 public:
  explicit MlpTrainer(TrainConfig config = {});

  const TrainConfig& config() const { return config_; }

  /// Trains `mlp` in place on (x, y). Targets are used as-is; standardize
  /// them beforehand (the surrogate layer does).
  TrainResult fit(Mlp& mlp, const Matrix& x, std::span<const double> y) const;

 private:
  double epoch_lr(int epoch) const;

  TrainConfig config_;
};

}  // namespace esm
