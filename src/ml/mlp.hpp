// Multilayer-perceptron regressor with Adam, matching the paper's predictor:
// three fully-connected layers with hidden dimension 64, ReLU activations,
// MSE loss, Adam with learning rate 0.01 and weight decay 1e-4 (§III-A).
//
// The MLP operates on whatever feature space it is given; the surrogate
// layer (src/surrogate) composes it with an architecture encoder and
// input/target standardization.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/archive.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace esm {

/// Adam hyper-parameters (defaults follow the paper).
struct AdamConfig {
  double learning_rate = 0.01;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 1e-4;  ///< L2 added to gradients (coupled, PyTorch-style)
};

/// Feed-forward ReLU network trained with minibatch Adam on MSE loss.
class Mlp {
 public:
  /// `dims` lists layer widths input-first, e.g. {36, 64, 64, 1}.
  /// Weights use He initialization drawn from `rng`.
  Mlp(std::vector<std::size_t> dims, Rng& rng);

  /// Paper architecture: in -> 64 -> 64 -> 1.
  static Mlp paper_predictor(std::size_t input_dim, Rng& rng);

  std::size_t input_dim() const { return dims_.front(); }
  std::size_t output_dim() const { return dims_.back(); }
  std::size_t parameter_count() const;

  /// Reusable activation buffers for the allocation-free forward path.
  /// Warm after one call at a given batch size; safe to share across calls
  /// on the same thread (the fused surrogate path keeps one per thread).
  struct Workspace {
    Matrix a, b;
  };

  /// Batched forward pass: returns an (x.rows() x output_dim) matrix.
  Matrix forward(const Matrix& x) const;

  /// Batched forward pass into caller-owned buffers; returns a reference
  /// to the workspace buffer holding the output (valid until the next call
  /// with the same workspace). Performs no heap allocation once `ws` has
  /// warmed to the batch size. Bit-identical to forward().
  const Matrix& forward_into(const Matrix& x, Workspace& ws) const;

  /// Convenience: forward for scalar-output networks.
  std::vector<double> predict(const Matrix& x) const;

  /// predict() into a caller-provided span (out.size() == x.rows());
  /// allocation-free once `ws` is warm.
  void predict_into(const Matrix& x, std::span<double> out,
                    Workspace& ws) const;

  double predict_one(std::span<const double> features) const;

  /// One Adam step on a minibatch (MSE loss, scalar output). Returns the
  /// batch's mean squared error *before* the step.
  double train_batch(const Matrix& x, std::span<const double> y,
                     const AdamConfig& cfg, double lr_override);

  /// Persists the network (dims + weights; optimizer state is not saved).
  void save(ArchiveWriter& archive, const std::string& prefix) const;

  /// Restores a network saved with save().
  static Mlp load(const ArchiveReader& archive, const std::string& prefix);

 private:
  struct Dense {
    Matrix w;  // out x in
    std::vector<double> b;
    Matrix m_w, v_w;  // Adam moments
    std::vector<double> m_b, v_b;
  };

  std::vector<std::size_t> dims_;
  std::vector<Dense> layers_;
  long long adam_step_ = 0;
};

}  // namespace esm
