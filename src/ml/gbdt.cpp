#include "ml/gbdt.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace esm {

GradientBoostingRegressor::GradientBoostingRegressor(GbdtConfig config)
    : config_(config) {
  ESM_REQUIRE(config_.n_estimators >= 1, "GBDT needs >= 1 estimator");
  ESM_REQUIRE(config_.learning_rate > 0.0, "GBDT learning rate must be > 0");
}

void GradientBoostingRegressor::fit(const Matrix& x,
                                    std::span<const double> y) {
  ESM_REQUIRE(x.rows() == y.size(), "GBDT data mismatch");
  ESM_REQUIRE(x.rows() > 0, "GBDT requires data");
  stages_.clear();
  base_prediction_ = mean(y);

  std::vector<double> residual(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    residual[i] = y[i] - base_prediction_;
  }

  for (int stage = 0; stage < config_.n_estimators; ++stage) {
    DecisionTreeRegressor tree(config_.tree);
    tree.fit(x, residual);
    const std::vector<double> update = tree.predict(x);
    for (std::size_t i = 0; i < residual.size(); ++i) {
      residual[i] -= config_.learning_rate * update[i];
    }
    stages_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GradientBoostingRegressor::predict_one(
    std::span<const double> features) const {
  ESM_REQUIRE(fitted_, "GBDT used before fit()");
  double acc = base_prediction_;
  for (const DecisionTreeRegressor& tree : stages_) {
    acc += config_.learning_rate * tree.predict_one(features);
  }
  return acc;
}

std::vector<double> GradientBoostingRegressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_one(x.row(r));
  return out;
}

void GradientBoostingRegressor::save(ArchiveWriter& archive,
                                     const std::string& prefix) const {
  ESM_REQUIRE(fitted_, "cannot save an unfitted GBDT");
  archive.put_double(prefix + "learning_rate", config_.learning_rate);
  archive.put_double(prefix + "base_prediction", base_prediction_);
  archive.put_int(prefix + "stages", static_cast<long long>(stages_.size()));
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stages_[i].save(archive, prefix + "s" + std::to_string(i) + ".");
  }
}

GradientBoostingRegressor GradientBoostingRegressor::load(
    const ArchiveReader& archive, const std::string& prefix) {
  const long long stages = archive.get_int(prefix + "stages");
  ESM_REQUIRE(stages >= 1, "GBDT archive '" << prefix << "' has no stages");
  GbdtConfig config;
  config.n_estimators = static_cast<int>(stages);
  config.learning_rate = archive.get_double(prefix + "learning_rate");
  GradientBoostingRegressor model(config);
  model.base_prediction_ = archive.get_double(prefix + "base_prediction");
  model.stages_.reserve(static_cast<std::size_t>(stages));
  for (long long i = 0; i < stages; ++i) {
    model.stages_.push_back(DecisionTreeRegressor::load(
        archive, prefix + "s" + std::to_string(i) + "."));
  }
  model.fitted_ = true;
  return model;
}

}  // namespace esm
