#include "ml/trainer.hpp"

#include <chrono>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace esm {

MlpTrainer::MlpTrainer(TrainConfig config) : config_(config) {
  ESM_REQUIRE(config_.epochs >= 1, "trainer needs >= 1 epoch");
  ESM_REQUIRE(config_.batch_size >= 1, "trainer needs a positive batch size");
}

double MlpTrainer::epoch_lr(int epoch) const {
  const double base = config_.adam.learning_rate;
  switch (config_.schedule) {
    case LrSchedule::kConstant:
      return base;
    case LrSchedule::kCosine: {
      const double floor = base * config_.min_lr_fraction;
      const double progress =
          config_.epochs > 1
              ? static_cast<double>(epoch) / (config_.epochs - 1)
              : 1.0;
      return floor + 0.5 * (base - floor) *
                         (1.0 + std::cos(3.14159265358979323846 * progress));
    }
  }
  return base;
}

TrainResult MlpTrainer::fit(Mlp& mlp, const Matrix& x,
                            std::span<const double> y) const {
  ESM_REQUIRE(x.rows() == y.size(), "trainer data mismatch");
  ESM_REQUIRE(x.rows() > 0, "trainer requires data");
  const auto start = std::chrono::steady_clock::now();

  const std::size_t n = x.rows();
  const std::size_t batch = std::min(config_.batch_size, n);
  Rng rng(config_.shuffle_seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  TrainResult result;
  Matrix batch_x(batch, x.cols());
  std::vector<double> batch_y(batch);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    const double lr = epoch_lr(epoch);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t off = 0; off + batch <= n; off += batch) {
      for (std::size_t i = 0; i < batch; ++i) {
        const auto src = x.row(order[off + i]);
        auto dst = batch_x.row(i);
        for (std::size_t c = 0; c < x.cols(); ++c) dst[c] = src[c];
        batch_y[i] = y[order[off + i]];
      }
      epoch_loss += mlp.train_batch(batch_x, batch_y, config_.adam, lr);
      ++batches;
    }
    if (batches > 0) {
      result.final_train_mse = epoch_loss / static_cast<double>(batches);
    }
    ++result.epochs_run;
  }

  const auto end = std::chrono::steady_clock::now();
  result.train_seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace esm
