#include "ml/dataset.hpp"

#include <numeric>

#include "common/error.hpp"

namespace esm {

void RegressionDataset::add(std::span<const double> features, double target) {
  if (dimension_ == 0 && empty()) dimension_ = features.size();
  ESM_REQUIRE(features.size() == dimension_,
              "sample dimension " << features.size()
                                  << " != dataset dimension " << dimension_);
  ESM_REQUIRE(dimension_ > 0, "samples must have at least one feature");
  flat_.insert(flat_.end(), features.begin(), features.end());
  targets_.push_back(target);
  cache_valid_ = false;
}

void RegressionDataset::append(const RegressionDataset& other) {
  if (other.empty()) return;
  if (empty() && dimension_ == 0) dimension_ = other.dimension();
  ESM_REQUIRE(other.dimension() == dimension_,
              "appending dataset of dimension " << other.dimension()
                                                << " to " << dimension_);
  flat_.insert(flat_.end(), other.flat_.begin(), other.flat_.end());
  targets_.insert(targets_.end(), other.targets_.begin(),
                  other.targets_.end());
  cache_valid_ = false;
}

const Matrix& RegressionDataset::features() const {
  if (!cache_valid_) {
    cache_ = Matrix(size(), dimension_);
    for (std::size_t r = 0; r < size(); ++r) {
      const auto src = row(r);
      auto dst = cache_.row(r);
      for (std::size_t c = 0; c < dimension_; ++c) dst[c] = src[c];
    }
    cache_valid_ = true;
  }
  return cache_;
}

void RegressionDataset::shuffle(Rng& rng) {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  *this = subset(order);
}

std::pair<RegressionDataset, RegressionDataset> RegressionDataset::split(
    std::size_t head) const {
  ESM_REQUIRE(head <= size(), "split head " << head << " exceeds dataset size "
                                            << size());
  std::vector<std::size_t> first(head), rest(size() - head);
  std::iota(first.begin(), first.end(), 0u);
  std::iota(rest.begin(), rest.end(), head);
  return {subset(first), subset(rest)};
}

RegressionDataset RegressionDataset::subset(
    const std::vector<std::size_t>& indices) const {
  RegressionDataset out(dimension_);
  out.flat_.reserve(indices.size() * dimension_);
  out.targets_.reserve(indices.size());
  for (const std::size_t i : indices) {
    ESM_REQUIRE(i < size(), "subset index out of range");
    const auto src = row(i);
    out.flat_.insert(out.flat_.end(), src.begin(), src.end());
    out.targets_.push_back(targets_[i]);
  }
  return out;
}

}  // namespace esm
