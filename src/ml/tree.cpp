#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace esm {

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config)
    : config_(config) {
  ESM_REQUIRE(config_.max_depth >= 1, "tree max_depth must be >= 1");
  ESM_REQUIRE(config_.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
}

namespace {

double subset_mean(std::span<const double> y,
                   const std::vector<std::size_t>& indices) {
  double acc = 0.0;
  for (std::size_t i : indices) acc += y[i];
  return indices.empty() ? 0.0 : acc / static_cast<double>(indices.size());
}

/// Best admissible split of one feature (infinite score when none).
struct SplitCandidate {
  double score = std::numeric_limits<double>::infinity();
  double threshold = 0.0;
};

// Only fan the per-feature scan out when a node is big enough for a chunk
// of features to amortize the pool hand-off.
constexpr std::size_t kMinSplitWorkPerChunk = 1u << 14;

}  // namespace

int DecisionTreeRegressor::build(const Matrix& x, std::span<const double> y,
                                 std::vector<std::size_t>& indices,
                                 int depth) {
  Node node;
  node.value = subset_mean(y, indices);
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  if (depth >= config_.max_depth ||
      indices.size() < config_.min_samples_split) {
    return node_id;
  }

  // Find the split minimizing weighted child variance (equivalently,
  // maximizing variance reduction) across all features. Each feature scan
  // is independent, so features fan out over the pool; the winner is then
  // reduced in ascending feature order with a strict `<`, which keeps the
  // serial tie-break (lowest feature index) — the chosen split is
  // invariant to thread count.
  std::vector<SplitCandidate> candidates(x.cols());
  const std::size_t feature_grain =
      std::max<std::size_t>(1, kMinSplitWorkPerChunk / indices.size());
  parallel_for(feature_grain, x.cols(), [&](std::size_t f0, std::size_t f1) {
    std::vector<std::pair<double, double>> column(indices.size());
    for (std::size_t f = f0; f < f1; ++f) {
      for (std::size_t i = 0; i < indices.size(); ++i) {
        column[i] = {x(indices[i], f), y[indices[i]]};
      }
      std::sort(column.begin(), column.end());
      // Prefix sums for O(1) variance of each prefix/suffix.
      double sum_left = 0.0, sumsq_left = 0.0;
      double sum_total = 0.0, sumsq_total = 0.0;
      for (const auto& [xv, yv] : column) {
        sum_total += yv;
        sumsq_total += yv * yv;
      }
      const auto n = static_cast<double>(column.size());
      SplitCandidate& best = candidates[f];
      for (std::size_t i = 0; i + 1 < column.size(); ++i) {
        sum_left += column[i].second;
        sumsq_left += column[i].second * column[i].second;
        // Can't split between equal feature values.
        if (column[i].first == column[i + 1].first) continue;
        const double n_left = static_cast<double>(i + 1);
        const double n_right = n - n_left;
        if (n_left < static_cast<double>(config_.min_samples_leaf) ||
            n_right < static_cast<double>(config_.min_samples_leaf)) {
          continue;
        }
        const double sum_right = sum_total - sum_left;
        const double sumsq_right = sumsq_total - sumsq_left;
        const double sse_left = sumsq_left - sum_left * sum_left / n_left;
        const double sse_right = sumsq_right - sum_right * sum_right / n_right;
        const double score = sse_left + sse_right;
        if (score < best.score) {
          best.score = score;
          best.threshold = 0.5 * (column[i].first + column[i + 1].first);
        }
      }
    }
  });

  double best_score = std::numeric_limits<double>::infinity();
  int best_feature = -1;
  double best_threshold = 0.0;
  for (std::size_t f = 0; f < candidates.size(); ++f) {
    if (candidates[f].score < best_score) {
      best_score = candidates[f].score;
      best_feature = static_cast<int>(f);
      best_threshold = candidates[f].threshold;
    }
  }

  if (best_feature < 0) return node_id;  // no admissible split

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    if (x(i, static_cast<std::size_t>(best_feature)) <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  ESM_CHECK(!left_idx.empty() && !right_idx.empty(),
            "degenerate split slipped through");

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(x, y, left_idx, depth + 1);
  const int right = build(x, y, right_idx, depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

void DecisionTreeRegressor::fit(const Matrix& x, std::span<const double> y) {
  ESM_REQUIRE(x.rows() == y.size(), "tree data mismatch");
  ESM_REQUIRE(x.rows() > 0, "tree requires data");
  nodes_.clear();
  std::vector<std::size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0u);
  build(x, y, indices, 0);
}

double DecisionTreeRegressor::predict_one(
    std::span<const double> features) const {
  ESM_REQUIRE(fitted(), "tree used before fit()");
  int node = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature < 0) return n.value;
    node = features[static_cast<std::size_t>(n.feature)] <= n.threshold
               ? n.left
               : n.right;
  }
}

std::vector<double> DecisionTreeRegressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_one(x.row(r));
  return out;
}

int DecisionTreeRegressor::depth() const {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature >= 0) {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_depth;
}

void DecisionTreeRegressor::save(ArchiveWriter& archive,
                                 const std::string& prefix) const {
  ESM_REQUIRE(fitted(), "cannot save an unfitted tree");
  // Five parallel columns; ints round-trip exactly as doubles at these
  // magnitudes.
  std::vector<double> feature, threshold, value, left, right;
  feature.reserve(nodes_.size());
  threshold.reserve(nodes_.size());
  value.reserve(nodes_.size());
  left.reserve(nodes_.size());
  right.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    feature.push_back(static_cast<double>(n.feature));
    threshold.push_back(n.threshold);
    value.push_back(n.value);
    left.push_back(static_cast<double>(n.left));
    right.push_back(static_cast<double>(n.right));
  }
  archive.put_doubles(prefix + "feature", feature);
  archive.put_doubles(prefix + "threshold", threshold);
  archive.put_doubles(prefix + "value", value);
  archive.put_doubles(prefix + "left", left);
  archive.put_doubles(prefix + "right", right);
}

DecisionTreeRegressor DecisionTreeRegressor::load(const ArchiveReader& archive,
                                                  const std::string& prefix) {
  const std::vector<double> feature = archive.get_doubles(prefix + "feature");
  const std::vector<double> threshold =
      archive.get_doubles(prefix + "threshold");
  const std::vector<double> value = archive.get_doubles(prefix + "value");
  const std::vector<double> left = archive.get_doubles(prefix + "left");
  const std::vector<double> right = archive.get_doubles(prefix + "right");
  const std::size_t n = feature.size();
  ESM_REQUIRE(n > 0, "tree archive '" << prefix << "' is empty");
  ESM_REQUIRE(threshold.size() == n && value.size() == n &&
                  left.size() == n && right.size() == n,
              "tree archive '" << prefix << "' has mismatched columns");
  DecisionTreeRegressor tree;
  tree.nodes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Node& node = tree.nodes_[i];
    node.feature = static_cast<int>(feature[i]);
    node.threshold = threshold[i];
    node.value = value[i];
    node.left = static_cast<int>(left[i]);
    node.right = static_cast<int>(right[i]);
    const bool is_leaf = node.feature < 0;
    ESM_REQUIRE(is_leaf || (node.left >= 0 && node.right >= 0 &&
                            static_cast<std::size_t>(node.left) < n &&
                            static_cast<std::size_t>(node.right) < n),
                "tree archive '" << prefix << "' has dangling child index");
  }
  return tree;
}

}  // namespace esm
