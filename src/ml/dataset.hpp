// Regression dataset container: encoded architecture vectors paired with
// measured latencies, plus the split/shuffle/append operations the ESM
// train-evaluate-extend loop needs. Rows are stored in a flat buffer with
// amortized growth; the Matrix view is materialized lazily and cached.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace esm {

/// Feature matrix + target vector with aligned rows.
class RegressionDataset {
 public:
  RegressionDataset() = default;

  /// Creates an empty dataset with a fixed feature dimension.
  explicit RegressionDataset(std::size_t dimension) : dimension_(dimension) {}

  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }
  std::size_t dimension() const { return dimension_; }

  /// Appends one sample. The first add fixes the dimension if it was 0.
  void add(std::span<const double> features, double target);

  /// Appends every sample of another dataset (dimensions must match).
  void append(const RegressionDataset& other);

  /// The feature matrix (rows = samples); built lazily, cached.
  const Matrix& features() const;
  const std::vector<double>& targets() const { return targets_; }

  std::span<const double> row(std::size_t i) const {
    return {flat_.data() + i * dimension_, dimension_};
  }
  double target(std::size_t i) const { return targets_[i]; }

  /// Random permutation of the rows.
  void shuffle(Rng& rng);

  /// Splits off the first `head` rows into one dataset and the rest into
  /// another (shuffle first for a random split).
  std::pair<RegressionDataset, RegressionDataset> split(std::size_t head) const;

  /// Subset by row indices.
  RegressionDataset subset(const std::vector<std::size_t>& indices) const;

 private:
  std::size_t dimension_ = 0;
  std::vector<double> flat_;  // size() * dimension_ values, row-major
  std::vector<double> targets_;
  mutable Matrix cache_;
  mutable bool cache_valid_ = false;
};

}  // namespace esm
