// Gradient-boosted regression trees (squared loss): each stage fits a
// shallow CART tree to the current residuals. Baseline for the model-family
// ablation (the paper's related work cites boosted decision trees).
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/tree.hpp"

namespace esm {

/// Boosting hyper-parameters.
struct GbdtConfig {
  int n_estimators = 100;
  double learning_rate = 0.1;
  TreeConfig tree = {.max_depth = 5,
                     .min_samples_leaf = 4,
                     .min_samples_split = 8};
};

/// Squared-loss gradient boosting over regression trees.
class GradientBoostingRegressor {
 public:
  explicit GradientBoostingRegressor(GbdtConfig config = {});

  void fit(const Matrix& x, std::span<const double> y);

  std::vector<double> predict(const Matrix& x) const;
  double predict_one(std::span<const double> features) const;

  bool fitted() const { return fitted_; }
  std::size_t stage_count() const { return stages_.size(); }

  /// Persists the fitted ensemble (base prediction, shrinkage, stage trees).
  void save(ArchiveWriter& archive, const std::string& prefix) const;

  /// Restores an ensemble saved with save().
  static GradientBoostingRegressor load(const ArchiveReader& archive,
                                        const std::string& prefix);

 private:
  GbdtConfig config_;
  double base_prediction_ = 0.0;
  std::vector<DecisionTreeRegressor> stages_;
  bool fitted_ = false;
};

}  // namespace esm
