// CART regression tree (variance-reduction splits). The paper's related work
// uses decision-tree and boosted-tree latency predictors; these provide the
// model-family ablation baselines (bench/ablation_models).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/archive.hpp"
#include "linalg/matrix.hpp"

namespace esm {

/// Decision-tree regressor hyper-parameters.
struct TreeConfig {
  int max_depth = 12;
  std::size_t min_samples_leaf = 4;
  std::size_t min_samples_split = 8;
};

/// Axis-aligned CART regression tree.
class DecisionTreeRegressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig config = {});

  void fit(const Matrix& x, std::span<const double> y);

  std::vector<double> predict(const Matrix& x) const;
  double predict_one(std::span<const double> features) const;

  bool fitted() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

  /// Persists the fitted node table (hyper-parameters are not saved; a
  /// loaded tree predicts but refits under default config).
  void save(ArchiveWriter& archive, const std::string& prefix) const;

  /// Restores a tree saved with save().
  static DecisionTreeRegressor load(const ArchiveReader& archive,
                                    const std::string& prefix);

 private:
  struct Node {
    int feature = -1;        ///< -1 for leaves
    double threshold = 0.0;  ///< go left when x[feature] <= threshold
    double value = 0.0;      ///< leaf prediction
    int left = -1;
    int right = -1;
  };

  int build(const Matrix& x, std::span<const double> y,
            std::vector<std::size_t>& indices, int depth);

  TreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace esm
