#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace esm {

double sample_accuracy(double predicted, double actual) {
  ESM_REQUIRE(actual > 0.0, "sample_accuracy requires a positive actual");
  const double relative_error = std::abs(predicted - actual) / actual;
  return std::max(0.0, 1.0 - relative_error);
}

double mean_accuracy(std::span<const double> predicted,
                     std::span<const double> actual) {
  ESM_REQUIRE(predicted.size() == actual.size(),
              "mean_accuracy length mismatch");
  if (predicted.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += sample_accuracy(predicted[i], actual[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double mape(std::span<const double> predicted,
            std::span<const double> actual) {
  ESM_REQUIRE(predicted.size() == actual.size(), "mape length mismatch");
  if (predicted.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ESM_REQUIRE(actual[i] > 0.0, "mape requires positive actuals");
    acc += std::abs(predicted[i] - actual[i]) / actual[i];
  }
  return acc / static_cast<double>(predicted.size());
}

double rmse(std::span<const double> predicted,
            std::span<const double> actual) {
  ESM_REQUIRE(predicted.size() == actual.size(), "rmse length mismatch");
  if (predicted.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> actual) {
  ESM_REQUIRE(predicted.size() == actual.size(), "r_squared length mismatch");
  if (predicted.size() < 2) return 0.0;
  const double mean_actual = mean(actual);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean_actual) * (actual[i] - mean_actual);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace esm
