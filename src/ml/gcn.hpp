// Graph convolutional network regressor over chain graphs.
//
// The paper's related work ([14], [19] — BRP-NAS-style predictors) encodes
// architectures as graphs and regresses latency with a GCN. This is that
// baseline: nodes are blocks in execution order (a chain), propagation is
// mean aggregation over {previous, self, next}, followed by two GCN layers,
// mean-pool readout, and a linear head. Trained with Adam on MSE, one graph
// per step, full manual backpropagation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace esm {

/// GCN hyper-parameters.
struct GcnConfig {
  std::size_t hidden = 32;
  int epochs = 60;
  double learning_rate = 0.005;
  double weight_decay = 1e-4;
  std::uint64_t seed = 1;
};

/// Two-layer chain-graph GCN with mean-pool readout and scalar output.
class GcnRegressor {
 public:
  /// `input_dim` is the per-node feature width.
  GcnRegressor(std::size_t input_dim, GcnConfig config);

  /// Trains on graphs given as node-feature matrices (rows = chain nodes in
  /// execution order) with scalar targets. Standardize targets beforehand
  /// if their scale is large.
  void fit(const std::vector<Matrix>& graphs,
           const std::vector<double>& targets);

  /// Predicts the scalar for one graph.
  double predict(const Matrix& nodes) const;

  bool fitted() const { return fitted_; }
  std::size_t parameter_count() const;

  /// Mean aggregation over {prev, self, next} for a chain graph (public
  /// for tests).
  static Matrix propagate_chain(const Matrix& h);

 private:
  /// Transpose of the chain-averaging operator (for backprop).
  static Matrix propagate_chain_transpose(const Matrix& grad);

  double train_one(const Matrix& nodes, double target, double lr);

  struct AdamState {
    Matrix m, v;
  };
  void adam_step(Matrix& param, const Matrix& grad, AdamState& state,
                 double lr);

  std::size_t input_dim_;
  GcnConfig config_;
  Matrix w1_, w2_;       // input->hidden, hidden->hidden
  Matrix head_;          // hidden x 1
  double head_bias_ = 0.0;
  AdamState w1_state_, w2_state_, head_state_;
  double bias_m_ = 0.0, bias_v_ = 0.0;
  long long step_ = 0;
  bool fitted_ = false;
};

}  // namespace esm
