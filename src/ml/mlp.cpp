#include "ml/mlp.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esm {

Mlp::Mlp(std::vector<std::size_t> dims, Rng& rng) : dims_(std::move(dims)) {
  ESM_REQUIRE(dims_.size() >= 2, "MLP needs at least input and output dims");
  for (std::size_t d : dims_) {
    ESM_REQUIRE(d >= 1, "MLP layer widths must be positive");
  }
  layers_.reserve(dims_.size() - 1);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
    const std::size_t fan_in = dims_[i];
    const std::size_t fan_out = dims_[i + 1];
    Dense layer;
    layer.w = Matrix(fan_out, fan_in);
    const double he_std = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (std::size_t r = 0; r < fan_out; ++r) {
      for (std::size_t c = 0; c < fan_in; ++c) {
        layer.w(r, c) = rng.normal(0.0, he_std);
      }
    }
    layer.b.assign(fan_out, 0.0);
    layer.m_w = Matrix(fan_out, fan_in);
    layer.v_w = Matrix(fan_out, fan_in);
    layer.m_b.assign(fan_out, 0.0);
    layer.v_b.assign(fan_out, 0.0);
    layers_.push_back(std::move(layer));
  }
}

Mlp Mlp::paper_predictor(std::size_t input_dim, Rng& rng) {
  return Mlp({input_dim, 64, 64, 1}, rng);
}

std::size_t Mlp::parameter_count() const {
  std::size_t total = 0;
  for (const Dense& l : layers_) total += l.w.size() + l.b.size();
  return total;
}

namespace {

/// h = x * w^T + b, then optional ReLU.
void dense_forward(const Matrix& x, const Matrix& w,
                   const std::vector<double>& b, bool relu, Matrix& out) {
  gemm_a_bt(x, w, out);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) {
      row[c] += b[c];
      if (relu && row[c] < 0.0) row[c] = 0.0;
    }
  }
}

}  // namespace

Matrix Mlp::forward(const Matrix& x) const {
  Workspace ws;
  return forward_into(x, ws);  // copies the result out of the workspace
}

const Matrix& Mlp::forward_into(const Matrix& x, Workspace& ws) const {
  ESM_REQUIRE(x.cols() == input_dim(),
              "MLP input dim " << x.cols() << " != " << input_dim());
  // Ping-pong between the two workspace buffers: layer i reads the
  // previous layer's buffer (or x) and writes the other one, so no layer
  // ever aliases its input and no per-layer matrix is allocated.
  const Matrix* cur = &x;
  Matrix* bufs[2] = {&ws.a, &ws.b};
  std::size_t which = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Matrix* next = bufs[which];
    which ^= 1;
    const bool relu = i + 1 < layers_.size();
    dense_forward(*cur, layers_[i].w, layers_[i].b, relu, *next);
    cur = next;
  }
  return *cur;
}

std::vector<double> Mlp::predict(const Matrix& x) const {
  Workspace ws;
  std::vector<double> y(x.rows());
  predict_into(x, y, ws);
  return y;
}

void Mlp::predict_into(const Matrix& x, std::span<double> out,
                       Workspace& ws) const {
  ESM_REQUIRE(output_dim() == 1, "predict() requires a scalar-output MLP");
  ESM_REQUIRE(out.size() == x.rows(), "predict_into output size mismatch");
  const Matrix& h = forward_into(x, ws);
  for (std::size_t r = 0; r < h.rows(); ++r) out[r] = h(r, 0);
}

double Mlp::predict_one(std::span<const double> features) const {
  Matrix x(1, features.size());
  auto row = x.row(0);
  for (std::size_t c = 0; c < features.size(); ++c) row[c] = features[c];
  return predict(x).front();
}

void Mlp::save(ArchiveWriter& archive, const std::string& prefix) const {
  std::vector<double> dims;
  for (std::size_t d : dims_) dims.push_back(static_cast<double>(d));
  archive.put_doubles(prefix + ".dims", dims);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Dense& layer = layers_[i];
    std::vector<double> w(layer.w.data(), layer.w.data() + layer.w.size());
    archive.put_doubles(prefix + ".w" + std::to_string(i), w);
    archive.put_doubles(prefix + ".b" + std::to_string(i), layer.b);
  }
}

Mlp Mlp::load(const ArchiveReader& archive, const std::string& prefix) {
  const std::vector<double> raw_dims = archive.get_doubles(prefix + ".dims");
  std::vector<std::size_t> dims;
  for (double d : raw_dims) {
    ESM_REQUIRE(d >= 1.0, "archived MLP has invalid dims");
    dims.push_back(static_cast<std::size_t>(d));
  }
  Rng init_rng(0);  // weights are overwritten below
  Mlp mlp(dims, init_rng);
  for (std::size_t i = 0; i < mlp.layers_.size(); ++i) {
    Dense& layer = mlp.layers_[i];
    const std::vector<double> w =
        archive.get_doubles(prefix + ".w" + std::to_string(i));
    ESM_REQUIRE(w.size() == layer.w.size(),
                "archived MLP layer " << i << " weight size mismatch");
    for (std::size_t j = 0; j < w.size(); ++j) layer.w.data()[j] = w[j];
    const std::vector<double> b =
        archive.get_doubles(prefix + ".b" + std::to_string(i));
    ESM_REQUIRE(b.size() == layer.b.size(),
                "archived MLP layer " << i << " bias size mismatch");
    layer.b = b;
  }
  return mlp;
}

double Mlp::train_batch(const Matrix& x, std::span<const double> y,
                        const AdamConfig& cfg, double lr_override) {
  ESM_REQUIRE(output_dim() == 1, "train_batch requires a scalar-output MLP");
  ESM_REQUIRE(x.rows() == y.size(), "train_batch batch-size mismatch");
  ESM_REQUIRE(x.rows() > 0, "train_batch requires a non-empty batch");
  const std::size_t batch = x.rows();
  const double lr = lr_override > 0.0 ? lr_override : cfg.learning_rate;

  // Forward with cached activations (activations[0] is the input).
  std::vector<Matrix> activations;
  activations.reserve(layers_.size() + 1);
  activations.push_back(x);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool relu = i + 1 < layers_.size();
    Matrix h;
    dense_forward(activations.back(), layers_[i].w, layers_[i].b, relu, h);
    activations.push_back(std::move(h));
  }

  // MSE loss and its gradient at the output.
  const Matrix& out = activations.back();
  Matrix delta(batch, 1);
  double loss = 0.0;
  for (std::size_t r = 0; r < batch; ++r) {
    const double diff = out(r, 0) - y[r];
    loss += diff * diff;
    delta(r, 0) = 2.0 * diff / static_cast<double>(batch);
  }
  loss /= static_cast<double>(batch);

  ++adam_step_;
  const double bias1 = 1.0 - std::pow(cfg.beta1, static_cast<double>(adam_step_));
  const double bias2 = 1.0 - std::pow(cfg.beta2, static_cast<double>(adam_step_));

  // Backward pass, updating layer by layer from the top.
  for (std::size_t ii = layers_.size(); ii-- > 0;) {
    Dense& layer = layers_[ii];
    const Matrix& input = activations[ii];

    // Gradients: dW = delta^T * input, db = column sums of delta.
    Matrix grad_w;
    gemm_at_b(delta, input, grad_w);
    std::vector<double> grad_b(layer.b.size(), 0.0);
    for (std::size_t r = 0; r < delta.rows(); ++r) {
      const auto row = delta.row(r);
      for (std::size_t c = 0; c < grad_b.size(); ++c) grad_b[c] += row[c];
    }
    // Coupled weight decay (PyTorch Adam): grad += wd * w.
    if (cfg.weight_decay != 0.0) {
      grad_w.add_scaled(layer.w, cfg.weight_decay);
    }

    // Propagate delta to the previous layer before updating weights.
    if (ii > 0) {
      Matrix prev_delta;
      gemm(delta, layer.w, prev_delta);  // (B x out) * (out x in)
      // ReLU mask of the previous activation.
      const Matrix& prev_act = activations[ii];
      for (std::size_t r = 0; r < prev_delta.rows(); ++r) {
        auto drow = prev_delta.row(r);
        const auto arow = prev_act.row(r);
        for (std::size_t c = 0; c < prev_delta.cols(); ++c) {
          if (arow[c] <= 0.0) drow[c] = 0.0;
        }
      }
      delta = std::move(prev_delta);
    }

    // Adam update.
    auto adam_update = [&](double& param, double grad, double& m, double& v) {
      m = cfg.beta1 * m + (1.0 - cfg.beta1) * grad;
      v = cfg.beta2 * v + (1.0 - cfg.beta2) * grad * grad;
      const double m_hat = m / bias1;
      const double v_hat = v / bias2;
      param -= lr * m_hat / (std::sqrt(v_hat) + cfg.epsilon);
    };
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      for (std::size_t c = 0; c < layer.w.cols(); ++c) {
        adam_update(layer.w(r, c), grad_w(r, c), layer.m_w(r, c),
                    layer.v_w(r, c));
      }
    }
    for (std::size_t c = 0; c < layer.b.size(); ++c) {
      adam_update(layer.b[c], grad_b[c], layer.m_b[c], layer.v_b[c]);
    }
  }
  return loss;
}

}  // namespace esm
