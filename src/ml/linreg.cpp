#include "ml/linreg.hpp"

#include "common/error.hpp"
#include "linalg/solve.hpp"

namespace esm {

void LinearRegression::fit(const Matrix& x, std::span<const double> y) {
  ESM_REQUIRE(x.rows() == y.size(), "LinearRegression data mismatch");
  ESM_REQUIRE(x.rows() > 0, "LinearRegression requires data");
  // Augment with a bias column (not regularized meaningfully at these
  // lambda magnitudes).
  Matrix augmented(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = augmented.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) dst[c] = src[c];
    dst[x.cols()] = 1.0;
  }
  std::vector<double> solution = ridge_least_squares(augmented, y, lambda_);
  intercept_ = solution.back();
  solution.pop_back();
  weights_ = std::move(solution);
}

void LinearRegression::set_state(std::vector<double> weights,
                                 double intercept) {
  ESM_REQUIRE(!weights.empty(), "LinearRegression state needs >= 1 weight");
  weights_ = std::move(weights);
  intercept_ = intercept;
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  ESM_REQUIRE(fitted(), "LinearRegression used before fit()");
  ESM_REQUIRE(x.cols() == weights_.size(),
              "LinearRegression dimension mismatch");
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = predict_one(x.row(r));
  }
  return out;
}

double LinearRegression::predict_one(std::span<const double> features) const {
  ESM_REQUIRE(fitted(), "LinearRegression used before fit()");
  ESM_REQUIRE(features.size() == weights_.size(),
              "LinearRegression dimension mismatch");
  double acc = intercept_;
  for (std::size_t c = 0; c < features.size(); ++c) {
    acc += weights_[c] * features[c];
  }
  return acc;
}

}  // namespace esm
