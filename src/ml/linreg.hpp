// Ridge-regularized linear regression via the normal equations. Used as
// (a) the lookup-table bias-correction model the paper applies to LUT
// predictions, and (b) a standalone baseline in the model-family ablation.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace esm {

/// y ≈ w · x + b, fit by ridge least squares.
class LinearRegression {
 public:
  /// lambda is the ridge strength (0 = ordinary least squares; a tiny
  /// jitter is added automatically if the system is singular).
  explicit LinearRegression(double lambda = 1e-8) : lambda_(lambda) {}

  /// Fits on rows of x against y.
  void fit(const Matrix& x, std::span<const double> y);

  /// Predicts a batch; requires fit() first.
  std::vector<double> predict(const Matrix& x) const;

  /// Predicts a single sample.
  double predict_one(std::span<const double> features) const;

  bool fitted() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

  /// Restores a fitted state (used when loading persisted surrogates).
  void set_state(std::vector<double> weights, double intercept);

 private:
  double lambda_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

}  // namespace esm
