// Prediction-quality metrics.
//
// The paper reports "accuracy" percentages (e.g. FCC 97.6 % on ResNet).
// We follow the standard HW-NAS convention these numbers correspond to:
// per-sample accuracy is 1 - |pred - actual| / actual (clamped at 0), and a
// predictor's accuracy is the mean over the test set — i.e. 100 % minus the
// mean absolute percentage error. RMSE, R^2 and Kendall tau are provided as
// secondary diagnostics (tau measures whether the predictor preserves
// architecture *rankings*, which is what a NAS search actually consumes).
#pragma once

#include <span>

namespace esm {

/// Per-sample prediction accuracy: max(0, 1 - |pred - actual| / actual).
/// Requires actual > 0 (latencies are strictly positive).
double sample_accuracy(double predicted, double actual);

/// Mean of sample_accuracy over a test set. Empty input yields 0.
double mean_accuracy(std::span<const double> predicted,
                     std::span<const double> actual);

/// Mean absolute percentage error (unclamped).
double mape(std::span<const double> predicted, std::span<const double> actual);

/// Root-mean-square error.
double rmse(std::span<const double> predicted, std::span<const double> actual);

/// Coefficient of determination R^2 (1 = perfect; can be negative).
double r_squared(std::span<const double> predicted,
                 std::span<const double> actual);

}  // namespace esm
