#include "encoding/registry.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "encoding/encoders.hpp"

namespace esm {

EncoderRegistry& EncoderRegistry::instance() {
  // Built-ins are registered here, not via self-registering globals: this
  // library links statically, and unreferenced registration TUs would be
  // dead-stripped.
  static EncoderRegistry* registry = [] {
    auto* r = new EncoderRegistry();
    r->add("onehot", [](const SupernetSpec& spec) {
      return std::make_unique<OneHotEncoder>(spec);
    });
    r->add("feature", [](const SupernetSpec& spec) {
      return std::make_unique<FeatureEncoder>(spec);
    });
    r->add("stat", [](const SupernetSpec& spec) {
      return std::make_unique<StatisticalEncoder>(spec);
    });
    r->add("fc", [](const SupernetSpec& spec) {
      return std::make_unique<FeatureCountEncoder>(spec);
    });
    r->add("fcc", [](const SupernetSpec& spec) {
      return std::make_unique<FccEncoder>(spec);
    });
    r->add_alias("one-hot", "onehot");
    r->add_alias("statistical", "stat");
    r->add_alias("feature-count", "fc");
    r->add_alias("feature-combination-count", "fcc");
    return r;
  }();
  return *registry;
}

void EncoderRegistry::add(const std::string& key, Factory factory) {
  ESM_REQUIRE(!key.empty() && factory, "encoder registration needs key+factory");
  ESM_REQUIRE(factories_.emplace(key, std::move(factory)).second,
              "encoder key already registered: '" << key << "'");
  order_.push_back(key);
}

void EncoderRegistry::add_alias(const std::string& alias,
                                const std::string& key) {
  ESM_REQUIRE(factories_.count(key) > 0,
              "encoder alias '" << alias << "' targets unknown key '" << key
                                << "'");
  ESM_REQUIRE(factories_.count(alias) == 0 &&
                  aliases_.emplace(alias, key).second,
              "encoder alias already registered: '" << alias << "'");
}

bool EncoderRegistry::has(const std::string& key_or_alias) const {
  const std::string lower = to_lower(key_or_alias);
  return factories_.count(lower) > 0 || aliases_.count(lower) > 0;
}

std::string EncoderRegistry::canonical_key(
    const std::string& key_or_alias) const {
  const std::string lower = to_lower(key_or_alias);
  if (factories_.count(lower) > 0) return lower;
  const auto alias = aliases_.find(lower);
  if (alias != aliases_.end()) return alias->second;
  throw ConfigError("unknown encoder key '" + key_or_alias +
                    "' (registered: " + join(keys(), ", ") + ")");
}

std::unique_ptr<Encoder> EncoderRegistry::create(
    const std::string& key_or_alias, const SupernetSpec& spec) const {
  return factories_.at(canonical_key(key_or_alias))(spec);
}

std::vector<std::string> EncoderRegistry::keys() const { return order_; }

std::string encoder_registry_key(EncodingKind kind) {
  switch (kind) {
    case EncodingKind::kOneHot: return "onehot";
    case EncodingKind::kFeature: return "feature";
    case EncodingKind::kStatistical: return "stat";
    case EncodingKind::kFeatureCount: return "fc";
    case EncodingKind::kFcc: return "fcc";
  }
  throw ConfigError("unknown encoding kind");
}

std::unique_ptr<Encoder> make_encoder(const std::string& key,
                                      const SupernetSpec& spec) {
  return EncoderRegistry::instance().create(key, spec);
}

}  // namespace esm
