// Registry of architecture encoders keyed by short stable strings. The ESM
// loop, the CLI, and the artifact format all select encoders by key instead
// of hard-wiring EncodingKind, so new schemes plug in without touching the
// framework (DESIGN.md "Registry & artifact architecture").
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "encoding/encoder.hpp"

namespace esm {

/// Maps string keys ("onehot", "feature", "stat", "fc", "fcc") to encoder
/// factories. Lookups accept aliases ("one-hot", "statistical", ...) but
/// keys() and canonical_key() always report the canonical short form, which
/// is what artifacts store.
class EncoderRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Encoder>(const SupernetSpec& spec)>;

  /// Process-wide registry with the five built-in schemes pre-registered.
  static EncoderRegistry& instance();

  /// Registers a factory under a canonical key; rejects duplicates.
  void add(const std::string& key, Factory factory);

  /// Registers an alternate spelling for an existing canonical key.
  void add_alias(const std::string& alias, const std::string& key);

  bool has(const std::string& key_or_alias) const;

  /// Resolves an alias to its canonical key; throws ConfigError listing the
  /// registered keys when the name is unknown.
  std::string canonical_key(const std::string& key_or_alias) const;

  /// Builds the encoder registered under `key_or_alias` for `spec`.
  std::unique_ptr<Encoder> create(const std::string& key_or_alias,
                                  const SupernetSpec& spec) const;

  /// Canonical keys in registration order (baseline-first).
  std::vector<std::string> keys() const;

 private:
  EncoderRegistry() = default;

  std::vector<std::string> order_;
  std::map<std::string, Factory> factories_;
  std::map<std::string, std::string> aliases_;
};

/// Canonical registry key for a built-in EncodingKind (e.g. kOneHot ->
/// "onehot"). Used when persisting artifacts.
std::string encoder_registry_key(EncodingKind kind);

/// Convenience: EncoderRegistry::instance().create(key, spec).
std::unique_ptr<Encoder> make_encoder(const std::string& key,
                                      const SupernetSpec& spec);

}  // namespace esm
