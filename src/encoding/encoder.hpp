// Architecture encoding schemes  z = eta(arch)  (paper §II-C.4, Fig. 7).
//
// All encoders are unit-wise: each unit contributes a fixed-width segment and
// segments are concatenated in unit order (Fig. 7b). The five schemes:
//
//   one-hot      — depth one-hot + per-block-slot one-hots (long, sparse)
//   feature      — depth + per-block-slot raw feature values (long, sparse)
//   statistical  — depth + mean/std of each feature per unit (short, dense;
//                  the HAT-style SoTA baseline [11]; loses the *joint*
//                  distribution of features, hence overlapping
//                  representations on diverse spaces)
//   fc           — per-unit count of each individual feature value
//                  (proposed Feature Count)
//   fcc          — per-unit count of each feature *combination*
//                  (proposed Feature Combination Count; the headline
//                  encoding: preserves the full multiset of block types
//                  per unit while staying short and dense)
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "nets/arch.hpp"
#include "nets/supernet.hpp"

namespace esm {

/// Encoding-scheme selector mirroring the paper's user input eta.
enum class EncodingKind {
  kOneHot,
  kFeature,
  kStatistical,
  kFeatureCount,
  kFcc,
};

const char* encoding_kind_name(EncodingKind kind);
EncodingKind encoding_kind_from_name(const std::string& name);

/// All five kinds, baseline-first.
std::vector<EncodingKind> all_encoding_kinds();

/// Translates architectures of one space into fixed-width feature vectors.
class Encoder {
 public:
  virtual ~Encoder() = default;

  /// Vector width (constant per encoder instance).
  virtual std::size_t dimension() const = 0;

  /// Encodes one architecture; the result has exactly dimension() entries.
  virtual std::vector<double> encode(const ArchConfig& arch) const = 0;

  /// Encodes one architecture into a caller-provided buffer of exactly
  /// dimension() entries (zero-filled first, then written — bit-identical
  /// to encode()). The default delegates to encode(); the concrete
  /// encoders override it to write in place, so batch paths
  /// (encode_all, the fused MlpSurrogate::predict_all) fill preallocated
  /// matrix rows with zero per-architecture heap allocations.
  virtual void encode_into(const ArchConfig& arch,
                           std::span<double> out) const;

  virtual EncodingKind kind() const = 0;
  virtual const SupernetSpec& spec() const = 0;

  std::string name() const { return encoding_kind_name(kind()); }

  /// Encodes a batch into a row-per-architecture matrix.
  Matrix encode_all(std::span<const ArchConfig> archs) const;

  /// Fraction of zero entries in the encoding of `arch` (sparsity metric
  /// used by the encoding ablation).
  double sparsity(const ArchConfig& arch) const;
};

/// Factory for the encoder of a given kind over a given space.
std::unique_ptr<Encoder> make_encoder(EncodingKind kind,
                                      const SupernetSpec& spec);

}  // namespace esm
