#include "encoding/encoder.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "encoding/encoders.hpp"

namespace esm {

const char* encoding_kind_name(EncodingKind kind) {
  switch (kind) {
    case EncodingKind::kOneHot: return "one-hot";
    case EncodingKind::kFeature: return "feature";
    case EncodingKind::kStatistical: return "statistical";
    case EncodingKind::kFeatureCount: return "fc";
    case EncodingKind::kFcc: return "fcc";
  }
  return "unknown";
}

EncodingKind encoding_kind_from_name(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "one-hot" || lower == "onehot") return EncodingKind::kOneHot;
  if (lower == "feature") return EncodingKind::kFeature;
  if (lower == "statistical" || lower == "stat") {
    return EncodingKind::kStatistical;
  }
  if (lower == "fc" || lower == "feature-count") {
    return EncodingKind::kFeatureCount;
  }
  if (lower == "fcc" || lower == "feature-combination-count") {
    return EncodingKind::kFcc;
  }
  throw ConfigError("unknown encoding: " + name);
}

std::vector<EncodingKind> all_encoding_kinds() {
  return {EncodingKind::kOneHot, EncodingKind::kFeature,
          EncodingKind::kStatistical, EncodingKind::kFeatureCount,
          EncodingKind::kFcc};
}

void Encoder::encode_into(const ArchConfig& arch,
                          std::span<double> out) const {
  ESM_CHECK(out.size() == dimension(), "encode_into buffer size mismatch");
  const std::vector<double> z = encode(arch);
  ESM_CHECK(z.size() == dimension(), "encoder produced a wrong-size vector");
  std::copy(z.begin(), z.end(), out.begin());
}

Matrix Encoder::encode_all(std::span<const ArchConfig> archs) const {
  Matrix out(archs.size(), dimension());
  for (std::size_t r = 0; r < archs.size(); ++r) {
    encode_into(archs[r], out.row(r));
  }
  return out;
}

double Encoder::sparsity(const ArchConfig& arch) const {
  const std::vector<double> z = encode(arch);
  if (z.empty()) return 0.0;
  std::size_t zeros = 0;
  for (double v : z) {
    if (v == 0.0) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(z.size());
}

std::unique_ptr<Encoder> make_encoder(EncodingKind kind,
                                      const SupernetSpec& spec) {
  switch (kind) {
    case EncodingKind::kOneHot:
      return std::make_unique<OneHotEncoder>(spec);
    case EncodingKind::kFeature:
      return std::make_unique<FeatureEncoder>(spec);
    case EncodingKind::kStatistical:
      return std::make_unique<StatisticalEncoder>(spec);
    case EncodingKind::kFeatureCount:
      return std::make_unique<FeatureCountEncoder>(spec);
    case EncodingKind::kFcc:
      return std::make_unique<FccEncoder>(spec);
  }
  throw ConfigError("unknown encoding kind");
}

}  // namespace esm
