// Concrete encoder implementations. See encoder.hpp for the scheme overview.
#pragma once

#include "encoding/encoder.hpp"

namespace esm {

/// Common base caching the spec and providing option-index lookups.
class EncoderBase : public Encoder {
 public:
  explicit EncoderBase(SupernetSpec spec);

  const SupernetSpec& spec() const final { return spec_; }

  /// Allocating encode, implemented on top of the subclass's in-place
  /// encode_into (the concrete schemes only implement the latter).
  std::vector<double> encode(const ArchConfig& arch) const final;

 protected:
  /// Index of `kernel` within the spec's kernel options (throws if unknown).
  std::size_t kernel_index(int kernel) const;

  /// Index of `expansion` within the spec's expansion options; spaces
  /// without an expansion dimension always report index 0.
  std::size_t expansion_index(double expansion) const;

  /// Number of expansion options, at least 1 (for combination math).
  std::size_t expansion_count() const;

  SupernetSpec spec_;
};

/// Depth one-hot + per-slot kernel/expansion one-hots per unit.
/// dim/unit = depth_options + max_blocks * (|K| + |E|).
class OneHotEncoder final : public EncoderBase {
 public:
  explicit OneHotEncoder(SupernetSpec spec);
  std::size_t dimension() const override;
  void encode_into(const ArchConfig& arch, std::span<double> out) const override;
  EncodingKind kind() const override { return EncodingKind::kOneHot; }
};

/// Depth scalar + per-slot raw feature values per unit (zero-padded).
/// dim/unit = 1 + max_blocks * features_per_block.
class FeatureEncoder final : public EncoderBase {
 public:
  explicit FeatureEncoder(SupernetSpec spec);
  std::size_t dimension() const override;
  void encode_into(const ArchConfig& arch, std::span<double> out) const override;
  EncodingKind kind() const override { return EncodingKind::kFeature; }
};

/// HAT-style summary encoding (SoTA baseline [11]): per-unit depth scalars
/// plus *model-global* mean/std of each block-level feature list.
/// dim = num_units + 2 * features_per_block.
/// Deliberately lossy on block-level spaces: it keeps the depth profile but
/// collapses which unit (and which blocks) carry which kernel/expansion —
/// the "overlapping representations" the paper's motivational study blames
/// for the ResNet accuracy plateau. On spaces whose kernel is a unit-level
/// scalar (DenseNet) there is no block list to summarize, so the unit
/// segment is [depth, kernel] (dim = 2 * num_units) and the encoding stays
/// informative — matching the paper's much higher DenseNet accuracy.
class StatisticalEncoder final : public EncoderBase {
 public:
  explicit StatisticalEncoder(SupernetSpec spec);
  std::size_t dimension() const override;
  void encode_into(const ArchConfig& arch, std::span<double> out) const override;
  EncodingKind kind() const override { return EncodingKind::kStatistical; }
};

/// Per-unit count of each individual feature value (proposed FC).
/// dim/unit = |K| + |E|.
class FeatureCountEncoder final : public EncoderBase {
 public:
  explicit FeatureCountEncoder(SupernetSpec spec);
  std::size_t dimension() const override;
  void encode_into(const ArchConfig& arch, std::span<double> out) const override;
  EncodingKind kind() const override { return EncodingKind::kFeatureCount; }
};

/// Per-unit count of each (kernel, expansion) combination (proposed FCC).
/// dim/unit = |K| * max(1, |E|). Preserves the exact multiset of block
/// types within each unit — injective on unit block-multisets.
class FccEncoder final : public EncoderBase {
 public:
  explicit FccEncoder(SupernetSpec spec);
  std::size_t dimension() const override;
  void encode_into(const ArchConfig& arch, std::span<double> out) const override;
  EncodingKind kind() const override { return EncodingKind::kFcc; }

  /// Flat combination index of a block's features (kernel-major).
  std::size_t combination_index(const BlockConfig& block) const;

  /// Number of combinations per unit segment.
  std::size_t combinations() const;
};

}  // namespace esm
