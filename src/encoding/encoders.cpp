#include "encoding/encoders.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace esm {

EncoderBase::EncoderBase(SupernetSpec spec) : spec_(std::move(spec)) {
  ESM_REQUIRE(!spec_.kernel_options.empty(),
              "encoder requires kernel options");
  ESM_REQUIRE(spec_.num_units >= 1, "encoder requires at least one unit");
}

std::size_t EncoderBase::kernel_index(int kernel) const {
  for (std::size_t i = 0; i < spec_.kernel_options.size(); ++i) {
    if (spec_.kernel_options[i] == kernel) return i;
  }
  ESM_CHECK(false, "kernel " << kernel << " not in the space");
  return 0;
}

std::size_t EncoderBase::expansion_index(double expansion) const {
  if (spec_.expansion_options.empty()) return 0;
  for (std::size_t i = 0; i < spec_.expansion_options.size(); ++i) {
    if (std::abs(spec_.expansion_options[i] - expansion) < 1e-9) return i;
  }
  ESM_CHECK(false, "expansion " << expansion << " not in the space");
  return 0;
}

std::size_t EncoderBase::expansion_count() const {
  return spec_.expansion_options.empty() ? 1 : spec_.expansion_options.size();
}

std::vector<double> EncoderBase::encode(const ArchConfig& arch) const {
  std::vector<double> z(dimension());
  encode_into(arch, z);
  return z;
}

// ---------------------------------------------------------------- one-hot

OneHotEncoder::OneHotEncoder(SupernetSpec spec)
    : EncoderBase(std::move(spec)) {}

std::size_t OneHotEncoder::dimension() const {
  const std::size_t depth_options = static_cast<std::size_t>(
      spec_.max_blocks_per_unit - spec_.min_blocks_per_unit + 1);
  const std::size_t per_slot =
      spec_.kernel_options.size() +
      (spec_.expansion_options.empty() ? 0 : spec_.expansion_options.size());
  const std::size_t per_unit =
      depth_options +
      static_cast<std::size_t>(spec_.max_blocks_per_unit) * per_slot;
  return per_unit * static_cast<std::size_t>(spec_.num_units);
}

void OneHotEncoder::encode_into(const ArchConfig& arch,
                                std::span<double> out) const {
  spec_.validate(arch);
  ESM_CHECK(out.size() == dimension(), "encode_into buffer size mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t depth_options = static_cast<std::size_t>(
      spec_.max_blocks_per_unit - spec_.min_blocks_per_unit + 1);
  const std::size_t kernels = spec_.kernel_options.size();
  const std::size_t expansions =
      spec_.expansion_options.empty() ? 0 : spec_.expansion_options.size();
  const std::size_t per_slot = kernels + expansions;
  const std::size_t per_unit =
      depth_options +
      static_cast<std::size_t>(spec_.max_blocks_per_unit) * per_slot;

  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const UnitConfig& unit = arch.units[ui];
    const std::size_t base = ui * per_unit;
    out[base + static_cast<std::size_t>(unit.depth() -
                                      spec_.min_blocks_per_unit)] = 1.0;
    for (std::size_t bi = 0; bi < unit.blocks.size(); ++bi) {
      const std::size_t slot = base + depth_options + bi * per_slot;
      out[slot + kernel_index(unit.blocks[bi].kernel)] = 1.0;
      if (expansions > 0) {
        out[slot + kernels + expansion_index(unit.blocks[bi].expansion)] = 1.0;
      }
    }
  }
}

// ---------------------------------------------------------------- feature

FeatureEncoder::FeatureEncoder(SupernetSpec spec)
    : EncoderBase(std::move(spec)) {}

std::size_t FeatureEncoder::dimension() const {
  const std::size_t features_per_block =
      1 + (spec_.expansion_options.empty() ? 0 : 1);
  const std::size_t per_unit =
      1 + static_cast<std::size_t>(spec_.max_blocks_per_unit) *
              features_per_block;
  return per_unit * static_cast<std::size_t>(spec_.num_units);
}

void FeatureEncoder::encode_into(const ArchConfig& arch,
                                 std::span<double> out) const {
  spec_.validate(arch);
  ESM_CHECK(out.size() == dimension(), "encode_into buffer size mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  const bool has_expansion = !spec_.expansion_options.empty();
  const std::size_t features_per_block = has_expansion ? 2 : 1;
  const std::size_t per_unit =
      1 + static_cast<std::size_t>(spec_.max_blocks_per_unit) *
              features_per_block;

  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const UnitConfig& unit = arch.units[ui];
    const std::size_t base = ui * per_unit;
    out[base] = static_cast<double>(unit.depth());
    for (std::size_t bi = 0; bi < unit.blocks.size(); ++bi) {
      const std::size_t slot = base + 1 + bi * features_per_block;
      out[slot] = static_cast<double>(unit.blocks[bi].kernel);
      if (has_expansion) out[slot + 1] = unit.blocks[bi].expansion;
    }
  }
}

// ------------------------------------------------------------ statistical

StatisticalEncoder::StatisticalEncoder(SupernetSpec spec)
    : EncoderBase(std::move(spec)) {}

std::size_t StatisticalEncoder::dimension() const {
  if (spec_.kernel_per_unit) {
    // Unit-level features are scalars, not lists to summarize: the unit
    // segment is [depth, kernel].
    return 2 * static_cast<std::size_t>(spec_.num_units);
  }
  const std::size_t features_per_block =
      1 + (spec_.expansion_options.empty() ? 0 : 1);
  return static_cast<std::size_t>(spec_.num_units) + 2 * features_per_block;
}

void StatisticalEncoder::encode_into(const ArchConfig& arch,
                                     std::span<double> out) const {
  spec_.validate(arch);
  ESM_CHECK(out.size() == dimension(), "encode_into buffer size mismatch");
  std::fill(out.begin(), out.end(), 0.0);

  if (spec_.kernel_per_unit) {
    // DenseNet-style spaces: the kernel is a unit-level scalar feature, so
    // the unit segment carries it directly (Fig. 7b concatenation).
    for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
      out[2 * ui] = static_cast<double>(arch.units[ui].depth());
      out[2 * ui + 1] =
          static_cast<double>(arch.units[ui].blocks.front().kernel);
    }
    return;
  }

  // Block-level feature spaces: unit-level depth scalars...
  const bool has_expansion = !spec_.expansion_options.empty();
  // Per-thread scratch so the batch paths stay allocation-free once warm;
  // the values fed to mean/stddev are exactly those of the allocating
  // version, so results are bit-identical.
  static thread_local std::vector<double> kernels, expansions;
  kernels.clear();
  expansions.clear();
  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    out[ui] = static_cast<double>(arch.units[ui].depth());
    for (const BlockConfig& b : arch.units[ui].blocks) {
      kernels.push_back(static_cast<double>(b.kernel));
      if (has_expansion) expansions.push_back(b.expansion);
    }
  }
  // ...plus summary mean/std of the block-feature lists ([11]-style).
  const std::size_t base = arch.units.size();
  out[base] = mean(kernels);
  out[base + 1] = population_stddev(kernels);
  if (has_expansion) {
    out[base + 2] = mean(expansions);
    out[base + 3] = population_stddev(expansions);
  }
}

// ---------------------------------------------------------- feature count

FeatureCountEncoder::FeatureCountEncoder(SupernetSpec spec)
    : EncoderBase(std::move(spec)) {}

std::size_t FeatureCountEncoder::dimension() const {
  const std::size_t per_unit =
      spec_.kernel_options.size() +
      (spec_.expansion_options.empty() ? 0 : spec_.expansion_options.size());
  return per_unit * static_cast<std::size_t>(spec_.num_units);
}

void FeatureCountEncoder::encode_into(const ArchConfig& arch,
                                      std::span<double> out) const {
  spec_.validate(arch);
  ESM_CHECK(out.size() == dimension(), "encode_into buffer size mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t kernels = spec_.kernel_options.size();
  const std::size_t expansions =
      spec_.expansion_options.empty() ? 0 : spec_.expansion_options.size();
  const std::size_t per_unit = kernels + expansions;

  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const std::size_t base = ui * per_unit;
    for (const BlockConfig& b : arch.units[ui].blocks) {
      out[base + kernel_index(b.kernel)] += 1.0;
      if (expansions > 0) {
        out[base + kernels + expansion_index(b.expansion)] += 1.0;
      }
    }
  }
}

// ------------------------------------------------------------------- FCC

FccEncoder::FccEncoder(SupernetSpec spec) : EncoderBase(std::move(spec)) {}

std::size_t FccEncoder::combinations() const {
  return spec_.kernel_options.size() * expansion_count();
}

std::size_t FccEncoder::combination_index(const BlockConfig& block) const {
  return kernel_index(block.kernel) * expansion_count() +
         expansion_index(block.expansion);
}

std::size_t FccEncoder::dimension() const {
  return combinations() * static_cast<std::size_t>(spec_.num_units);
}

void FccEncoder::encode_into(const ArchConfig& arch,
                             std::span<double> out) const {
  spec_.validate(arch);
  ESM_CHECK(out.size() == dimension(), "encode_into buffer size mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t per_unit = combinations();
  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const std::size_t base = ui * per_unit;
    for (const BlockConfig& b : arch.units[ui].blocks) {
      out[base + combination_index(b)] += 1.0;
    }
  }
}

}  // namespace esm
