#include "encoding/encoders.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace esm {

EncoderBase::EncoderBase(SupernetSpec spec) : spec_(std::move(spec)) {
  ESM_REQUIRE(!spec_.kernel_options.empty(),
              "encoder requires kernel options");
  ESM_REQUIRE(spec_.num_units >= 1, "encoder requires at least one unit");
}

std::size_t EncoderBase::kernel_index(int kernel) const {
  for (std::size_t i = 0; i < spec_.kernel_options.size(); ++i) {
    if (spec_.kernel_options[i] == kernel) return i;
  }
  ESM_CHECK(false, "kernel " << kernel << " not in the space");
  return 0;
}

std::size_t EncoderBase::expansion_index(double expansion) const {
  if (spec_.expansion_options.empty()) return 0;
  for (std::size_t i = 0; i < spec_.expansion_options.size(); ++i) {
    if (std::abs(spec_.expansion_options[i] - expansion) < 1e-9) return i;
  }
  ESM_CHECK(false, "expansion " << expansion << " not in the space");
  return 0;
}

std::size_t EncoderBase::expansion_count() const {
  return spec_.expansion_options.empty() ? 1 : spec_.expansion_options.size();
}

// ---------------------------------------------------------------- one-hot

OneHotEncoder::OneHotEncoder(SupernetSpec spec)
    : EncoderBase(std::move(spec)) {}

std::size_t OneHotEncoder::dimension() const {
  const std::size_t depth_options = static_cast<std::size_t>(
      spec_.max_blocks_per_unit - spec_.min_blocks_per_unit + 1);
  const std::size_t per_slot =
      spec_.kernel_options.size() +
      (spec_.expansion_options.empty() ? 0 : spec_.expansion_options.size());
  const std::size_t per_unit =
      depth_options +
      static_cast<std::size_t>(spec_.max_blocks_per_unit) * per_slot;
  return per_unit * static_cast<std::size_t>(spec_.num_units);
}

std::vector<double> OneHotEncoder::encode(const ArchConfig& arch) const {
  spec_.validate(arch);
  std::vector<double> z(dimension(), 0.0);
  const std::size_t depth_options = static_cast<std::size_t>(
      spec_.max_blocks_per_unit - spec_.min_blocks_per_unit + 1);
  const std::size_t kernels = spec_.kernel_options.size();
  const std::size_t expansions =
      spec_.expansion_options.empty() ? 0 : spec_.expansion_options.size();
  const std::size_t per_slot = kernels + expansions;
  const std::size_t per_unit =
      depth_options +
      static_cast<std::size_t>(spec_.max_blocks_per_unit) * per_slot;

  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const UnitConfig& unit = arch.units[ui];
    const std::size_t base = ui * per_unit;
    z[base + static_cast<std::size_t>(unit.depth() -
                                      spec_.min_blocks_per_unit)] = 1.0;
    for (std::size_t bi = 0; bi < unit.blocks.size(); ++bi) {
      const std::size_t slot = base + depth_options + bi * per_slot;
      z[slot + kernel_index(unit.blocks[bi].kernel)] = 1.0;
      if (expansions > 0) {
        z[slot + kernels + expansion_index(unit.blocks[bi].expansion)] = 1.0;
      }
    }
  }
  return z;
}

// ---------------------------------------------------------------- feature

FeatureEncoder::FeatureEncoder(SupernetSpec spec)
    : EncoderBase(std::move(spec)) {}

std::size_t FeatureEncoder::dimension() const {
  const std::size_t features_per_block =
      1 + (spec_.expansion_options.empty() ? 0 : 1);
  const std::size_t per_unit =
      1 + static_cast<std::size_t>(spec_.max_blocks_per_unit) *
              features_per_block;
  return per_unit * static_cast<std::size_t>(spec_.num_units);
}

std::vector<double> FeatureEncoder::encode(const ArchConfig& arch) const {
  spec_.validate(arch);
  std::vector<double> z(dimension(), 0.0);
  const bool has_expansion = !spec_.expansion_options.empty();
  const std::size_t features_per_block = has_expansion ? 2 : 1;
  const std::size_t per_unit =
      1 + static_cast<std::size_t>(spec_.max_blocks_per_unit) *
              features_per_block;

  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const UnitConfig& unit = arch.units[ui];
    const std::size_t base = ui * per_unit;
    z[base] = static_cast<double>(unit.depth());
    for (std::size_t bi = 0; bi < unit.blocks.size(); ++bi) {
      const std::size_t slot = base + 1 + bi * features_per_block;
      z[slot] = static_cast<double>(unit.blocks[bi].kernel);
      if (has_expansion) z[slot + 1] = unit.blocks[bi].expansion;
    }
  }
  return z;
}

// ------------------------------------------------------------ statistical

StatisticalEncoder::StatisticalEncoder(SupernetSpec spec)
    : EncoderBase(std::move(spec)) {}

std::size_t StatisticalEncoder::dimension() const {
  if (spec_.kernel_per_unit) {
    // Unit-level features are scalars, not lists to summarize: the unit
    // segment is [depth, kernel].
    return 2 * static_cast<std::size_t>(spec_.num_units);
  }
  const std::size_t features_per_block =
      1 + (spec_.expansion_options.empty() ? 0 : 1);
  return static_cast<std::size_t>(spec_.num_units) + 2 * features_per_block;
}

std::vector<double> StatisticalEncoder::encode(const ArchConfig& arch) const {
  spec_.validate(arch);
  std::vector<double> z(dimension(), 0.0);

  if (spec_.kernel_per_unit) {
    // DenseNet-style spaces: the kernel is a unit-level scalar feature, so
    // the unit segment carries it directly (Fig. 7b concatenation).
    for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
      z[2 * ui] = static_cast<double>(arch.units[ui].depth());
      z[2 * ui + 1] =
          static_cast<double>(arch.units[ui].blocks.front().kernel);
    }
    return z;
  }

  // Block-level feature spaces: unit-level depth scalars...
  const bool has_expansion = !spec_.expansion_options.empty();
  std::vector<double> kernels, expansions;
  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    z[ui] = static_cast<double>(arch.units[ui].depth());
    for (const BlockConfig& b : arch.units[ui].blocks) {
      kernels.push_back(static_cast<double>(b.kernel));
      if (has_expansion) expansions.push_back(b.expansion);
    }
  }
  // ...plus summary mean/std of the block-feature lists ([11]-style).
  const std::size_t base = arch.units.size();
  z[base] = mean(kernels);
  z[base + 1] = population_stddev(kernels);
  if (has_expansion) {
    z[base + 2] = mean(expansions);
    z[base + 3] = population_stddev(expansions);
  }
  return z;
}

// ---------------------------------------------------------- feature count

FeatureCountEncoder::FeatureCountEncoder(SupernetSpec spec)
    : EncoderBase(std::move(spec)) {}

std::size_t FeatureCountEncoder::dimension() const {
  const std::size_t per_unit =
      spec_.kernel_options.size() +
      (spec_.expansion_options.empty() ? 0 : spec_.expansion_options.size());
  return per_unit * static_cast<std::size_t>(spec_.num_units);
}

std::vector<double> FeatureCountEncoder::encode(const ArchConfig& arch) const {
  spec_.validate(arch);
  const std::size_t kernels = spec_.kernel_options.size();
  const std::size_t expansions =
      spec_.expansion_options.empty() ? 0 : spec_.expansion_options.size();
  const std::size_t per_unit = kernels + expansions;
  std::vector<double> z(dimension(), 0.0);

  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const std::size_t base = ui * per_unit;
    for (const BlockConfig& b : arch.units[ui].blocks) {
      z[base + kernel_index(b.kernel)] += 1.0;
      if (expansions > 0) {
        z[base + kernels + expansion_index(b.expansion)] += 1.0;
      }
    }
  }
  return z;
}

// ------------------------------------------------------------------- FCC

FccEncoder::FccEncoder(SupernetSpec spec) : EncoderBase(std::move(spec)) {}

std::size_t FccEncoder::combinations() const {
  return spec_.kernel_options.size() * expansion_count();
}

std::size_t FccEncoder::combination_index(const BlockConfig& block) const {
  return kernel_index(block.kernel) * expansion_count() +
         expansion_index(block.expansion);
}

std::size_t FccEncoder::dimension() const {
  return combinations() * static_cast<std::size_t>(spec_.num_units);
}

std::vector<double> FccEncoder::encode(const ArchConfig& arch) const {
  spec_.validate(arch);
  const std::size_t per_unit = combinations();
  std::vector<double> z(dimension(), 0.0);
  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const std::size_t base = ui * per_unit;
    for (const BlockConfig& b : arch.units[ui].blocks) {
      z[base + combination_index(b)] += 1.0;
    }
  }
  return z;
}

}  // namespace esm
