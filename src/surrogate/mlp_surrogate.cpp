#include "surrogate/mlp_surrogate.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "encoding/registry.hpp"

namespace esm {

MlpSurrogate::MlpSurrogate(std::unique_ptr<Encoder> encoder,
                           TrainConfig train_config, std::uint64_t seed)
    : encoder_(std::move(encoder)),
      train_config_(train_config),
      seed_(seed) {
  ESM_REQUIRE(encoder_ != nullptr, "MlpSurrogate requires an encoder");
}

TrainResult MlpSurrogate::fit(std::span<const ArchConfig> archs,
                              std::span<const double> latencies_ms) {
  ESM_REQUIRE(archs.size() == latencies_ms.size(),
              "MlpSurrogate::fit data mismatch");
  ESM_REQUIRE(!archs.empty(), "MlpSurrogate::fit requires data");

  const Matrix raw = encoder_->encode_all(archs);
  input_standardizer_.fit(raw);
  const Matrix x = input_standardizer_.transform(raw);

  target_scaler_.fit(latencies_ms);
  std::vector<double> y(latencies_ms.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = target_scaler_.transform(latencies_ms[i]);
  }

  Rng init_rng(seed_);
  mlp_.emplace(Mlp::paper_predictor(encoder_->dimension(), init_rng));
  TrainConfig cfg = train_config_;
  cfg.shuffle_seed = seed_ ^ 0x5eedf00dull;
  MlpTrainer trainer(cfg);
  return trainer.fit(*mlp_, x, y);
}

double MlpSurrogate::predict_ms(const ArchConfig& arch) const {
  ESM_REQUIRE(fitted(), "MlpSurrogate used before fit()");
  std::vector<double> z = encoder_->encode(arch);
  input_standardizer_.transform_row(z);
  const double standardized = mlp_->predict_one(z);
  return target_scaler_.inverse(standardized);
}

std::vector<double> MlpSurrogate::predict_all(
    std::span<const ArchConfig> archs) const {
  ESM_REQUIRE(fitted(), "MlpSurrogate used before fit()");
  std::vector<double> out(archs.size());
  if (archs.empty()) return out;

  // Per-thread workspace reused across calls: once warmed to the largest
  // batch seen, the serve batcher's steady state performs zero
  // per-architecture heap allocations (fastpath_test pins this).
  struct FusedWorkspace {
    Matrix x;
    Mlp::Workspace mlp;
  };
  static thread_local FusedWorkspace tl_ws;
  // Bind through a local reference: a thread_local named inside the lambda
  // below would resolve to each pool worker's own (empty) instance.
  FusedWorkspace& ws = tl_ws;
  ws.x.reshape(archs.size(), encoder_->dimension());
  // Rows are independent, so encoding fans out over the pool; the grain
  // keeps serving-size batches on the caller (the batched forward below
  // dominates there anyway). Each row is written in place: encode_into
  // fills it, then standardization runs over the same span — the exact
  // operation sequence predict_ms applies to its own vector.
  parallel_for(/*grain=*/64, archs.size(),
               [&](std::size_t r0, std::size_t r1) {
                 for (std::size_t r = r0; r < r1; ++r) {
                   auto row = ws.x.row(r);
                   encoder_->encode_into(archs[r], row);
                   input_standardizer_.transform_row(row);
                 }
               });
  mlp_->predict_into(ws.x, out, ws.mlp);
  for (double& v : out) v = target_scaler_.inverse(v);
  return out;
}

void MlpSurrogate::fit(const SurrogateDataset& data) {
  (void)fit(data.archs, data.latencies_ms);
}

std::string MlpSurrogate::name() const {
  return "MLP+" + encoder_->name();
}

std::string MlpSurrogate::encoder_key() const {
  return encoder_registry_key(encoder_->kind());
}

void MlpSurrogate::save(ArchiveWriter& archive) const {
  save_state(archive, "");
}

void MlpSurrogate::save_state(ArchiveWriter& archive,
                              const std::string& prefix) const {
  ESM_REQUIRE(fitted(), "cannot save an unfitted MlpSurrogate");
  archive.put_doubles(prefix + "input.means", input_standardizer_.means());
  archive.put_doubles(prefix + "input.scales", input_standardizer_.scales());
  archive.put_double(prefix + "target.mean", target_scaler_.mean());
  archive.put_double(prefix + "target.scale", target_scaler_.scale());
  archive.put_int(prefix + "train.epochs", train_config_.epochs);
  archive.put_int(prefix + "train.batch_size",
                  static_cast<long long>(train_config_.batch_size));
  archive.put_double(prefix + "train.learning_rate",
                     train_config_.adam.learning_rate);
  archive.put_double(prefix + "train.weight_decay",
                     train_config_.adam.weight_decay);
  archive.put_int(prefix + "seed", static_cast<long long>(seed_));
  mlp_->save(archive, prefix + "mlp");
}

std::unique_ptr<MlpSurrogate> MlpSurrogate::load_state(
    const ArchiveReader& archive, const std::string& prefix,
    std::unique_ptr<Encoder> encoder) {
  TrainConfig train;
  train.epochs = static_cast<int>(archive.get_int(prefix + "train.epochs"));
  train.batch_size =
      static_cast<std::size_t>(archive.get_int(prefix + "train.batch_size"));
  train.adam.learning_rate =
      archive.get_double(prefix + "train.learning_rate");
  train.adam.weight_decay =
      archive.get_double(prefix + "train.weight_decay");

  auto surrogate = std::make_unique<MlpSurrogate>(
      std::move(encoder), train,
      static_cast<std::uint64_t>(archive.get_int(prefix + "seed")));
  surrogate->input_standardizer_.set_state(
      archive.get_doubles(prefix + "input.means"),
      archive.get_doubles(prefix + "input.scales"));
  surrogate->target_scaler_.set_state(
      archive.get_double(prefix + "target.mean"),
      archive.get_double(prefix + "target.scale"));
  surrogate->mlp_.emplace(Mlp::load(archive, prefix + "mlp"));
  ESM_REQUIRE(surrogate->mlp_->input_dim() == surrogate->encoder_->dimension(),
              "archived MLP input dim does not match the encoder");
  return surrogate;
}

}  // namespace esm
