// Gradient-boosted-tree latency surrogate: encoder features into the
// squared-loss GBDT from src/ml. One of the paper's Fig. 9 model families;
// fully deterministic (CART splits are exhaustive), so no seed is needed.
#pragma once

#include <memory>
#include <optional>

#include "encoding/encoder.hpp"
#include "ml/gbdt.hpp"
#include "surrogate/trainable.hpp"

namespace esm {

/// Encoder-fronted gradient-boosted regression trees.
class GbdtSurrogate final : public TrainableSurrogate {
 public:
  /// Takes ownership of the encoder.
  explicit GbdtSurrogate(std::unique_ptr<Encoder> encoder,
                         GbdtConfig config = {});

  void fit(const SurrogateDataset& data) override;

  double predict_ms(const ArchConfig& arch) const override;
  std::string name() const override;
  std::string kind() const override { return "gbdt"; }
  std::string encoder_key() const override;
  const SupernetSpec& spec() const override { return encoder_->spec(); }
  bool fitted() const override { return model_.has_value() && model_->fitted(); }

  /// Persists the boosted-tree state under "gbdt." keys.
  void save(ArchiveWriter& archive) const override;

  /// Restores a surrogate saved with save(); `encoder` must match the
  /// spec/encoding recorded in the enclosing artifact header.
  static std::unique_ptr<GbdtSurrogate> load_state(
      const ArchiveReader& archive, std::unique_ptr<Encoder> encoder);

  const Encoder& encoder() const { return *encoder_; }

 private:
  std::unique_ptr<Encoder> encoder_;
  GbdtConfig config_;
  std::optional<GradientBoostingRegressor> model_;
};

}  // namespace esm
