#include "surrogate/predictor.hpp"

namespace esm {

std::vector<double> LatencyPredictor::predict_all(
    std::span<const ArchConfig> archs) const {
  std::vector<double> out;
  out.reserve(archs.size());
  for (const ArchConfig& arch : archs) out.push_back(predict_ms(arch));
  return out;
}

}  // namespace esm
