#include "surrogate/predictor.hpp"

#include "common/parallel.hpp"

namespace esm {

std::vector<double> LatencyPredictor::predict_all(
    std::span<const ArchConfig> archs) const {
  // Ordered parallel_map keeps output order and bit-identity at every
  // thread count; a grain of a few archs amortizes the pool hand-off for
  // cheap per-arch models.
  return parallel_map(
      archs.size(), [&](std::size_t i) { return predict_ms(archs[i]); },
      /*grain=*/4);
}

}  // namespace esm
