// Hardware-agnostic FLOPs proxy (the earliest class of NAS latency
// estimators the paper's introduction criticizes). Predicts latency as an
// affine function of total FLOPs, optionally calibrated on measured pairs.
#pragma once

#include <span>

#include "nets/builder.hpp"
#include "nets/supernet.hpp"
#include "surrogate/predictor.hpp"

namespace esm {

/// latency ≈ a * GFLOPs + b.
class FlopsProxy final : public LatencyPredictor {
 public:
  explicit FlopsProxy(SupernetSpec spec);

  /// Calibrates the affine map on measured pairs (least squares).
  void fit(std::span<const ArchConfig> archs,
           std::span<const double> measured_ms);

  /// Total GFLOPs of an architecture (the raw proxy value).
  double gflops(const ArchConfig& arch) const;

  double predict_ms(const ArchConfig& arch) const override;
  std::string name() const override { return "FLOPs-proxy"; }

 private:
  SupernetSpec spec_;
  double scale_ = 1.0;   // ms per GFLOP before calibration
  double offset_ = 0.0;
};

}  // namespace esm
