// GCN-based latency surrogate (the graph-encoding predictor family of the
// paper's related work [14][19]).
//
// The architecture is represented as a chain graph whose nodes are blocks
// in execution order; node features describe the block's unit, position,
// and searchable parameters. A two-layer GCN with mean-pool readout
// regresses (standardized) latency. Variable-depth architectures map to
// variable-length graphs naturally — no per-slot padding as in the one-hot
// and feature encodings.
#pragma once

#include <cstdint>

#include "linalg/standardizer.hpp"
#include "ml/gcn.hpp"
#include "nets/supernet.hpp"
#include "surrogate/predictor.hpp"

namespace esm {

/// Chain-graph GCN surrogate over one architecture space.
class GcnSurrogate final : public LatencyPredictor {
 public:
  GcnSurrogate(SupernetSpec spec, GcnConfig config);

  /// Per-node feature width for this space:
  /// [unit one-hot | position fraction | first-of-unit flag |
  ///  kernel one-hot | expansion one-hot (if any)].
  std::size_t node_feature_dim() const;

  /// Builds the node-feature matrix of one architecture (rows = blocks).
  Matrix node_features(const ArchConfig& arch) const;

  /// Trains from scratch on architecture/latency pairs.
  void fit(std::span<const ArchConfig> archs,
           std::span<const double> latencies_ms);

  double predict_ms(const ArchConfig& arch) const override;
  std::string name() const override { return "GCN"; }

  bool fitted() const { return gcn_.fitted(); }

 private:
  SupernetSpec spec_;
  GcnConfig config_;
  GcnRegressor gcn_;
  TargetScaler target_scaler_;
};

}  // namespace esm
