#include "surrogate/registry.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/fsio.hpp"
#include "common/strings.hpp"
#include "encoding/registry.hpp"
#include "surrogate/ensemble_surrogate.hpp"
#include "surrogate/gbdt_surrogate.hpp"
#include "surrogate/lut_surrogate.hpp"
#include "surrogate/mlp_surrogate.hpp"

namespace esm {
namespace {

std::map<std::string, double> read_lut_table(const ArchiveReader& archive) {
  const std::vector<std::string> keys = archive.get_strings("lut.keys");
  const std::vector<double> values = archive.get_doubles("lut.values");
  ESM_REQUIRE(keys.size() == values.size(),
              "LUT artifact table keys/values length mismatch");
  std::map<std::string, double> table;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ESM_REQUIRE(table.emplace(keys[i], values[i]).second,
                "LUT artifact has a duplicate table key '" << keys[i] << "'");
  }
  return table;
}

}  // namespace

SurrogateRegistry& SurrogateRegistry::instance() {
  // Built-ins are registered here, not via self-registering globals: this
  // library links statically, and unreferenced registration TUs would be
  // dead-stripped.
  static SurrogateRegistry* registry = [] {
    auto* r = new SurrogateRegistry();
    r->add(
        "mlp",
        [](const SurrogateContext& ctx) -> std::unique_ptr<TrainableSurrogate> {
          return std::make_unique<MlpSurrogate>(
              make_encoder(ctx.encoder, ctx.spec), ctx.train, ctx.seed);
        },
        [](const ArchiveReader& archive, const SurrogateContext& ctx)
            -> std::unique_ptr<TrainableSurrogate> {
          return MlpSurrogate::load_state(
              archive, "", make_encoder(ctx.encoder, ctx.spec));
        });
    r->add(
        "lut",
        [](const SurrogateContext& ctx) -> std::unique_ptr<TrainableSurrogate> {
          ESM_REQUIRE(ctx.device != nullptr,
                      "the 'lut' surrogate needs a device to profile on");
          auto lut = std::make_unique<LutSurrogate>(ctx.spec, *ctx.device);
          lut->set_encoder_key(ctx.encoder);
          return lut;
        },
        [](const ArchiveReader& archive, const SurrogateContext& ctx)
            -> std::unique_ptr<TrainableSurrogate> {
          auto lut = std::make_unique<LutSurrogate>(ctx.spec,
                                                    read_lut_table(archive));
          lut->set_encoder_key(ctx.encoder);
          if (archive.get_int("lut.bias_corrected") != 0) {
            lut->set_bias_state(archive.get_doubles("lut.bias.weights"),
                                archive.get_double("lut.bias.intercept"));
          }
          return lut;
        });
    r->add(
        "gbdt",
        [](const SurrogateContext& ctx) -> std::unique_ptr<TrainableSurrogate> {
          return std::make_unique<GbdtSurrogate>(
              make_encoder(ctx.encoder, ctx.spec));
        },
        [](const ArchiveReader& archive, const SurrogateContext& ctx)
            -> std::unique_ptr<TrainableSurrogate> {
          return GbdtSurrogate::load_state(
              archive, make_encoder(ctx.encoder, ctx.spec));
        });
    r->add(
        "ensemble",
        [](const SurrogateContext& ctx) -> std::unique_ptr<TrainableSurrogate> {
          return std::make_unique<EnsembleSurrogate>(
              ctx.encoder, ctx.spec, ctx.train, ctx.ensemble_members,
              ctx.seed);
        },
        [](const ArchiveReader& archive, const SurrogateContext& ctx)
            -> std::unique_ptr<TrainableSurrogate> {
          return EnsembleSurrogate::load_state(archive, ctx.encoder,
                                               ctx.spec);
        });
    return r;
  }();
  return *registry;
}

void SurrogateRegistry::add(const std::string& key, Factory factory,
                            Loader loader) {
  ESM_REQUIRE(!key.empty() && factory && loader,
              "surrogate registration needs key+factory+loader");
  ESM_REQUIRE(
      entries_.emplace(key, Entry{std::move(factory), std::move(loader)})
          .second,
      "surrogate key already registered: '" << key << "'");
  order_.push_back(key);
}

bool SurrogateRegistry::has(const std::string& key) const {
  return entries_.count(to_lower(key)) > 0;
}

const SurrogateRegistry::Entry& SurrogateRegistry::entry(
    const std::string& key) const {
  const auto it = entries_.find(to_lower(key));
  if (it == entries_.end()) {
    throw ConfigError("unknown surrogate key '" + key +
                      "' (registered: " + join(keys(), ", ") + ")");
  }
  return it->second;
}

std::unique_ptr<TrainableSurrogate> SurrogateRegistry::create(
    const std::string& key, const SurrogateContext& context) const {
  return entry(key).factory(context);
}

std::unique_ptr<TrainableSurrogate> SurrogateRegistry::load(
    const std::string& key, const ArchiveReader& archive,
    const SurrogateContext& context) const {
  return entry(key).loader(archive, context);
}

std::vector<std::string> SurrogateRegistry::keys() const { return order_; }

namespace {

ArchiveWriter render_artifact(const TrainableSurrogate& surrogate) {
  ESM_REQUIRE(surrogate.fitted(), "cannot save an unfitted surrogate");
  ArchiveWriter archive;
  archive.put_int("esm.format", kSurrogateFormatVersion);
  archive.put_string("esm.kind", surrogate.kind());
  archive.put_string("esm.encoder", surrogate.encoder_key());
  surrogate.spec().save(archive, "spec");
  surrogate.save(archive);
  return archive;
}

}  // namespace

void save_surrogate(const TrainableSurrogate& surrogate,
                    const std::string& path) {
  render_artifact(surrogate).save(path);
}

std::string save_surrogate_atomic(const TrainableSurrogate& surrogate,
                                  const std::string& path) {
  const std::string bytes = render_artifact(surrogate).to_string();
  write_file_atomic(path, bytes);
  return crc32_hex(crc32(bytes));
}

std::unique_ptr<TrainableSurrogate> load_surrogate(const std::string& path) {
  std::ifstream in(path);
  ESM_REQUIRE(in.good(), "cannot open archive: " << path);
  std::ostringstream contents;
  contents << in.rdbuf();
  return load_surrogate(path, contents.str());
}

std::unique_ptr<TrainableSurrogate> load_surrogate(
    const std::string& path, const std::string& contents) {
  const ArchiveReader archive = ArchiveReader::from_string(contents);
  if (!archive.checksummed()) {
    // Pre-v2 artifact: readable, but carries no CRC32 footer, so silent
    // corruption cannot be detected. Note it rather than failing.
    std::fprintf(stderr,
                 "note: %s predates archive checksums (v1); loaded without "
                 "integrity verification\n",
                 path.c_str());
  }
  ESM_REQUIRE(archive.has("esm.format"),
              "not an ESM surrogate artifact (missing esm.format): " << path);
  const long long format = archive.get_int("esm.format");
  ESM_REQUIRE(format == kSurrogateFormatVersion,
              "unsupported surrogate artifact format v"
                  << format << " (this build reads v"
                  << kSurrogateFormatVersion << "): " << path);
  SurrogateContext context;
  context.spec = SupernetSpec::load(archive, "spec");
  context.encoder = archive.get_string("esm.encoder");
  return SurrogateRegistry::instance().load(archive.get_string("esm.kind"),
                                            archive, context);
}

}  // namespace esm
