// Trainable surrogate interface: the contract between the ESM loop and any
// concrete surrogate family. A TrainableSurrogate can be fit on an
// arch/latency dataset, queried like any LatencyPredictor, and persisted to
// the uniform artifact format (see SurrogateRegistry::save_surrogate for the
// self-describing header that wraps the state written by save()).
#pragma once

#include <span>
#include <string>

#include "common/archive.hpp"
#include "nets/arch.hpp"
#include "nets/supernet.hpp"
#include "surrogate/predictor.hpp"

namespace esm {

/// Training view over parallel architecture/latency arrays (non-owning).
struct SurrogateDataset {
  std::span<const ArchConfig> archs;
  std::span<const double> latencies_ms;

  std::size_t size() const { return archs.size(); }
};

/// A latency surrogate the ESM loop can train, retrain, and persist without
/// knowing its concrete family.
class TrainableSurrogate : public LatencyPredictor {
 public:
  /// Trains (or retrains from scratch) on the dataset.
  virtual void fit(const SurrogateDataset& data) = 0;

  /// True once fit() has run (or the state was loaded from an artifact).
  virtual bool fitted() const = 0;

  /// Stable registry key ("mlp", "lut", "gbdt", "ensemble"); artifacts store
  /// this in their header so load_surrogate can dispatch.
  virtual std::string kind() const = 0;

  /// Canonical encoder registry key this surrogate was built with ("fcc",
  /// "onehot", ...); "none" for table-based surrogates that do not encode.
  virtual std::string encoder_key() const = 0;

  /// The search space this surrogate models.
  virtual const SupernetSpec& spec() const = 0;

  /// Writes the fitted model state. Only state owned by the surrogate —
  /// the registry writes the artifact header (format version, kind,
  /// encoder, spec) around this.
  virtual void save(ArchiveWriter& archive) const = 0;
};

}  // namespace esm
