// Latency-predictor interface: every surrogate maps an architecture
// configuration to a predicted latency in milliseconds on one target device.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "nets/arch.hpp"

namespace esm {

/// Abstract latency surrogate for one (space, device) pair.
class LatencyPredictor {
 public:
  virtual ~LatencyPredictor() = default;

  /// Predicted latency of one architecture in milliseconds.
  virtual double predict_ms(const ArchConfig& arch) const = 0;

  /// Human-readable model name for tables ("MLP+fcc", "LUT+BC", ...).
  virtual std::string name() const = 0;

  /// Batch prediction. The default fans out over the deterministic thread
  /// pool (results in input order, bit-identical at any thread count);
  /// surrogates whose predict_ms is not const-pure (e.g. the lazily
  /// profiling LUT) override this with a serial loop, and the MLP-backed
  /// surrogates override it with the fused encode->standardize->batched
  /// GEMM fast path (allocation-free once warm, still bit-identical to
  /// per-arch predict_ms).
  virtual std::vector<double> predict_all(
      std::span<const ArchConfig> archs) const;
};

}  // namespace esm
