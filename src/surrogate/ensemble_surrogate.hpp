// Deep-ensemble latency surrogate: k independently initialized MLP
// surrogates over the same encoding. The ensemble mean is the prediction;
// the ensemble spread is a predictive-uncertainty estimate, which enables
// uncertainty-guided dataset extension (an extension of the paper's
// Algorithm 1 explored in bench/extension_active_sampling).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "encoding/encoder.hpp"
#include "ml/trainer.hpp"
#include "surrogate/mlp_surrogate.hpp"

namespace esm {

/// Mean/spread of an ensemble prediction.
struct EnsemblePrediction {
  double mean_ms = 0.0;
  double stddev_ms = 0.0;  ///< disagreement between ensemble members
};

/// k-member MLP ensemble sharing one encoding.
class EnsembleSurrogate final : public LatencyPredictor {
 public:
  /// Creates `members` MLP surrogates over fresh encoder instances of the
  /// given kind; member i uses seed `seed + i`.
  EnsembleSurrogate(EncodingKind encoding, const SupernetSpec& spec,
                    TrainConfig train_config, std::size_t members,
                    std::uint64_t seed);

  /// Trains every member on the same data (they differ by initialization
  /// and minibatch order only — a standard deep ensemble).
  void fit(std::span<const ArchConfig> archs,
           std::span<const double> latencies_ms);

  /// Mean prediction with the ensemble-disagreement uncertainty.
  EnsemblePrediction predict_with_uncertainty(const ArchConfig& arch) const;

  double predict_ms(const ArchConfig& arch) const override;
  std::string name() const override;

  std::size_t member_count() const { return members_.size(); }
  bool fitted() const;

 private:
  std::vector<std::unique_ptr<MlpSurrogate>> members_;
};

}  // namespace esm
