// Deep-ensemble latency surrogate: k independently initialized MLP
// surrogates over the same encoding. The ensemble mean is the prediction;
// the ensemble spread is a predictive-uncertainty estimate, which enables
// uncertainty-guided dataset extension (an extension of the paper's
// Algorithm 1 explored in bench/extension_active_sampling).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/trainer.hpp"
#include "surrogate/mlp_surrogate.hpp"
#include "surrogate/trainable.hpp"

namespace esm {

/// Mean/spread of an ensemble prediction.
struct EnsemblePrediction {
  double mean_ms = 0.0;
  double stddev_ms = 0.0;  ///< disagreement between ensemble members
};

/// k-member MLP ensemble sharing one encoding.
class EnsembleSurrogate final : public TrainableSurrogate {
 public:
  /// Creates `members` MLP surrogates over fresh encoder instances of the
  /// encoder-registry key (e.g. "fcc"); member i derives its seed from
  /// `seed` so members differ by initialization and minibatch order only.
  EnsembleSurrogate(const std::string& encoder_key, const SupernetSpec& spec,
                    TrainConfig train_config, std::size_t members,
                    std::uint64_t seed);

  /// Trains every member on the same data (a standard deep ensemble).
  void fit(std::span<const ArchConfig> archs,
           std::span<const double> latencies_ms);

  void fit(const SurrogateDataset& data) override;

  /// Mean prediction with the ensemble-disagreement uncertainty.
  EnsemblePrediction predict_with_uncertainty(const ArchConfig& arch) const;

  double predict_ms(const ArchConfig& arch) const override;

  /// Batch prediction through each member's fused predict_all, reduced in
  /// member order per index — the same summation order predict_ms uses,
  /// so results are bit-identical to the per-arch path.
  std::vector<double> predict_all(
      std::span<const ArchConfig> archs) const override;

  std::string name() const override;
  std::string kind() const override { return "ensemble"; }
  std::string encoder_key() const override;
  const SupernetSpec& spec() const override;

  /// Persists every member's state under "member<i>." prefixes.
  void save(ArchiveWriter& archive) const override;

  /// Restores an ensemble saved with save(). `encoder_key`/`spec` come from
  /// the enclosing artifact header.
  static std::unique_ptr<EnsembleSurrogate> load_state(
      const ArchiveReader& archive, const std::string& encoder_key,
      const SupernetSpec& spec);

  std::size_t member_count() const { return members_.size(); }
  bool fitted() const override;

 private:
  /// Internal: builds an ensemble shell whose members are supplied by the
  /// caller (used by load_state).
  explicit EnsembleSurrogate(
      std::vector<std::unique_ptr<MlpSurrogate>> members);

  std::vector<std::unique_ptr<MlpSurrogate>> members_;
};

}  // namespace esm
