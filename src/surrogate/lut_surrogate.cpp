#include "surrogate/lut_surrogate.hpp"

#include <sstream>

#include "common/error.hpp"

namespace esm {

LutSurrogate::LutSurrogate(SupernetSpec spec, SimulatedDevice& device)
    : spec_(std::move(spec)), device_(&device) {}

std::string LutSurrogate::signature(const Layer& layer) {
  std::ostringstream os;
  os << layer_kind_name(layer.kind) << ':' << layer.kernel << ':'
     << layer.stride << ':' << layer.groups << ':' << layer.input.channels
     << 'x' << layer.input.height << 'x' << layer.input.width << ':'
     << layer.aux_input.channels << ':' << layer.output.channels << 'x'
     << layer.output.height << 'x' << layer.output.width;
  return os.str();
}

double LutSurrogate::layer_cost_ms(const Layer& layer) const {
  const std::string key = signature(layer);
  const auto it = table_.find(key);
  if (it != table_.end()) return it->second;

  // Profile the layer in isolation: a single-kernel probe graph measured
  // with the full protocol (warm-up + 150 runs + trimmed mean). The probe
  // runs cold and unfused, exactly like a real isolated-kernel profiling
  // pass — which is precisely why the additive sum mispredicts networks
  // whose element-wise layers execute as fused epilogues.
  LayerGraph probe("probe:" + layer.name);
  probe.add(layer);
  const double measured = device_->measure_ms(probe);
  table_.emplace(key, measured);
  return measured;
}

double LutSurrogate::lut_ms(const ArchConfig& arch) const {
  const LayerGraph graph = build_graph(spec_, arch);
  double total = 0.0;
  for (const Layer& layer : graph.layers()) {
    total += layer_cost_ms(layer);
  }
  return total;
}

void LutSurrogate::warm_table(std::span<const ArchConfig> archs) {
  for (const ArchConfig& arch : archs) (void)lut_ms(arch);
}

void LutSurrogate::fit_bias_correction(std::span<const ArchConfig> archs,
                                       std::span<const double> measured_ms) {
  ESM_REQUIRE(archs.size() == measured_ms.size(),
              "bias-correction data mismatch");
  ESM_REQUIRE(archs.size() >= 2, "bias correction needs >= 2 samples");
  Matrix x(archs.size(), 1);
  for (std::size_t i = 0; i < archs.size(); ++i) {
    x(i, 0) = lut_ms(archs[i]);
  }
  LinearRegression reg;
  reg.fit(x, measured_ms);
  bias_correction_ = std::move(reg);
}

double LutSurrogate::predict_ms(const ArchConfig& arch) const {
  const double raw = lut_ms(arch);
  if (!bias_correction_) return raw;
  const double features[1] = {raw};
  return bias_correction_->predict_one(features);
}

std::string LutSurrogate::name() const {
  return bias_corrected() ? "LUT+BC" : "LUT";
}

}  // namespace esm
