#include "surrogate/lut_surrogate.hpp"

#include <sstream>

#include "common/error.hpp"

namespace esm {

LutSurrogate::LutSurrogate(SupernetSpec spec, SimulatedDevice& device)
    : spec_(std::move(spec)), device_(&device) {}

LutSurrogate::LutSurrogate(SupernetSpec spec,
                           std::map<std::string, double> table)
    : spec_(std::move(spec)), device_(nullptr), table_(std::move(table)) {
  ESM_REQUIRE(!table_.empty(),
              "a device-less LUT surrogate needs a non-empty table");
}

void LutSurrogate::fit(const SurrogateDataset& data) {
  ESM_REQUIRE(data.size() > 0, "LutSurrogate::fit requires data");
  warm_table(data.archs);
  if (data.size() >= 2) {
    fit_bias_correction(data.archs, data.latencies_ms);
  }
}

std::string LutSurrogate::signature(const Layer& layer) {
  std::ostringstream os;
  os << layer_kind_name(layer.kind) << ':' << layer.kernel << ':'
     << layer.stride << ':' << layer.groups << ':' << layer.input.channels
     << 'x' << layer.input.height << 'x' << layer.input.width << ':'
     << layer.aux_input.channels << ':' << layer.output.channels << 'x'
     << layer.output.height << 'x' << layer.output.width;
  return os.str();
}

double LutSurrogate::layer_cost_ms(const Layer& layer) const {
  const std::string key = signature(layer);
  const auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  ESM_REQUIRE(device_ != nullptr,
              "LUT surrogate has no device to profile layer '"
                  << key
                  << "' (artifact-loaded LUTs serve saved table entries "
                     "only)");

  // Profile the layer in isolation: a single-kernel probe graph measured
  // with the full protocol (warm-up + 150 runs + trimmed mean). The probe
  // runs cold and unfused, exactly like a real isolated-kernel profiling
  // pass — which is precisely why the additive sum mispredicts networks
  // whose element-wise layers execute as fused epilogues.
  LayerGraph probe("probe:" + layer.name);
  probe.add(layer);
  // A faulted probe (hwsim/faults.hpp) must not poison the table with a
  // zero entry; fall back to the noise-free latency for this layer.
  const MeasureResult result = device_->measure(probe);
  const double measured =
      result.ok() ? result.value : device_->true_latency_ms(probe);
  table_.emplace(key, measured);
  return measured;
}

double LutSurrogate::lut_ms(const ArchConfig& arch) const {
  const LayerGraph graph = build_graph(spec_, arch);
  double total = 0.0;
  for (const Layer& layer : graph.layers()) {
    total += layer_cost_ms(layer);
  }
  return total;
}

void LutSurrogate::warm_table(std::span<const ArchConfig> archs) {
  for (const ArchConfig& arch : archs) (void)lut_ms(arch);
}

void LutSurrogate::fit_bias_correction(std::span<const ArchConfig> archs,
                                       std::span<const double> measured_ms) {
  ESM_REQUIRE(archs.size() == measured_ms.size(),
              "bias-correction data mismatch");
  ESM_REQUIRE(archs.size() >= 2, "bias correction needs >= 2 samples");
  Matrix x(archs.size(), 1);
  for (std::size_t i = 0; i < archs.size(); ++i) {
    x(i, 0) = lut_ms(archs[i]);
  }
  LinearRegression reg;
  reg.fit(x, measured_ms);
  bias_correction_ = std::move(reg);
}

void LutSurrogate::set_bias_state(std::vector<double> weights,
                                  double intercept) {
  LinearRegression reg;
  reg.set_state(std::move(weights), intercept);
  bias_correction_ = std::move(reg);
}

double LutSurrogate::predict_ms(const ArchConfig& arch) const {
  const double raw = lut_ms(arch);
  if (!bias_correction_) return raw;
  const double features[1] = {raw};
  return bias_correction_->predict_one(features);
}

std::string LutSurrogate::name() const {
  return bias_corrected() ? "LUT+BC" : "LUT";
}

std::vector<double> LutSurrogate::predict_all(
    std::span<const ArchConfig> archs) const {
  // Serial on purpose: lazy profiling mutates table_ and charges the
  // device's measurement-cost account, neither of which tolerates
  // concurrent callers.
  std::vector<double> out;
  out.reserve(archs.size());
  for (const ArchConfig& arch : archs) out.push_back(predict_ms(arch));
  return out;
}

void LutSurrogate::save(ArchiveWriter& archive) const {
  ESM_REQUIRE(fitted(), "cannot save an empty LUT surrogate");
  // Signatures are whitespace-free by construction, so they store directly
  // as archive string tokens; std::map iteration gives a stable key order.
  std::vector<std::string> keys;
  std::vector<double> values;
  keys.reserve(table_.size());
  values.reserve(table_.size());
  for (const auto& [key, value] : table_) {
    keys.push_back(key);
    values.push_back(value);
  }
  archive.put_strings("lut.keys", keys);
  archive.put_doubles("lut.values", values);
  archive.put_int("lut.bias_corrected", bias_corrected() ? 1 : 0);
  if (bias_corrected()) {
    archive.put_doubles("lut.bias.weights", bias_correction_->weights());
    archive.put_double("lut.bias.intercept", bias_correction_->intercept());
  }
}

}  // namespace esm
