#include "surrogate/flops_proxy.hpp"

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "ml/linreg.hpp"

namespace esm {

FlopsProxy::FlopsProxy(SupernetSpec spec) : spec_(std::move(spec)) {}

double FlopsProxy::gflops(const ArchConfig& arch) const {
  return build_graph(spec_, arch).total_flops() / 1e9;
}

void FlopsProxy::fit(std::span<const ArchConfig> archs,
                     std::span<const double> measured_ms) {
  ESM_REQUIRE(archs.size() == measured_ms.size(), "FlopsProxy data mismatch");
  ESM_REQUIRE(archs.size() >= 2, "FlopsProxy needs >= 2 samples");
  Matrix x(archs.size(), 1);
  for (std::size_t i = 0; i < archs.size(); ++i) x(i, 0) = gflops(archs[i]);
  LinearRegression reg;
  reg.fit(x, measured_ms);
  scale_ = reg.weights().front();
  offset_ = reg.intercept();
}

double FlopsProxy::predict_ms(const ArchConfig& arch) const {
  return scale_ * gflops(arch) + offset_;
}

}  // namespace esm
