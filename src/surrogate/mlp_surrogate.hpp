// MLP-based latency surrogate: encoder + input standardization + target
// scaling + the paper's 3-layer/64-hidden MLP trained with Adam on MSE.
// fit() retrains from scratch (the ESM loop retrains after every dataset
// extension, as in the paper).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "encoding/encoder.hpp"
#include "linalg/standardizer.hpp"
#include "ml/mlp.hpp"
#include "ml/trainer.hpp"
#include "surrogate/trainable.hpp"

namespace esm {

/// Encoder-fronted MLP regression surrogate.
class MlpSurrogate final : public TrainableSurrogate {
 public:
  /// Takes ownership of the encoder. `seed` controls weight initialization
  /// and minibatch shuffling, making fits reproducible.
  MlpSurrogate(std::unique_ptr<Encoder> encoder, TrainConfig train_config,
               std::uint64_t seed);

  /// Trains from scratch on architecture/latency pairs; returns trainer
  /// telemetry (including wall-clock seconds, used by the Fig. 4a bench).
  TrainResult fit(std::span<const ArchConfig> archs,
                  std::span<const double> latencies_ms);

  void fit(const SurrogateDataset& data) override;

  double predict_ms(const ArchConfig& arch) const override;

  /// Fused batch prediction: encodes every arch directly into one
  /// preallocated input matrix (Encoder::encode_into), standardizes rows
  /// in place, and runs a single batched MLP forward through per-thread
  /// workspaces — zero per-architecture heap allocations once warm
  /// (tests/fastpath_test.cpp pins this). Bit-identical to calling
  /// predict_ms per arch, at every thread count.
  std::vector<double> predict_all(
      std::span<const ArchConfig> archs) const override;

  std::string name() const override;
  std::string kind() const override { return "mlp"; }
  std::string encoder_key() const override;
  const SupernetSpec& spec() const override { return encoder_->spec(); }

  /// Writes the fitted state (standardizers, train config, seed, weights)
  /// with no prefix; see save_state for embedding under a prefix.
  void save(ArchiveWriter& archive) const override;

  /// Writes the fitted state with every key prefixed (used by the ensemble
  /// surrogate to pack members into one archive).
  void save_state(ArchiveWriter& archive, const std::string& prefix) const;

  /// Restores a surrogate saved with save_state(); `encoder` must match the
  /// spec/encoding recorded in the enclosing artifact header.
  static std::unique_ptr<MlpSurrogate> load_state(
      const ArchiveReader& archive, const std::string& prefix,
      std::unique_ptr<Encoder> encoder);

  bool fitted() const override { return mlp_.has_value(); }
  const Encoder& encoder() const { return *encoder_; }
  const TrainConfig& train_config() const { return train_config_; }

 private:
  std::unique_ptr<Encoder> encoder_;
  TrainConfig train_config_;
  std::uint64_t seed_;
  Standardizer input_standardizer_;
  TargetScaler target_scaler_;
  std::optional<Mlp> mlp_;
};

}  // namespace esm
