#include "surrogate/gbdt_surrogate.hpp"

#include <utility>

#include "common/error.hpp"
#include "encoding/registry.hpp"

namespace esm {

GbdtSurrogate::GbdtSurrogate(std::unique_ptr<Encoder> encoder,
                             GbdtConfig config)
    : encoder_(std::move(encoder)), config_(config) {
  ESM_REQUIRE(encoder_ != nullptr, "GbdtSurrogate requires an encoder");
}

void GbdtSurrogate::fit(const SurrogateDataset& data) {
  ESM_REQUIRE(data.archs.size() == data.latencies_ms.size(),
              "GbdtSurrogate::fit data mismatch");
  ESM_REQUIRE(data.size() > 0, "GbdtSurrogate::fit requires data");
  // Trees are scale-invariant, so the raw encoding feeds in directly.
  const Matrix x = encoder_->encode_all(data.archs);
  model_.emplace(config_);
  model_->fit(x, data.latencies_ms);
}

double GbdtSurrogate::predict_ms(const ArchConfig& arch) const {
  ESM_REQUIRE(fitted(), "GbdtSurrogate used before fit()");
  return model_->predict_one(encoder_->encode(arch));
}

std::string GbdtSurrogate::name() const {
  return "GBDT+" + encoder_->name();
}

std::string GbdtSurrogate::encoder_key() const {
  return encoder_registry_key(encoder_->kind());
}

void GbdtSurrogate::save(ArchiveWriter& archive) const {
  ESM_REQUIRE(fitted(), "cannot save an unfitted GbdtSurrogate");
  model_->save(archive, "gbdt.");
}

std::unique_ptr<GbdtSurrogate> GbdtSurrogate::load_state(
    const ArchiveReader& archive, std::unique_ptr<Encoder> encoder) {
  auto surrogate = std::make_unique<GbdtSurrogate>(std::move(encoder));
  surrogate->model_.emplace(
      GradientBoostingRegressor::load(archive, "gbdt."));
  return surrogate;
}

}  // namespace esm
