#include "surrogate/gcn_surrogate.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace esm {

GcnSurrogate::GcnSurrogate(SupernetSpec spec, GcnConfig config)
    : spec_(std::move(spec)),
      config_(config),
      gcn_(node_feature_dim(), config) {}

std::size_t GcnSurrogate::node_feature_dim() const {
  const std::size_t expansions =
      spec_.expansion_options.empty() ? 0 : spec_.expansion_options.size();
  return static_cast<std::size_t>(spec_.num_units) + 2 +
         spec_.kernel_options.size() + expansions;
}

Matrix GcnSurrogate::node_features(const ArchConfig& arch) const {
  spec_.validate(arch);
  const std::size_t n = static_cast<std::size_t>(arch.total_blocks());
  Matrix features(n, node_feature_dim());
  const std::size_t kernels = spec_.kernel_options.size();
  const std::size_t units = static_cast<std::size_t>(spec_.num_units);
  std::size_t row = 0;
  for (std::size_t ui = 0; ui < arch.units.size(); ++ui) {
    const UnitConfig& unit = arch.units[ui];
    for (std::size_t bi = 0; bi < unit.blocks.size(); ++bi, ++row) {
      const BlockConfig& block = unit.blocks[bi];
      auto dst = features.row(row);
      dst[ui] = 1.0;  // unit one-hot
      dst[units] =
          static_cast<double>(bi) / static_cast<double>(spec_.max_blocks_per_unit);
      dst[units + 1] = bi == 0 ? 1.0 : 0.0;  // stride/projection position
      for (std::size_t k = 0; k < kernels; ++k) {
        if (spec_.kernel_options[k] == block.kernel) {
          dst[units + 2 + k] = 1.0;
        }
      }
      if (!spec_.expansion_options.empty()) {
        for (std::size_t e = 0; e < spec_.expansion_options.size(); ++e) {
          if (std::abs(spec_.expansion_options[e] - block.expansion) < 1e-9) {
            dst[units + 2 + kernels + e] = 1.0;
          }
        }
      }
    }
  }
  ESM_CHECK(row == n, "node feature rows mismatch");
  return features;
}

void GcnSurrogate::fit(std::span<const ArchConfig> archs,
                       std::span<const double> latencies_ms) {
  ESM_REQUIRE(archs.size() == latencies_ms.size(),
              "GcnSurrogate::fit data mismatch");
  ESM_REQUIRE(!archs.empty(), "GcnSurrogate::fit requires data");
  std::vector<Matrix> graphs;
  graphs.reserve(archs.size());
  for (const ArchConfig& arch : archs) {
    graphs.push_back(node_features(arch));
  }
  target_scaler_.fit(latencies_ms);
  std::vector<double> targets(latencies_ms.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    targets[i] = target_scaler_.transform(latencies_ms[i]);
  }
  gcn_ = GcnRegressor(node_feature_dim(), config_);
  gcn_.fit(graphs, targets);
}

double GcnSurrogate::predict_ms(const ArchConfig& arch) const {
  ESM_REQUIRE(fitted(), "GcnSurrogate used before fit()");
  return target_scaler_.inverse(gcn_.predict(node_features(arch)));
}

}  // namespace esm
