#include "surrogate/ensemble_surrogate.hpp"

#include <cmath>

#include "common/error.hpp"
#include "encoding/registry.hpp"

namespace esm {

EnsembleSurrogate::EnsembleSurrogate(const std::string& encoder_key,
                                     const SupernetSpec& spec,
                                     TrainConfig train_config,
                                     std::size_t members, std::uint64_t seed) {
  ESM_REQUIRE(members >= 2, "an ensemble needs at least two members");
  members_.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    members_.push_back(std::make_unique<MlpSurrogate>(
        make_encoder(encoder_key, spec), train_config,
        seed + 0x9e37ull * (i + 1)));
  }
}

EnsembleSurrogate::EnsembleSurrogate(
    std::vector<std::unique_ptr<MlpSurrogate>> members)
    : members_(std::move(members)) {
  ESM_REQUIRE(members_.size() >= 2, "an ensemble needs at least two members");
}

void EnsembleSurrogate::fit(const SurrogateDataset& data) {
  fit(data.archs, data.latencies_ms);
}

std::string EnsembleSurrogate::encoder_key() const {
  return members_.front()->encoder_key();
}

const SupernetSpec& EnsembleSurrogate::spec() const {
  return members_.front()->spec();
}

void EnsembleSurrogate::save(ArchiveWriter& archive) const {
  ESM_REQUIRE(fitted(), "cannot save an unfitted EnsembleSurrogate");
  archive.put_int("ensemble.members",
                  static_cast<long long>(members_.size()));
  for (std::size_t i = 0; i < members_.size(); ++i) {
    members_[i]->save_state(archive, "member" + std::to_string(i) + ".");
  }
}

std::unique_ptr<EnsembleSurrogate> EnsembleSurrogate::load_state(
    const ArchiveReader& archive, const std::string& encoder_key,
    const SupernetSpec& spec) {
  const long long count = archive.get_int("ensemble.members");
  ESM_REQUIRE(count >= 2, "ensemble artifact needs >= 2 members");
  std::vector<std::unique_ptr<MlpSurrogate>> members;
  members.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    members.push_back(MlpSurrogate::load_state(
        archive, "member" + std::to_string(i) + ".",
        make_encoder(encoder_key, spec)));
  }
  return std::unique_ptr<EnsembleSurrogate>(
      new EnsembleSurrogate(std::move(members)));
}

bool EnsembleSurrogate::fitted() const {
  for (const auto& member : members_) {
    if (!member->fitted()) return false;
  }
  return true;
}

void EnsembleSurrogate::fit(std::span<const ArchConfig> archs,
                            std::span<const double> latencies_ms) {
  for (auto& member : members_) {
    member->fit(archs, latencies_ms);
  }
}

EnsemblePrediction EnsembleSurrogate::predict_with_uncertainty(
    const ArchConfig& arch) const {
  ESM_REQUIRE(fitted(), "EnsembleSurrogate used before fit()");
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& member : members_) {
    const double p = member->predict_ms(arch);
    sum += p;
    sum_sq += p * p;
  }
  const double n = static_cast<double>(members_.size());
  EnsemblePrediction pred;
  pred.mean_ms = sum / n;
  const double var = sum_sq / n - pred.mean_ms * pred.mean_ms;
  pred.stddev_ms = var > 0.0 ? std::sqrt(var) : 0.0;
  return pred;
}

double EnsembleSurrogate::predict_ms(const ArchConfig& arch) const {
  return predict_with_uncertainty(arch).mean_ms;
}

std::vector<double> EnsembleSurrogate::predict_all(
    std::span<const ArchConfig> archs) const {
  ESM_REQUIRE(fitted(), "EnsembleSurrogate used before fit()");
  std::vector<double> sums(archs.size(), 0.0);
  for (const auto& member : members_) {
    const std::vector<double> preds = member->predict_all(archs);
    for (std::size_t i = 0; i < preds.size(); ++i) sums[i] += preds[i];
  }
  const double n = static_cast<double>(members_.size());
  for (double& v : sums) v /= n;
  return sums;
}

std::string EnsembleSurrogate::name() const {
  return "Ensemble(" + std::to_string(members_.size()) + ")x" +
         members_.front()->name();
}

}  // namespace esm
