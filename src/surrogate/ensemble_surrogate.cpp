#include "surrogate/ensemble_surrogate.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esm {

EnsembleSurrogate::EnsembleSurrogate(EncodingKind encoding,
                                     const SupernetSpec& spec,
                                     TrainConfig train_config,
                                     std::size_t members, std::uint64_t seed) {
  ESM_REQUIRE(members >= 2, "an ensemble needs at least two members");
  members_.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    members_.push_back(std::make_unique<MlpSurrogate>(
        make_encoder(encoding, spec), train_config,
        seed + 0x9e37ull * (i + 1)));
  }
}

bool EnsembleSurrogate::fitted() const {
  for (const auto& member : members_) {
    if (!member->fitted()) return false;
  }
  return true;
}

void EnsembleSurrogate::fit(std::span<const ArchConfig> archs,
                            std::span<const double> latencies_ms) {
  for (auto& member : members_) {
    member->fit(archs, latencies_ms);
  }
}

EnsemblePrediction EnsembleSurrogate::predict_with_uncertainty(
    const ArchConfig& arch) const {
  ESM_REQUIRE(fitted(), "EnsembleSurrogate used before fit()");
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& member : members_) {
    const double p = member->predict_ms(arch);
    sum += p;
    sum_sq += p * p;
  }
  const double n = static_cast<double>(members_.size());
  EnsemblePrediction pred;
  pred.mean_ms = sum / n;
  const double var = sum_sq / n - pred.mean_ms * pred.mean_ms;
  pred.stddev_ms = var > 0.0 ? std::sqrt(var) : 0.0;
  return pred;
}

double EnsembleSurrogate::predict_ms(const ArchConfig& arch) const {
  return predict_with_uncertainty(arch).mean_ms;
}

std::string EnsembleSurrogate::name() const {
  return "Ensemble(" + std::to_string(members_.size()) + ")x" +
         members_.front()->name();
}

}  // namespace esm
