// Registry of trainable surrogates keyed by short stable strings, plus the
// uniform artifact format. The ESM loop, the CLI, and the benches select
// surrogates by key from EsmConfig; save_surrogate/load_surrogate round-trip
// any registered kind through a self-describing archive (header: esm.format,
// esm.kind, esm.encoder, spec.*), so a surrogate trained in one process can
// serve predictions in another.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hwsim/measurement.hpp"
#include "ml/trainer.hpp"
#include "nets/supernet.hpp"
#include "surrogate/trainable.hpp"

namespace esm {

/// Artifact schema version written as "esm.format". Bump when the header
/// layout changes incompatibly; load_surrogate rejects other versions.
inline constexpr long long kSurrogateFormatVersion = 1;

/// Everything a surrogate factory may need. Factories take what applies to
/// their family and ignore the rest (e.g. the LUT ignores `encoder` and
/// `train`; the MLP ignores `device`).
struct SurrogateContext {
  SupernetSpec spec;
  std::string encoder = "fcc";  ///< encoder-registry key
  TrainConfig train;
  std::uint64_t seed = 0;
  SimulatedDevice* device = nullptr;  ///< required by "lut" for training
  std::size_t ensemble_members = 4;   ///< used by "ensemble"
};

/// Maps surrogate keys ("mlp", "lut", "gbdt", "ensemble") to a factory
/// (fresh trainable instance) and a loader (instance restored from an
/// artifact archive).
class SurrogateRegistry {
 public:
  using Factory = std::function<std::unique_ptr<TrainableSurrogate>(
      const SurrogateContext& context)>;
  using Loader = std::function<std::unique_ptr<TrainableSurrogate>(
      const ArchiveReader& archive, const SurrogateContext& context)>;

  /// Process-wide registry with the built-in families pre-registered.
  static SurrogateRegistry& instance();

  /// Registers a family under a key; rejects duplicates.
  void add(const std::string& key, Factory factory, Loader loader);

  bool has(const std::string& key) const;

  /// Builds a fresh, unfitted surrogate of the registered kind; throws
  /// ConfigError listing the registered keys when the key is unknown.
  std::unique_ptr<TrainableSurrogate> create(
      const std::string& key, const SurrogateContext& context) const;

  /// Restores a surrogate of the registered kind from an artifact archive.
  std::unique_ptr<TrainableSurrogate> load(
      const std::string& key, const ArchiveReader& archive,
      const SurrogateContext& context) const;

  /// Keys in registration order.
  std::vector<std::string> keys() const;

 private:
  SurrogateRegistry() = default;

  struct Entry {
    Factory factory;
    Loader loader;
  };

  const Entry& entry(const std::string& key) const;

  std::vector<std::string> order_;
  std::map<std::string, Entry> entries_;
};

/// Writes `surrogate` to `path` with the self-describing artifact header.
void save_surrogate(const TrainableSurrogate& surrogate,
                    const std::string& path);

/// Same artifact, written atomically (write-temp -> fsync -> rename): a
/// concurrent reader or a crash mid-publish sees the old file or the new
/// one, never a torn artifact. Returns the CRC32 hex of the written bytes
/// — the identity fleet manifests pin the artifact to.
std::string save_surrogate_atomic(const TrainableSurrogate& surrogate,
                                  const std::string& path);

/// Reads the artifact header at `path` and dispatches to the registered
/// loader for its kind. The result predicts immediately; fitting again
/// requires family-specific context (device, encoder) and is not restored.
std::unique_ptr<TrainableSurrogate> load_surrogate(const std::string& path);

/// Same, from an already-read buffer holding the full artifact file.
/// `path` only names the artifact in error messages. Callers that already
/// hold the bytes — the serve layer reads them once for both the identity
/// CRC32 and the parse — avoid a second read of the file.
std::unique_ptr<TrainableSurrogate> load_surrogate(const std::string& path,
                                                   const std::string& contents);

}  // namespace esm
