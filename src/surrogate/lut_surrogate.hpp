// Lookup-table latency surrogate (the paper's additive baseline).
//
// "Lookup table-based techniques use an additive model where latency of
// each individual layer is taken from the lookup table (defined through
// profiling) and then the latencies of all the layers are accumulated"
// (paper §I). We reproduce that faithfully at layer granularity: every
// structurally-distinct layer is measured ONCE on the simulated device as a
// standalone single-kernel probe (cold caches, no fusion context — exactly
// the isolation error real layer LUTs suffer), memoized by a structural
// signature, and summed over the network's layers.
//
// The additive sum systematically mispredicts because whole-network
// execution fuses element-wise layers into the preceding kernel's epilogue
// and warms caches across layer boundaries — the "complex interactions
// between layers" the paper says LUTs cannot capture.
// fit_bias_correction() fits the paper's linear-regression correction
// (measured ≈ a * lut + b) on a calibration set.
//
// A LUT loaded from an artifact has no device: it serves the persisted
// table only and raises ConfigError on layers it never profiled.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hwsim/measurement.hpp"
#include "ml/linreg.hpp"
#include "nets/builder.hpp"
#include "nets/supernet.hpp"
#include "surrogate/trainable.hpp"

namespace esm {

/// Additive block-wise lookup-table surrogate with optional bias correction.
class LutSurrogate final : public TrainableSurrogate {
 public:
  /// Borrows the device for profiling; the device must outlive the
  /// surrogate. Profiling happens lazily (memoized) on first use of each
  /// block type and is charged to the device's measurement-cost account.
  LutSurrogate(SupernetSpec spec, SimulatedDevice& device);

  /// Device-less serving mode: answers from `table` only and raises
  /// ConfigError on unprofiled layers. Used when loading artifacts.
  LutSurrogate(SupernetSpec spec, std::map<std::string, double> table);

  /// Warms the table over the dataset's architectures, then fits the bias
  /// correction when >= 2 samples are available.
  void fit(const SurrogateDataset& data) override;

  /// Uncorrected additive LUT prediction.
  double lut_ms(const ArchConfig& arch) const;

  /// Fits the linear bias correction on a calibration set of architectures
  /// with measured latencies.
  void fit_bias_correction(std::span<const ArchConfig> archs,
                           std::span<const double> measured_ms);

  /// Restores a persisted bias correction (weights + intercept).
  void set_bias_state(std::vector<double> weights, double intercept);

  /// Removes the bias correction (back to the raw additive model).
  void clear_bias_correction() { bias_correction_.reset(); }
  bool bias_corrected() const { return bias_correction_.has_value(); }

  double predict_ms(const ArchConfig& arch) const override;
  std::string name() const override;
  std::string kind() const override { return "lut"; }
  std::string encoder_key() const override { return encoder_key_; }
  const SupernetSpec& spec() const override { return spec_; }
  bool fitted() const override { return !table_.empty(); }

  /// Lazy profiling mutates the memo table and charges device measurement
  /// cost, so batch prediction must stay serial.
  std::vector<double> predict_all(
      std::span<const ArchConfig> archs) const override;

  /// Persists the profiled table and bias correction.
  void save(ArchiveWriter& archive) const override;

  /// Records which encoder key the artifact header should carry (the LUT
  /// itself never encodes; defaults to "none").
  void set_encoder_key(std::string key) { encoder_key_ = std::move(key); }

  /// Number of distinct layer types profiled so far.
  std::size_t table_size() const { return table_.size(); }

  /// Pre-profiles every layer type appearing in `archs`.
  void warm_table(std::span<const ArchConfig> archs);

 private:
  /// Position-independent structural key of a layer (kind, kernel, stride,
  /// shapes), so identical layers share one table entry.
  static std::string signature(const Layer& layer);

  /// Table entry for one layer, profiling a single-kernel probe on first
  /// use.
  double layer_cost_ms(const Layer& layer) const;

  SupernetSpec spec_;
  SimulatedDevice* device_;  // non-owning; nullptr in serving mode
  std::string encoder_key_ = "none";
  mutable std::map<std::string, double> table_;
  std::optional<LinearRegression> bias_correction_;
};

}  // namespace esm
