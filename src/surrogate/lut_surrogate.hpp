// Lookup-table latency surrogate (the paper's additive baseline).
//
// "Lookup table-based techniques use an additive model where latency of
// each individual layer is taken from the lookup table (defined through
// profiling) and then the latencies of all the layers are accumulated"
// (paper §I). We reproduce that faithfully at layer granularity: every
// structurally-distinct layer is measured ONCE on the simulated device as a
// standalone single-kernel probe (cold caches, no fusion context — exactly
// the isolation error real layer LUTs suffer), memoized by a structural
// signature, and summed over the network's layers.
//
// The additive sum systematically mispredicts because whole-network
// execution fuses element-wise layers into the preceding kernel's epilogue
// and warms caches across layer boundaries — the "complex interactions
// between layers" the paper says LUTs cannot capture.
// fit_bias_correction() fits the paper's linear-regression correction
// (measured ≈ a * lut + b) on a calibration set.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hwsim/measurement.hpp"
#include "ml/linreg.hpp"
#include "nets/builder.hpp"
#include "nets/supernet.hpp"
#include "surrogate/predictor.hpp"

namespace esm {

/// Additive block-wise lookup-table surrogate with optional bias correction.
class LutSurrogate final : public LatencyPredictor {
 public:
  /// Borrows the device for profiling; the device must outlive the
  /// surrogate. Profiling happens lazily (memoized) on first use of each
  /// block type and is charged to the device's measurement-cost account.
  LutSurrogate(SupernetSpec spec, SimulatedDevice& device);

  /// Uncorrected additive LUT prediction.
  double lut_ms(const ArchConfig& arch) const;

  /// Fits the linear bias correction on a calibration set of architectures
  /// with measured latencies.
  void fit_bias_correction(std::span<const ArchConfig> archs,
                           std::span<const double> measured_ms);

  /// Removes the bias correction (back to the raw additive model).
  void clear_bias_correction() { bias_correction_.reset(); }
  bool bias_corrected() const { return bias_correction_.has_value(); }

  double predict_ms(const ArchConfig& arch) const override;
  std::string name() const override;

  /// Number of distinct layer types profiled so far.
  std::size_t table_size() const { return table_.size(); }

  /// Pre-profiles every layer type appearing in `archs`.
  void warm_table(std::span<const ArchConfig> archs);

 private:
  /// Position-independent structural key of a layer (kind, kernel, stride,
  /// shapes), so identical layers share one table entry.
  static std::string signature(const Layer& layer);

  /// Table entry for one layer, profiling a single-kernel probe on first
  /// use.
  double layer_cost_ms(const Layer& layer) const;

  SupernetSpec spec_;
  SimulatedDevice* device_;  // non-owning
  mutable std::map<std::string, double> table_;
  std::optional<LinearRegression> bias_correction_;
};

}  // namespace esm
