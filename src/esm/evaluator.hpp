// Predictor evaluation (paper §II-D): overall accuracy plus per-depth-bin
// accuracy against the user threshold Acc_TH. The extension algorithm uses
// the per-bin pass/fail outcome to decide where to sample next.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "esm/config.hpp"
#include "esm/dataset_gen.hpp"
#include "nets/depth_bins.hpp"
#include "surrogate/predictor.hpp"

namespace esm {

/// Accuracy of one depth bin.
struct BinAccuracy {
  int bin = 0;
  std::string label;       ///< total-block range, e.g. "4-8"
  std::size_t count = 0;   ///< test samples in the bin
  double accuracy = 0.0;   ///< mean sample accuracy (0 when empty)
  bool below_threshold = false;
};

/// Full evaluation outcome of one predictor on one test set.
struct EvalReport {
  double overall_accuracy = 0.0;
  double min_bin_accuracy = 0.0;  ///< over non-empty bins
  std::vector<BinAccuracy> bins;

  /// Indices of non-empty bins below / at-or-above the threshold.
  std::vector<int> bins_below() const;
  std::vector<int> bins_above() const;

  /// Pass/fail under the configured evaluation strategy.
  bool passed(EvalStrategy strategy, double acc_threshold) const;
};

/// Evaluates a predictor bin-wise over measured test samples.
class BinwiseEvaluator {
 public:
  BinwiseEvaluator(const SupernetSpec& spec, int n_bins,
                   double acc_threshold);

  EvalReport evaluate(const LatencyPredictor& predictor,
                      std::span<const MeasuredSample> test_set) const;

  const DepthBins& bins() const { return bins_; }

 private:
  DepthBins bins_;
  double acc_threshold_;
};

}  // namespace esm
