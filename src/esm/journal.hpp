// Crash-safe measurement campaigns: write-ahead journal and exact resume.
//
// The dataset-generation stage is the expensive part of ESM — hours of
// on-device measurement under reference-model QC (paper §II-C.3) — and a
// crashed or killed process (OOM, device-host reboot, CI timeout) must not
// throw the collected measurements away. DatasetGenerator therefore writes
// every accepted batch through a CampaignJournal: an append-only,
// line-framed write-ahead log that is fsync'd on batch boundaries, so at
// any kill point the journal holds every batch that completed.
//
// File format (text, one record per line):
//
//   esm-journal v1
//   <seq> <crc32> <body>
//
// `seq` is a contiguous sequence number starting at 0, `crc32` is the CRC32
// (common/checksum.hpp) of exactly the body bytes, and `body` is a stream
// of whitespace-free token groups `key count v0 v1 ...` (the archive
// convention). Record 0 describes the campaign (config digest, seed,
// reference baselines, baseline-session count, accumulated simulated cost,
// RNG fingerprint); every later record is one measure_batch() call: the
// surviving samples (todo-index + latency), the QcReport, the
// DatasetReport, the newly quarantined architecture keys, and the RNG
// fingerprint after the batch.
//
// Torn-tail rule: a record is durable once its terminating newline reaches
// stable storage. On resume, a final line that is unterminated, fails its
// CRC, or does not parse is a *torn tail* — it is truncated from the file
// and noted on stderr, and that batch is simply re-measured. The same
// damage anywhere BEFORE the last record is corruption and is rejected
// with a precise error naming the record and byte offset.
//
// Resume invariant: because every stochastic decision of a campaign is
// drawn from seeded streams, and measurements never advance the device's
// sequential stream (they ride non-advancing substreams), a journaled
// batch can be replayed by (a) fast-forwarding the device through the
// recorded number of session begins, (b) consuming one generator-RNG split
// per session, and (c) restoring the journaled cost/quarantine/QC state —
// no measurement runs, and the campaign continues bit-identically to an
// uninterrupted run at any thread count. The RNG fingerprints pin that
// invariant: replay refuses to continue if the restored stream diverges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "esm/dataset_gen.hpp"

namespace esm {

struct EsmConfig;

/// Campaign-start record: everything needed to restore DatasetGenerator
/// construction state without re-measuring the reference baselines.
struct CampaignHeader {
  std::uint32_t config_crc = 0;   ///< campaign_config_crc() of the config
  std::uint64_t seed = 0;         ///< EsmConfig::seed
  int baseline_sessions = 0;      ///< device sessions to replay on resume
  std::vector<double> baselines;  ///< per-reference baseline latencies (ms)
  double cost_seconds = 0.0;      ///< device cumulative cost after baselines
  std::uint64_t rng_digest = 0;   ///< generator stream fingerprint
};

/// One surviving sample of a journaled batch, addressed by its index into
/// the batch's measurable (non-quarantined) architecture list.
struct JournalSample {
  std::size_t todo_index = 0;
  double latency_ms = 0.0;
};

/// One measure_batch() call as written to / replayed from the journal.
struct BatchRecord {
  std::size_t requested = 0;      ///< architectures asked for
  std::uint32_t request_crc = 0;  ///< CRC32 over the requested arch keys
  int sessions = 0;               ///< device sessions to replay on resume
  bool has_qc = false;            ///< false for fully quarantined/empty calls
  QcReport qc;
  DatasetReport report;
  std::vector<JournalSample> samples;
  std::vector<std::string> quarantined;  ///< arch keys newly quarantined
  double cost_total = 0.0;        ///< device cumulative cost after the batch
  std::uint64_t rng_digest = 0;   ///< generator stream fingerprint after
};

/// Digest of the campaign-identity fields of a config (space, seed, QC,
/// fault and retry knobs). Deliberately excludes execution knobs (threads,
/// journal options): a campaign may be resumed at a different thread count
/// and must still produce bit-identical results (the PR-1 invariant).
std::uint32_t campaign_config_crc(const EsmConfig& config);

/// CRC32 over the stable keys of a requested batch, used to verify that a
/// replayed journal record answers the same request it was written for.
std::uint32_t batch_request_crc(const std::vector<ArchConfig>& archs);

/// Where journal bytes go. Throwing from append() models a mid-record
/// crash: whatever was written so far stays on disk as a torn tail.
class JournalSink {
 public:
  virtual ~JournalSink() = default;

  /// Appends raw bytes at the journal's end.
  virtual void append(std::string_view data) = 0;

  /// Durability barrier: returns only once appended bytes are on stable
  /// storage (fsync for the file sink).
  virtual void sync() = 0;
};

/// Appends to a file, fsync'ing on sync() (unless durability is disabled,
/// which tests use to keep tight loops fast).
class FileJournalSink final : public JournalSink {
 public:
  /// Opens `path` (truncating when `truncate`); throws esm::ConfigError on
  /// failure. `durable` gates the fsync in sync().
  FileJournalSink(const std::string& path, bool truncate, bool durable);
  ~FileJournalSink() override;

  FileJournalSink(const FileJournalSink&) = delete;
  FileJournalSink& operator=(const FileJournalSink&) = delete;

  void append(std::string_view data) override;
  void sync() override;

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool durable_ = true;
};

/// Replays a journal file into records, tolerating a torn final record.
struct CampaignResume {
  std::optional<CampaignHeader> header;
  std::vector<BatchRecord> batches;
  std::size_t valid_bytes = 0;  ///< durable prefix (header + intact records)
  bool torn_tail = false;       ///< a trailing partial record was dropped
  std::string torn_detail;      ///< why the tail was considered torn

  /// Parses `path`. A missing or empty file yields an empty resume; damage
  /// on the final record is reported as a torn tail; damage anywhere else
  /// throws esm::ConfigError naming the record and byte offset.
  static CampaignResume load(const std::string& path);

  /// load() over in-memory bytes (used by tests and load(path)).
  static CampaignResume from_string(const std::string& content);
};

/// The write-ahead journal of one measurement campaign: pending records
/// loaded for replay (resume) plus the append sink for new batches.
class CampaignJournal {
 public:
  /// Opens `path`. With `resume` set, an existing journal's records become
  /// available for replay and appends continue after them (a torn tail is
  /// truncated from the file and noted on stderr); otherwise the file is
  /// truncated and a fresh campaign begins. `durable` gates per-record
  /// fsync. Throws esm::ConfigError on I/O failure or mid-file corruption.
  CampaignJournal(const std::string& path, bool resume, bool durable = true);

  /// Fresh journal over an injectable sink (torn-write tests).
  explicit CampaignJournal(std::unique_ptr<JournalSink> sink);

  /// The campaign header loaded on resume, if any.
  const std::optional<CampaignHeader>& header() const { return header_; }

  /// Next journaled batch awaiting replay, or nullptr once live again.
  const BatchRecord* peek_batch() const;
  void pop_batch();

  /// True if open() dropped a torn trailing record.
  bool torn_tail_dropped() const { return torn_; }

  /// Appends record 0; only valid on a fresh (header-less) journal.
  void write_header(const CampaignHeader& header);

  /// Appends one batch record and syncs it to stable storage.
  void append_batch(const BatchRecord& record);

 private:
  void append_record(const std::string& body);

  std::optional<CampaignHeader> header_;
  std::deque<BatchRecord> pending_;
  std::unique_ptr<JournalSink> sink_;
  std::uint64_t next_seq_ = 0;
  bool torn_ = false;
};

}  // namespace esm
