#include "esm/pipeline.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "esm/dataset_gen.hpp"
#include "hwsim/device.hpp"
#include "nets/sampler.hpp"
#include "serve/fleet.hpp"
#include "surrogate/registry.hpp"

namespace esm {
namespace {

/// One journaled measurement stage: samples `count` archs deterministically
/// from (spec, strategy, seed), measures them in `batch_size` chunks (one
/// journal record each), resuming from `journal_path` when a previous
/// attempt left one behind. Returns the samples and accumulates the
/// replayed-batch count.
std::vector<MeasuredSample> measure_stage(
    const PipelineConfig& config, const std::string& journal_path,
    SamplingStrategy strategy, std::size_t count, std::uint64_t stage_seed,
    std::size_t& replayed_batches, std::size_t& measured) {
  EsmConfig stage = config.esm;
  stage.seed = stage_seed;
  stage.journal.path = journal_path;
  stage.journal.resume = true;  // a missing journal is an empty resume
  stage.journal.durable = config.durable;
  stage.validate();

  SimulatedDevice device(device_by_name(config.device), stage_seed);
  Rng rng(stage_seed);
  DatasetGenerator generator(stage, device, rng.split());

  // The arch list is a pure function of spec/strategy/seed, so a resumed
  // invocation re-issues the identical batch partition and the journal
  // answers the already-measured prefix.
  const std::unique_ptr<ArchSampler> sampler =
      make_sampler(stage.spec, strategy, stage.n_bins);
  Rng arch_rng(stage_seed ^ 0x7e57a5c5ull);
  const std::vector<ArchConfig> archs = sampler->sample_n(count, arch_rng);

  const std::size_t batch_size =
      config.batch_size > 0 ? config.batch_size : archs.size();
  std::vector<MeasuredSample> samples;
  for (std::size_t begin = 0; begin < archs.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, archs.size());
    const std::vector<ArchConfig> chunk(archs.begin() + begin,
                                        archs.begin() + end);
    const BatchResult batch = generator.measure_batch(chunk);
    samples.insert(samples.end(), batch.samples.begin(),
                   batch.samples.end());
  }
  replayed_batches += generator.replayed_batches();
  measured = samples.size();
  return samples;
}

}  // namespace

void PipelineConfig::validate() const {
  ESM_REQUIRE(serve::valid_model_name(model_name),
              "invalid model name '"
                  << model_name
                  << "' (must match [A-Za-z][A-Za-z0-9_.-]*)");
  ESM_REQUIRE(!manifest_dir.empty(), "pipeline needs a --manifest-dir");
  ESM_REQUIRE(!manifest_file.empty(), "pipeline manifest file name is empty");
  ESM_REQUIRE(!device.empty(), "pipeline needs a device");
  esm.validate();
}

PipelineResult run_pipeline(const PipelineConfig& config) {
  config.validate();
  make_dirs(config.manifest_dir + "/.pipeline");

  PipelineResult result;
  const std::string journal_stem =
      config.manifest_dir + "/.pipeline/" + config.model_name;

  // Stages 1-2: journaled measurement. Distinct stage seeds keep the two
  // campaigns (and their journals) independent; both derive only from the
  // config, so a rerun issues the identical campaigns.
  const std::vector<MeasuredSample> train_set = measure_stage(
      config, journal_stem + ".train.journal", config.esm.strategy,
      static_cast<std::size_t>(config.esm.n_initial), config.esm.seed,
      result.replayed_batches, result.train_measured);
  const std::vector<MeasuredSample> test_set = measure_stage(
      config, journal_stem + ".test.journal", SamplingStrategy::kBalanced,
      static_cast<std::size_t>(config.esm.n_test),
      config.esm.seed ^ 0x9e3779b97f4a7c15ull, result.replayed_batches,
      result.test_measured);
  ESM_REQUIRE(!train_set.empty(), "pipeline measured no training samples");
  ESM_REQUIRE(!test_set.empty(), "pipeline measured no test samples");

  // Stage 3: train. Deterministic in (samples, config, seed); the LUT
  // family profiles the context device instead of fitting, so it gets its
  // own deterministically seeded instance.
  SimulatedDevice train_device(device_by_name(config.device),
                               config.esm.seed);
  SurrogateContext context;
  context.spec = config.esm.spec;
  context.encoder = config.esm.encoder;
  context.train = config.esm.train;
  context.seed = config.esm.seed;
  context.device = &train_device;
  context.ensemble_members = config.esm.ensemble_members;
  const std::unique_ptr<TrainableSurrogate> surrogate =
      SurrogateRegistry::instance().create(config.esm.surrogate, context);

  std::vector<ArchConfig> train_archs;
  std::vector<double> train_latencies;
  train_archs.reserve(train_set.size());
  train_latencies.reserve(train_set.size());
  for (const MeasuredSample& sample : train_set) {
    train_archs.push_back(sample.arch);
    train_latencies.push_back(sample.latency_ms);
  }
  surrogate->fit(SurrogateDataset{train_archs, train_latencies});

  // Stage 4: gate. A model below Acc_TH never reaches the manifest.
  const BinwiseEvaluator evaluator(config.esm.spec, config.esm.n_bins,
                                   config.esm.acc_threshold);
  result.eval = evaluator.evaluate(*surrogate, test_set);
  result.gate_passed = result.eval.passed(config.esm.eval_strategy,
                                          config.esm.acc_threshold);
  if (!result.gate_passed) return result;

  // Stage 5: publish, artifact before manifest. Both writes are atomic;
  // a crash between them leaves the manifest referencing the previous
  // artifact state, and the rerun converges to the same final bytes.
  result.artifact_path =
      config.manifest_dir + "/" + config.model_name + ".esm";
  result.artifact_crc32 =
      save_surrogate_atomic(*surrogate, result.artifact_path);

  result.manifest_path = config.manifest_dir + "/" + config.manifest_file;
  serve::FleetManifest manifest;
  if (path_exists(result.manifest_path)) {
    manifest = serve::FleetManifest::load(result.manifest_path);
  }
  serve::ManifestEntry entry;
  entry.name = config.model_name;
  entry.crc32_hex = result.artifact_crc32;
  entry.path = config.model_name + ".esm";  // relative to the manifest dir
  manifest.upsert(entry);
  serve::write_manifest_atomic(manifest, result.manifest_path);
  result.published = true;
  return result;
}

}  // namespace esm
