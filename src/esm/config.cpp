#include "esm/config.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "encoding/registry.hpp"
#include "surrogate/registry.hpp"

namespace esm {

const char* eval_strategy_name(EvalStrategy s) {
  switch (s) {
    case EvalStrategy::kOverall: return "overall";
    case EvalStrategy::kBinWise: return "bin-wise";
  }
  return "unknown";
}

void JournalOptions::validate() const {
  ESM_REQUIRE(!resume || !path.empty(),
              "config: journal resume requires a journal path");
}

void EsmConfig::validate() const {
  ESM_REQUIRE(spec.num_units >= 1, "config: spec has no units");
  ESM_REQUIRE(SurrogateRegistry::instance().has(surrogate),
              "config: unknown surrogate '"
                  << surrogate << "' (registered: "
                  << join(SurrogateRegistry::instance().keys(), ", ")
                  << ")");
  ESM_REQUIRE(EncoderRegistry::instance().has(encoder),
              "config: unknown encoder '"
                  << encoder << "' (registered: "
                  << join(EncoderRegistry::instance().keys(), ", ") << ")");
  ESM_REQUIRE(ensemble_members >= 2,
              "config: ensemble_members must be >= 2");
  ESM_REQUIRE(n_initial >= 1, "config: N_I must be >= 1");
  ESM_REQUIRE(n_step >= 1, "config: N_Step must be >= 1");
  ESM_REQUIRE(w_below > 0.0 && w_above > 0.0,
              "config: bin weights must be positive");
  const int totals =
      spec.max_total_blocks() - spec.min_total_blocks() + 1;
  ESM_REQUIRE(n_bins >= 1 && n_bins <= totals,
              "config: N_Bins " << n_bins << " must be in [1, " << totals
                                << "]");
  ESM_REQUIRE(acc_threshold > 0.0 && acc_threshold < 1.0,
              "config: Acc_TH must be in (0, 1)");
  ESM_REQUIRE(max_iterations >= 1, "config: max_iterations must be >= 1");
  ESM_REQUIRE(n_test >= n_bins,
              "config: test set must cover every bin (n_test >= N_Bins)");
  ESM_REQUIRE(n_reference_models >= 1,
              "config: need at least one reference model");
  ESM_REQUIRE(qc_variance_limit > 0.0,
              "config: QC variance limit must be positive");
  ESM_REQUIRE(qc_max_attempts >= 1, "config: QC needs >= 1 attempt");
  ESM_REQUIRE(qc_baseline_sessions >= 1,
              "config: QC baselines need >= 1 session");
  faults.validate();
  retry.validate();
  journal.validate();
  ESM_REQUIRE(threads >= 0, "config: threads must be >= 0 (0 = ESM_THREADS)");
}

}  // namespace esm
