#include "esm/dataset_gen.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "esm/journal.hpp"
#include "esm/retry.hpp"
#include "nets/sampler.hpp"

namespace esm {
namespace {

/// Substream tags for retry machinery, derived from a task's first-attempt
/// noise stream without advancing it. Retry attempt `a` (1-based) measures
/// on split(kRetryNoiseStream + a) and draws its backoff jitter from
/// split(kBackoffStream + a), so enabling retries perturbs neither the
/// first attempt nor any other task.
constexpr std::uint64_t kRetryNoiseStream = 0x52e7291e5ull;
constexpr std::uint64_t kBackoffStream = 0xbac0ff5e77ull;

/// Substream tag for the journal's RNG fingerprint (non-advancing, so
/// journaling never perturbs the measurement stream).
constexpr std::uint64_t kJournalDigestStream = 0x6a0b2a1d16e57ull;

}  // namespace

DatasetGenerator::DatasetGenerator(const EsmConfig& config,
                                   SimulatedDevice& device, Rng rng)
    : config_(config), device_(&device), rng_(rng) {
  config_.validate();

  // The config's fault profile (if any) governs the device from the first
  // baseline session on; a config without faults leaves whatever profile
  // the device already carries untouched.
  if (config_.faults.any()) device_->set_fault_profile(config_.faults);

  // Reference models are drawn randomly from the space (paper §II-C.2).
  RandomSampler sampler(config_.spec);
  references_ =
      sampler.sample_n(static_cast<std::size_t>(config_.n_reference_models),
                       rng_);
  reference_graphs_.reserve(references_.size());
  for (const ArchConfig& arch : references_) {
    reference_graphs_.push_back(build_graph(config_.spec, arch));
  }
  if (config_.journal.enabled()) {
    init_journal();
  } else {
    establish_baselines();
  }
}

DatasetGenerator::~DatasetGenerator() = default;

std::uint64_t DatasetGenerator::rng_digest() const {
  return rng_.split(kJournalDigestStream)();
}

void DatasetGenerator::init_journal() {
  journal_ = std::make_unique<CampaignJournal>(
      config_.journal.path, config_.journal.resume, config_.journal.durable);
  const std::uint32_t config_crc = campaign_config_crc(config_);
  if (journal_->header().has_value()) {
    // Resume: restore the journaled construction state instead of
    // re-measuring baselines. The device and generator streams are
    // fast-forwarded through exactly the draws the original baseline
    // sessions consumed, so every later draw lines up bit-identically.
    const CampaignHeader& header = *journal_->header();
    ESM_REQUIRE(header.config_crc == config_crc && header.seed == config_.seed,
                "journal " << config_.journal.path
                           << " was written by a different campaign "
                              "(config/seed mismatch); refusing to resume");
    ESM_REQUIRE(header.baselines.size() == reference_graphs_.size(),
                "journal " << config_.journal.path << " holds "
                           << header.baselines.size()
                           << " reference baselines, campaign needs "
                           << reference_graphs_.size());
    device_->replay_sessions(header.baseline_sessions);
    for (int s = 0; s < header.baseline_sessions; ++s) (void)rng_.split();
    baselines_ = header.baselines;
    device_->restore_measurement_cost(header.cost_seconds);
    ESM_REQUIRE(rng_digest() == header.rng_digest,
                "journal resume diverged while replaying baselines of "
                    << config_.journal.path);
    return;
  }
  establish_baselines();
  CampaignHeader header;
  header.config_crc = config_crc;
  header.seed = config_.seed;
  header.baseline_sessions = config_.qc_baseline_sessions;
  header.baselines = baselines_;
  header.cost_seconds = device_->measurement_cost_seconds();
  header.rng_digest = rng_digest();
  journal_->write_header(header);
}

void DatasetGenerator::establish_baselines() {
  // Establish per-reference baselines as the median over several sessions,
  // so a single bad session cannot poison the baseline. References within
  // a session are measured concurrently, each on its own noise substream;
  // failed attempts are retried like batch measurements, and a reference
  // that never yields a value falls back to its noise-free latency rather
  // than blocking construction.
  const std::size_t n_refs = reference_graphs_.size();
  std::vector<std::vector<double>> sessions(n_refs);
  for (int s = 0; s < config_.qc_baseline_sessions; ++s) {
    device_->begin_session();
    const Rng session_rng = rng_.split();
    int budget = config_.retry.batch_retry_budget;
    std::vector<TaskPlan> plans;
    plans.reserve(n_refs);
    for (std::size_t i = 0; i < n_refs; ++i) {
      plans.push_back(plan_task(session_rng, i, n_refs, budget));
    }
    const auto results = parallel_map(n_refs, [&](std::size_t i) {
      return run_task(reference_graphs_[i], plans[i], i, n_refs);
    });
    for (std::size_t i = 0; i < results.size(); ++i) {
      device_->add_measurement_cost(results[i].attempt_cost_s);
      const Rng task_rng =
          session_rng.split(static_cast<std::uint64_t>(i));
      for (std::size_t a = 1; a < plans[i].attempt_noise.size(); ++a) {
        device_->add_measurement_cost(retry_backoff_seconds(
            config_.retry, static_cast<int>(a),
            task_rng.split(kBackoffStream + a)));
      }
      if (results[i].final.ok()) {
        sessions[i].push_back(results[i].final.value);
      }
    }
  }
  baselines_.reserve(n_refs);
  for (std::size_t i = 0; i < n_refs; ++i) {
    baselines_.push_back(sessions[i].empty()
                             ? device_->true_latency_ms(reference_graphs_[i])
                             : median(sessions[i]));
  }
}

DatasetGenerator::TaskPlan DatasetGenerator::plan_task(const Rng& session_rng,
                                                       std::size_t slot,
                                                       std::size_t n_tasks,
                                                       int& budget) const {
  TaskPlan plan;
  const Rng task_rng = session_rng.split(static_cast<std::uint64_t>(slot));
  plan.attempt_noise.push_back(task_rng);

  MeasureOptions options;
  options.session_slot = static_cast<int>(slot);
  options.session_tasks = static_cast<int>(n_tasks);
  options.noise = task_rng;
  MeasureOutcome outcome = device_->fault_outcome(options);
  // Timeouts and read errors are transient; a lost device stays lost for
  // the rest of the session, so retrying it in-session is pointless — the
  // failure escalates to the QC re-measure loop instead.
  int retry = 1;
  while (outcome != MeasureOutcome::kOk &&
         outcome != MeasureOutcome::kDeviceLost &&
         retry < config_.retry.max_attempts && budget > 0) {
    --budget;
    const Rng retry_noise =
        task_rng.split(kRetryNoiseStream + static_cast<std::uint64_t>(retry));
    plan.attempt_noise.push_back(retry_noise);
    options.noise = retry_noise;
    outcome = device_->fault_outcome(options);
    ++retry;
  }
  return plan;
}

DatasetGenerator::TaskResult DatasetGenerator::run_task(
    const LayerGraph& graph, const TaskPlan& plan, std::size_t slot,
    std::size_t n_tasks) const {
  TaskResult result;
  for (const Rng& noise : plan.attempt_noise) {
    MeasureOptions options;
    options.session_slot = static_cast<int>(slot);
    options.session_tasks = static_cast<int>(n_tasks);
    options.noise = noise;
    MeasureResult attempt = device_->measure(graph, options);
    result.attempt_cost_s += attempt.cost_seconds;
    switch (attempt.outcome) {
      case MeasureOutcome::kTimeout: ++result.timeouts; break;
      case MeasureOutcome::kDeviceLost: ++result.device_losses; break;
      case MeasureOutcome::kReadError: ++result.read_errors; break;
      case MeasureOutcome::kOk: break;
    }
    result.final = std::move(attempt);
    if (result.final.ok()) break;
  }
  return result;
}

DatasetGenerator::SessionOutcome DatasetGenerator::run_session(
    const std::vector<ArchConfig>& archs, int& budget) {
  device_->begin_session();

  // All measurements of the session fan out concurrently, each on a noise
  // substream keyed by its position in the session — so the session's
  // results depend only on (device session state, session stream), never
  // on thread count or completion order. The reference models are
  // scheduled twice (the paper's canary-before/canary-after pattern);
  // because session drift is a per-session regime here, both passes probe
  // the same regime on independent substreams, doubling the QC evidence.
  const std::size_t n_refs = reference_graphs_.size();
  const std::size_t n_tasks = 2 * n_refs + archs.size();
  const Rng session_rng = rng_.split();

  // Retry planning is serial and happens before the fan-out: fault
  // outcomes depend only on session state and substreams, so the plan is
  // the same at every thread count, and the shared retry budget is drawn
  // down in deterministic task order.
  std::vector<TaskPlan> plans;
  plans.reserve(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    plans.push_back(plan_task(session_rng, t, n_tasks, budget));
  }

  const auto measured = parallel_map(n_tasks, [&](std::size_t t) {
    if (t < n_refs) {
      return run_task(reference_graphs_[t], plans[t], t, n_tasks);
    }
    if (t < n_refs + archs.size()) {
      const LayerGraph graph =
          build_graph(config_.spec, archs[t - n_refs]);
      return run_task(graph, plans[t], t, n_tasks);
    }
    return run_task(reference_graphs_[t - n_refs - archs.size()], plans[t],
                    t, n_tasks);
  });

  // Deterministic reductions, all in task-index order: cost accounting
  // (attempts, then backoff), fault tallies, reference deviations, then
  // the batch samples.
  SessionOutcome outcome;
  for (std::size_t t = 0; t < n_tasks; ++t) {
    const TaskResult& r = measured[t];
    device_->add_measurement_cost(r.attempt_cost_s);
    const Rng task_rng = session_rng.split(static_cast<std::uint64_t>(t));
    for (std::size_t a = 1; a < plans[t].attempt_noise.size(); ++a) {
      const double backoff = retry_backoff_seconds(
          config_.retry, static_cast<int>(a),
          task_rng.split(kBackoffStream + a));
      device_->add_measurement_cost(backoff);
      outcome.backoff_seconds += backoff;
    }
    outcome.retries +=
        static_cast<int>(plans[t].attempt_noise.size()) - 1;
    outcome.timeouts += r.timeouts;
    outcome.device_losses += r.device_losses;
    outcome.read_errors += r.read_errors;
    if (!r.final.ok()) ++outcome.report.failed_measurements;
  }

  QcReport& report = outcome.report;
  std::vector<double>& deviations = report.reference_deviation;
  deviations.reserve(2 * n_refs);
  // A reference that failed to measure is QC evidence of the worst kind:
  // it cannot confirm the session, so it counts as an outlier.
  auto push_reference = [&](std::size_t task, std::size_t ref) {
    if (!measured[task].final.ok()) {
      ++report.outliers;
      return;
    }
    deviations.push_back(
        std::abs(measured[task].final.value - baselines_[ref]) /
        baselines_[ref]);
  };
  for (std::size_t i = 0; i < n_refs; ++i) push_reference(i, i);
  for (std::size_t i = 0; i < n_refs; ++i) {
    push_reference(n_refs + archs.size() + i, i);
  }

  outcome.samples.reserve(archs.size());
  for (std::size_t i = 0; i < archs.size(); ++i) {
    const TaskResult& r = measured[n_refs + i];
    if (r.final.ok()) {
      outcome.samples.push_back({archs[i], r.final.value});
    } else {
      outcome.failed.push_back(archs[i]);
    }
  }

  // Outliers (Fig. 6): individual readings outside the boundary. They are
  // excluded from the aggregate; QC fails when too many occur, when the
  // remaining aggregate still exceeds the boundary, or when too many of
  // the batch's own measurements failed outright.
  std::vector<double> in_tolerance;
  for (double d : deviations) {
    if (d <= config_.qc_variance_limit) {
      in_tolerance.push_back(d);
    } else {
      ++report.outliers;
    }
  }
  const std::size_t n_checks = 2 * n_refs;
  const double outlier_fraction =
      n_checks == 0 ? 0.0
                    : static_cast<double>(report.outliers) /
                          static_cast<double>(n_checks);
  report.reference_cv = in_tolerance.empty()
                            ? (n_checks == 0 ? 0.0 : 1.0)
                            : mean(in_tolerance);
  const double failed_fraction =
      archs.empty() ? 0.0
                    : static_cast<double>(outcome.failed.size()) /
                          static_cast<double>(archs.size());
  report.passed = outlier_fraction <= 0.25 &&
                  report.reference_cv <= config_.qc_variance_limit &&
                  failed_fraction <= 0.25;
  return outcome;
}

BatchResult DatasetGenerator::measure_batch(
    const std::vector<ArchConfig>& archs) {
  BatchResult out;
  out.report.requested = archs.size();

  std::vector<ArchConfig> todo;
  todo.reserve(archs.size());
  for (const ArchConfig& arch : archs) {
    if (quarantine_.count(arch.to_string()) != 0) {
      ++out.report.skipped_quarantined;
    } else {
      todo.push_back(arch);
    }
  }

  // A resumed campaign answers batches from the journal until the loaded
  // records run out, then seamlessly switches back to live measurement.
  if (journal_ && journal_->peek_batch() != nullptr) {
    return replay_batch(archs, todo, std::move(out));
  }

  bool measured_live = false;
  if (!todo.empty()) {
    measured_live = true;
    const double cost_before = device_->measurement_cost_seconds();
    int budget = config_.retry.batch_retry_budget;
    SessionOutcome kept;
    for (int attempt = 1; attempt <= config_.qc_max_attempts; ++attempt) {
      kept = run_session(todo, budget);
      kept.report.attempts = attempt;
      ++out.report.sessions;
      out.report.retries += kept.retries;
      out.report.timeouts += kept.timeouts;
      out.report.device_losses += kept.device_losses;
      out.report.read_errors += kept.read_errors;
      out.report.backoff_seconds += kept.backoff_seconds;
      if (kept.report.passed) break;
    }
    qc_history_.push_back(kept.report);
    out.qc = kept.report;
    out.samples = std::move(kept.samples);

    // Architectures that still failed in the kept session have exhausted
    // their chances for this batch; quarantine them so later batches do not
    // burn budget on them again.
    for (const ArchConfig& arch : kept.failed) {
      std::string key = arch.to_string();
      if (quarantine_.insert(key).second) {
        ++out.report.quarantined;
        out.report.quarantined_archs.push_back(std::move(key));
      }
    }

    out.report.measured = out.samples.size();
    out.report.qc_passed = kept.report.passed;
    out.report.cost_seconds =
        device_->measurement_cost_seconds() - cost_before;
  }
  // else: nothing measurable (empty request or fully quarantined) — no
  // session, no QC entry, but the call is still journaled so that record
  // sequence numbers stay aligned with measure_batch() call order.

  if (journal_) {
    BatchRecord record;
    record.requested = archs.size();
    record.request_crc = batch_request_crc(archs);
    record.sessions = out.report.sessions;
    record.has_qc = measured_live;
    record.qc = out.qc;
    record.report = out.report;
    record.quarantined = out.report.quarantined_archs;
    record.cost_total = device_->measurement_cost_seconds();
    record.rng_digest = rng_digest();
    // Samples arrive in todo order, so a single forward scan recovers each
    // sample's index into the batch's measurable list.
    std::size_t ti = 0;
    record.samples.reserve(out.samples.size());
    for (const MeasuredSample& sample : out.samples) {
      while (ti < todo.size() && !(todo[ti] == sample.arch)) ++ti;
      ESM_CHECK(ti < todo.size(),
                "batch samples are not a subsequence of the todo list");
      record.samples.push_back({ti, sample.latency_ms});
      ++ti;
    }
    journal_->append_batch(record);
  }
  return out;
}

BatchResult DatasetGenerator::replay_batch(
    const std::vector<ArchConfig>& archs, const std::vector<ArchConfig>& todo,
    BatchResult out) {
  const BatchRecord& record = *journal_->peek_batch();
  ESM_REQUIRE(record.requested == archs.size() &&
                  record.request_crc == batch_request_crc(archs),
              "journal record "
                  << replayed_batches_ + 1
                  << " was written for a different batch than the campaign "
                     "is requesting; refusing to resume");
  ESM_CHECK(record.report.skipped_quarantined ==
                out.report.skipped_quarantined,
            "replayed quarantine skip count diverged from the journal");

  // Fast-forward the device and generator streams through exactly the
  // draws the journaled sessions consumed (begin_session never overlaps
  // with measurement draws — those ride non-advancing substreams).
  device_->replay_sessions(record.sessions);
  for (int s = 0; s < record.sessions; ++s) (void)rng_.split();
  device_->restore_measurement_cost(record.cost_total);
  ESM_REQUIRE(rng_digest() == record.rng_digest,
              "journal resume diverged while replaying batch "
                  << replayed_batches_ + 1 << " of " << config_.journal.path);

  std::size_t newly_quarantined = 0;
  for (const std::string& key : record.quarantined) {
    if (quarantine_.insert(key).second) ++newly_quarantined;
  }
  ESM_CHECK(newly_quarantined == record.report.quarantined,
            "replayed quarantine set diverged from the journal");
  if (record.has_qc) qc_history_.push_back(record.qc);

  out.qc = record.qc;
  out.report = record.report;
  out.samples.reserve(record.samples.size());
  for (const JournalSample& sample : record.samples) {
    ESM_REQUIRE(sample.todo_index < todo.size(),
                "journal sample index " << sample.todo_index
                                        << " is out of range for a batch of "
                                        << todo.size());
    out.samples.push_back({todo[sample.todo_index], sample.latency_ms});
  }
  journal_->pop_batch();
  ++replayed_batches_;
  return out;
}

}  // namespace esm
