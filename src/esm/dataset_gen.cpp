#include "esm/dataset_gen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "nets/sampler.hpp"

namespace esm {

DatasetGenerator::DatasetGenerator(const EsmConfig& config,
                                   SimulatedDevice& device, Rng rng)
    : config_(config), device_(&device), rng_(rng) {
  config_.validate();

  // Reference models are drawn randomly from the space (paper §II-C.2).
  RandomSampler sampler(config_.spec);
  references_ =
      sampler.sample_n(static_cast<std::size_t>(config_.n_reference_models),
                       rng_);
  reference_graphs_.reserve(references_.size());
  for (const ArchConfig& arch : references_) {
    reference_graphs_.push_back(build_graph(config_.spec, arch));
  }

  // Establish per-reference baselines as the median over several sessions,
  // so a single bad session cannot poison the baseline. References within
  // a session are measured concurrently, each on its own noise substream.
  std::vector<std::vector<double>> sessions(references_.size());
  for (int s = 0; s < config_.qc_baseline_sessions; ++s) {
    device_->begin_session();
    const Rng session_rng = rng_.split();
    const auto measured = parallel_map(
        reference_graphs_.size(),
        [&](std::size_t i) {
          return device_->measure_ms_stream(
              reference_graphs_[i],
              session_rng.split(static_cast<std::uint64_t>(i)));
        });
    for (std::size_t i = 0; i < measured.size(); ++i) {
      sessions[i].push_back(measured[i].value_ms);
      device_->add_measurement_cost(measured[i].cost_seconds);
    }
  }
  baselines_.reserve(references_.size());
  for (const auto& values : sessions) {
    baselines_.push_back(median(values));
  }
}

std::vector<MeasuredSample> DatasetGenerator::run_session(
    const std::vector<ArchConfig>& archs, QcReport& report) {
  device_->begin_session();

  // All measurements of the session fan out concurrently, each on a noise
  // substream keyed by its position in the session — so the session's
  // results depend only on (device session state, session stream), never
  // on thread count or completion order. The reference models are
  // scheduled twice (the paper's canary-before/canary-after pattern);
  // because session drift is a per-session regime here, both passes probe
  // the same regime on independent substreams, doubling the QC evidence.
  const std::size_t n_refs = reference_graphs_.size();
  const std::size_t n_tasks = 2 * n_refs + archs.size();
  const Rng session_rng = rng_.split();
  const auto measured = parallel_map(n_tasks, [&](std::size_t t) {
    const Rng noise = session_rng.split(static_cast<std::uint64_t>(t));
    if (t < n_refs) {
      return device_->measure_ms_stream(reference_graphs_[t], noise);
    }
    if (t < n_refs + archs.size()) {
      const LayerGraph graph =
          build_graph(config_.spec, archs[t - n_refs]);
      return device_->measure_ms_stream(graph, noise);
    }
    return device_->measure_ms_stream(
        reference_graphs_[t - n_refs - archs.size()], noise);
  });

  // Deterministic reductions, all in task-index order: cost accounting,
  // reference deviations, then the batch samples.
  for (const StreamMeasurement& m : measured) {
    device_->add_measurement_cost(m.cost_seconds);
  }
  std::vector<double> deviations;
  deviations.reserve(2 * n_refs);
  auto push_deviation = [&](std::size_t task, std::size_t ref) {
    deviations.push_back(std::abs(measured[task].value_ms - baselines_[ref]) /
                         baselines_[ref]);
  };
  for (std::size_t i = 0; i < n_refs; ++i) push_deviation(i, i);
  for (std::size_t i = 0; i < n_refs; ++i) {
    push_deviation(n_refs + archs.size() + i, i);
  }
  std::vector<MeasuredSample> samples;
  samples.reserve(archs.size());
  for (std::size_t i = 0; i < archs.size(); ++i) {
    samples.push_back({archs[i], measured[n_refs + i].value_ms});
  }

  // Outliers (Fig. 6): individual readings outside the boundary. They are
  // excluded from the aggregate; QC fails when too many occur or the
  // remaining aggregate still exceeds the boundary.
  report.reference_deviation = deviations;
  std::vector<double> in_tolerance;
  for (double d : deviations) {
    if (d <= config_.qc_variance_limit) {
      in_tolerance.push_back(d);
    } else {
      ++report.outliers;
    }
  }
  const double outlier_fraction =
      deviations.empty()
          ? 0.0
          : static_cast<double>(report.outliers) /
                static_cast<double>(deviations.size());
  report.reference_cv = in_tolerance.empty()
                            ? (deviations.empty() ? 0.0 : 1.0)
                            : mean(in_tolerance);
  report.passed = outlier_fraction <= 0.25 &&
                  report.reference_cv <= config_.qc_variance_limit;
  return samples;
}

std::vector<MeasuredSample> DatasetGenerator::measure_batch(
    const std::vector<ArchConfig>& archs) {
  QcReport report;
  std::vector<MeasuredSample> samples;
  for (int attempt = 1; attempt <= config_.qc_max_attempts; ++attempt) {
    QcReport attempt_report;
    samples = run_session(archs, attempt_report);
    report = attempt_report;
    report.attempts = attempt;
    if (report.passed) break;
  }
  qc_history_.push_back(report);
  return samples;
}

}  // namespace esm
