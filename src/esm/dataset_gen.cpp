#include "esm/dataset_gen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "nets/sampler.hpp"

namespace esm {

DatasetGenerator::DatasetGenerator(const EsmConfig& config,
                                   SimulatedDevice& device, Rng rng)
    : config_(config), device_(&device), rng_(rng) {
  config_.validate();

  // Reference models are drawn randomly from the space (paper §II-C.2).
  RandomSampler sampler(config_.spec);
  references_ =
      sampler.sample_n(static_cast<std::size_t>(config_.n_reference_models),
                       rng_);
  reference_graphs_.reserve(references_.size());
  for (const ArchConfig& arch : references_) {
    reference_graphs_.push_back(build_graph(config_.spec, arch));
  }

  // Establish per-reference baselines as the median over several sessions,
  // so a single bad session cannot poison the baseline.
  std::vector<std::vector<double>> sessions(references_.size());
  for (int s = 0; s < config_.qc_baseline_sessions; ++s) {
    device_->begin_session();
    for (std::size_t i = 0; i < reference_graphs_.size(); ++i) {
      sessions[i].push_back(device_->measure_ms(reference_graphs_[i]));
    }
  }
  baselines_.reserve(references_.size());
  for (const auto& values : sessions) {
    baselines_.push_back(median(values));
  }
}

std::vector<MeasuredSample> DatasetGenerator::run_session(
    const std::vector<ArchConfig>& archs, QcReport& report) {
  device_->begin_session();

  // References measured first (canary), then the batch, then references
  // again — drift growing *during* the batch is caught by the second pass.
  std::vector<double> deviations;
  auto measure_references = [&] {
    for (std::size_t i = 0; i < reference_graphs_.size(); ++i) {
      const double value = device_->measure_ms(reference_graphs_[i]);
      deviations.push_back(std::abs(value - baselines_[i]) / baselines_[i]);
    }
  };

  measure_references();
  std::vector<MeasuredSample> samples;
  samples.reserve(archs.size());
  for (const ArchConfig& arch : archs) {
    const LayerGraph graph = build_graph(config_.spec, arch);
    samples.push_back({arch, device_->measure_ms(graph)});
  }
  measure_references();

  // Outliers (Fig. 6): individual readings outside the boundary. They are
  // excluded from the aggregate; QC fails when too many occur or the
  // remaining aggregate still exceeds the boundary.
  report.reference_deviation = deviations;
  std::vector<double> in_tolerance;
  for (double d : deviations) {
    if (d <= config_.qc_variance_limit) {
      in_tolerance.push_back(d);
    } else {
      ++report.outliers;
    }
  }
  const double outlier_fraction =
      deviations.empty()
          ? 0.0
          : static_cast<double>(report.outliers) /
                static_cast<double>(deviations.size());
  report.reference_cv = in_tolerance.empty()
                            ? (deviations.empty() ? 0.0 : 1.0)
                            : mean(in_tolerance);
  report.passed = outlier_fraction <= 0.25 &&
                  report.reference_cv <= config_.qc_variance_limit;
  return samples;
}

std::vector<MeasuredSample> DatasetGenerator::measure_batch(
    const std::vector<ArchConfig>& archs) {
  QcReport report;
  std::vector<MeasuredSample> samples;
  for (int attempt = 1; attempt <= config_.qc_max_attempts; ++attempt) {
    QcReport attempt_report;
    samples = run_session(archs, attempt_report);
    report = attempt_report;
    report.attempts = attempt;
    if (report.passed) break;
  }
  qc_history_.push_back(report);
  return samples;
}

}  // namespace esm
