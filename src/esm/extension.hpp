// Dataset extension (paper Algorithm 1).
//
// When the predictor fails evaluation, the framework selects N_Step
// additional architectures. Under the random strategy they are drawn
// uniformly from the whole space. Under the balanced strategy the depth
// bins are split into below-/above-threshold groups, per-bin quotas are
// computed from the user weights
//     N_norm   = w1 * |below| + w2 * |above|
//     n_below  = ceil(N_Step * w1 / N_norm)   per below-threshold bin
//     n_above  = ceil(N_Step * w2 / N_norm)   per above-threshold bin
// and each bin is sampled with the exact-uniform balanced sampler, biasing
// new data toward the regions where the predictor is weakest.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "esm/config.hpp"
#include "esm/evaluator.hpp"
#include "nets/sampler.hpp"

namespace esm {

/// Per-bin sample quotas computed by Algorithm 1 (balanced strategy).
struct ExtensionPlan {
  std::vector<int> per_bin;  ///< quota for every bin index
  int total() const;
};

/// Computes the balanced-strategy quotas from an evaluation report.
/// Bins with no test samples count as below-threshold (nothing is known
/// about them, so they need data most).
ExtensionPlan plan_balanced_extension(const EsmConfig& config,
                                      const EvalReport& report);

/// Draws the N_Step extension architectures per Algorithm 1.
std::vector<ArchConfig> extend_dataset(const EsmConfig& config,
                                       const EvalReport& report, Rng& rng);

}  // namespace esm
