#include "esm/journal.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <utility>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "esm/config.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace esm {
namespace {

constexpr const char* kMagicLine = "esm-journal v1";
constexpr const char* kTypeCampaign = "campaign";
constexpr const char* kTypeBatch = "batch";

std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Serializes token groups `key count v0 v1 ...` into one record body.
class BodyWriter {
 public:
  void put_token(const std::string& key, const std::string& value) {
    begin_group(key, 1);
    os_ << ' ' << value;
  }
  void put_int(const std::string& key, long long value) {
    put_token(key, std::to_string(value));
  }
  void put_u64(const std::string& key, std::uint64_t value) {
    put_token(key, std::to_string(value));
  }
  void put_bool(const std::string& key, bool value) {
    put_token(key, value ? "1" : "0");
  }
  void put_double(const std::string& key, double value) {
    put_token(key, format_value(value));
  }
  void put_doubles(const std::string& key, const std::vector<double>& values) {
    begin_group(key, values.size());
    for (double v : values) os_ << ' ' << format_value(v);
  }
  void put_tokens(const std::string& key,
                  const std::vector<std::string>& values) {
    begin_group(key, values.size());
    for (const std::string& v : values) os_ << ' ' << v;
  }

  std::string str() const { return os_.str(); }

 private:
  void begin_group(const std::string& key, std::size_t count) {
    if (!first_) os_ << ' ';
    first_ = false;
    os_ << key << ' ' << count;
  }

  std::ostringstream os_;
  bool first_ = true;
};

/// Parses a record body back into typed groups. Every getter throws
/// esm::ConfigError (with the offending key) on missing or ill-typed data,
/// so a record that passed its CRC but carries an unexpected shape is still
/// rejected cleanly.
class BodyReader {
 public:
  explicit BodyReader(const std::string& body) {
    std::istringstream in(body);
    std::string key;
    while (in >> key) {
      std::size_t count = 0;
      ESM_REQUIRE(static_cast<bool>(in >> count),
                  "journal record group '" << key << "' has no count");
      ESM_REQUIRE(count <= body.size(),
                  "journal record group '" << key << "' declares implausible "
                  "count " << count);
      std::vector<std::string> values;
      values.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        std::string v;
        ESM_REQUIRE(static_cast<bool>(in >> v),
                    "journal record group '" << key << "' truncated");
        values.push_back(std::move(v));
      }
      ESM_REQUIRE(groups_.emplace(key, std::move(values)).second,
                  "duplicate journal record group '" << key << "'");
    }
  }

  std::string get_token(const std::string& key) const {
    const auto& g = group(key);
    ESM_REQUIRE(g.size() == 1,
                "journal record group '" << key << "' is not a scalar");
    return g.front();
  }
  long long get_int(const std::string& key) const {
    return parse_int(key, get_token(key));
  }
  std::uint64_t get_u64(const std::string& key) const {
    const std::string raw = get_token(key);
    char* end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(raw.c_str(), &end, 10);
    ESM_REQUIRE(end != nullptr && *end == '\0' && errno == 0 &&
                    raw.find('-') == std::string::npos,
                "journal record group '" << key << "' is not a u64: " << raw);
    return v;
  }
  bool get_bool(const std::string& key) const {
    const long long v = get_int(key);
    ESM_REQUIRE(v == 0 || v == 1,
                "journal record group '" << key << "' is not a bool");
    return v == 1;
  }
  double get_double(const std::string& key) const {
    return parse_double(key, get_token(key));
  }
  std::vector<double> get_doubles(const std::string& key) const {
    const auto& g = group(key);
    std::vector<double> out;
    out.reserve(g.size());
    for (const std::string& raw : g) out.push_back(parse_double(key, raw));
    return out;
  }
  std::vector<std::string> get_tokens(const std::string& key) const {
    return group(key);
  }

 private:
  const std::vector<std::string>& group(const std::string& key) const {
    const auto it = groups_.find(key);
    ESM_REQUIRE(it != groups_.end(),
                "journal record group missing: '" << key << "'");
    return it->second;
  }
  static long long parse_int(const std::string& key, const std::string& raw) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(raw.c_str(), &end, 10);
    ESM_REQUIRE(end != nullptr && *end == '\0' && errno == 0,
                "journal record group '" << key << "' is not an integer: "
                                         << raw);
    return v;
  }
  static double parse_double(const std::string& key, const std::string& raw) {
    char* end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    ESM_REQUIRE(end != nullptr && *end == '\0' && !raw.empty(),
                "journal record group '" << key << "' is not a number: "
                                         << raw);
    return v;
  }

  std::map<std::string, std::vector<std::string>> groups_;
};

std::string encode_header(const CampaignHeader& h) {
  BodyWriter w;
  w.put_token("type", kTypeCampaign);
  w.put_token("config_crc", crc32_hex(h.config_crc));
  w.put_u64("seed", h.seed);
  w.put_int("baseline_sessions", h.baseline_sessions);
  w.put_doubles("baselines", h.baselines);
  w.put_double("cost_seconds", h.cost_seconds);
  w.put_u64("rng_digest", h.rng_digest);
  return w.str();
}

CampaignHeader decode_header(const BodyReader& r) {
  CampaignHeader h;
  ESM_REQUIRE(parse_crc32_hex(r.get_token("config_crc"), h.config_crc),
              "journal campaign record has a malformed config_crc");
  h.seed = r.get_u64("seed");
  h.baseline_sessions = static_cast<int>(r.get_int("baseline_sessions"));
  h.baselines = r.get_doubles("baselines");
  h.cost_seconds = r.get_double("cost_seconds");
  h.rng_digest = r.get_u64("rng_digest");
  return h;
}

std::string encode_batch(const BatchRecord& b) {
  BodyWriter w;
  w.put_token("type", kTypeBatch);
  w.put_u64("requested", b.requested);
  w.put_token("request_crc", crc32_hex(b.request_crc));
  w.put_int("sessions", b.sessions);
  w.put_bool("has_qc", b.has_qc);
  w.put_int("qc_attempts", b.qc.attempts);
  w.put_bool("qc_passed", b.qc.passed);
  w.put_double("qc_cv", b.qc.reference_cv);
  w.put_doubles("qc_deviation", b.qc.reference_deviation);
  w.put_int("qc_outliers", b.qc.outliers);
  w.put_int("qc_failed", b.qc.failed_measurements);
  w.put_u64("r_requested", b.report.requested);
  w.put_u64("r_measured", b.report.measured);
  w.put_u64("r_quarantined", b.report.quarantined);
  w.put_u64("r_skipped", b.report.skipped_quarantined);
  w.put_int("r_sessions", b.report.sessions);
  w.put_int("r_retries", b.report.retries);
  w.put_int("r_timeouts", b.report.timeouts);
  w.put_int("r_device_losses", b.report.device_losses);
  w.put_int("r_read_errors", b.report.read_errors);
  w.put_bool("r_qc_passed", b.report.qc_passed);
  w.put_double("r_cost_seconds", b.report.cost_seconds);
  w.put_double("r_backoff_seconds", b.report.backoff_seconds);
  std::vector<std::string> indices;
  std::vector<double> values;
  indices.reserve(b.samples.size());
  values.reserve(b.samples.size());
  for (const JournalSample& s : b.samples) {
    indices.push_back(std::to_string(s.todo_index));
    values.push_back(s.latency_ms);
  }
  w.put_tokens("sample_index", indices);
  w.put_doubles("sample_ms", values);
  w.put_tokens("quarantine_keys", b.quarantined);
  w.put_double("cost_total", b.cost_total);
  w.put_u64("rng_digest", b.rng_digest);
  return w.str();
}

BatchRecord decode_batch(const BodyReader& r) {
  BatchRecord b;
  b.requested = static_cast<std::size_t>(r.get_u64("requested"));
  ESM_REQUIRE(parse_crc32_hex(r.get_token("request_crc"), b.request_crc),
              "journal batch record has a malformed request_crc");
  b.sessions = static_cast<int>(r.get_int("sessions"));
  b.has_qc = r.get_bool("has_qc");
  b.qc.attempts = static_cast<int>(r.get_int("qc_attempts"));
  b.qc.passed = r.get_bool("qc_passed");
  b.qc.reference_cv = r.get_double("qc_cv");
  b.qc.reference_deviation = r.get_doubles("qc_deviation");
  b.qc.outliers = static_cast<int>(r.get_int("qc_outliers"));
  b.qc.failed_measurements = static_cast<int>(r.get_int("qc_failed"));
  b.report.requested = static_cast<std::size_t>(r.get_u64("r_requested"));
  b.report.measured = static_cast<std::size_t>(r.get_u64("r_measured"));
  b.report.quarantined =
      static_cast<std::size_t>(r.get_u64("r_quarantined"));
  b.report.skipped_quarantined =
      static_cast<std::size_t>(r.get_u64("r_skipped"));
  b.report.sessions = static_cast<int>(r.get_int("r_sessions"));
  b.report.retries = static_cast<int>(r.get_int("r_retries"));
  b.report.timeouts = static_cast<int>(r.get_int("r_timeouts"));
  b.report.device_losses = static_cast<int>(r.get_int("r_device_losses"));
  b.report.read_errors = static_cast<int>(r.get_int("r_read_errors"));
  b.report.qc_passed = r.get_bool("r_qc_passed");
  b.report.cost_seconds = r.get_double("r_cost_seconds");
  b.report.backoff_seconds = r.get_double("r_backoff_seconds");
  const std::vector<std::string> indices = r.get_tokens("sample_index");
  const std::vector<double> values = r.get_doubles("sample_ms");
  ESM_REQUIRE(indices.size() == values.size(),
              "journal batch record sample_index/sample_ms length mismatch ("
                  << indices.size() << " vs " << values.size() << ")");
  b.samples.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long idx = std::strtoull(indices[i].c_str(), &end, 10);
    ESM_REQUIRE(end != nullptr && *end == '\0' && errno == 0,
                "journal batch record sample_index holds a non-index: "
                    << indices[i]);
    b.samples.push_back({static_cast<std::size_t>(idx), values[i]});
  }
  b.quarantined = r.get_tokens("quarantine_keys");
  b.report.quarantined_archs = b.quarantined;
  b.cost_total = r.get_double("cost_total");
  b.rng_digest = r.get_u64("rng_digest");
  return b;
}

}  // namespace

std::uint32_t campaign_config_crc(const EsmConfig& c) {
  // Canonical identity string over every knob that shapes the measurement
  // stream. Sampling/training knobs are excluded on purpose: the journal
  // pins the *measurement* campaign, and the caller decides which batches
  // to request; execution knobs (threads, journal options) must never
  // matter (bit-identity at any thread count).
  std::ostringstream os;
  os << c.spec.name << '|' << supernet_kind_name(c.spec.kind) << '|'
     << c.spec.num_units << '|' << c.spec.min_blocks_per_unit << '|'
     << c.spec.max_blocks_per_unit << '|' << c.seed << '|'
     << c.n_reference_models << '|' << format_value(c.qc_variance_limit)
     << '|' << c.qc_max_attempts << '|' << c.qc_baseline_sessions << '|'
     << format_value(c.faults.timeout_prob) << '|'
     << format_value(c.faults.timeout_cost_s) << '|'
     << format_value(c.faults.read_error_prob) << '|'
     << format_value(c.faults.dropout_prob) << '|'
     << format_value(c.faults.stuck_clock_prob) << '|'
     << format_value(c.faults.stuck_clock_slowdown) << '|'
     << c.retry.max_attempts << '|' << format_value(c.retry.backoff_base_s)
     << '|' << format_value(c.retry.backoff_multiplier) << '|'
     << format_value(c.retry.backoff_jitter) << '|'
     << c.retry.batch_retry_budget;
  return crc32(os.str());
}

std::uint32_t batch_request_crc(const std::vector<ArchConfig>& archs) {
  std::uint32_t crc = 0;
  for (const ArchConfig& arch : archs) {
    crc = crc32(arch.to_string(), crc);
    crc = crc32("\n", crc);
  }
  return crc;
}

// ------------------------------------------------------- FileJournalSink

FileJournalSink::FileJournalSink(const std::string& path, bool truncate,
                                 bool durable)
    : path_(path), durable_(durable) {
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  ESM_REQUIRE(file_ != nullptr,
              "cannot open journal for writing: " << path << " ("
                                                  << std::strerror(errno)
                                                  << ")");
}

FileJournalSink::~FileJournalSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileJournalSink::append(std::string_view data) {
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), file_);
  ESM_REQUIRE(written == data.size(), "failed writing journal: " << path_);
}

void FileJournalSink::sync() {
  ESM_REQUIRE(std::fflush(file_) == 0, "failed flushing journal: " << path_);
  if (!durable_) return;
#if defined(_WIN32)
  _commit(_fileno(file_));
#else
  ESM_REQUIRE(::fsync(fileno(file_)) == 0,
              "fsync failed on journal: " << path_);
#endif
}

// -------------------------------------------------------- CampaignResume

CampaignResume CampaignResume::from_string(const std::string& content) {
  CampaignResume out;
  if (content.empty()) return out;

  // The magic line itself obeys the torn-tail rule: an unterminated first
  // line is a torn write of a brand-new journal, not corruption.
  const std::size_t magic_end = content.find('\n');
  if (magic_end == std::string::npos) {
    out.torn_tail = true;
    out.torn_detail = "unterminated journal header line";
    return out;
  }
  ESM_REQUIRE(content.substr(0, magic_end) == kMagicLine,
              "not an ESM journal (bad header: '"
                  << content.substr(0, magic_end) << "')");
  out.valid_bytes = magic_end + 1;

  std::uint64_t expected_seq = 0;
  std::size_t pos = out.valid_bytes;
  while (pos < content.size()) {
    const std::size_t line_end = content.find('\n', pos);
    const bool terminated = line_end != std::string::npos;
    const std::string line = content.substr(
        pos, (terminated ? line_end : content.size()) - pos);
    const bool is_last =
        !terminated || line_end + 1 >= content.size();

    // Frame: "<seq> <crc32hex> <body>". Any framing, CRC, or body-shape
    // failure on the LAST line is a torn tail; earlier it is corruption.
    std::string failure;
    std::optional<CampaignHeader> header;
    std::optional<BatchRecord> batch;
    bool seq_gap = false;
    try {
      if (!terminated) {
        failure = "unterminated record";
      } else {
        std::size_t sp1 = line.find(' ');
        std::size_t sp2 =
            sp1 == std::string::npos ? std::string::npos
                                     : line.find(' ', sp1 + 1);
        ESM_REQUIRE(sp2 != std::string::npos,
                    "journal record frame is too short");
        const std::string seq_field = line.substr(0, sp1);
        char* end = nullptr;
        errno = 0;
        const std::uint64_t seq = std::strtoull(seq_field.c_str(), &end, 10);
        ESM_REQUIRE(end != nullptr && *end == '\0' && errno == 0,
                    "journal record has a malformed sequence number");
        // Flagged, not thrown: a complete, CRC-valid record with the wrong
        // sequence number cannot result from a torn append — a record
        // disappeared. That is hard corruption even on the final line, so
        // it must not fall into the torn-tail recovery below.
        seq_gap = seq != expected_seq;
        std::uint32_t stored_crc = 0;
        ESM_REQUIRE(
            parse_crc32_hex(line.substr(sp1 + 1, sp2 - sp1 - 1), stored_crc),
            "journal record has a malformed CRC field");
        const std::string body = line.substr(sp2 + 1);
        const std::uint32_t actual_crc = crc32(body);
        ESM_REQUIRE(actual_crc == stored_crc,
                    "journal record CRC mismatch (stored "
                        << crc32_hex(stored_crc) << ", computed "
                        << crc32_hex(actual_crc) << ")");
        if (!seq_gap) {
          const BodyReader reader(body);
          const std::string type = reader.get_token("type");
          if (seq == 0) {
            ESM_REQUIRE(type == kTypeCampaign,
                        "journal record 0 must be the campaign header, found "
                        "type '" << type << "'");
            header = decode_header(reader);
          } else {
            ESM_REQUIRE(type == kTypeBatch,
                        "journal record " << seq << " has unknown type '"
                                          << type << "'");
            batch = decode_batch(reader);
          }
        }
      }
    } catch (const ConfigError& e) {
      failure = e.what();
    }

    ESM_REQUIRE(!(failure.empty() && seq_gap),
                "journal corrupted at record " << expected_seq
                    << " (byte offset " << pos
                    << "): sequence gap — an intact record is out of order, "
                       "so at least one record was lost");
    if (!failure.empty()) {
      ESM_REQUIRE(is_last, "journal corrupted at record "
                               << expected_seq << " (byte offset " << pos
                               << "): " << failure);
      out.torn_tail = true;
      out.torn_detail = failure;
      return out;
    }
    if (header.has_value()) out.header = std::move(header);
    if (batch.has_value()) out.batches.push_back(std::move(*batch));
    ++expected_seq;
    pos = line_end + 1;
    out.valid_bytes = pos;
  }
  return out;
}

CampaignResume CampaignResume::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return CampaignResume{};  // missing file: fresh campaign
  std::ostringstream content;
  content << in.rdbuf();
  return from_string(content.str());
}

// ------------------------------------------------------- CampaignJournal

CampaignJournal::CampaignJournal(const std::string& path, bool resume,
                                 bool durable) {
  if (resume) {
    CampaignResume loaded = CampaignResume::load(path);
    if (loaded.torn_tail) {
      // Drop the torn tail from the file itself so the append stream
      // continues cleanly after the last durable record.
      std::error_code ec;
      std::filesystem::resize_file(path, loaded.valid_bytes, ec);
      ESM_REQUIRE(!ec, "cannot truncate torn journal tail in " << path
                                                               << ": "
                                                               << ec.message());
      std::cerr << "journal " << path << ": dropped torn trailing record ("
                << loaded.torn_detail << "); the batch will be re-measured\n";
      torn_ = true;
    }
    header_ = std::move(loaded.header);
    pending_.assign(std::make_move_iterator(loaded.batches.begin()),
                    std::make_move_iterator(loaded.batches.end()));
    next_seq_ = (header_.has_value() ? 1 : 0) + pending_.size();
    sink_ = std::make_unique<FileJournalSink>(path, /*truncate=*/false,
                                              durable);
    if (!header_.has_value()) {
      // Nothing durable yet (missing, empty, or fully torn file): behave
      // like a fresh campaign, writing the magic line from scratch.
      sink_ = std::make_unique<FileJournalSink>(path, /*truncate=*/true,
                                                durable);
      sink_->append(std::string(kMagicLine) + "\n");
      sink_->sync();
    }
    return;
  }
  sink_ = std::make_unique<FileJournalSink>(path, /*truncate=*/true, durable);
  sink_->append(std::string(kMagicLine) + "\n");
  sink_->sync();
}

CampaignJournal::CampaignJournal(std::unique_ptr<JournalSink> sink)
    : sink_(std::move(sink)) {
  sink_->append(std::string(kMagicLine) + "\n");
  sink_->sync();
}

const BatchRecord* CampaignJournal::peek_batch() const {
  return pending_.empty() ? nullptr : &pending_.front();
}

void CampaignJournal::pop_batch() {
  ESM_CHECK(!pending_.empty(), "pop_batch() with no pending journal record");
  pending_.pop_front();
}

void CampaignJournal::write_header(const CampaignHeader& header) {
  ESM_CHECK(!header_.has_value() && next_seq_ == 0,
            "campaign header may only start a fresh journal");
  append_record(encode_header(header));
  header_ = header;
}

void CampaignJournal::append_batch(const BatchRecord& record) {
  ESM_CHECK(next_seq_ > 0, "batch records must follow the campaign header");
  ESM_CHECK(pending_.empty(),
            "cannot append while journaled batches await replay");
  append_record(encode_batch(record));
}

void CampaignJournal::append_record(const std::string& body) {
  std::ostringstream line;
  line << next_seq_ << ' ' << crc32_hex(crc32(body)) << ' ' << body << '\n';
  sink_->append(line.str());
  sink_->sync();  // the record is durable once this returns
  ++next_seq_;
}

}  // namespace esm
