#include "esm/framework.hpp"

#include <chrono>
#include <iterator>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "esm/extension.hpp"
#include "surrogate/registry.hpp"

namespace esm {

EsmFramework::EsmFramework(EsmConfig config, SimulatedDevice& device)
    : config_(std::move(config)), device_(&device) {
  config_.validate();
  // The knob routes through the global pool setting; 0 leaves whatever
  // ESM_THREADS (or a previous set_thread_count) established in place.
  if (config_.threads > 0) set_thread_count(config_.threads);
}

std::unique_ptr<TrainableSurrogate> EsmFramework::make_predictor() const {
  SurrogateContext context;
  context.spec = config_.spec;
  context.encoder = config_.encoder;
  context.train = config_.train;
  context.seed = config_.seed ^ 0xe5717a7eull;
  context.device = device_;
  context.ensemble_members = config_.ensemble_members;
  return SurrogateRegistry::instance().create(config_.surrogate, context);
}

EsmResult EsmFramework::run() { return run_impl(std::nullopt); }

EsmResult EsmFramework::run(std::vector<MeasuredSample> test_set) {
  return run_impl(std::move(test_set));
}

EsmResult EsmFramework::run_impl(
    std::optional<std::vector<MeasuredSample>> test_set) {
  Rng rng(config_.seed);
  DatasetGenerator generator(config_, *device_, rng.split());

  EsmResult result;

  // Held-out evaluation set: balanced so every depth bin is represented
  // (an all-random test set would leave corner bins untested). The RNG
  // split happens either way so a supplied test set leaves every
  // downstream sampling stream unchanged.
  {
    Rng test_rng = rng.split();
    if (test_set.has_value()) {
      result.test_set = std::move(*test_set);
      ESM_REQUIRE(!result.test_set.empty(),
                  "a supplied test set must not be empty");
    } else {
      BalancedSampler test_sampler(config_.spec, config_.n_bins);
      const std::vector<ArchConfig> test_archs = test_sampler.sample_n(
          static_cast<std::size_t>(config_.n_test), test_rng);
      result.test_set = generator.measure_batch(test_archs).samples;
    }
  }

  // Initial training set (input N_I) under the configured strategy.
  Rng sample_rng = rng.split();
  {
    auto sampler =
        make_sampler(config_.spec, config_.strategy, config_.n_bins);
    const std::vector<ArchConfig> initial = sampler->sample_n(
        static_cast<std::size_t>(config_.n_initial), sample_rng);
    result.train_set = generator.measure_batch(initial).samples;
  }

  const BinwiseEvaluator evaluator(config_.spec, config_.n_bins,
                                   config_.acc_threshold);

  // Training views grow incrementally instead of being rebuilt from the
  // sample structs every iteration.
  std::vector<ArchConfig> archs;
  std::vector<double> latencies;
  archs.reserve(result.train_set.size());
  latencies.reserve(result.train_set.size());
  for (const MeasuredSample& s : result.train_set) {
    archs.push_back(s.arch);
    latencies.push_back(s.latency_ms);
  }

  double measured_cost_before = device_->measurement_cost_seconds();
  for (int iteration = 1; iteration <= config_.max_iterations; ++iteration) {
    // Train from scratch on the current dataset (the paper retrains after
    // every extension).
    auto predictor = make_predictor();
    const auto fit_start = std::chrono::steady_clock::now();
    predictor->fit(SurrogateDataset{archs, latencies});
    const std::chrono::duration<double> fit_elapsed =
        std::chrono::steady_clock::now() - fit_start;

    IterationReport report;
    report.iteration = iteration;
    report.train_set_size = result.train_set.size();
    report.train_seconds = fit_elapsed.count();
    report.eval = evaluator.evaluate(*predictor, result.test_set);
    report.passed =
        report.eval.passed(config_.eval_strategy, config_.acc_threshold);
    const double measured_cost_now = device_->measurement_cost_seconds();
    report.measurement_seconds = measured_cost_now - measured_cost_before;
    measured_cost_before = measured_cost_now;

    result.total_train_seconds += report.train_seconds;
    result.iterations.push_back(report);
    result.predictor = std::move(predictor);

    if (report.passed) {
      result.converged = true;
      break;
    }
    if (iteration == config_.max_iterations) break;

    // Extend the dataset (Algorithm 1) and measure the new samples.
    const std::vector<ArchConfig> extension =
        extend_dataset(config_, report.eval, sample_rng);
    std::vector<MeasuredSample> extra =
        generator.measure_batch(extension).samples;
    archs.reserve(archs.size() + extra.size());
    latencies.reserve(latencies.size() + extra.size());
    for (const MeasuredSample& s : extra) {
      archs.push_back(s.arch);
      latencies.push_back(s.latency_ms);
    }
    result.train_set.insert(result.train_set.end(),
                            std::make_move_iterator(extra.begin()),
                            std::make_move_iterator(extra.end()));
  }

  result.final_train_set_size = result.train_set.size();
  result.total_measurement_seconds = device_->measurement_cost_seconds();
  return result;
}

}  // namespace esm
