#include "esm/framework.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "esm/extension.hpp"

namespace esm {

EsmFramework::EsmFramework(EsmConfig config, SimulatedDevice& device)
    : config_(std::move(config)), device_(&device) {
  config_.validate();
  // The knob routes through the global pool setting; 0 leaves whatever
  // ESM_THREADS (or a previous set_thread_count) established in place.
  if (config_.threads > 0) set_thread_count(config_.threads);
}

std::unique_ptr<MlpSurrogate> EsmFramework::make_predictor() const {
  return std::make_unique<MlpSurrogate>(
      make_encoder(config_.encoding, config_.spec), config_.train,
      config_.seed ^ 0xe5717a7eull);
}

EsmResult EsmFramework::run() {
  Rng rng(config_.seed);
  DatasetGenerator generator(config_, *device_, rng.split());

  EsmResult result;

  // Held-out evaluation set: balanced so every depth bin is represented
  // (an all-random test set would leave corner bins untested).
  {
    BalancedSampler test_sampler(config_.spec, config_.n_bins);
    Rng test_rng = rng.split();
    const std::vector<ArchConfig> test_archs = test_sampler.sample_n(
        static_cast<std::size_t>(config_.n_test), test_rng);
    result.test_set = generator.measure_batch(test_archs);
  }

  // Initial training set (input N_I) under the configured strategy.
  Rng sample_rng = rng.split();
  {
    auto sampler =
        make_sampler(config_.spec, config_.strategy, config_.n_bins);
    const std::vector<ArchConfig> initial = sampler->sample_n(
        static_cast<std::size_t>(config_.n_initial), sample_rng);
    result.train_set = generator.measure_batch(initial);
  }

  const BinwiseEvaluator evaluator(config_.spec, config_.n_bins,
                                   config_.acc_threshold);

  double measured_cost_before = device_->measurement_cost_seconds();
  for (int iteration = 1; iteration <= config_.max_iterations; ++iteration) {
    // Train from scratch on the current dataset (the paper retrains after
    // every extension).
    auto predictor = make_predictor();
    std::vector<ArchConfig> archs;
    std::vector<double> latencies;
    archs.reserve(result.train_set.size());
    latencies.reserve(result.train_set.size());
    for (const MeasuredSample& s : result.train_set) {
      archs.push_back(s.arch);
      latencies.push_back(s.latency_ms);
    }
    const TrainResult train = predictor->fit(archs, latencies);

    IterationReport report;
    report.iteration = iteration;
    report.train_set_size = result.train_set.size();
    report.train_seconds = train.train_seconds;
    report.eval = evaluator.evaluate(*predictor, result.test_set);
    report.passed =
        report.eval.passed(config_.eval_strategy, config_.acc_threshold);
    const double measured_cost_now = device_->measurement_cost_seconds();
    report.measurement_seconds = measured_cost_now - measured_cost_before;
    measured_cost_before = measured_cost_now;

    result.total_train_seconds += report.train_seconds;
    result.iterations.push_back(report);
    result.predictor = std::move(predictor);

    if (report.passed) {
      result.converged = true;
      break;
    }
    if (iteration == config_.max_iterations) break;

    // Extend the dataset (Algorithm 1) and measure the new samples.
    const std::vector<ArchConfig> extension =
        extend_dataset(config_, report.eval, sample_rng);
    const std::vector<MeasuredSample> extra =
        generator.measure_batch(extension);
    result.train_set.insert(result.train_set.end(), extra.begin(),
                            extra.end());
  }

  result.final_train_set_size = result.train_set.size();
  result.total_measurement_seconds = device_->measurement_cost_seconds();
  return result;
}

}  // namespace esm
