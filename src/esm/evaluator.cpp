#include "esm/evaluator.hpp"

#include <limits>

#include "common/error.hpp"
#include "ml/metrics.hpp"

namespace esm {

std::vector<int> EvalReport::bins_below() const {
  std::vector<int> out;
  for (const BinAccuracy& b : bins) {
    if (b.count > 0 && b.below_threshold) out.push_back(b.bin);
  }
  return out;
}

std::vector<int> EvalReport::bins_above() const {
  std::vector<int> out;
  for (const BinAccuracy& b : bins) {
    if (b.count > 0 && !b.below_threshold) out.push_back(b.bin);
  }
  return out;
}

bool EvalReport::passed(EvalStrategy strategy, double acc_threshold) const {
  switch (strategy) {
    case EvalStrategy::kOverall:
      return overall_accuracy >= acc_threshold;
    case EvalStrategy::kBinWise:
      return bins_below().empty();
  }
  return false;
}

BinwiseEvaluator::BinwiseEvaluator(const SupernetSpec& spec, int n_bins,
                                   double acc_threshold)
    : bins_(spec, n_bins), acc_threshold_(acc_threshold) {}

EvalReport BinwiseEvaluator::evaluate(
    const LatencyPredictor& predictor,
    std::span<const MeasuredSample> test_set) const {
  ESM_REQUIRE(!test_set.empty(), "evaluation requires a test set");

  EvalReport report;
  report.bins.resize(static_cast<std::size_t>(bins_.size()));
  std::vector<double> bin_acc_sum(static_cast<std::size_t>(bins_.size()), 0.0);
  double overall_sum = 0.0;

  // One predict_all batch instead of per-sample predict_ms: MLP-backed
  // surrogates serve it through the fused fast path with bit-identical
  // values, so accuracies (and the seeded ESM loop) are unchanged.
  std::vector<ArchConfig> archs;
  archs.reserve(test_set.size());
  for (const MeasuredSample& sample : test_set) archs.push_back(sample.arch);
  const std::vector<double> predicted = predictor.predict_all(archs);
  for (std::size_t i = 0; i < test_set.size(); ++i) {
    const MeasuredSample& sample = test_set[i];
    const double acc = sample_accuracy(predicted[i], sample.latency_ms);
    overall_sum += acc;
    const int bin = bins_.bin_of(sample.arch.total_blocks());
    bin_acc_sum[static_cast<std::size_t>(bin)] += acc;
    ++report.bins[static_cast<std::size_t>(bin)].count;
  }

  report.overall_accuracy =
      overall_sum / static_cast<double>(test_set.size());
  report.min_bin_accuracy = std::numeric_limits<double>::infinity();
  for (int i = 0; i < bins_.size(); ++i) {
    BinAccuracy& b = report.bins[static_cast<std::size_t>(i)];
    b.bin = i;
    b.label = bins_.label(i);
    if (b.count > 0) {
      b.accuracy =
          bin_acc_sum[static_cast<std::size_t>(i)] / static_cast<double>(b.count);
      b.below_threshold = b.accuracy < acc_threshold_;
      if (b.accuracy < report.min_bin_accuracy) {
        report.min_bin_accuracy = b.accuracy;
      }
    }
  }
  if (report.min_bin_accuracy == std::numeric_limits<double>::infinity()) {
    report.min_bin_accuracy = 0.0;
  }
  return report;
}

}  // namespace esm
