#include "esm/extension.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esm {

int ExtensionPlan::total() const {
  int acc = 0;
  for (int n : per_bin) acc += n;
  return acc;
}

ExtensionPlan plan_balanced_extension(const EsmConfig& config,
                                      const EvalReport& report) {
  ESM_REQUIRE(static_cast<int>(report.bins.size()) == config.n_bins,
              "evaluation report does not match N_Bins");
  // Empty bins join the below-threshold group: the predictor has never been
  // tested there, so they need coverage.
  std::vector<bool> below(report.bins.size(), false);
  int n_below = 0, n_above = 0;
  for (const BinAccuracy& b : report.bins) {
    const bool is_below = b.count == 0 || b.below_threshold;
    below[static_cast<std::size_t>(b.bin)] = is_below;
    if (is_below) ++n_below;
    else ++n_above;
  }

  const double norm =
      config.w_below * n_below + config.w_above * n_above;
  ESM_CHECK(norm > 0.0, "no bins to extend into");
  const double quota_below =
      std::ceil(static_cast<double>(config.n_step) * config.w_below / norm);
  const double quota_above =
      std::ceil(static_cast<double>(config.n_step) * config.w_above / norm);

  ExtensionPlan plan;
  plan.per_bin.resize(report.bins.size(), 0);
  for (std::size_t i = 0; i < report.bins.size(); ++i) {
    plan.per_bin[i] =
        static_cast<int>(below[i] ? quota_below : quota_above);
  }
  return plan;
}

std::vector<ArchConfig> extend_dataset(const EsmConfig& config,
                                       const EvalReport& report, Rng& rng) {
  if (config.strategy == SamplingStrategy::kRandom) {
    RandomSampler sampler(config.spec);
    return sampler.sample_n(static_cast<std::size_t>(config.n_step), rng);
  }

  const ExtensionPlan plan = plan_balanced_extension(config, report);
  BalancedSampler sampler(config.spec, config.n_bins);
  std::vector<ArchConfig> out;
  out.reserve(static_cast<std::size_t>(plan.total()));
  for (std::size_t bin = 0; bin < plan.per_bin.size(); ++bin) {
    for (int i = 0; i < plan.per_bin[bin]; ++i) {
      out.push_back(sampler.sample_in_bin(static_cast<int>(bin), rng));
    }
  }
  return out;
}

}  // namespace esm
