// The measure -> train -> gate -> publish pipeline behind `esm_cli
// pipeline`: one command that takes a device and a model name to a
// manifest entry the fleet server can serve, crash-safe at every stage.
//
// Stage layout and the resume argument:
//   1. measure train set   journaled (esm/journal.hpp) under
//                          <manifest-dir>/.pipeline/<name>.train.journal
//   2. measure test set    journaled under .../<name>.test.journal
//   3. train               deterministic from (samples, config, seed)
//   4. gate                BinwiseEvaluator against Acc_TH; a failing
//                          model is NEVER published
//   5. publish             artifact via save_surrogate_atomic, then the
//                          manifest upserted via write_manifest_atomic
//
// Stages 1-2 are write-ahead journaled with resume always on: a rerun
// after kill -9 replays the accepted batches bit-identically and measures
// only the remainder (the PR-4 guarantee). Stages 3-4 are pure functions
// of the measured samples and the config. Stage 5 writes both files
// atomically, artifact first: a crash between the two leaves the manifest
// pointing at the OLD artifact bytes (the new file only replaces the old
// after its rename), and the rerun converges to the same published state.
// Rerunning a completed pipeline therefore republishes a byte-identical
// artifact and manifest, no matter where (or whether) a previous attempt
// died.
#pragma once

#include <cstddef>
#include <string>

#include "esm/config.hpp"
#include "esm/evaluator.hpp"

namespace esm {

struct PipelineConfig {
  /// Space, surrogate/encoder kind, QC + fault tolerance, Acc_TH gate,
  /// training hyperparameters, seed. `esm.journal` is overridden per
  /// measurement stage (path derived from the model name, resume on);
  /// `esm.n_initial` sizes the train set and `esm.n_test` the test set.
  EsmConfig esm;
  std::string device;        ///< simulated-device name
  std::string model_name;    ///< manifest entry to publish
  std::string manifest_dir;  ///< artifacts + manifest live here
  std::string manifest_file = "manifest.esmf";
  /// Archs per measurement batch / journal record (checkpoint
  /// granularity); 0 = one batch per stage.
  std::size_t batch_size = 0;
  bool durable = true;  ///< fsync journal records (tests disable for speed)

  /// Throws esm::ConfigError on an invalid name, empty dir, or bad esm
  /// config.
  void validate() const;
};

struct PipelineResult {
  bool gate_passed = false;
  bool published = false;
  std::size_t train_measured = 0;  ///< train samples delivered by stage 1
  std::size_t test_measured = 0;   ///< test samples delivered by stage 2
  /// Journal-answered batches across both measurement stages; > 0 means
  /// this run resumed a previous attempt.
  std::size_t replayed_batches = 0;
  EvalReport eval;            ///< the gate's evidence
  std::string artifact_path;  ///< written only when published
  std::string artifact_crc32;
  std::string manifest_path;
};

/// Runs the five stages. Throws esm::ConfigError on configuration or I/O
/// failures; a gate failure is NOT an error (returns gate_passed=false,
/// published=false).
PipelineResult run_pipeline(const PipelineConfig& config);

}  // namespace esm
