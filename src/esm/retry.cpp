#include "esm/retry.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esm {

void RetryPolicy::validate() const {
  ESM_REQUIRE(max_attempts >= 1, "retry policy: max_attempts must be >= 1");
  ESM_REQUIRE(backoff_base_s >= 0.0,
              "retry policy: backoff_base_s must be >= 0");
  ESM_REQUIRE(backoff_multiplier >= 1.0,
              "retry policy: backoff_multiplier must be >= 1");
  ESM_REQUIRE(backoff_jitter >= 0.0 && backoff_jitter <= 1.0,
              "retry policy: backoff_jitter must be in [0, 1]");
  ESM_REQUIRE(batch_retry_budget >= 0,
              "retry policy: batch_retry_budget must be >= 0");
}

double retry_backoff_seconds(const RetryPolicy& policy, int retry_index,
                             Rng jitter_rng) {
  ESM_REQUIRE(retry_index >= 1, "retry_backoff_seconds: retry_index >= 1");
  const double base =
      policy.backoff_base_s *
      std::pow(policy.backoff_multiplier,
               static_cast<double>(retry_index - 1));
  const double u = 2.0 * jitter_rng.uniform() - 1.0;
  return base * (1.0 + policy.backoff_jitter * u);
}

}  // namespace esm
