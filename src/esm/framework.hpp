// The ESM framework: the train–evaluate–extend loop of paper Fig. 5.
//
//   1. Sample N_I architectures (random or balanced) and measure them under
//      reference-model quality control.
//   2. Train the MLP latency predictor on the encoded dataset.
//   3. Evaluate per depth bin against Acc_TH on a held-out test set.
//   4. If any bin fails, extend the dataset by N_Step samples (Algorithm 1,
//      weighted toward failing bins under the balanced strategy), retrain,
//      re-evaluate; repeat until every bin passes or the iteration budget
//      runs out.
//
// The run records per-iteration telemetry (dataset size, per-bin accuracy,
// measurement cost, training cost) that the Fig. 11 bench replays.
//
// The surrogate family and encoding are chosen by registry key from
// EsmConfig (surrogate/encoder); the loop never names a concrete type.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "esm/config.hpp"
#include "esm/dataset_gen.hpp"
#include "esm/evaluator.hpp"
#include "hwsim/measurement.hpp"
#include "surrogate/trainable.hpp"

namespace esm {

/// Telemetry for one train-evaluate(-extend) iteration.
struct IterationReport {
  int iteration = 0;            ///< 1-based
  std::size_t train_set_size = 0;
  EvalReport eval;
  double train_seconds = 0.0;   ///< wall-clock MLP training time
  double measurement_seconds = 0.0;  ///< simulated measuring time this iteration
  bool passed = false;
};

/// Outcome of a full framework run.
struct EsmResult {
  std::unique_ptr<TrainableSurrogate> predictor;
  std::vector<IterationReport> iterations;
  bool converged = false;
  std::size_t final_train_set_size = 0;
  double total_measurement_seconds = 0.0;
  double total_train_seconds = 0.0;
  std::vector<MeasuredSample> train_set;
  std::vector<MeasuredSample> test_set;
};

/// Drives the full ESM loop against a (simulated) device.
class EsmFramework {
 public:
  /// The device must outlive the framework.
  EsmFramework(EsmConfig config, SimulatedDevice& device);

  /// Runs the loop to convergence (all bins >= Acc_TH) or exhaustion.
  EsmResult run();

  /// Same loop over a pre-measured held-out test set (e.g. from a previous
  /// run on the same device/seed), skipping its re-measurement. Used by
  /// ablations that vary only the surrogate kind.
  EsmResult run(std::vector<MeasuredSample> test_set);

  const EsmConfig& config() const { return config_; }

 private:
  std::unique_ptr<TrainableSurrogate> make_predictor() const;
  EsmResult run_impl(std::optional<std::vector<MeasuredSample>> test_set);

  EsmConfig config_;
  SimulatedDevice* device_;  // non-owning
};

}  // namespace esm
