// Dataset generation with reference-model quality control (paper §II-C.3,
// Fig. 6).
//
// Every measurement batch is executed in one device "session". Reference
// models — architectures drawn once at construction and re-measured in every
// batch — act as canaries: if a session's clocks drifted (thermal throttling,
// background load), the reference latencies deviate from their established
// baselines. A batch passes QC when the fraction of in-tolerance reference
// measurements is high enough and their aggregate deviation stays under the
// configured 3 % boundary; otherwise the whole batch is re-measured in a
// fresh session. Outlier reference readings are recorded (Fig. 6's dots
// outside the boundary) and excluded from the aggregate.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "esm/config.hpp"
#include "hwsim/measurement.hpp"
#include "nets/builder.hpp"

namespace esm {

/// One architecture with its measured latency.
struct MeasuredSample {
  ArchConfig arch;
  double latency_ms = 0.0;
};

/// QC outcome of one measurement batch.
struct QcReport {
  int attempts = 0;              ///< sessions tried (1 = first passed)
  bool passed = false;           ///< true if a session met the QC bound
  double reference_cv = 0.0;     ///< aggregate relative deviation (last attempt)
  std::vector<double> reference_deviation;  ///< per-reference |dev| (last attempt)
  int outliers = 0;              ///< reference readings outside the boundary
};

/// Measures architecture batches on a device under reference-model QC.
class DatasetGenerator {
 public:
  /// Draws the reference models and establishes their baseline latencies
  /// over several sessions (median per reference).
  DatasetGenerator(const EsmConfig& config, SimulatedDevice& device,
                   Rng rng);

  /// Measures every architecture in one QC-controlled session; re-measures
  /// (new session) until QC passes or attempts run out, keeping the last
  /// attempt in that case. Appends the QC outcome to qc_history().
  std::vector<MeasuredSample> measure_batch(
      const std::vector<ArchConfig>& archs);

  const std::vector<ArchConfig>& reference_models() const {
    return references_;
  }
  const std::vector<double>& reference_baselines() const {
    return baselines_;
  }
  const std::vector<QcReport>& qc_history() const { return qc_history_; }

  SimulatedDevice& device() { return *device_; }

 private:
  /// Runs one session: measures references + batch; fills `report`.
  std::vector<MeasuredSample> run_session(
      const std::vector<ArchConfig>& archs, QcReport& report);

  EsmConfig config_;
  SimulatedDevice* device_;  // non-owning
  Rng rng_;
  std::vector<ArchConfig> references_;
  std::vector<LayerGraph> reference_graphs_;
  std::vector<double> baselines_;
  std::vector<QcReport> qc_history_;
};

}  // namespace esm
