// Dataset generation with reference-model quality control (paper §II-C.3,
// Fig. 6) and fault-tolerant measurement.
//
// Every measurement batch is executed in one device "session". Reference
// models — architectures drawn once at construction and re-measured in every
// batch — act as canaries: if a session's clocks drifted (thermal throttling,
// background load), the reference latencies deviate from their established
// baselines. A batch passes QC when the fraction of in-tolerance reference
// measurements is high enough and their aggregate deviation stays under the
// configured 3 % boundary; otherwise the whole batch is re-measured in a
// fresh session. Outlier reference readings are recorded (Fig. 6's dots
// outside the boundary) and excluded from the aggregate.
//
// Measurement attempts can also *fail* outright (hwsim/faults.hpp). The
// generator retries transient failures under the configured RetryPolicy
// (exponential backoff charged in simulated seconds, bounded by a per-batch
// budget), escalates sessions whose canaries or architectures failed too
// often to the QC re-measure loop, and quarantines architectures that still
// fail in the final session. measure_batch() therefore ALWAYS completes,
// returning whatever was measured plus a DatasetReport accounting of what
// happened. Retry schedules are planned serially from fault substreams
// before the parallel fan-out, so seeded runs stay bit-identical at any
// thread count (the PR-1 invariant).
//
// With EsmConfig::journal configured, the generator additionally writes
// every accepted batch through a CampaignJournal (esm/journal.hpp) and, on
// resume, answers already-journaled batches by replaying their records —
// restoring baselines, QC history, quarantine, simulated cost, and the
// exact RNG/session state — instead of re-measuring. A killed campaign
// resumed this way finishes bit-identically to an uninterrupted run.
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "esm/config.hpp"
#include "hwsim/measurement.hpp"
#include "nets/builder.hpp"

namespace esm {

class CampaignJournal;
struct BatchRecord;

/// One architecture with its measured latency.
struct MeasuredSample {
  ArchConfig arch;
  double latency_ms = 0.0;
};

/// QC outcome of one measurement batch.
struct QcReport {
  int attempts = 0;              ///< sessions tried (1 = first passed)
  bool passed = false;           ///< true if a session met the QC bound
  double reference_cv = 0.0;     ///< aggregate relative deviation (last attempt)
  std::vector<double> reference_deviation;  ///< per-reference |dev| (last attempt)
  int outliers = 0;              ///< reference readings outside the boundary
  int failed_measurements = 0;   ///< attempts that failed outright (last attempt)
};

/// Accounting of one measure_batch() call: what was requested, what was
/// actually measured, and what the fault tolerance did along the way.
/// Simulated costs (including backoff) are also accumulated on the device,
/// so Fig. 4a-style analyses see retry overhead automatically.
struct DatasetReport {
  std::size_t requested = 0;     ///< architectures asked for
  std::size_t measured = 0;      ///< samples actually delivered
  std::size_t quarantined = 0;   ///< archs newly quarantined by this batch
  std::size_t skipped_quarantined = 0;  ///< archs skipped as already quarantined
  int sessions = 0;              ///< device sessions run (QC attempts)
  int retries = 0;               ///< re-measure attempts after faults
  int timeouts = 0;              ///< attempts that hit the watchdog
  int device_losses = 0;         ///< attempts lost to mid-session dropouts
  int read_errors = 0;           ///< attempts lost to transient read errors
  bool qc_passed = false;        ///< final session met the QC bound
  double cost_seconds = 0.0;     ///< simulated cost of this batch, incl. retries
  double backoff_seconds = 0.0;  ///< simulated backoff charged before retries

  /// Stable keys (ArchConfig::to_string()) of the archs newly quarantined
  /// by this batch — one per `quarantined` count, so reports (and resumed
  /// runs reading the journal) can explain exactly which archs were given
  /// up on, not just how many.
  std::vector<std::string> quarantined_archs;
};

/// Everything measure_batch() produced: the surviving samples, the QC
/// outcome of the accepted (last) session, and the fault-tolerance ledger.
struct BatchResult {
  std::vector<MeasuredSample> samples;
  QcReport qc;
  DatasetReport report;
};

/// Measures architecture batches on a device under reference-model QC.
class DatasetGenerator {
 public:
  /// Draws the reference models and establishes their baseline latencies
  /// over several sessions (median per reference). Installs the config's
  /// fault profile on the device if the config declares one. With
  /// config.journal set, opens (and on resume, replays the header of) the
  /// campaign journal; a resumed construction restores the journaled
  /// baselines without re-measuring them.
  DatasetGenerator(const EsmConfig& config, SimulatedDevice& device,
                   Rng rng);
  ~DatasetGenerator();

  /// Measures every architecture in one QC-controlled session; re-measures
  /// (new session) until QC passes or attempts run out, keeping the last
  /// attempt in that case. Transient per-measurement faults are retried
  /// under the config's RetryPolicy; architectures still failing in the
  /// kept session are quarantined and omitted from later batches. Appends
  /// the QC outcome to qc_history(). Never throws for measurement faults.
  BatchResult measure_batch(const std::vector<ArchConfig>& archs);

  const std::vector<ArchConfig>& reference_models() const {
    return references_;
  }
  const std::vector<double>& reference_baselines() const {
    return baselines_;
  }
  const std::vector<QcReport>& qc_history() const { return qc_history_; }

  /// Stable keys (ArchConfig::to_string()) of quarantined architectures.
  const std::set<std::string>& quarantined() const { return quarantine_; }

  SimulatedDevice& device() { return *device_; }

  /// Batches answered from the journal instead of being measured (resume).
  std::size_t replayed_batches() const { return replayed_batches_; }

  /// True when a campaign journal is attached (config.journal.path set).
  bool journaling() const { return journal_ != nullptr; }

 private:
  /// Planned attempts for one measurement task of a session fan-out: the
  /// first attempt plus budget-bounded retries, each on its own noise
  /// substream. Planned serially (fault outcomes depend only on session
  /// state and substreams, never on measured values), then replayed
  /// identically by the parallel execution.
  struct TaskPlan {
    std::vector<Rng> attempt_noise;
  };

  /// Outcome of executing one task's plan.
  struct TaskResult {
    MeasureResult final;         ///< last attempt (first success, if any)
    double attempt_cost_s = 0.0; ///< simulated cost of all attempts
    int timeouts = 0;
    int device_losses = 0;
    int read_errors = 0;
  };

  /// Everything one session produced, before QC acceptance is decided.
  struct SessionOutcome {
    std::vector<MeasuredSample> samples;  ///< archs that measured OK
    std::vector<ArchConfig> failed;       ///< archs with no surviving value
    QcReport report;
    int retries = 0;
    int timeouts = 0;
    int device_losses = 0;
    int read_errors = 0;
    double backoff_seconds = 0.0;
  };

  TaskPlan plan_task(const Rng& session_rng, std::size_t slot,
                     std::size_t n_tasks, int& budget) const;
  TaskResult run_task(const LayerGraph& graph, const TaskPlan& plan,
                      std::size_t slot, std::size_t n_tasks) const;

  /// Runs one session over `archs` (plan, parallel fan-out, deterministic
  /// reductions, QC verdict), drawing retries from `budget`.
  SessionOutcome run_session(const std::vector<ArchConfig>& archs,
                             int& budget);

  void establish_baselines();

  /// Fingerprint of the generator's sequential stream, drawn from a
  /// non-advancing substream: journal records carry it so resume can
  /// verify that replay restored the exact stream position.
  std::uint64_t rng_digest() const;

  /// Opens the journal and, on resume, restores construction state from
  /// its campaign header (or measures baselines and writes the header).
  void init_journal();

  /// Answers one measure_batch() call from the next journaled record:
  /// replays the recorded sessions/RNG splits, restores cost, quarantine,
  /// and QC history, and reconstructs the samples from `todo`.
  BatchResult replay_batch(const std::vector<ArchConfig>& archs,
                           const std::vector<ArchConfig>& todo,
                           BatchResult out);

  EsmConfig config_;
  SimulatedDevice* device_;  // non-owning
  Rng rng_;
  std::vector<ArchConfig> references_;
  std::vector<LayerGraph> reference_graphs_;
  std::vector<double> baselines_;
  std::vector<QcReport> qc_history_;
  std::set<std::string> quarantine_;
  std::unique_ptr<CampaignJournal> journal_;
  std::size_t replayed_batches_ = 0;
};

}  // namespace esm
