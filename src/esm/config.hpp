// ESM framework configuration — the user inputs of paper §II-B, plus the
// dataset-quality-control and loop-control knobs of §II-C/§II-E.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "esm/retry.hpp"
#include "hwsim/faults.hpp"
#include "ml/trainer.hpp"
#include "nets/sampler.hpp"
#include "nets/supernet.hpp"

namespace esm {

/// Predictor evaluation strategy: aggregate accuracy, or every depth bin
/// individually (paper input 7).
enum class EvalStrategy { kOverall, kBinWise };

const char* eval_strategy_name(EvalStrategy s);

/// Crash-safe campaign journaling (esm/journal.hpp). With a path set, the
/// DatasetGenerator write-ahead-logs every accepted measurement batch;
/// with `resume` also set, an existing journal is replayed first so a
/// killed campaign continues bit-identically without re-measuring.
struct JournalOptions {
  std::string path;     ///< journal file; empty = journaling off
  bool resume = false;  ///< replay an existing journal before appending
  bool durable = true;  ///< fsync each record (tests may disable for speed)

  bool enabled() const { return !path.empty(); }

  /// Throws esm::ConfigError if resume is requested without a path.
  void validate() const;
};

/// All user inputs of the ESM framework (paper Fig. 5, §II-B).
struct EsmConfig {
  SupernetSpec spec;                                   ///< architecture space
  SamplingStrategy strategy = SamplingStrategy::kBalanced;  ///< input 1
  std::string surrogate = "mlp";  ///< input 2: surrogate-registry key
  std::string encoder = "fcc";    ///< input 6 (eta): encoder-registry key
  std::size_t ensemble_members = 4;  ///< width of the "ensemble" surrogate
  int n_initial = 300;                                 ///< input 3 (N_I)
  int n_step = 100;                                    ///< input 4 (N_Step)
  double w_below = 4.0;                                ///< input 5 (w1)
  double w_above = 1.0;                                ///< input 5 (w2)
  EvalStrategy eval_strategy = EvalStrategy::kBinWise; ///< input 7
  int n_bins = 5;                                      ///< input 8 (N_Bins)
  double acc_threshold = 0.95;                         ///< input 9 (Acc_TH)

  // --- loop control ---
  int max_iterations = 60;       ///< extension rounds before giving up
  int n_test = 500;              ///< held-out balanced evaluation set size

  // --- dataset quality control (paper §II-C.3, Fig. 6) ---
  int n_reference_models = 8;    ///< reference models per measurement batch
  double qc_variance_limit = 0.03;  ///< the paper's 3 % boundary
  int qc_max_attempts = 6;       ///< re-measure attempts before accepting
  int qc_baseline_sessions = 3;  ///< sessions used to establish baselines

  // --- measurement fault tolerance ---
  /// Fault profile installed on the device by DatasetGenerator. The default
  /// (all-zero) profile injects nothing and leaves every output
  /// bit-identical; parse_fault_profile() accepts preset names ("flaky",
  /// "harsh") or key=value pairs.
  FaultProfile faults;
  /// Retry/backoff behavior for failed measurement attempts.
  RetryPolicy retry;

  /// Write-ahead journal for crash-safe, resumable campaigns.
  JournalOptions journal;

  // --- predictor training ---
  TrainConfig train;             ///< paper defaults: 3x64 MLP, Adam 0.01/1e-4

  // --- execution ---
  /// Worker threads for the shared pool (measurement fan-out, GEMM bands,
  /// tree split scans). 0 = defer to the ESM_THREADS environment variable
  /// (default: serial); 1 = force serial; N = pool of N. Results are
  /// bit-identical at every setting (see common/parallel.hpp).
  int threads = 0;

  std::uint64_t seed = 42;

  /// Throws esm::ConfigError if any field is inconsistent.
  void validate() const;
};

}  // namespace esm
