// Retry policy for fault-tolerant dataset generation.
//
// Measurement attempts can fail (hwsim/faults.hpp); the dataset pipeline
// responds with bounded retries under exponential backoff. Backoff is
// charged in *simulated* seconds against the device cost accumulator, so
// the paper's data-acquisition-cost analysis (Fig. 4a) sees retry overhead
// exactly like it sees measurement time. Jitter is drawn from seeded Rng
// substreams, keeping retry schedules bit-identical at any thread count.
#pragma once

#include "common/rng.hpp"

namespace esm {

/// Bounds and shape of the per-measurement retry loop.
struct RetryPolicy {
  /// Total attempts per measurement, including the first (1 = no retries).
  int max_attempts = 3;

  /// Simulated seconds of backoff before the first retry.
  double backoff_base_s = 0.5;

  /// Growth factor between consecutive retries.
  double backoff_multiplier = 2.0;

  /// Relative jitter: each backoff is scaled by 1 + jitter * u, with u
  /// drawn uniformly from [-1, 1) off a seeded substream.
  double backoff_jitter = 0.25;

  /// Maximum extra attempts spent per measure_batch() call across all
  /// architectures; once exhausted, failing measurements are dropped for
  /// the session and the batch degrades gracefully.
  int batch_retry_budget = 256;

  /// Throws esm::ConfigError on non-positive attempts/budget or negative
  /// backoff parameters.
  void validate() const;
};

/// Simulated backoff charged before retry number `retry_index` (1-based:
/// the first retry waits base * (1 + jitter*u), the next base * multiplier
/// * (1 + jitter*u'), ...). `jitter_rng` is consumed by value: pass a
/// dedicated substream so the draw cannot perturb measurement noise.
double retry_backoff_seconds(const RetryPolicy& policy, int retry_index,
                             Rng jitter_rng);

}  // namespace esm
