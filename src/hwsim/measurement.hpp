// Noisy measurement channel over the deterministic latency model.
//
// Reproduces the paper's measurement methodology (§II-C.3, Fig. 4b, Fig. 6):
// each latency value is obtained by running the model `runs` times (default
// 150), discarding the slowest and fastest `trim_fraction` (default 20 %)
// and averaging the middle 60 %. Individual runs are perturbed by clock
// jitter, warm-up slowdown, occasional outlier spikes, and a slowly drifting
// session factor; sessions occasionally go "bad" (sustained thermal/clock
// drift), which is what the reference-model quality-control step detects.
//
// Measurements go through ONE entry point, measure(), which returns a
// MeasureResult: the trimmed-mean value (latency or energy), an optional
// per-run trace, the simulated wall-clock cost of acquiring it, and a
// MeasureOutcome. With a FaultProfile installed (hwsim/faults.hpp) an
// attempt can fail — timeout, mid-session dropout, transient read error —
// and the failure is reported as a value, never as silent corruption.
//
// The device also accounts the *simulated wall-clock cost* of measuring
// (per-run latency + host-side overhead, plus the cost of failed attempts),
// which powers the paper's data-acquisition-cost analysis (Fig. 4a).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "hwsim/energy_model.hpp"
#include "hwsim/faults.hpp"
#include "hwsim/latency_model.hpp"
#include "nn/graph.hpp"

namespace esm {

/// The paper's measurement protocol parameters.
struct MeasurementProtocol {
  int runs = 150;              ///< timed inferences per latency value
  double trim_fraction = 0.2;  ///< fraction discarded at each extreme
  int warmup_runs = 5;         ///< untimed warm-up inferences per model
};

/// What a measurement reads: per-inference latency or energy. Both ride the
/// same warm-up + runs + trimmed-mean protocol and the same noise channel.
enum class MeasureQuantity { kLatencyMs, kEnergyMj };

/// Options for one measure() call.
struct MeasureOptions {
  MeasureQuantity quantity = MeasureQuantity::kLatencyMs;

  /// Keep the per-run trace in the result (Fig. 4b).
  bool keep_trace = false;

  /// Explicit noise substream. When set, the measurement depends only on
  /// (session state, noise) — not on how many other measurements run
  /// concurrently — the call is thread-safe with respect to other
  /// substream measurements in the same session, and its cost is only
  /// RETURNED: the caller adds it via add_measurement_cost() in
  /// deterministic index order. When unset, the measurement draws from the
  /// device's own sequential stream and its cost is accumulated directly.
  std::optional<Rng> noise;

  /// Position of this measurement in the session fan-out and the fan-out
  /// width; used by the fault model to place mid-session dropouts. Leave at
  /// the defaults for measurements outside a session fan-out.
  int session_slot = -1;
  int session_tasks = 0;
};

/// The outcome of one measure() call. On failure (ok() == false) `value`
/// and `trace` are meaningless; `cost_seconds` still accounts the simulated
/// time the failed attempt burned.
struct MeasureResult {
  MeasureOutcome outcome = MeasureOutcome::kOk;
  double value = 0.0;          ///< trimmed mean: latency (ms) or energy (mJ)
  std::vector<double> trace;   ///< per-run values iff keep_trace was set
  double cost_seconds = 0.0;   ///< simulated acquisition cost of this attempt

  bool ok() const { return outcome == MeasureOutcome::kOk; }
};

/// A device under measurement: deterministic model + stochastic channel.
class SimulatedDevice {
 public:
  /// Binds a device spec and protocol to a seeded noise stream, optionally
  /// with a fault profile active from the first session.
  SimulatedDevice(DeviceSpec spec, std::uint64_t seed,
                  MeasurementProtocol protocol = {},
                  FaultProfile faults = {});

  const DeviceSpec& spec() const { return model_.spec(); }
  const MeasurementProtocol& protocol() const { return protocol_; }
  const LatencyModel& model() const { return model_; }

  /// Noise-free latency (what a perfect oracle would report).
  double true_latency_ms(const LayerGraph& graph) const;

  /// Noise-free per-inference energy in millijoules.
  double true_energy_mj(const LayerGraph& graph) const;

  /// Starts a new measurement session: draws a fresh session drift factor
  /// (occasionally a "bad" one), resets the intra-session random walk, and
  /// draws the session's fault regime (dropout, stuck clock).
  void begin_session();

  // --- campaign-journal replay hooks (esm/journal.hpp) -------------------
  // Substream measurements never advance the device's sequential stream,
  // so a journaled campaign can fast-forward a fresh same-seed device to
  // any batch boundary by replaying session begins alone — no measurement
  // runs, and every later draw lines up bit-identically.

  /// Replays `n` session begins, consuming exactly the draws the original
  /// sessions consumed.
  void replay_sessions(int n) {
    for (int i = 0; i < n; ++i) begin_session();
  }

  /// Restores the cost accumulator to a journaled absolute value (the
  /// replayed sessions' measurement costs were accounted externally and
  /// cannot be re-derived without re-measuring).
  void restore_measurement_cost(double seconds) { cost_seconds_ = seconds; }

  /// True if the current session drew the pathological drift regime. The
  /// QC step must *discover* this through reference models; it is exposed
  /// for tests and diagnostics only.
  bool session_is_bad() const { return session_is_bad_; }

  /// Installs a fault profile (hwsim/faults.hpp). Per-measurement faults
  /// (timeouts, read errors) apply immediately; the session-level regime
  /// (dropout, stuck clock) is drawn at the next begin_session().
  void set_fault_profile(const FaultProfile& profile);
  const FaultProfile& fault_profile() const { return injector_.profile(); }

  /// The current session's fault regime (tests and diagnostics only, like
  /// session_is_bad(): the pipeline must discover it through outcomes).
  const SessionFaults& session_faults() const { return session_faults_; }

  /// Simulates one full measurement of the graph under `options`: warm-up +
  /// `runs` timed inferences, trimmed mean (the paper's latency value), or
  /// an injected failure. See MeasureOptions for the sequential-vs-substream
  /// contract and MeasureResult for the outcome encoding.
  MeasureResult measure(const LayerGraph& graph,
                        const MeasureOptions& options = {});

  /// The fault decision measure() would make for `options`, without running
  /// anything. Lets a retry planner precompute the attempt schedule (and
  /// charge retry budgets) in deterministic task order before fanning the
  /// actual measurements out in parallel. Requires options.noise for
  /// attempts that will run on a substream.
  MeasureOutcome fault_outcome(const MeasureOptions& options) const;

  /// Adds externally accounted measuring time (substream measurements and
  /// retry backoff are reduced onto the device by the caller in
  /// deterministic order).
  void add_measurement_cost(double seconds) { cost_seconds_ += seconds; }

  /// Simulated seconds spent measuring so far (device + host overhead).
  double measurement_cost_seconds() const { return cost_seconds_; }

  /// Resets the cost accumulator (e.g. between experiment phases).
  void reset_measurement_cost() { cost_seconds_ = 0.0; }

  /// Applies the trimmed-mean protocol to a raw trace.
  static double summarize(const std::vector<double>& trace,
                          double trim_fraction);

 private:
  /// One noisy run drawn from an explicit stream and walk state; shared by
  /// the sequential path (device stream + persistent walk) and the
  /// substream path (local stream + local walk).
  double one_run_with(double true_ms, int run_index, Rng& rng,
                      double& walk_deviation) const;

  /// The full protocol (fault decision, warm-up, runs, trimmed mean) over
  /// an explicit stream and walk state. Does not touch member state.
  MeasureResult run_protocol(const LayerGraph& graph,
                             const MeasureOptions& options, Rng& rng,
                             double& walk_deviation) const;

  /// Substream path: const and thread-safe; cost only returned.
  MeasureResult measure_with_stream(const LayerGraph& graph,
                                    const MeasureOptions& options) const;

  LatencyModel model_;
  EnergyModel energy_;
  MeasurementProtocol protocol_;
  FaultInjector injector_;
  Rng rng_;
  double session_factor_ = 1.0;
  double walk_sigma_ = 0.0;
  double walk_deviation_ = 0.0;
  bool session_is_bad_ = false;
  SessionFaults session_faults_;
  double cost_seconds_ = 0.0;
};

}  // namespace esm
