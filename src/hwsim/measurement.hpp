// Noisy measurement channel over the deterministic latency model.
//
// Reproduces the paper's measurement methodology (§II-C.3, Fig. 4b, Fig. 6):
// each latency value is obtained by running the model `runs` times (default
// 150), discarding the slowest and fastest `trim_fraction` (default 20 %)
// and averaging the middle 60 %. Individual runs are perturbed by clock
// jitter, warm-up slowdown, occasional outlier spikes, and a slowly drifting
// session factor; sessions occasionally go "bad" (sustained thermal/clock
// drift), which is what the reference-model quality-control step detects.
//
// The device also accounts the *simulated wall-clock cost* of measuring
// (per-run latency + host-side overhead), which powers the paper's
// data-acquisition-cost analysis (Fig. 4a).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hwsim/energy_model.hpp"
#include "hwsim/latency_model.hpp"
#include "nn/graph.hpp"

namespace esm {

/// The paper's measurement protocol parameters.
struct MeasurementProtocol {
  int runs = 150;              ///< timed inferences per latency value
  double trim_fraction = 0.2;  ///< fraction discarded at each extreme
  int warmup_runs = 5;         ///< untimed warm-up inferences per model
};

/// One measurement executed on an explicit noise substream: the latency
/// value plus the simulated wall-clock cost it incurred. Costs are
/// returned (not accumulated on the device) so concurrent measurements can
/// be reduced in deterministic index order by the caller.
struct StreamMeasurement {
  double value_ms = 0.0;
  double cost_seconds = 0.0;
};

/// A device under measurement: deterministic model + stochastic channel.
class SimulatedDevice {
 public:
  /// Binds a device spec and protocol to a seeded noise stream.
  SimulatedDevice(DeviceSpec spec, std::uint64_t seed,
                  MeasurementProtocol protocol = {});

  const DeviceSpec& spec() const { return model_.spec(); }
  const MeasurementProtocol& protocol() const { return protocol_; }
  const LatencyModel& model() const { return model_; }

  /// Noise-free latency (what a perfect oracle would report).
  double true_latency_ms(const LayerGraph& graph) const;

  /// Noise-free per-inference energy in millijoules.
  double true_energy_mj(const LayerGraph& graph) const;

  /// Starts a new measurement session: draws a fresh session drift factor
  /// (occasionally a "bad" one) and resets the intra-session random walk.
  void begin_session();

  /// True if the current session drew the pathological drift regime. The
  /// QC step must *discover* this through reference models; it is exposed
  /// for tests and diagnostics only.
  bool session_is_bad() const { return session_is_bad_; }

  /// Simulates one full measurement of the graph: warm-up + `runs` timed
  /// inferences, returning the trimmed mean (the paper's latency value).
  double measure_ms(const LayerGraph& graph);

  /// Per-run latency trace (used for Fig. 4b); advances the session state
  /// and cost accounting exactly like measure_ms.
  std::vector<double> measure_trace_ms(const LayerGraph& graph);

  /// Simulates one full measurement whose noise comes entirely from the
  /// given substream instead of the device's own sequential stream. The
  /// session regime (drift factor, walk sigma drawn by begin_session) is
  /// shared, but the intra-measurement clock walk is local to this call,
  /// so the result depends only on (session state, noise stream) — not on
  /// how many other measurements run concurrently. Const and thread-safe
  /// with respect to other stream measurements in the same session; the
  /// caller adds the returned cost via add_measurement_cost() in
  /// deterministic order.
  StreamMeasurement measure_ms_stream(const LayerGraph& graph,
                                      Rng noise) const;

  /// Adds externally accounted measuring time (see measure_ms_stream).
  void add_measurement_cost(double seconds) { cost_seconds_ += seconds; }

  /// Simulates a power-logger measurement of per-inference energy: the
  /// same warm-up + runs + trimmed-mean protocol and the same noise
  /// channel, applied to the energy model's reading.
  double measure_energy_mj(const LayerGraph& graph);

  /// Simulated seconds spent measuring so far (device + host overhead).
  double measurement_cost_seconds() const { return cost_seconds_; }

  /// Resets the cost accumulator (e.g. between experiment phases).
  void reset_measurement_cost() { cost_seconds_ = 0.0; }

  /// Applies the trimmed-mean protocol to a raw trace.
  static double summarize(const std::vector<double>& trace,
                          double trim_fraction);

 private:
  double one_run_ms(double true_ms, int run_index);

  /// One noisy run drawn from an explicit stream and walk state; shared by
  /// the sequential path (device stream + persistent walk) and the
  /// substream path (local stream + local walk).
  double one_run_with(double true_ms, int run_index, Rng& rng,
                      double& walk_deviation) const;

  LatencyModel model_;
  EnergyModel energy_;
  MeasurementProtocol protocol_;
  Rng rng_;
  double session_factor_ = 1.0;
  double walk_sigma_ = 0.0;
  double walk_deviation_ = 0.0;
  bool session_is_bad_ = false;
  double cost_seconds_ = 0.0;
};

}  // namespace esm
