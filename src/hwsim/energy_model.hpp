// Inference energy model (the paper's other performance characteristic:
// "performance characteristics (e.g., inference latency and energy
// consumption)", §Abstract/§I).
//
// Energy is integrated power over the execution timeline produced by the
// latency model:
//
//   E = sum_layers P_active(layer) * t(layer)  +  P_idle * t_total
//
// where a layer's active power scales between the device's idle draw and
// its board power with the layer's utilization (compute-bound kernels pull
// near-peak power; memory-bound and dispatch-dominated phases much less).
// The same measurement channel (sessions, jitter, outliers) applies, so
// energy datasets need the identical trimmed-mean + QC treatment and the
// same surrogates work unchanged — the ESM pipeline is metric-agnostic.
#pragma once

#include <vector>

#include "hwsim/latency_model.hpp"

namespace esm {

/// Power envelope of a device (defaults are filled per device in
/// energy_envelope_for()).
struct PowerEnvelope {
  double board_power_w = 0.0;  ///< sustained power at full utilization
  double idle_power_w = 0.0;   ///< rail draw while the device idles
  /// Fraction of (board - idle) drawn by a purely memory-bound phase.
  double memory_activity = 0.45;
};

/// The calibrated power envelope of one of the four paper devices.
PowerEnvelope energy_envelope_for(const DeviceSpec& device);

/// Deterministic per-inference energy model layered on LatencyModel.
class EnergyModel {
 public:
  /// Uses the device's default envelope.
  explicit EnergyModel(DeviceSpec device);

  EnergyModel(DeviceSpec device, PowerEnvelope envelope);

  const LatencyModel& latency_model() const { return latency_; }
  const PowerEnvelope& envelope() const { return envelope_; }

  /// Noise-free energy of one inference in millijoules.
  double true_energy_mj(const LayerGraph& graph) const;

  /// Average power over one inference in watts.
  double average_power_w(const LayerGraph& graph) const;

 private:
  LatencyModel latency_;
  PowerEnvelope envelope_;
};

}  // namespace esm
