#include "hwsim/device.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace esm {

const char* device_class_name(DeviceClass c) {
  switch (c) {
    case DeviceClass::kGpu: return "GPU";
    case DeviceClass::kCpu: return "CPU";
    case DeviceClass::kEmbedded: return "embedded";
  }
  return "unknown";
}

DeviceSpec rtx4090_spec() {
  DeviceSpec d;
  d.name = "NVIDIA RTX 4090";
  d.short_name = "rtx4090";
  d.device_class = DeviceClass::kGpu;
  d.peak_gflops = 82'580.0;   // 82.6 TFLOPs fp32
  d.mem_bandwidth_gbs = 1008.0;
  d.base_efficiency = 0.15;   // fp32 batch-1 conv kernels sit far below peak
  d.launch_overhead_us = 2.5;
  d.cache_mb = 72.0;
  d.cache_hot_fraction = 0.85;
  d.channel_granularity = 32;
  d.occupancy_knee_mflops = 60.0;
  d.algo_irregularity = 0.80;
  d.run_noise_cv = 0.012;
  d.outlier_prob = 0.015;
  d.outlier_scale = 1.6;
  d.warmup_amplitude = 0.25;
  d.session_drift_cv = 0.005;
  d.bad_session_prob = 0.08;
  d.bad_session_drift_cv = 0.06;
  d.weight_spill_factor = 3.0;
  d.dvfs_ramp_penalty = 0.55;
  d.dvfs_ramp_tau_ms = 1.5;
  d.host_overhead_ms = 90.0;  // framework dispatch + sync per timed inference
  return d;
}

DeviceSpec rtx3080_maxq_spec() {
  DeviceSpec d;
  d.name = "NVIDIA RTX 3080 Max-Q";
  d.short_name = "rtx3080maxq";
  d.device_class = DeviceClass::kGpu;
  d.peak_gflops = 19'000.0;
  d.mem_bandwidth_gbs = 448.0;
  d.base_efficiency = 0.22;   // power limited, batch-1 fp32
  d.launch_overhead_us = 4.5;
  d.cache_mb = 4.0;
  d.cache_hot_fraction = 0.7;
  d.channel_granularity = 32;
  d.occupancy_knee_mflops = 25.0;
  d.algo_irregularity = 0.85;
  d.run_noise_cv = 0.025;     // boost clocks bounce under power caps
  d.outlier_prob = 0.03;
  d.outlier_scale = 1.8;
  d.warmup_amplitude = 0.35;
  d.session_drift_cv = 0.012;
  d.bad_session_prob = 0.12;  // thermal sessions are common on laptops
  d.bad_session_drift_cv = 0.07;
  d.weight_spill_factor = 3.5;
  d.dvfs_ramp_penalty = 0.60;
  d.dvfs_ramp_tau_ms = 1.2;
  d.host_overhead_ms = 95.0;
  return d;
}

DeviceSpec threadripper_5975wx_spec() {
  DeviceSpec d;
  d.name = "AMD Ryzen Threadripper 5975WX";
  d.short_name = "threadripper";
  d.device_class = DeviceClass::kCpu;
  d.peak_gflops = 3'700.0;   // 32 cores x AVX2 FMA
  d.mem_bandwidth_gbs = 160.0;
  d.base_efficiency = 0.50;
  d.launch_overhead_us = 0.6;  // op-dispatch in the inference runtime
  d.cache_mb = 128.0;          // large L3
  d.cache_hot_fraction = 0.9;
  d.channel_granularity = 8;   // AVX2 lanes
  d.occupancy_knee_mflops = 2.0;
  d.algo_irregularity = 0.45;
  d.run_noise_cv = 0.02;
  d.outlier_prob = 0.02;       // OS scheduling hiccups
  d.outlier_scale = 1.5;
  d.warmup_amplitude = 0.15;
  d.session_drift_cv = 0.008;
  d.bad_session_prob = 0.06;
  d.bad_session_drift_cv = 0.05;
  d.weight_spill_factor = 2.0;
  d.dvfs_ramp_penalty = 0.25;
  d.dvfs_ramp_tau_ms = 5.0;
  d.host_overhead_ms = 30.0;
  return d;
}

DeviceSpec raspberry_pi4_spec() {
  DeviceSpec d;
  d.name = "Raspberry Pi 4";
  d.short_name = "rpi4";
  d.device_class = DeviceClass::kEmbedded;
  d.peak_gflops = 48.0;       // 4 x Cortex-A72 @ 1.5 GHz, NEON
  d.mem_bandwidth_gbs = 4.0;
  d.base_efficiency = 0.5;
  d.launch_overhead_us = 2.0;
  d.cache_mb = 1.0;
  d.cache_hot_fraction = 0.6;
  d.channel_granularity = 4;   // NEON lanes
  d.occupancy_knee_mflops = 0.5;
  d.algo_irregularity = 0.05;  // plain NEON loops, no algorithm zoo
  d.run_noise_cv = 0.03;
  d.outlier_prob = 0.05;       // thermal throttling spikes
  d.outlier_scale = 2.2;
  d.warmup_amplitude = 0.2;
  d.session_drift_cv = 0.012;
  d.bad_session_prob = 0.15;
  d.bad_session_drift_cv = 0.08;
  d.weight_spill_factor = 1.5;
  d.dvfs_ramp_penalty = 0.15;
  d.dvfs_ramp_tau_ms = 400.0;
  d.host_overhead_ms = 15.0;
  return d;
}

std::vector<DeviceSpec> all_device_specs() {
  return {rtx4090_spec(), threadripper_5975wx_spec(), rtx3080_maxq_spec(),
          raspberry_pi4_spec()};
}

DeviceSpec device_by_name(const std::string& short_name) {
  const std::string lower = to_lower(short_name);
  for (const DeviceSpec& d : all_device_specs()) {
    if (d.short_name == lower) return d;
  }
  throw ConfigError("unknown device: " + short_name +
                    " (expected rtx4090, rtx3080maxq, threadripper, rpi4)");
}

}  // namespace esm
