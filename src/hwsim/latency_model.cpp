#include "hwsim/latency_model.hpp"
#include <cstdint>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esm {

LatencyModel::LatencyModel(DeviceSpec spec) : spec_(std::move(spec)) {
  ESM_REQUIRE(spec_.peak_gflops > 0.0, "device peak_gflops must be positive");
  ESM_REQUIRE(spec_.mem_bandwidth_gbs > 0.0,
              "device mem_bandwidth_gbs must be positive");
  ESM_REQUIRE(spec_.base_efficiency > 0.0 && spec_.base_efficiency <= 1.0,
              "device base_efficiency must be in (0, 1]");
  ESM_REQUIRE(spec_.channel_granularity >= 1,
              "channel_granularity must be >= 1");
}

bool LatencyModel::is_elementwise(LayerKind kind) {
  return kind == LayerKind::kBatchNorm || kind == LayerKind::kRelu ||
         kind == LayerKind::kHSwish;
}

bool LatencyModel::can_anchor_fusion(LayerKind kind) {
  return kind == LayerKind::kConv2d || kind == LayerKind::kDepthwiseConv ||
         kind == LayerKind::kFullyConnected || kind == LayerKind::kAdd;
}

double LatencyModel::tail_efficiency(int channels) const {
  const int g = spec_.channel_granularity;
  if (g <= 1) return 1.0;
  const int padded = (channels + g - 1) / g * g;
  return static_cast<double>(channels) / static_cast<double>(padded);
}

double LatencyModel::utilization(const Layer& layer) const {
  // Occupancy saturates with per-kernel work; tiny kernels cannot fill the
  // device. Knee is expressed in MFLOPs.
  const double mflops = layer.flops() / 1e6;
  const double knee = spec_.occupancy_knee_mflops;
  const double occupancy = knee > 0.0 ? mflops / (mflops + knee) : 1.0;
  // Channel-tail quantization on both operand widths of the kernel.
  const double tail =
      0.5 * (tail_efficiency(layer.input.channels) +
             tail_efficiency(layer.output.channels));
  return std::max(0.02, occupancy * tail);
}

double LatencyModel::algorithm_efficiency(const Layer& layer) const {
  // Kernel libraries select different algorithms per conv/FC shape
  // (Winograd vs implicit GEMM vs FFT, tiling variants, ...), so per-shape
  // efficiency is irregular, not smooth, in the shape parameters. We model
  // it as a deterministic hash of the shape key into [1 - amplitude, 1],
  // decorrelated across devices by hashing the device name in. This is the
  // behaviour that makes joint (kernel, expansion) combination counts
  // (FCC) informative where marginal moments (statistical encoding) fail.
  const double amplitude = spec_.algo_irregularity;
  if (amplitude <= 0.0) return 1.0;
  if (layer.kind != LayerKind::kConv2d &&
      layer.kind != LayerKind::kDepthwiseConv &&
      layer.kind != LayerKind::kFullyConnected) {
    return 1.0;
  }
  // FNV-1a over the shape key, platform-stable.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (char c : spec_.short_name) mix(static_cast<std::uint64_t>(c));
  // The key covers operator identity and operand widths; stride/resolution
  // variants of the same operator reuse the same algorithm choice.
  mix(static_cast<std::uint64_t>(layer.kind));
  mix(static_cast<std::uint64_t>(layer.kernel));
  mix(static_cast<std::uint64_t>(layer.groups));
  mix(static_cast<std::uint64_t>(layer.input.channels));
  mix(static_cast<std::uint64_t>(layer.output.channels));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 1.0 - amplitude * unit;
}

double LatencyModel::dvfs_sensitivity(const Layer& layer) const {
  // How strongly a kernel suffers from unboosted clocks. Like algorithm
  // selection, this is shape-specific and irregular in practice (some
  // kernels are latency-bound and track core clocks 1:1, others hide the
  // clock deficit behind memory); a deterministic hash in [0, 1] keyed on
  // the shape (with a different salt than the algorithm draw).
  std::uint64_t h = 0x51ce5ab1e0ddba11ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (char c : spec_.short_name) mix(static_cast<std::uint64_t>(c));
  mix(static_cast<std::uint64_t>(layer.kind));
  mix(static_cast<std::uint64_t>(layer.kernel));
  mix(static_cast<std::uint64_t>(layer.input.channels));
  mix(static_cast<std::uint64_t>(layer.output.channels));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double LatencyModel::compute_ms(const Layer& layer) const {
  const double flops = layer.flops();
  if (flops <= 0.0) return 0.0;
  const double eff = spec_.base_efficiency * utilization(layer) *
                     algorithm_efficiency(layer);
  const double gflops_per_ms = spec_.peak_gflops * eff * 1e6;  // FLOP per ms
  return flops / gflops_per_ms;
}

double LatencyModel::memory_ms(const Layer& layer, const Layer* prev) const {
  double read_bytes = layer.read_bytes();
  // Cache residency: when this layer consumes the tensor the previous kernel
  // just produced, and that tensor fits in the last-level cache, most of it
  // is served without touching DRAM.
  if (prev != nullptr && prev->output == layer.input) {
    const double input_bytes =
        static_cast<double>(layer.input.elements()) * 4.0;
    const double cache_bytes = spec_.cache_mb * 1024.0 * 1024.0;
    if (input_bytes <= cache_bytes) {
      read_bytes -= spec_.cache_hot_fraction * input_bytes;
    }
  }
  const double total_bytes = read_bytes + layer.write_bytes();
  const double bytes_per_ms = spec_.mem_bandwidth_gbs * 1e6;  // bytes per ms
  return total_bytes / bytes_per_ms;
}

LayerCost LatencyModel::layer_cost(const Layer& layer,
                                   const Layer* prev) const {
  LayerCost cost;
  cost.compute_ms = compute_ms(layer);
  cost.memory_ms = memory_ms(layer, prev);
  cost.overhead_ms = spec_.launch_overhead_us / 1000.0;
  return cost;
}

std::vector<LayerCost> LatencyModel::analyze(const LayerGraph& graph) const {
  std::vector<LayerCost> costs;
  costs.reserve(graph.size());
  // Fusion state: true while the current run of element-wise layers can be
  // folded into the most recent anchor kernel.
  bool fusion_open = false;
  const Layer* prev = nullptr;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Layer& layer = graph[i];
    LayerCost cost = layer_cost(layer, prev);
    if (is_elementwise(layer.kind) && fusion_open) {
      cost.fused = true;  // epilogue of the preceding kernel
    } else {
      fusion_open = can_anchor_fusion(layer.kind);
    }
    costs.push_back(cost);
    prev = &layer;
  }
  return costs;
}

double LatencyModel::weight_spill_ms(const LayerGraph& graph) const {
  if (spec_.weight_spill_factor <= 0.0) return 0.0;
  // Steady-state weight working set. The algorithm chosen for a layer
  // determines its weight layout footprint: transform-based convolutions
  // (Winograd / FFT) store pre-transformed filter copies 1-3x the nominal
  // size, tiled layouts pad. The footprint multiplier is keyed off the same
  // per-shape algorithm hash as compute efficiency (fast algorithms trade
  // memory for time), which makes the working set — and hence the spill
  // penalty — depend on the *joint* (kernel, expansion) combination of
  // every block, not on marginal feature statistics.
  double working_set_bytes = 0.0;
  for (const Layer& layer : graph.layers()) {
    const double params = layer.params();
    if (params <= 0.0) continue;
    // Reuse the algorithm draw: more aggressive algorithms (lower
    // efficiency loss) carry larger layout footprints.
    const double algo = algorithm_efficiency(layer);  // in [1 - a, 1]
    const double layout_factor = 1.0 + 5.0 * algo * algo;
    working_set_bytes += params * 4.0 * layout_factor;
  }
  const double cache_bytes = spec_.cache_mb * 1024.0 * 1024.0;
  const double excess = working_set_bytes - cache_bytes;
  if (excess <= 0.0) return 0.0;
  const double bytes_per_ms = spec_.mem_bandwidth_gbs * 1e6;
  return excess * spec_.weight_spill_factor / bytes_per_ms;
}

double LatencyModel::true_latency_ms(const LayerGraph& graph) const {
  const double spill = weight_spill_ms(graph);
  const std::vector<LayerCost> costs = analyze(graph);
  double base = spill;
  for (const LayerCost& cost : costs) base += cost.total_ms();
  if (spec_.dvfs_ramp_penalty <= 0.0) return base;
  // DVFS ramp: an inference that finishes within ~tau runs partly at
  // unboosted clocks. The slowdown is per-kernel and shape-irregular (some
  // kernels track core clocks 1:1, others hide the deficit), so the
  // shallow-network regime is NOT a smooth extrapolation of the deep
  // regime — a latency predictor must see shallow samples to learn it
  // (the corner bins of paper Fig. 11). base*(1 + a*exp(-base/tau)) is
  // monotone in base for a < 2.3, so extra work never speeds a net up.
  const double ramp = std::exp(-base / spec_.dvfs_ramp_tau_ms);
  double extra = spill * spec_.dvfs_ramp_penalty * 0.5 * ramp;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    extra += costs[i].total_ms() * spec_.dvfs_ramp_penalty *
             dvfs_sensitivity(graph[i]) * ramp;
  }
  return base + extra;
}

}  // namespace esm
