// Deterministic roofline latency model.
//
// Computes the noise-free "true" latency of a layer graph on a device:
//
//   t(layer) = max(compute_time, memory_time) + launch_overhead
//
// with three deliberate non-linearities that make whole-network latency
// NON-additive over blocks measured in isolation (this is what the paper's
// lookup-table baseline misses, and what joint-feature encodings capture):
//
//   1. Kernel fusion — batch-norm / activation layers following a conv, FC
//      or add execute as fused epilogues (no dispatch, no extra traffic).
//   2. Cache residency — a layer whose input was just produced and fits in
//      the last-level cache re-fetches only a fraction of it from DRAM, so
//      a block's cost depends on its *predecessor*, not only on itself.
//   3. Utilization — small kernels underutilize the device (occupancy knee)
//      and channel counts that are not multiples of the tile granularity
//      pay a tail-quantization penalty, so the cost of (kernel, expansion)
//      combinations is not the product of per-feature costs.
#pragma once

#include <vector>

#include "hwsim/device.hpp"
#include "nn/graph.hpp"

namespace esm {

/// Per-layer cost breakdown returned by LatencyModel::analyze.
struct LayerCost {
  double compute_ms = 0.0;
  double memory_ms = 0.0;
  double overhead_ms = 0.0;
  bool fused = false;  ///< folded into the previous kernel's epilogue

  double total_ms() const {
    if (fused) return 0.0;
    return (compute_ms > memory_ms ? compute_ms : memory_ms) + overhead_ms;
  }
};

/// Deterministic analytical latency model for one device.
class LatencyModel {
 public:
  explicit LatencyModel(DeviceSpec spec);

  const DeviceSpec& spec() const { return spec_; }

  /// Noise-free end-to-end latency of the graph in milliseconds:
  /// the sum of per-layer costs plus the graph-level weight-spill penalty.
  double true_latency_ms(const LayerGraph& graph) const;

  /// Per-layer cost breakdown (same order as graph.layers()).
  std::vector<LayerCost> analyze(const LayerGraph& graph) const;

  /// Graph-level penalty for streaming the part of the weight working set
  /// that exceeds the last-level cache on every inference (a fourth
  /// non-linearity: it depends on the *total* parameter footprint, so it is
  /// invisible to any additive per-layer model).
  double weight_spill_ms(const LayerGraph& graph) const;

  /// Cost of one layer given its predecessor (nullptr = cold start). Public
  /// so the lookup-table profiler can cost blocks in isolation.
  LayerCost layer_cost(const Layer& layer, const Layer* prev) const;

  /// Fraction of the device the layer keeps busy (occupancy x tail
  /// quantization). Public so the energy model can scale dynamic power
  /// with it.
  double utilization(const Layer& layer) const;

 private:
  double compute_ms(const Layer& layer) const;
  double memory_ms(const Layer& layer, const Layer* prev) const;
  double tail_efficiency(int channels) const;
  double algorithm_efficiency(const Layer& layer) const;
  double dvfs_sensitivity(const Layer& layer) const;
  static bool is_elementwise(LayerKind kind);
  static bool can_anchor_fusion(LayerKind kind);

  DeviceSpec spec_;
};

}  // namespace esm
