#include "hwsim/faults.hpp"

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace esm {
namespace {

/// Substream tag for per-attempt fault draws, derived from the attempt's
/// measurement noise stream without advancing it.
constexpr std::uint64_t kFaultNoiseStream = 0xfa017ab1ull;

double parse_rate(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    ESM_REQUIRE(used == value.size(),
                "fault profile: trailing junk in '" << key << "=" << value
                                                   << "'");
    return v;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    ESM_REQUIRE(false, "fault profile: '" << key << "=" << value
                                          << "' is not a number");
  }
  return 0.0;  // unreachable
}

}  // namespace

const char* measure_outcome_name(MeasureOutcome outcome) {
  switch (outcome) {
    case MeasureOutcome::kOk: return "ok";
    case MeasureOutcome::kTimeout: return "timeout";
    case MeasureOutcome::kDeviceLost: return "device-lost";
    case MeasureOutcome::kReadError: return "read-error";
  }
  return "unknown";
}

bool FaultProfile::any() const {
  return timeout_prob > 0.0 || read_error_prob > 0.0 || dropout_prob > 0.0 ||
         stuck_clock_prob > 0.0;
}

void FaultProfile::validate() const {
  auto rate_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  ESM_REQUIRE(rate_ok(timeout_prob),
              "fault profile: timeout_prob must be in [0, 1]");
  ESM_REQUIRE(rate_ok(read_error_prob),
              "fault profile: read_error_prob must be in [0, 1]");
  ESM_REQUIRE(rate_ok(dropout_prob),
              "fault profile: dropout_prob must be in [0, 1]");
  ESM_REQUIRE(rate_ok(stuck_clock_prob),
              "fault profile: stuck_clock_prob must be in [0, 1]");
  ESM_REQUIRE(timeout_cost_s >= 0.0,
              "fault profile: timeout_cost_s must be >= 0");
  ESM_REQUIRE(stuck_clock_slowdown >= 0.0,
              "fault profile: stuck_clock_slowdown must be >= 0");
}

FaultProfile fault_profile_by_name(const std::string& name) {
  const std::string key = to_lower(name);
  if (key.empty() || key == "none") return {};
  if (key == "flaky") {
    FaultProfile p;
    p.timeout_prob = 0.01;
    p.read_error_prob = 0.03;
    p.dropout_prob = 0.02;
    p.stuck_clock_prob = 0.05;
    return p;
  }
  if (key == "harsh") {
    FaultProfile p;
    p.timeout_prob = 0.05;
    p.read_error_prob = 0.12;
    p.dropout_prob = 0.15;
    p.stuck_clock_prob = 0.20;
    p.stuck_clock_slowdown = 0.4;
    return p;
  }
  ESM_REQUIRE(false, "unknown fault profile '"
                         << name << "' (presets: none, flaky, harsh)");
  return {};  // unreachable
}

FaultProfile parse_fault_profile(const std::string& text) {
  if (text.find('=') == std::string::npos) {
    return fault_profile_by_name(text);
  }
  FaultProfile profile;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string pair = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    ESM_REQUIRE(eq != std::string::npos,
                "fault profile: expected key=value, got '" << pair << "'");
    const std::string key = to_lower(pair.substr(0, eq));
    const double value = parse_rate(key, pair.substr(eq + 1));
    if (key == "timeout_prob") {
      profile.timeout_prob = value;
    } else if (key == "timeout_cost_s") {
      profile.timeout_cost_s = value;
    } else if (key == "read_error_prob") {
      profile.read_error_prob = value;
    } else if (key == "dropout_prob") {
      profile.dropout_prob = value;
    } else if (key == "stuck_clock_prob") {
      profile.stuck_clock_prob = value;
    } else if (key == "stuck_clock_slowdown") {
      profile.stuck_clock_slowdown = value;
    } else {
      ESM_REQUIRE(false,
                  "fault profile: unknown key '"
                      << key
                      << "' (valid: timeout_prob, timeout_cost_s, "
                         "read_error_prob, dropout_prob, stuck_clock_prob, "
                         "stuck_clock_slowdown)");
    }
  }
  profile.validate();
  return profile;
}

FaultInjector::FaultInjector(FaultProfile profile)
    : profile_(profile) {
  profile_.validate();
}

void FaultInjector::set_profile(const FaultProfile& profile) {
  profile.validate();
  profile_ = profile;
}

SessionFaults FaultInjector::begin_session(Rng session_rng) const {
  SessionFaults session;
  if (!profile_.any()) return session;
  session.dropped = session_rng.bernoulli(profile_.dropout_prob);
  // The drop point strikes mid-session: never before any work is done,
  // never so late that it is indistinguishable from a clean session.
  session.drop_point = 0.1 + 0.8 * session_rng.uniform();
  session.stuck = session_rng.bernoulli(profile_.stuck_clock_prob);
  const double severity = 0.5 + 0.5 * session_rng.uniform();
  session.throttle_factor =
      session.stuck ? 1.0 + profile_.stuck_clock_slowdown * severity : 1.0;
  return session;
}

FaultDecision FaultInjector::decide(const SessionFaults& session, int slot,
                                    int tasks, const Rng& noise) const {
  FaultDecision decision;
  if (!profile_.any()) return decision;
  if (session.dropped && slot >= 0 && tasks > 0) {
    const int cut = static_cast<int>(session.drop_point *
                                     static_cast<double>(tasks));
    if (slot >= cut) {
      decision.outcome = MeasureOutcome::kDeviceLost;
      decision.progress = 0.0;
      return decision;
    }
  }
  Rng fault_rng = noise.split(kFaultNoiseStream);
  if (fault_rng.bernoulli(profile_.timeout_prob)) {
    decision.outcome = MeasureOutcome::kTimeout;
    decision.progress = fault_rng.uniform();
    return decision;
  }
  if (fault_rng.bernoulli(profile_.read_error_prob)) {
    decision.outcome = MeasureOutcome::kReadError;
    decision.progress = fault_rng.uniform();
    return decision;
  }
  return decision;
}

}  // namespace esm
