#include "hwsim/measurement.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace esm {
namespace {

/// Substream tag for the session fault regime, derived from the device
/// stream without advancing it (zero-profile sessions stay bit-identical).
constexpr std::uint64_t kSessionFaultStream = 0x5e5510f0ull;

}  // namespace

SimulatedDevice::SimulatedDevice(DeviceSpec spec, std::uint64_t seed,
                                 MeasurementProtocol protocol,
                                 FaultProfile faults)
    : model_(spec),
      energy_(spec),
      protocol_(protocol),
      injector_(faults),
      rng_(seed) {
  ESM_REQUIRE(protocol_.runs >= 1, "measurement protocol needs >= 1 run");
  ESM_REQUIRE(protocol_.trim_fraction >= 0.0 && protocol_.trim_fraction < 0.5,
              "trim_fraction must be in [0, 0.5)");
  begin_session();
}

double SimulatedDevice::true_latency_ms(const LayerGraph& graph) const {
  return model_.true_latency_ms(graph);
}

double SimulatedDevice::true_energy_mj(const LayerGraph& graph) const {
  return energy_.true_energy_mj(graph);
}

void SimulatedDevice::begin_session() {
  const DeviceSpec& d = spec();
  session_is_bad_ = rng_.bernoulli(d.bad_session_prob);
  const double drift_cv =
      session_is_bad_ ? d.bad_session_drift_cv : d.session_drift_cv;
  // Drift is a sustained multiplicative offset; bad sessions are slow
  // (throttled), so their offset is one-sided.
  const double offset = rng_.normal(0.0, drift_cv);
  session_factor_ = 1.0 + (session_is_bad_ ? std::abs(offset) : offset);
  // Clocks hunt around the session set point: a mean-reverting
  // (Ornstein-Uhlenbeck) deviation, much wider in bad sessions.
  walk_sigma_ = session_is_bad_ ? 0.0030 : 0.0006;
  walk_deviation_ = 0.0;
  // The fault regime rides a non-advancing substream: the drift draws above
  // (and every later measurement draw) are independent of the fault profile.
  session_faults_ = injector_.begin_session(rng_.split(kSessionFaultStream));
}

void SimulatedDevice::set_fault_profile(const FaultProfile& profile) {
  injector_.set_profile(profile);
}

double SimulatedDevice::one_run_with(double true_ms, int run_index, Rng& rng,
                                     double& walk_deviation) const {
  const DeviceSpec& d = spec();
  // Mean-reverting intra-session clock deviation (stationary std is about
  // 10x walk_sigma_ at this reversion rate, i.e. ~0.6 % in good sessions).
  walk_deviation = 0.995 * walk_deviation + rng.normal(0.0, walk_sigma_);
  double value = true_ms * session_factor_ * (1.0 + walk_deviation);
  // Warm-up: caches/JIT settle over the first few runs.
  if (run_index < 3) {
    value *= 1.0 + d.warmup_amplitude * std::exp(-run_index);
  }
  // Per-run clock jitter.
  value *= 1.0 + rng.normal(0.0, d.run_noise_cv);
  // Occasional outlier spike (scheduler preemption, throttle event).
  if (rng.bernoulli(d.outlier_prob)) {
    value *= d.outlier_scale * (1.0 + 0.5 * rng.uniform());
  }
  return std::max(value, 1e-6);
}

MeasureResult SimulatedDevice::run_protocol(const LayerGraph& graph,
                                            const MeasureOptions& options,
                                            Rng& rng,
                                            double& walk_deviation) const {
  const DeviceSpec& d = spec();
  // The fault decision is drawn from a non-advancing substream of `rng`
  // BEFORE any measurement draw: surviving measurements see exactly the
  // stream they would see with faults disabled.
  const FaultDecision decision =
      injector_.decide(session_faults_, options.session_slot,
                       options.session_tasks, rng);
  // A stuck clock stretches every inference; the factor is exactly 1.0
  // outside a stuck regime, so the arithmetic below is bit-identical to the
  // fault-free pipeline.
  const double throttle = session_faults_.throttle_factor;
  const double true_ms = model_.true_latency_ms(graph) * throttle;
  const double value_basis = options.quantity == MeasureQuantity::kEnergyMj
                                 ? energy_.true_energy_mj(graph) * throttle
                                 : true_ms;
  const double run_cost_floor_s = (true_ms + d.host_overhead_ms) / 1000.0;

  MeasureResult result;
  if (decision.outcome != MeasureOutcome::kOk) {
    result.outcome = decision.outcome;
    switch (decision.outcome) {
      case MeasureOutcome::kTimeout:
        // The watchdog fires after a fixed simulated deadline.
        result.cost_seconds = injector_.profile().timeout_cost_s;
        break;
      case MeasureOutcome::kDeviceLost:
        // The device was already gone; only host-side setup time is lost.
        result.cost_seconds =
            static_cast<double>(protocol_.warmup_runs) * run_cost_floor_s;
        break;
      case MeasureOutcome::kReadError:
        // Warm-up plus the fraction of timed runs completed before the
        // readback failed.
        result.cost_seconds =
            (static_cast<double>(protocol_.warmup_runs) +
             decision.progress * static_cast<double>(protocol_.runs)) *
            run_cost_floor_s;
        break;
      case MeasureOutcome::kOk:
        break;
    }
    // Advance the stream so a sequential retry on the same device stream
    // sees a fresh fault substream instead of replaying this failure.
    (void)rng.split();
    return result;
  }

  // Warm-up inferences cost time but produce no samples.
  for (int i = 0; i < protocol_.warmup_runs; ++i) {
    result.cost_seconds += run_cost_floor_s;
  }
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(protocol_.runs));
  for (int i = 0; i < protocol_.runs; ++i) {
    const double run = one_run_with(value_basis, i, rng, walk_deviation);
    trace.push_back(run);
    // Latency runs are timed by their own noisy duration; energy readings
    // ride the clock/thermal channel but the device still spends the
    // (throttled) true latency per inference.
    result.cost_seconds += options.quantity == MeasureQuantity::kLatencyMs
                               ? (run + d.host_overhead_ms) / 1000.0
                               : run_cost_floor_s;
  }
  result.value = summarize(trace, protocol_.trim_fraction);
  if (options.keep_trace) result.trace = std::move(trace);
  return result;
}

MeasureResult SimulatedDevice::measure_with_stream(
    const LayerGraph& graph, const MeasureOptions& options) const {
  // The clock walk starts at the session set point for every substream:
  // the measurement depends only on the session state and the stream.
  Rng noise = *options.noise;
  double walk_deviation = 0.0;
  return run_protocol(graph, options, noise, walk_deviation);
}

MeasureResult SimulatedDevice::measure(const LayerGraph& graph,
                                       const MeasureOptions& options) {
  if (options.noise.has_value()) {
    return measure_with_stream(graph, options);
  }
  MeasureResult result = run_protocol(graph, options, rng_, walk_deviation_);
  cost_seconds_ += result.cost_seconds;
  return result;
}

MeasureOutcome SimulatedDevice::fault_outcome(
    const MeasureOptions& options) const {
  const Rng& noise = options.noise.has_value() ? *options.noise : rng_;
  return injector_
      .decide(session_faults_, options.session_slot, options.session_tasks,
              noise)
      .outcome;
}

double SimulatedDevice::summarize(const std::vector<double>& trace,
                                  double trim_fraction) {
  return trimmed_mean(trace, trim_fraction);
}

}  // namespace esm
