#include "hwsim/measurement.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace esm {

SimulatedDevice::SimulatedDevice(DeviceSpec spec, std::uint64_t seed,
                                 MeasurementProtocol protocol)
    : model_(spec), energy_(spec), protocol_(protocol), rng_(seed) {
  ESM_REQUIRE(protocol_.runs >= 1, "measurement protocol needs >= 1 run");
  ESM_REQUIRE(protocol_.trim_fraction >= 0.0 && protocol_.trim_fraction < 0.5,
              "trim_fraction must be in [0, 0.5)");
  begin_session();
}

double SimulatedDevice::true_latency_ms(const LayerGraph& graph) const {
  return model_.true_latency_ms(graph);
}

double SimulatedDevice::true_energy_mj(const LayerGraph& graph) const {
  return energy_.true_energy_mj(graph);
}

void SimulatedDevice::begin_session() {
  const DeviceSpec& d = spec();
  session_is_bad_ = rng_.bernoulli(d.bad_session_prob);
  const double drift_cv =
      session_is_bad_ ? d.bad_session_drift_cv : d.session_drift_cv;
  // Drift is a sustained multiplicative offset; bad sessions are slow
  // (throttled), so their offset is one-sided.
  const double offset = rng_.normal(0.0, drift_cv);
  session_factor_ = 1.0 + (session_is_bad_ ? std::abs(offset) : offset);
  // Clocks hunt around the session set point: a mean-reverting
  // (Ornstein-Uhlenbeck) deviation, much wider in bad sessions.
  walk_sigma_ = session_is_bad_ ? 0.0030 : 0.0006;
  walk_deviation_ = 0.0;
}

double SimulatedDevice::one_run_ms(double true_ms, int run_index) {
  return one_run_with(true_ms, run_index, rng_, walk_deviation_);
}

double SimulatedDevice::one_run_with(double true_ms, int run_index, Rng& rng,
                                     double& walk_deviation) const {
  const DeviceSpec& d = spec();
  // Mean-reverting intra-session clock deviation (stationary std is about
  // 10x walk_sigma_ at this reversion rate, i.e. ~0.6 % in good sessions).
  walk_deviation = 0.995 * walk_deviation + rng.normal(0.0, walk_sigma_);
  double value = true_ms * session_factor_ * (1.0 + walk_deviation);
  // Warm-up: caches/JIT settle over the first few runs.
  if (run_index < 3) {
    value *= 1.0 + d.warmup_amplitude * std::exp(-run_index);
  }
  // Per-run clock jitter.
  value *= 1.0 + rng.normal(0.0, d.run_noise_cv);
  // Occasional outlier spike (scheduler preemption, throttle event).
  if (rng.bernoulli(d.outlier_prob)) {
    value *= d.outlier_scale * (1.0 + 0.5 * rng.uniform());
  }
  return std::max(value, 1e-6);
}

StreamMeasurement SimulatedDevice::measure_ms_stream(const LayerGraph& graph,
                                                     Rng noise) const {
  const double true_ms = model_.true_latency_ms(graph);
  const DeviceSpec& d = spec();
  StreamMeasurement result;
  for (int i = 0; i < protocol_.warmup_runs; ++i) {
    result.cost_seconds += (true_ms + d.host_overhead_ms) / 1000.0;
  }
  // The clock walk starts at the session set point for every substream:
  // the measurement depends only on the session state and `noise`.
  double walk_deviation = 0.0;
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(protocol_.runs));
  for (int i = 0; i < protocol_.runs; ++i) {
    const double run = one_run_with(true_ms, i, noise, walk_deviation);
    trace.push_back(run);
    result.cost_seconds += (run + d.host_overhead_ms) / 1000.0;
  }
  result.value_ms = summarize(trace, protocol_.trim_fraction);
  return result;
}

std::vector<double> SimulatedDevice::measure_trace_ms(
    const LayerGraph& graph) {
  const double true_ms = model_.true_latency_ms(graph);
  const DeviceSpec& d = spec();
  // Warm-up inferences cost time but produce no samples.
  for (int i = 0; i < protocol_.warmup_runs; ++i) {
    cost_seconds_ += (true_ms + d.host_overhead_ms) / 1000.0;
  }
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(protocol_.runs));
  for (int i = 0; i < protocol_.runs; ++i) {
    const double run = one_run_ms(true_ms, i);
    trace.push_back(run);
    cost_seconds_ += (run + d.host_overhead_ms) / 1000.0;
  }
  return trace;
}

double SimulatedDevice::summarize(const std::vector<double>& trace,
                                  double trim_fraction) {
  return trimmed_mean(trace, trim_fraction);
}

double SimulatedDevice::measure_ms(const LayerGraph& graph) {
  return summarize(measure_trace_ms(graph), protocol_.trim_fraction);
}

double SimulatedDevice::measure_energy_mj(const LayerGraph& graph) {
  const double true_mj = energy_.true_energy_mj(graph);
  const double true_ms = model_.true_latency_ms(graph);
  const DeviceSpec& d = spec();
  for (int i = 0; i < protocol_.warmup_runs; ++i) {
    cost_seconds_ += (true_ms + d.host_overhead_ms) / 1000.0;
  }
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(protocol_.runs));
  for (int i = 0; i < protocol_.runs; ++i) {
    // Energy readings ride the same clock/thermal channel: a slow run draws
    // for longer, so the multiplicative noise model carries over.
    trace.push_back(one_run_ms(true_mj, i));
    cost_seconds_ += (true_ms + d.host_overhead_ms) / 1000.0;
  }
  return summarize(trace, protocol_.trim_fraction);
}

}  // namespace esm
