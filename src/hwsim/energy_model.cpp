#include "hwsim/energy_model.hpp"

#include "common/error.hpp"

namespace esm {

PowerEnvelope energy_envelope_for(const DeviceSpec& device) {
  PowerEnvelope e;
  if (device.short_name == "rtx4090") {
    e.board_power_w = 450.0;
    e.idle_power_w = 22.0;
  } else if (device.short_name == "rtx3080maxq") {
    e.board_power_w = 90.0;  // Max-Q power cap
    e.idle_power_w = 9.0;
  } else if (device.short_name == "threadripper") {
    e.board_power_w = 280.0;
    e.idle_power_w = 45.0;
  } else if (device.short_name == "rpi4") {
    e.board_power_w = 7.0;
    e.idle_power_w = 2.7;
    e.memory_activity = 0.6;  // LPDDR4 traffic dominates the tiny SoC
  } else {
    // Unknown device: a generic 100 W accelerator envelope.
    e.board_power_w = 100.0;
    e.idle_power_w = 10.0;
  }
  return e;
}

EnergyModel::EnergyModel(DeviceSpec device)
    : EnergyModel(device, energy_envelope_for(device)) {}

EnergyModel::EnergyModel(DeviceSpec device, PowerEnvelope envelope)
    : latency_(std::move(device)), envelope_(envelope) {
  ESM_REQUIRE(envelope_.board_power_w > envelope_.idle_power_w &&
                  envelope_.idle_power_w >= 0.0,
              "power envelope requires board > idle >= 0");
  ESM_REQUIRE(envelope_.memory_activity > 0.0 &&
                  envelope_.memory_activity <= 1.0,
              "memory_activity must be in (0, 1]");
}

double EnergyModel::true_energy_mj(const LayerGraph& graph) const {
  const double dynamic_range =
      envelope_.board_power_w - envelope_.idle_power_w;
  double energy_mj = 0.0;
  double total_ms = 0.0;
  const std::vector<LayerCost> costs = latency_.analyze(graph);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const LayerCost& cost = costs[i];
    const double t_ms = cost.total_ms();
    if (t_ms <= 0.0) continue;
    total_ms += t_ms;
    // Activity: compute-bound time draws dynamic power proportional to how
    // much of the device the kernel occupies (a tiny dispatch-bound kernel
    // barely moves the rails); memory-bound time draws the memory-system
    // fraction; dispatch overhead draws almost nothing (excluded from the
    // busy window below).
    const double busy_ms =
        cost.compute_ms > cost.memory_ms ? cost.compute_ms : cost.memory_ms;
    const double busy_fraction = busy_ms > 0.0 ? busy_ms / t_ms : 0.0;
    const double activity =
        cost.compute_ms >= cost.memory_ms
            ? 0.15 + 0.85 * latency_.utilization(graph[i])
            : envelope_.memory_activity;
    // P * t: watts * ms == millijoules.
    energy_mj += dynamic_range * activity * busy_fraction * t_ms;
  }
  // Weight streaming is memory activity.
  const double spill_ms = latency_.weight_spill_ms(graph);
  energy_mj += dynamic_range * envelope_.memory_activity * spill_ms;
  total_ms += spill_ms;
  // Idle rail draw for the whole duration.
  energy_mj += envelope_.idle_power_w * total_ms;
  return energy_mj;
}

double EnergyModel::average_power_w(const LayerGraph& graph) const {
  const double t_ms = latency_.true_latency_ms(graph);
  if (t_ms <= 0.0) return envelope_.idle_power_w;
  return true_energy_mj(graph) / t_ms;  // mJ / ms == W
}

}  // namespace esm
