// Deterministic measurement-fault injection for the simulated devices.
//
// Real measurement campaigns on the paper's devices (RTX 4090, Pi 4) are not
// merely noisy: runs hang past a watchdog deadline, the device drops off the
// bus mid-session, readback transports hiccup, and clocks get stuck in a
// sustained throttle regime that session drift alone does not capture. This
// module injects those failure modes into SimulatedDevice so the dataset
// pipeline's fault tolerance (retry/backoff, quarantine, reference-model QC
// escalation — see esm/retry.hpp and esm/dataset_gen.hpp) can be exercised
// and tested deterministically.
//
// Every decision is drawn from Rng substreams (Rng::split(id)) derived from
// the device's seeded streams WITHOUT advancing them, so (a) an all-zero
// profile leaves every existing output bit-identical, (b) enabling faults
// does not perturb the values of measurements that survive, and (c) fault
// schedules are identical at any thread count (the PR-1 invariant).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"

namespace esm {

/// How a single measurement attempt ended. Failures are values, not
/// exceptions: expected run-time conditions per the project conventions.
enum class MeasureOutcome {
  kOk = 0,
  kTimeout,     ///< a timed run exceeded the watchdog deadline
  kDeviceLost,  ///< the device dropped out mid-session
  kReadError,   ///< transient readback/transport error
};

const char* measure_outcome_name(MeasureOutcome outcome);

/// Per-device fault rates. The default (all-zero) profile injects nothing
/// and leaves every measurement bit-identical to a fault-free device.
struct FaultProfile {
  double timeout_prob = 0.0;     ///< per-measurement probability of a hang
  double timeout_cost_s = 5.0;   ///< simulated seconds lost per timeout
  double read_error_prob = 0.0;  ///< per-measurement transient read error
  double dropout_prob = 0.0;     ///< per-session mid-session device dropout
  double stuck_clock_prob = 0.0; ///< per-session sustained throttle regime
  double stuck_clock_slowdown = 0.25;  ///< max extra latency while stuck

  /// True if any fault can ever fire.
  bool any() const;

  /// Throws esm::ConfigError if any rate is outside [0, 1] or any cost or
  /// slowdown is negative.
  void validate() const;
};

/// Named presets: "none" (all-zero), "flaky" (occasional transient
/// failures), "harsh" (frequent failures, dropouts, throttle regimes).
/// Throws esm::ConfigError for unknown names, listing the valid ones.
FaultProfile fault_profile_by_name(const std::string& name);

/// Parses a profile from a preset name or comma-separated key=value pairs
/// over the FaultProfile fields, e.g. "read_error_prob=0.05,dropout_prob=0.1".
/// An empty string means "none". The result is validated.
FaultProfile parse_fault_profile(const std::string& text);

/// The fault regime of one device session, drawn once at begin_session().
struct SessionFaults {
  bool dropped = false;     ///< the device drops out during this session
  double drop_point = 1.0;  ///< fan-out fraction after which attempts fail
  bool stuck = false;       ///< sustained stuck-clock/throttle regime
  double throttle_factor = 1.0;  ///< latency multiplier while stuck
};

/// The decision for one measurement attempt. Outcomes depend only on the
/// session regime and the attempt's noise substream — never on measured
/// values, execution order, or thread count — so a retry planner can
/// precompute the schedule without running any measurement.
struct FaultDecision {
  MeasureOutcome outcome = MeasureOutcome::kOk;
  double progress = 1.0;  ///< fraction of timed runs completed before failing
};

/// Draws session regimes and per-attempt decisions from explicit substreams.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultProfile profile);

  const FaultProfile& profile() const { return profile_; }
  void set_profile(const FaultProfile& profile);

  /// Draws the session fault regime. `session_rng` must be a substream
  /// derived from the device stream via Rng::split(id), so enabling faults
  /// does not perturb the device's other session draws.
  SessionFaults begin_session(Rng session_rng) const;

  /// Decides one measurement attempt. `slot`/`tasks` locate the attempt in
  /// the session fan-out (slot < 0: not part of a fan-out; dropouts do not
  /// apply). The fault substream is derived from `noise` without advancing
  /// it, so the attempt's measurement noise is unaffected.
  FaultDecision decide(const SessionFaults& session, int slot, int tasks,
                       const Rng& noise) const;

 private:
  FaultProfile profile_;
};

}  // namespace esm
