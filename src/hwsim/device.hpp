// Simulated target devices.
//
// The paper measures latency on four physical devices (RTX 4090, RTX 3080
// Max-Q, AMD Threadripper 5975WX, Raspberry Pi 4). This module replaces them
// with calibrated analytical device specifications consumed by the roofline
// latency model (latency_model.hpp) and the noisy measurement channel
// (measurement.hpp). The specs are calibrated from public datasheet numbers
// (peak FLOP/s, memory bandwidth, cache size, dispatch overhead) so that
// relative behaviour — GPU launch-overhead sensitivity for deep many-kernel
// nets, bandwidth limits on the Pi, thermal jitter on the power-limited
// laptop GPU — matches the qualitative traits the paper's experiments rely
// on. Absolute milliseconds are NOT claimed to match the authors' testbed.
#pragma once

#include <string>
#include <vector>

namespace esm {

/// Broad device class, mirroring the paper's "GPU, CPU or embedded" input.
enum class DeviceClass { kGpu, kCpu, kEmbedded };

const char* device_class_name(DeviceClass c);

/// Analytical description of one execution target.
struct DeviceSpec {
  std::string name;        ///< full marketing name
  std::string short_name;  ///< key used on the command line ("rtx4090", ...)
  DeviceClass device_class = DeviceClass::kGpu;

  // --- roofline parameters ---
  double peak_gflops = 0.0;        ///< fp32 peak compute
  double mem_bandwidth_gbs = 0.0;  ///< sustainable DRAM bandwidth
  double base_efficiency = 0.5;    ///< fraction of peak a large dense kernel hits
  double launch_overhead_us = 0.0; ///< per-kernel dispatch / loop overhead
  double cache_mb = 0.0;           ///< last-level cache visible to reuse
  double cache_hot_fraction = 0.8; ///< fraction of a cache-resident input not re-fetched
  int channel_granularity = 1;     ///< channel tiling width (warp/SIMD tail effects)
  double occupancy_knee_mflops = 0.0; ///< kernel work (MFLOP) at 50 % utilization
  /// Amplitude of shape-specific algorithm-selection cliffs. Kernel
  /// libraries (cuDNN et al.) pick different algorithms per conv shape, so
  /// per-shape efficiency is irregular rather than smooth; each distinct
  /// (kind, kernel, stride, channels, resolution) shape gets a deterministic
  /// efficiency in [1 - amplitude, 1]. Large on GPUs with rich kernel
  /// libraries, small on simple embedded runtimes.
  double algo_irregularity = 0.0;
  /// DRAM inefficiency factor for streaming the weight working set that
  /// exceeds the last-level cache in steady-state batch-1 inference.
  /// Scattered weight tensors stream far below peak bandwidth, so the
  /// spilled bytes are charged at bandwidth / weight_spill_factor. Networks
  /// whose parameters fit in cache pay nothing (a kink that additive
  /// per-layer lookup tables cannot see: a single probed layer always
  /// fits).
  double weight_spill_factor = 0.0;
  /// DVFS ramp behaviour: clocks need time to boost, so an inference that
  /// finishes within ~dvfs_ramp_tau_ms runs partly at unboosted clocks and
  /// pays up to dvfs_ramp_penalty extra latency. The penalty decays
  /// exponentially with the inference duration — a *corner-regime* effect
  /// that shallow architectures exhibit and deep ones do not, which is why
  /// depth-balanced sampling matters (paper Fig. 11).
  double dvfs_ramp_penalty = 0.0;
  double dvfs_ramp_tau_ms = 1.0;

  // --- measurement-channel parameters ---
  double run_noise_cv = 0.01;      ///< per-run multiplicative noise (clock jitter)
  double outlier_prob = 0.0;       ///< probability a run is an outlier spike
  double outlier_scale = 1.5;      ///< multiplicative size of an outlier spike
  double warmup_amplitude = 0.1;   ///< extra slowdown on the first runs
  double session_drift_cv = 0.01;  ///< per-session multiplicative offset
  double bad_session_prob = 0.0;   ///< probability a session drifts badly
  double bad_session_drift_cv = 0.06; ///< drift spread in a bad session
  double host_overhead_ms = 0.0;   ///< per-run host-side cost (framework, sync)
};

/// NVIDIA RTX 4090 (desktop GPU; the paper's primary device).
DeviceSpec rtx4090_spec();

/// NVIDIA RTX 3080 Max-Q (power-limited laptop GPU; noisier clocks).
DeviceSpec rtx3080_maxq_spec();

/// AMD Ryzen Threadripper 5975WX (32-core workstation CPU).
DeviceSpec threadripper_5975wx_spec();

/// Raspberry Pi 4 (embedded quad-A72; bandwidth-starved, throttles).
DeviceSpec raspberry_pi4_spec();

/// All four paper devices, in the paper's order.
std::vector<DeviceSpec> all_device_specs();

/// Looks a device up by short_name (case-insensitive); throws ConfigError.
DeviceSpec device_by_name(const std::string& short_name);

}  // namespace esm
