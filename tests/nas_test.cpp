// Unit tests for src/nas: the synthetic accuracy proxy, Pareto utilities,
// and the latency-constrained evolutionary search.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "hwsim/measurement.hpp"
#include "nas/accuracy_proxy.hpp"
#include "nas/pareto.hpp"
#include "nas/search.hpp"
#include "nets/builder.hpp"
#include "nets/sampler.hpp"
#include "surrogate/flops_proxy.hpp"

namespace esm {
namespace {

ArchConfig uniform_arch(const SupernetSpec& spec, int depth, int kernel,
                        double expansion = 1.0) {
  ArchConfig arch;
  arch.kind = spec.kind;
  for (int u = 0; u < spec.num_units; ++u) {
    UnitConfig unit;
    for (int b = 0; b < depth; ++b) unit.blocks.push_back({kernel, expansion});
    arch.units.push_back(unit);
  }
  return arch;
}

/// Oracle predictor backed by the deterministic latency model.
class OraclePredictor final : public LatencyPredictor {
 public:
  OraclePredictor(SupernetSpec spec, DeviceSpec device)
      : spec_(std::move(spec)), model_(std::move(device)) {}
  double predict_ms(const ArchConfig& arch) const override {
    return model_.true_latency_ms(build_graph(spec_, arch));
  }
  std::string name() const override { return "oracle"; }

 private:
  SupernetSpec spec_;
  LatencyModel model_;
};

// -------------------------------------------------------- accuracy proxy

TEST(AccuracyProxyTest, DeterministicPerArchitecture) {
  const SupernetSpec spec = resnet_spec();
  const AccuracyProxy proxy(spec);
  const ArchConfig arch = uniform_arch(spec, 3, 5);
  EXPECT_DOUBLE_EQ(proxy.top5_accuracy(arch), proxy.top5_accuracy(arch));
}

TEST(AccuracyProxyTest, InPlausibleRange) {
  const SupernetSpec spec = resnet_spec();
  const AccuracyProxy proxy(spec);
  Rng rng(1);
  RandomSampler sampler(spec);
  for (int i = 0; i < 100; ++i) {
    const double acc = proxy.top5_accuracy(sampler.sample(rng));
    EXPECT_GT(acc, 0.85);
    EXPECT_LT(acc, 0.97);
  }
}

TEST(AccuracyProxyTest, BiggerModelsAreMoreAccurateOnAverage) {
  const SupernetSpec spec = resnet_spec();
  const AccuracyProxy proxy(spec);
  const double small = proxy.top5_accuracy(uniform_arch(spec, 1, 3, 0.5));
  const double large = proxy.top5_accuracy(uniform_arch(spec, 7, 7, 1.0));
  EXPECT_GT(large, small);
}

TEST(AccuracyProxyTest, ResidualVariesBetweenArchitectures) {
  // Two architectures with identical FLOPs (permuted units) still differ.
  const SupernetSpec spec = resnet_spec();
  const AccuracyProxy proxy(spec);
  ArchConfig a = uniform_arch(spec, 3, 5);
  ArchConfig b = a;
  b.units[0].blocks[0].kernel = 3;
  b.units[0].blocks[1].kernel = 7;
  a.units[0].blocks[0].kernel = 7;
  a.units[0].blocks[1].kernel = 3;
  EXPECT_NE(proxy.top5_accuracy(a), proxy.top5_accuracy(b));
}

TEST(AccuracyProxyTest, SeedChangesResidualField) {
  const SupernetSpec spec = resnet_spec();
  const AccuracyProxy p1(spec, 1), p2(spec, 2);
  const ArchConfig arch = uniform_arch(spec, 3, 5);
  EXPECT_NE(p1.top5_accuracy(arch), p2.top5_accuracy(arch));
}

// ---------------------------------------------------------------- pareto

TEST(ParetoTest, FrontOnHandcraftedPoints) {
  //   cost:  1    2    3    4
  //   value: 5    4    6    6
  // Front: index 0 (1,5) and index 2 (3,6). (2,4) dominated by (1,5);
  // (4,6) dominated by (3,6).
  const std::vector<double> cost{1, 2, 3, 4};
  const std::vector<double> value{5, 4, 6, 6};
  const auto front = pareto_front(cost, value);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 2}));
}

TEST(ParetoTest, SinglePointIsItsOwnFront) {
  const std::vector<double> cost{1.0};
  const std::vector<double> value{1.0};
  EXPECT_EQ(pareto_front(cost, value).size(), 1u);
}

TEST(ParetoTest, MonotoneChainAllOnFront) {
  const std::vector<double> cost{1, 2, 3};
  const std::vector<double> value{1, 2, 3};
  EXPECT_EQ(pareto_front(cost, value).size(), 3u);
}

TEST(ParetoTest, FrontPointsAreMutuallyNonDominated) {
  Rng rng(2);
  std::vector<double> cost(200), value(200);
  for (int i = 0; i < 200; ++i) {
    cost[static_cast<std::size_t>(i)] = rng.uniform();
    value[static_cast<std::size_t>(i)] = rng.uniform();
  }
  const auto front = pareto_front(cost, value);
  for (std::size_t a : front) {
    for (std::size_t b : front) {
      if (a == b) continue;
      const bool dominates = cost[b] <= cost[a] && value[b] >= value[a] &&
                             (cost[b] < cost[a] || value[b] > value[a]);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(ParetoTest, JaccardBasics) {
  EXPECT_DOUBLE_EQ(index_jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(index_jaccard({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(index_jaccard({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(index_jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(ParetoTest, RegretZeroWhenFrontsMatch) {
  const std::vector<double> cost{1, 2, 3};
  const std::vector<double> value{1, 2, 3};
  const auto front = pareto_front(cost, value);
  EXPECT_DOUBLE_EQ(pareto_regret(cost, value, front, front), 0.0);
}

TEST(ParetoTest, RegretPositiveWhenSelectionMissesBest) {
  const std::vector<double> cost{1, 1, 2};
  const std::vector<double> value{5, 3, 6};
  const std::vector<std::size_t> truth{0, 2};
  const std::vector<std::size_t> selected{1};  // picked the weak point
  EXPECT_GT(pareto_regret(cost, value, truth, selected), 0.0);
}

// ---------------------------------------------------------------- search

TEST(SearchTest, ValidatesConfig) {
  SearchConfig cfg;
  cfg.latency_limit_ms = 0.0;
  EXPECT_THROW(EvolutionarySearch(resnet_spec(), cfg), ConfigError);
  cfg.latency_limit_ms = 1.0;
  cfg.parents = 100;
  cfg.population = 10;
  EXPECT_THROW(EvolutionarySearch(resnet_spec(), cfg), ConfigError);
}

TEST(SearchTest, MutationStaysInSpace) {
  const SupernetSpec spec = resnet_spec();
  SearchConfig cfg;
  cfg.latency_limit_ms = 5.0;
  EvolutionarySearch search(spec, cfg);
  Rng rng(3);
  RandomSampler sampler(spec);
  for (int i = 0; i < 100; ++i) {
    ArchConfig arch = sampler.sample(rng);
    search.mutate(arch, rng);
    EXPECT_TRUE(spec.contains(arch));
  }
}

TEST(SearchTest, MutationStaysInDenseNetSpace) {
  const SupernetSpec spec = densenet_spec();
  SearchConfig cfg;
  cfg.latency_limit_ms = 5.0;
  EvolutionarySearch search(spec, cfg);
  Rng rng(4);
  RandomSampler sampler(spec);
  for (int i = 0; i < 100; ++i) {
    ArchConfig arch = sampler.sample(rng);
    search.mutate(arch, rng);
    EXPECT_TRUE(spec.contains(arch)) << arch.to_string();
  }
}

TEST(SearchTest, CrossoverMixesParents) {
  const SupernetSpec spec = resnet_spec();
  SearchConfig cfg;
  cfg.latency_limit_ms = 5.0;
  EvolutionarySearch search(spec, cfg);
  Rng rng(5);
  const ArchConfig a = uniform_arch(spec, 1, 3, 0.5);
  const ArchConfig b = uniform_arch(spec, 7, 7, 1.0);
  const ArchConfig child = search.crossover(a, b, rng);
  EXPECT_TRUE(spec.contains(child));
  for (const UnitConfig& u : child.units) {
    EXPECT_TRUE(u == a.units[0] || u == b.units[0]);
  }
}

TEST(SearchTest, FindsFeasibleSolutionUnderLooseLimit) {
  const SupernetSpec spec = resnet_spec();
  const OraclePredictor oracle(spec, rtx4090_spec());
  const AccuracyProxy proxy(spec);
  // A loose limit: the median random model qualifies.
  SearchConfig cfg;
  cfg.population = 24;
  cfg.generations = 8;
  cfg.parents = 8;
  cfg.latency_limit_ms =
      oracle.predict_ms(uniform_arch(spec, 4, 5, 2.0 / 3.0));
  cfg.seed = 6;
  EvolutionarySearch search(spec, cfg);
  const SearchResult result = search.run(oracle, proxy);
  EXPECT_TRUE(result.found_feasible);
  EXPECT_LE(result.best.predicted_latency_ms, cfg.latency_limit_ms);
  EXPECT_GT(result.evaluations, cfg.population);
}

TEST(SearchTest, BeatsRandomSamplingUnderConstraint) {
  const SupernetSpec spec = resnet_spec();
  const OraclePredictor oracle(spec, rtx4090_spec());
  const AccuracyProxy proxy(spec);
  SearchConfig cfg;
  cfg.population = 32;
  cfg.generations = 12;
  cfg.parents = 8;
  cfg.latency_limit_ms = oracle.predict_ms(uniform_arch(spec, 4, 5, 1.0));
  cfg.seed = 7;
  EvolutionarySearch search(spec, cfg);
  const SearchResult result = search.run(oracle, proxy);
  ASSERT_TRUE(result.found_feasible);

  // Best feasible random sample with the same evaluation budget.
  Rng rng(8);
  RandomSampler sampler(spec);
  double best_random = 0.0;
  for (std::size_t i = 0; i < result.evaluations; ++i) {
    const ArchConfig arch = sampler.sample(rng);
    if (oracle.predict_ms(arch) <= cfg.latency_limit_ms) {
      best_random = std::max(best_random, proxy.top5_accuracy(arch));
    }
  }
  EXPECT_GE(result.best.proxy_accuracy, best_random - 0.002);
}

TEST(SearchTest, DeterministicUnderSeed) {
  const SupernetSpec spec = mobilenet_v3_spec();
  const OraclePredictor oracle(spec, rtx4090_spec());
  const AccuracyProxy proxy(spec);
  SearchConfig cfg;
  cfg.population = 16;
  cfg.generations = 4;
  cfg.parents = 4;
  cfg.latency_limit_ms = 10.0;
  cfg.seed = 9;
  EvolutionarySearch search(spec, cfg);
  const SearchResult a = search.run(oracle, proxy);
  const SearchResult b = search.run(oracle, proxy);
  EXPECT_EQ(a.best.arch, b.best.arch);
}

}  // namespace
}  // namespace esm
