// Unit tests for src/hwsim: device specs, the roofline latency model and its
// non-linearities (fusion, cache residency, occupancy, irregular algorithm
// efficiency, weight spill), and the noisy measurement protocol.
#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "hwsim/device.hpp"
#include "hwsim/energy_model.hpp"
#include "hwsim/latency_model.hpp"
#include "hwsim/measurement.hpp"
#include "nets/builder.hpp"
#include "nets/sampler.hpp"

namespace esm {
namespace {

ArchConfig uniform_arch(const SupernetSpec& spec, int depth, int kernel,
                        double expansion = 1.0) {
  ArchConfig arch;
  arch.kind = spec.kind;
  for (int u = 0; u < spec.num_units; ++u) {
    UnitConfig unit;
    for (int b = 0; b < depth; ++b) unit.blocks.push_back({kernel, expansion});
    arch.units.push_back(unit);
  }
  return arch;
}

// -------------------------------------------------------------- devices

TEST(DeviceTest, AllFourPaperDevicesExist) {
  const auto devices = all_device_specs();
  ASSERT_EQ(devices.size(), 4u);
  EXPECT_EQ(devices[0].short_name, "rtx4090");
  EXPECT_EQ(devices[1].short_name, "threadripper");
  EXPECT_EQ(devices[2].short_name, "rtx3080maxq");
  EXPECT_EQ(devices[3].short_name, "rpi4");
}

TEST(DeviceTest, LookupByNameCaseInsensitive) {
  EXPECT_EQ(device_by_name("RTX4090").name, "NVIDIA RTX 4090");
  EXPECT_EQ(device_by_name("rpi4").device_class, DeviceClass::kEmbedded);
  EXPECT_THROW(device_by_name("tpu"), ConfigError);
}

TEST(DeviceTest, ClassNames) {
  EXPECT_STREQ(device_class_name(DeviceClass::kGpu), "GPU");
  EXPECT_STREQ(device_class_name(DeviceClass::kCpu), "CPU");
  EXPECT_STREQ(device_class_name(DeviceClass::kEmbedded), "embedded");
}

TEST(DeviceTest, SpecsAreInternallyConsistent) {
  for (const DeviceSpec& d : all_device_specs()) {
    EXPECT_GT(d.peak_gflops, 0.0) << d.short_name;
    EXPECT_GT(d.mem_bandwidth_gbs, 0.0) << d.short_name;
    EXPECT_GT(d.base_efficiency, 0.0) << d.short_name;
    EXPECT_LE(d.base_efficiency, 1.0) << d.short_name;
    EXPECT_GE(d.outlier_prob, 0.0) << d.short_name;
    EXPECT_LE(d.outlier_prob, 1.0) << d.short_name;
    EXPECT_GE(d.channel_granularity, 1) << d.short_name;
  }
}

// -------------------------------------------------------- latency model

TEST(LatencyModelTest, PositiveLatencyForAllSpacesAndDevices) {
  Rng rng(1);
  for (const DeviceSpec& dspec : all_device_specs()) {
    LatencyModel model(dspec);
    for (const SupernetSpec& spec :
         {resnet_spec(), mobilenet_v3_spec(), densenet_spec()}) {
      RandomSampler sampler(spec);
      for (int i = 0; i < 10; ++i) {
        const double ms = model.true_latency_ms(
            build_graph(spec, sampler.sample(rng)));
        EXPECT_GT(ms, 0.0) << spec.name << " on " << dspec.short_name;
        EXPECT_TRUE(std::isfinite(ms));
      }
    }
  }
}

TEST(LatencyModelTest, DeterministicForSameGraph) {
  const SupernetSpec spec = resnet_spec();
  LatencyModel model(rtx4090_spec());
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 3, 5));
  EXPECT_DOUBLE_EQ(model.true_latency_ms(g), model.true_latency_ms(g));
}

TEST(LatencyModelTest, DeeperIsSlower) {
  const SupernetSpec spec = resnet_spec();
  for (const DeviceSpec& dspec : all_device_specs()) {
    LatencyModel model(dspec);
    const double shallow =
        model.true_latency_ms(build_graph(spec, uniform_arch(spec, 1, 3)));
    const double deep =
        model.true_latency_ms(build_graph(spec, uniform_arch(spec, 7, 3)));
    EXPECT_GT(deep, shallow) << dspec.short_name;
  }
}

TEST(LatencyModelTest, BiggerExpansionIsSlower) {
  const SupernetSpec spec = resnet_spec();
  LatencyModel model(rtx4090_spec());
  const double small = model.true_latency_ms(
      build_graph(spec, uniform_arch(spec, 4, 5, 0.5)));
  const double large = model.true_latency_ms(
      build_graph(spec, uniform_arch(spec, 4, 5, 1.0)));
  EXPECT_GT(large, small);
}

TEST(LatencyModelTest, RelativeDeviceSpeedOrdering) {
  // The desktop GPU must be the fastest and the Pi the slowest by a wide
  // margin on the same network.
  const SupernetSpec spec = resnet_spec();
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 4, 5));
  const double t4090 = LatencyModel(rtx4090_spec()).true_latency_ms(g);
  const double t3080 = LatencyModel(rtx3080_maxq_spec()).true_latency_ms(g);
  const double tcpu =
      LatencyModel(threadripper_5975wx_spec()).true_latency_ms(g);
  const double tpi = LatencyModel(raspberry_pi4_spec()).true_latency_ms(g);
  EXPECT_LT(t4090, t3080);
  EXPECT_LT(t3080, tcpu);
  EXPECT_LT(tcpu, tpi);
  EXPECT_GT(tpi, t4090 * 50);
}

TEST(LatencyModelTest, ElementwiseLayersFuseAfterConv) {
  const SupernetSpec spec = resnet_spec();
  LatencyModel model(rtx4090_spec());
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 2, 3));
  const auto costs = model.analyze(g);
  ASSERT_EQ(costs.size(), g.size());
  std::size_t fused = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (costs[i].fused) {
      ++fused;
      EXPECT_DOUBLE_EQ(costs[i].total_ms(), 0.0);
      // Fused layers are element-wise by construction.
      const LayerKind k = g[i].kind;
      EXPECT_TRUE(k == LayerKind::kBatchNorm || k == LayerKind::kRelu ||
                  k == LayerKind::kHSwish);
    }
  }
  EXPECT_GT(fused, g.size() / 3);  // most bn/relu layers fuse
}

TEST(LatencyModelTest, DenseNetPostConcatBatchNormDoesNotFuse) {
  const SupernetSpec spec = densenet_spec();
  LatencyModel model(rtx4090_spec());
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 3, 3));
  const auto costs = model.analyze(g);
  for (std::size_t i = 1; i < g.size(); ++i) {
    if (g[i].kind == LayerKind::kBatchNorm &&
        g[i - 1].kind == LayerKind::kConcat) {
      EXPECT_FALSE(costs[i].fused) << "bn after concat must be a real kernel";
    }
  }
}

TEST(LatencyModelTest, CacheResidencyDiscountsWarmInput) {
  // A layer consuming its predecessor's output is cheaper than the same
  // layer measured cold, when the tensor fits in cache.
  LatencyModel model(rtx4090_spec());
  Layer producer;
  producer.kind = LayerKind::kConv2d;
  producer.name = "p";
  producer.input = {64, 56, 56};
  producer.output = {64, 56, 56};
  producer.kernel = 1;
  Layer consumer = producer;
  consumer.name = "c";
  const LayerCost warm = model.layer_cost(consumer, &producer);
  const LayerCost cold = model.layer_cost(consumer, nullptr);
  EXPECT_LT(warm.memory_ms, cold.memory_ms);
  EXPECT_DOUBLE_EQ(warm.compute_ms, cold.compute_ms);
}

TEST(LatencyModelTest, WeightSpillKinksAtCache) {
  // MobileNetV3 weights fit the 4090's cache (no spill); max-size ResNet
  // weights do not.
  LatencyModel model(rtx4090_spec());
  const SupernetSpec mb = mobilenet_v3_spec();
  EXPECT_DOUBLE_EQ(
      model.weight_spill_ms(build_graph(mb, uniform_arch(mb, 2, 3, 0.5))),
      0.0);
  const SupernetSpec rn = resnet_spec();
  EXPECT_GT(
      model.weight_spill_ms(build_graph(rn, uniform_arch(rn, 7, 7, 1.0))),
      0.0);
}

TEST(LatencyModelTest, WeightSpillGrowsWithParams) {
  LatencyModel model(rtx4090_spec());
  const SupernetSpec rn = resnet_spec();
  const double small =
      model.weight_spill_ms(build_graph(rn, uniform_arch(rn, 4, 3, 1.0)));
  const double large =
      model.weight_spill_ms(build_graph(rn, uniform_arch(rn, 7, 7, 1.0)));
  EXPECT_GT(large, small);
}

TEST(LatencyModelTest, TrueLatencyIncludesSpillAndRampPenalty) {
  LatencyModel model(rtx4090_spec());
  const SupernetSpec rn = resnet_spec();
  const LayerGraph g = build_graph(rn, uniform_arch(rn, 7, 7, 1.0));
  double layer_sum = 0.0;
  for (const LayerCost& c : model.analyze(g)) layer_sum += c.total_ms();
  const double base = layer_sum + model.weight_spill_ms(g);
  const double total = model.true_latency_ms(g);
  // Total = base + DVFS ramp extra, bounded by the ramp penalty.
  EXPECT_GE(total, base);
  EXPECT_LE(total, base * (1.0 + model.spec().dvfs_ramp_penalty) + 1e-9);
}

TEST(LatencyModelTest, DvfsRampPenalizesShortInferencesMore) {
  // Relative ramp penalty must shrink as inferences get longer.
  LatencyModel model(rtx4090_spec());
  DeviceSpec no_ramp = rtx4090_spec();
  no_ramp.dvfs_ramp_penalty = 0.0;
  LatencyModel base_model(no_ramp);
  const SupernetSpec rn = resnet_spec();
  const LayerGraph shallow = build_graph(rn, uniform_arch(rn, 1, 3, 0.5));
  const LayerGraph deep = build_graph(rn, uniform_arch(rn, 7, 7, 1.0));
  const double shallow_ratio = model.true_latency_ms(shallow) /
                               base_model.true_latency_ms(shallow);
  const double deep_ratio =
      model.true_latency_ms(deep) / base_model.true_latency_ms(deep);
  EXPECT_GT(shallow_ratio, deep_ratio + 0.02);
  EXPECT_GT(shallow_ratio, 1.02);
  EXPECT_LT(deep_ratio, 1.05);
}

TEST(LatencyModelTest, RejectsInvalidSpec) {
  DeviceSpec bad = rtx4090_spec();
  bad.peak_gflops = 0.0;
  EXPECT_THROW(LatencyModel{bad}, ConfigError);
  bad = rtx4090_spec();
  bad.base_efficiency = 1.5;
  EXPECT_THROW(LatencyModel{bad}, ConfigError);
}

// --------------------------------------------------------------- energy

TEST(EnergyModelTest, PositiveAndDeterministic) {
  const SupernetSpec spec = resnet_spec();
  for (const DeviceSpec& dspec : all_device_specs()) {
    EnergyModel model(dspec);
    const LayerGraph g = build_graph(spec, uniform_arch(spec, 3, 5));
    const double mj = model.true_energy_mj(g);
    EXPECT_GT(mj, 0.0) << dspec.short_name;
    EXPECT_DOUBLE_EQ(mj, model.true_energy_mj(g));
  }
}

TEST(EnergyModelTest, AveragePowerWithinEnvelope) {
  const SupernetSpec spec = resnet_spec();
  for (const DeviceSpec& dspec : all_device_specs()) {
    EnergyModel model(dspec);
    const PowerEnvelope& env = model.envelope();
    const LayerGraph g = build_graph(spec, uniform_arch(spec, 4, 5));
    const double watts = model.average_power_w(g);
    EXPECT_GE(watts, env.idle_power_w) << dspec.short_name;
    EXPECT_LE(watts, env.board_power_w) << dspec.short_name;
  }
}

TEST(EnergyModelTest, DeeperMeansMoreEnergy) {
  const SupernetSpec spec = resnet_spec();
  EnergyModel model(rtx4090_spec());
  const double small =
      model.true_energy_mj(build_graph(spec, uniform_arch(spec, 1, 3)));
  const double large =
      model.true_energy_mj(build_graph(spec, uniform_arch(spec, 7, 7)));
  EXPECT_GT(large, small * 2.0);
}

TEST(EnergyModelTest, EnergyAndLatencyAreNotProportional) {
  // Energy is not a constant multiple of latency: compute-bound and
  // dispatch-bound models draw very different average power, so an energy
  // surrogate genuinely learns a different target.
  const SupernetSpec rn = resnet_spec();
  const SupernetSpec mb = mobilenet_v3_spec();
  EnergyModel model(rtx4090_spec());
  const LayerGraph heavy = build_graph(rn, uniform_arch(rn, 6, 7, 1.0));
  const LayerGraph light = build_graph(mb, uniform_arch(mb, 6, 3, 0.5));
  const double p_heavy = model.average_power_w(heavy);
  const double p_light = model.average_power_w(light);
  EXPECT_GT(p_heavy, p_light * 1.3);
}

TEST(EnergyModelTest, RejectsBadEnvelope) {
  PowerEnvelope env;
  env.board_power_w = 10.0;
  env.idle_power_w = 20.0;
  EXPECT_THROW(EnergyModel(rtx4090_spec(), env), ConfigError);
}

TEST(EnergyModelTest, EnvelopeLookupCoversAllDevices) {
  for (const DeviceSpec& d : all_device_specs()) {
    const PowerEnvelope env = energy_envelope_for(d);
    EXPECT_GT(env.board_power_w, env.idle_power_w) << d.short_name;
  }
}

TEST(EnergyMeasurementTest, MeasuredEnergyTracksTruth) {
  DeviceSpec dspec = rtx4090_spec();
  dspec.bad_session_prob = 0.0;
  SimulatedDevice device(dspec, 77);
  const SupernetSpec spec = resnet_spec();
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 4, 5));
  const double truth = device.true_energy_mj(g);
  device.begin_session();
  MeasureOptions options;
  options.quantity = MeasureQuantity::kEnergyMj;
  EXPECT_NEAR(device.measure(g, options).value / truth, 1.0, 0.05);
}

// ----------------------------------------------------------- measurement

TEST(MeasurementTest, TraceHasProtocolLength) {
  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(rtx4090_spec(), 1);
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 2, 3));
  MeasureOptions options;
  options.keep_trace = true;
  const auto trace = device.measure(g, options).trace;
  EXPECT_EQ(trace.size(), 150u);
  for (double v : trace) EXPECT_GT(v, 0.0);
}

TEST(MeasurementTest, SummarizeIsTrimmedMean) {
  std::vector<double> trace(10, 1.0);
  trace[0] = 100.0;  // spike removed by the 20% trim
  trace[1] = 0.001;
  EXPECT_DOUBLE_EQ(SimulatedDevice::summarize(trace, 0.2), 1.0);
}

TEST(MeasurementTest, MeasurementNearTrueLatencyInGoodSessions) {
  const SupernetSpec spec = resnet_spec();
  DeviceSpec dspec = rtx4090_spec();
  dspec.bad_session_prob = 0.0;  // force good sessions
  SimulatedDevice device(dspec, 7);
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 4, 5));
  const double truth = device.true_latency_ms(g);
  for (int s = 0; s < 5; ++s) {
    device.begin_session();
    const double measured = device.measure(g).value;
    EXPECT_NEAR(measured / truth, 1.0, 0.05);
  }
}

TEST(MeasurementTest, BadSessionsDriftMore) {
  DeviceSpec dspec = rtx4090_spec();
  dspec.bad_session_prob = 1.0;  // force bad sessions
  dspec.bad_session_drift_cv = 0.08;
  const SupernetSpec spec = resnet_spec();
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 4, 5));
  SimulatedDevice device(dspec, 11);
  const double truth = device.true_latency_ms(g);
  // Bad sessions are one-sided slow; across several sessions the average
  // deviation must exceed the good-session jitter.
  RunningStats deviation;
  for (int s = 0; s < 20; ++s) {
    device.begin_session();
    EXPECT_TRUE(device.session_is_bad());
    deviation.add(device.measure(g).value / truth - 1.0);
  }
  EXPECT_GT(deviation.mean(), 0.02);
}

TEST(MeasurementTest, DeterministicBySeed) {
  const SupernetSpec spec = resnet_spec();
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 3, 3));
  SimulatedDevice a(rtx4090_spec(), 42), b(rtx4090_spec(), 42);
  EXPECT_DOUBLE_EQ(a.measure(g).value, b.measure(g).value);
  SimulatedDevice c(rtx4090_spec(), 43);
  EXPECT_NE(a.measure(g).value, c.measure(g).value);
}

TEST(MeasurementTest, CostAccountingAccumulates) {
  const SupernetSpec spec = resnet_spec();
  SimulatedDevice device(rtx4090_spec(), 5);
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 2, 3));
  EXPECT_DOUBLE_EQ(device.measurement_cost_seconds(), 0.0);
  device.measure(g);
  const double after_one = device.measurement_cost_seconds();
  // 150 timed runs + 5 warm-up, each at least host_overhead_ms.
  EXPECT_GT(after_one, 155 * device.spec().host_overhead_ms / 1000.0 * 0.9);
  device.measure(g);
  EXPECT_NEAR(device.measurement_cost_seconds(), 2 * after_one,
              after_one * 0.2);
  device.reset_measurement_cost();
  EXPECT_DOUBLE_EQ(device.measurement_cost_seconds(), 0.0);
}

TEST(MeasurementTest, WarmupRunsAreSlower) {
  DeviceSpec dspec = rtx4090_spec();
  dspec.run_noise_cv = 0.0;
  dspec.outlier_prob = 0.0;
  dspec.bad_session_prob = 0.0;
  dspec.session_drift_cv = 0.0;
  dspec.warmup_amplitude = 0.5;
  const SupernetSpec spec = resnet_spec();
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 2, 3));
  SimulatedDevice device(dspec, 3);
  MeasureOptions options;
  options.keep_trace = true;
  const auto trace = device.measure(g, options).trace;
  // First run carries the full warm-up penalty.
  const double tail =
      mean(std::span<const double>(trace).subspan(10));
  EXPECT_GT(trace[0], tail * 1.2);
}

TEST(MeasurementTest, ProtocolValidation) {
  MeasurementProtocol bad;
  bad.runs = 0;
  EXPECT_THROW(SimulatedDevice(rtx4090_spec(), 1, bad), ConfigError);
  bad = MeasurementProtocol{};
  bad.trim_fraction = 0.5;
  EXPECT_THROW(SimulatedDevice(rtx4090_spec(), 1, bad), ConfigError);
}

TEST(MeasurementTest, OutliersAppearInTraces) {
  DeviceSpec dspec = rtx4090_spec();
  dspec.outlier_prob = 0.2;
  dspec.outlier_scale = 3.0;
  dspec.run_noise_cv = 0.001;
  dspec.bad_session_prob = 0.0;
  const SupernetSpec spec = resnet_spec();
  const LayerGraph g = build_graph(spec, uniform_arch(spec, 2, 3));
  SimulatedDevice device(dspec, 9);
  MeasureOptions options;
  options.keep_trace = true;
  const auto trace = device.measure(g, options).trace;
  const double med = median(trace);
  const int spikes = static_cast<int>(std::count_if(
      trace.begin(), trace.end(), [&](double v) { return v > 2.0 * med; }));
  EXPECT_GT(spikes, 10);  // ~20% of 150
}

}  // namespace
}  // namespace esm
